//! Always-on runtime metrics for the carbon-electronics stack.
//!
//! `carbon-trace` answers "what did this run decide?" — but it is
//! opt-in, off in production by design, and emits raw events. This
//! crate answers the operator's question instead: "what is this
//! process doing *right now*?" — and it is designed to stay on in
//! production, always:
//!
//! * **Hermetic** — no registry dependencies; `std` plus the shared
//!   [`carbon_json`] renderer.
//! * **Lock-free on record** — counters are sharded relaxed atomics,
//!   gauges a single atomic, histograms fixed atomic bucket arrays.
//!   Recording never allocates, never locks, never formats. The only
//!   mutex in the crate guards *registration* (rare) and *snapshot*
//!   (operator-paced).
//! * **Observation only** — no simulation or service result may depend
//!   on a metric read, so responses stay byte-identical with metrics
//!   recording at any `CARBON_THREADS`. The same contract tracing
//!   keeps, now for an always-on subsystem.
//!
//! # Model
//!
//! Three instrument kinds, owned by a [`Registry`]:
//!
//! * [`Counter`] — monotonic `u64`, sharded across cache-line-padded
//!   atomics so concurrent workers do not bounce one line.
//! * [`Gauge`] — a set-valued `i64` (queue depth, in-flight work).
//! * [`Histogram`] — a fixed 64-bucket log2 histogram over `u64`
//!   nanoseconds: bucket 0 counts zeros, bucket `k ≥ 1` counts values
//!   in `[2^(k-1), 2^k)`. Bucket boundaries are compile-time constants
//!   — every histogram in every process has the identical layout, so
//!   two shards' snapshots merge bucket-by-bucket.
//!
//! # Snapshots
//!
//! [`Registry::snapshot`] reads every instrument into a [`Snapshot`]:
//! plain data, name-sorted, mergeable ([`Snapshot::merge`]) and
//! rendered to JSON ([`Snapshot::to_json`]) with a **fixed key order**
//! (`counters`, `gauges`, `histograms`; names sorted within each) so
//! two snapshots of the same process shape are field-by-field
//! comparable — and two *different* shards' snapshots are mergeable —
//! byte-for-byte deterministically. A histogram renders its exact
//! `count`/`sum`, nearest-rank `p50`/`p90`/`p99` (deterministic
//! functions of the bucket counts: the quantile is the containing
//! bucket's upper bound), and its non-zero `[bucket, count]` pairs.
//!
//! A snapshot taken *under load* is internally consistent by
//! construction: a histogram's `count` is defined as the sum of its
//! bucket counts read once, so the invariant `count == Σ buckets`
//! cannot tear, whatever the recording concurrency. (`sum`, read
//! separately, is exact at quiescence and approximate mid-flight.)

#![deny(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::must_use_candidate,
    clippy::return_self_not_must_use,
    clippy::missing_panics_doc
)]

use std::cell::Cell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock, PoisonError};

use carbon_json::Json;

/// Number of buckets in every [`Histogram`]. Bucket 0 counts zero
/// values; bucket `k ≥ 1` counts values in `[2^(k-1), 2^k)`; the last
/// bucket absorbs everything from `2^62` up.
pub const HIST_BUCKETS: usize = 64;

/// Shards per [`Counter`]. A power of two so the shard pick is a mask.
const COUNTER_SHARDS: usize = 16;

/// The log2 bucket a value lands in: 0 for 0, otherwise
/// `min(63, bit_length(value))`.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        (64 - value.leading_zeros() as usize).min(HIST_BUCKETS - 1)
    }
}

/// The largest value bucket `index` can hold: 0 for bucket 0,
/// `2^index − 1` in the middle, `u64::MAX` for the last bucket. This
/// is what quantiles report — a deterministic upper bound, never an
/// interpolation that could drift between platforms.
#[inline]
pub fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= HIST_BUCKETS - 1 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// One cache line of counter state, padded so shards never share a
/// line.
#[repr(align(64))]
#[derive(Default)]
struct Shard(AtomicU64);

static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's counter shard, assigned round-robin on first use
    /// (`usize::MAX` = unassigned).
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn shard_id() -> usize {
    SHARD.with(|s| {
        let id = s.get();
        if id != usize::MAX {
            return id;
        }
        let id = NEXT_SHARD.fetch_add(1, Ordering::Relaxed) & (COUNTER_SHARDS - 1);
        s.set(id);
        id
    })
}

/// A monotonic counter: relaxed atomic adds into per-thread shards,
/// summed on read. Totals are exact — every add lands in exactly one
/// shard — while concurrent writers on different threads typically
/// touch different cache lines.
pub struct Counter {
    shards: [Shard; COUNTER_SHARDS],
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

impl Counter {
    /// A zeroed counter.
    pub fn new() -> Self {
        Self {
            shards: std::array::from_fn(|_| Shard::default()),
        }
    }

    /// Adds `delta`. Lock-free: one thread-local read and one relaxed
    /// `fetch_add`.
    #[inline]
    pub fn add(&self, delta: u64) {
        self.shards[shard_id()]
            .0
            .fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds 1.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// The exact total of every add so far.
    pub fn total(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Counter")
            .field("total", &self.total())
            .finish()
    }
}

/// A set-valued gauge (queue depth, in-flight chunks, uptime). Reads
/// and writes are single relaxed atomic operations.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
}

impl Gauge {
    /// A zeroed gauge.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: i64) {
        self.value.store(value, Ordering::Relaxed);
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Subtracts `delta`.
    #[inline]
    pub fn sub(&self, delta: i64) {
        self.value.fetch_sub(delta, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket log2 histogram over `u64` values (by convention,
/// nanoseconds). Recording is one relaxed `fetch_add` on the bucket
/// plus one on the running sum — no allocation, no lock, no float.
pub struct Histogram {
    buckets: [AtomicU64; HIST_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A zeroed histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one value.
    #[inline]
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Reads the histogram into plain data. The snapshot's `count` is
    /// the sum of the bucket counts read here, so it can never
    /// disagree with its own buckets, even while writers are racing.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &snap.count())
            .field("sum", &snap.sum)
            .finish()
    }
}

/// Plain-data view of a [`Histogram`] at one instant. Mergeable
/// bucket-by-bucket: every histogram shares the same compile-time
/// bucket layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Count per log2 bucket (see [`bucket_index`]).
    pub buckets: [u64; HIST_BUCKETS],
    /// Sum of every recorded value (approximate while writers race;
    /// exact at quiescence).
    pub sum: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; HIST_BUCKETS],
            sum: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total recorded values — by definition the sum of the bucket
    /// counts, so `count() == Σ buckets` holds for every snapshot.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Nearest-rank quantile upper bound: the upper boundary of the
    /// bucket containing rank `⌈p/100 · count⌉`. A pure function of
    /// the bucket counts — two snapshots with equal buckets report
    /// bit-equal quantiles on every platform. Returns 0 on an empty
    /// histogram.
    pub fn quantile(&self, p: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * count as f64).ceil().max(1.0) as u64;
        let rank = rank.min(count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_bound(i);
            }
        }
        bucket_upper_bound(HIST_BUCKETS - 1)
    }

    /// Adds `other`'s buckets and sum into `self` — the shard-merge
    /// primitive. Identical layouts make this a plain element-wise
    /// add.
    pub fn merge(&mut self, other: &Self) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.sum += other.sum;
    }

    /// Renders the histogram as a deterministic JSON object:
    /// `{"count":…,"sum":…,"p50":…,"p90":…,"p99":…,"buckets":[[k,n],…]}`
    /// with only the non-zero buckets listed, in ascending bucket
    /// order.
    pub fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| Json::Arr(vec![Json::from(i), Json::from(c)]))
            .collect();
        Json::obj()
            .push("count", self.count())
            .push("sum", self.sum)
            .push("p50", self.quantile(50.0))
            .push("p90", self.quantile(90.0))
            .push("p99", self.quantile(99.0))
            .push("buckets", Json::Arr(buckets))
    }
}

/// One registered instrument.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Self::Counter(_) => "counter",
            Self::Gauge(_) => "gauge",
            Self::Histogram(_) => "histogram",
        }
    }
}

/// A named collection of instruments. Registration takes the mutex
/// once per *name* (callers cache the returned `Arc` handle);
/// recording through a handle never touches the registry again.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn register<T>(
        &self,
        name: &str,
        make: impl FnOnce() -> Metric,
        view: impl FnOnce(&Metric) -> Option<Arc<T>>,
    ) -> Arc<T> {
        let mut metrics = self.metrics.lock().unwrap_or_else(PoisonError::into_inner);
        let metric = metrics.entry(name.to_owned()).or_insert_with(make).clone();
        drop(metrics);
        view(&metric).unwrap_or_else(|| {
            panic!(
                "metric '{name}' is already registered as a {}",
                metric.kind()
            )
        })
    }

    /// The named counter, registered on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.register(
            name,
            || Metric::Counter(Arc::new(Counter::new())),
            |m| match m {
                Metric::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )
    }

    /// The named gauge, registered on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.register(
            name,
            || Metric::Gauge(Arc::new(Gauge::new())),
            |m| match m {
                Metric::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )
    }

    /// The named histogram, registered on first use.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.register(
            name,
            || Metric::Histogram(Arc::new(Histogram::new())),
            |m| match m {
                Metric::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )
    }

    /// Reads every instrument into a [`Snapshot`]. Names come out
    /// sorted (the registry is a `BTreeMap`), so the snapshot's
    /// structure does not depend on registration timing or order.
    pub fn snapshot(&self) -> Snapshot {
        let metrics = self
            .metrics
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        let mut snap = Snapshot::default();
        for (name, metric) in metrics {
            match metric {
                Metric::Counter(c) => {
                    snap.counters.insert(name, c.total());
                }
                Metric::Gauge(g) => {
                    snap.gauges.insert(name, g.get());
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name, h.snapshot());
                }
            }
        }
        snap
    }
}

/// Plain-data view of a whole [`Registry`] at one instant. Name-sorted
/// by construction, mergeable instrument-by-instrument.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Snapshot {
    /// Counter totals by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl Snapshot {
    /// Merges `other` into `self`: counters and histograms add
    /// (monotonic totals from two shards sum), gauges add as well —
    /// two shards' queue depths sum to the fleet's queue depth. Names
    /// present in only one snapshot are carried through.
    pub fn merge(&mut self, other: &Self) {
        for (name, total) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += total;
        }
        for (name, value) in &other.gauges {
            *self.gauges.entry(name.clone()).or_insert(0) += value;
        }
        for (name, hist) in &other.histograms {
            self.histograms.entry(name.clone()).or_default().merge(hist);
        }
    }

    /// Renders the snapshot as a deterministic JSON object with fixed
    /// key order: `counters`, `gauges`, `histograms`, each an object
    /// whose fields are name-sorted. Two snapshots with equal data
    /// render byte-identically.
    pub fn to_json(&self) -> Json {
        let mut counters = Json::obj();
        for (name, total) in &self.counters {
            counters = counters.push(name, *total);
        }
        let mut gauges = Json::obj();
        for (name, value) in &self.gauges {
            gauges = gauges.push(name, *value);
        }
        let mut histograms = Json::obj();
        for (name, hist) in &self.histograms {
            histograms = histograms.push(name, hist.to_json());
        }
        Json::obj()
            .push("counters", counters)
            .push("gauges", gauges)
            .push("histograms", histograms)
    }
}

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-global registry: where library layers (the runtime
/// executor, the solver) record. Service layers that need per-instance
/// isolation (one server among many in a test process) own their own
/// [`Registry`] and merge the global snapshot in at read time.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// A cached handle to a counter in the [`global`] registry:
/// `global_counter!("spice.newton.iterations").add(n)`. The registry
/// is consulted once per call *site*; afterwards the probe is one
/// `OnceLock` load plus the counter's relaxed add.
#[macro_export]
macro_rules! global_counter {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        SLOT.get_or_init(|| $crate::global().counter($name))
    }};
}

/// A cached handle to a gauge in the [`global`] registry.
#[macro_export]
macro_rules! global_gauge {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<::std::sync::Arc<$crate::Gauge>> =
            ::std::sync::OnceLock::new();
        SLOT.get_or_init(|| $crate::global().gauge($name))
    }};
}

/// A cached handle to a histogram in the [`global`] registry.
#[macro_export]
macro_rules! global_histogram {
    ($name:expr) => {{
        static SLOT: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        SLOT.get_or_init(|| $crate::global().histogram($name))
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_is_log2_with_exact_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 63);
        // Every boundary: 2^k lands one bucket above 2^k − 1.
        for k in 1..62 {
            let v = 1u64 << k;
            assert_eq!(bucket_index(v), bucket_index(v - 1) + 1, "at 2^{k}");
            assert!(v - 1 <= bucket_upper_bound(bucket_index(v - 1)));
            assert!(v > bucket_upper_bound(bucket_index(v) - 1));
        }
        assert_eq!(bucket_upper_bound(0), 0);
        assert_eq!(bucket_upper_bound(1), 1);
        assert_eq!(bucket_upper_bound(10), 1023);
        assert_eq!(bucket_upper_bound(63), u64::MAX);
    }

    #[test]
    fn counter_totals_exactly() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.total(), 42);
    }

    #[test]
    fn gauge_set_add_sub() {
        let g = Gauge::new();
        g.set(5);
        g.add(3);
        g.sub(7);
        assert_eq!(g.get(), 1);
        g.set(-4);
        assert_eq!(g.get(), -4);
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let h = Histogram::new();
        // 90 fast (≤ 1023 ns), 9 medium, 1 slow.
        for _ in 0..90 {
            h.record(1000);
        }
        for _ in 0..9 {
            h.record(100_000);
        }
        h.record(10_000_000);
        let snap = h.snapshot();
        assert_eq!(snap.count(), 100);
        assert_eq!(snap.sum, 90 * 1000 + 9 * 100_000 + 10_000_000);
        assert_eq!(snap.quantile(50.0), 1023);
        assert_eq!(snap.quantile(90.0), 1023);
        assert_eq!(
            snap.quantile(99.0),
            bucket_upper_bound(bucket_index(100_000))
        );
        assert_eq!(
            snap.quantile(100.0),
            bucket_upper_bound(bucket_index(10_000_000))
        );
        assert_eq!(HistogramSnapshot::default().quantile(50.0), 0);
    }

    #[test]
    fn histogram_snapshot_merge_is_elementwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        a.record(2000);
        b.record(10);
        b.record(3_000_000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count(), 4);
        assert_eq!(merged.sum, 10 + 2000 + 10 + 3_000_000);
        assert_eq!(merged.buckets[bucket_index(10)], 2);
    }

    #[test]
    fn registry_returns_one_instrument_per_name() {
        let r = Registry::new();
        let c1 = r.counter("x.hits");
        let c2 = r.counter("x.hits");
        c1.incr();
        c2.incr();
        assert_eq!(c1.total(), 2);
        assert!(Arc::ptr_eq(&c1, &c2));
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn registry_rejects_kind_clashes() {
        let r = Registry::new();
        let _c = r.counter("x.clash");
        let _g = r.gauge("x.clash");
    }

    #[test]
    fn snapshot_is_name_sorted_and_renders_fixed_key_order() {
        let r = Registry::new();
        r.counter("z.last").add(3);
        r.counter("a.first").add(1);
        r.gauge("m.depth").set(7);
        r.histogram("l.lat").record(5);
        let json = r.snapshot().to_json().render();
        assert_eq!(
            json,
            "{\"counters\":{\"a.first\":1,\"z.last\":3},\
             \"gauges\":{\"m.depth\":7},\
             \"histograms\":{\"l.lat\":{\"count\":1,\"sum\":5,\"p50\":7,\"p90\":7,\
             \"p99\":7,\"buckets\":[[3,1]]}}}"
        );
        // Registration order reversed produces the identical bytes.
        let r2 = Registry::new();
        r2.histogram("l.lat").record(5);
        r2.gauge("m.depth").set(7);
        r2.counter("a.first").add(1);
        r2.counter("z.last").add(3);
        assert_eq!(r2.snapshot().to_json().render(), json);
    }

    #[test]
    fn snapshot_merge_covers_disjoint_and_shared_names() {
        let a = Registry::new();
        a.counter("shared").add(2);
        a.counter("only_a").add(1);
        a.gauge("depth").set(3);
        a.histogram("lat").record(100);
        let b = Registry::new();
        b.counter("shared").add(5);
        b.gauge("depth").set(4);
        b.histogram("lat").record(100_000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.counters["shared"], 7);
        assert_eq!(merged.counters["only_a"], 1);
        assert_eq!(merged.gauges["depth"], 7, "shard depths sum");
        assert_eq!(merged.histograms["lat"].count(), 2);
    }

    #[test]
    fn global_macros_cache_their_handles() {
        global_counter!("unit.metrics.global_hits").add(2);
        global_counter!("unit.metrics.global_hits").incr();
        assert_eq!(global().counter("unit.metrics.global_hits").total(), 3);
        global_gauge!("unit.metrics.global_depth").set(9);
        assert_eq!(global().gauge("unit.metrics.global_depth").get(), 9);
        global_histogram!("unit.metrics.global_lat").record(12);
        assert_eq!(
            global()
                .histogram("unit.metrics.global_lat")
                .snapshot()
                .count(),
            1
        );
    }
}

//! Concurrency contracts for carbon-metrics: exact totals under
//! contention, tear-free snapshots while writers race, and monotonic
//! counter reads across repeated snapshots.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;

use carbon_metrics::{Histogram, Registry};

/// N threads hammering one counter must total exactly — sharding may
/// spread the adds across cache lines but can never lose one.
#[test]
fn counter_totals_exactly_under_contention() {
    let registry = Arc::new(Registry::new());
    let threads = 8;
    let per_thread = 100_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|_| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                let counter = registry.counter("test.hits");
                for _ in 0..per_thread {
                    counter.incr();
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(
        registry.counter("test.hits").total(),
        threads as u64 * per_thread
    );
}

/// N threads hammering one histogram must record exactly, and the
/// bucket distribution must match the known value mix.
#[test]
fn histogram_counts_exactly_under_contention() {
    let hist = Arc::new(Histogram::new());
    let threads = 8;
    let per_thread = 50_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let hist = Arc::clone(&hist);
            thread::spawn(move || {
                for i in 0..per_thread {
                    // Deterministic mix spanning several buckets.
                    hist.record((t as u64 + 1) * 100 + i % 7);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = hist.snapshot();
    assert_eq!(snap.count(), threads as u64 * per_thread);
}

/// Snapshots taken while writers race must never tear: `count()` is
/// defined as the sum of the bucket counts, so the invariant holds by
/// construction — this test documents it and checks the related
/// monotonicity (a later snapshot never shows fewer events).
#[test]
fn snapshot_under_load_never_tears() {
    let hist = Arc::new(Histogram::new());
    let stop = Arc::new(AtomicBool::new(false));
    let writers: Vec<_> = (0..4)
        .map(|_| {
            let hist = Arc::clone(&hist);
            let stop = Arc::clone(&stop);
            thread::spawn(move || {
                let mut v = 1u64;
                while !stop.load(Ordering::Relaxed) {
                    hist.record(v);
                    v = v.wrapping_mul(2862933555777941757).wrapping_add(1) >> 33;
                }
            })
        })
        .collect();

    let mut last_count = 0u64;
    for _ in 0..1000 {
        let snap = hist.snapshot();
        let count = snap.count();
        // count == Σ buckets by definition; what we check is that the
        // derived quantities are consistent with it and time moves
        // forward.
        assert!(count >= last_count, "snapshot went backwards");
        if count > 0 {
            assert!(snap.quantile(50.0) <= snap.quantile(99.0));
        }
        last_count = count;
    }
    stop.store(true, Ordering::Relaxed);
    for w in writers {
        w.join().unwrap();
    }
    let end = hist.snapshot();
    assert!(end.count() >= last_count);
}

/// Registry snapshots under concurrent registration and recording stay
/// structurally sound and render deterministically once quiescent.
#[test]
fn registry_snapshot_race_with_registration() {
    let registry = Arc::new(Registry::new());
    let handles: Vec<_> = (0..8)
        .map(|t| {
            let registry = Arc::clone(&registry);
            thread::spawn(move || {
                let counter = registry.counter("race.hits");
                let hist = registry.histogram("race.lat");
                let gauge = registry.gauge(if t % 2 == 0 { "race.even" } else { "race.odd" });
                for i in 0..10_000u64 {
                    counter.incr();
                    hist.record(i % 4096);
                    gauge.set(i as i64);
                }
                // Snapshot mid-race from every thread: must not panic
                // and must stay internally consistent.
                let snap = registry.snapshot();
                for h in snap.histograms.values() {
                    let _ = h.quantile(99.0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let snap = registry.snapshot();
    assert_eq!(snap.counters["race.hits"], 80_000);
    assert_eq!(snap.histograms["race.lat"].count(), 80_000);
    assert_eq!(snap.gauges["race.even"], 9_999);
    assert_eq!(snap.gauges["race.odd"], 9_999);
    // Two quiescent snapshots render byte-identically.
    assert_eq!(
        registry.snapshot().to_json().render(),
        registry.snapshot().to_json().render()
    );
}

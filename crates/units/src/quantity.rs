//! Strongly-typed scalar physical quantities.
//!
//! Each quantity wraps an `f64` in SI base units and exposes unit-named
//! constructors and accessors. Same-type addition/subtraction, scalar
//! multiplication, and the handful of physically meaningful cross-type
//! operations (`Voltage / Current = Resistance`, `Charge / Voltage =
//! Capacitance`, ...) are implemented; everything else is a compile error,
//! which is the point.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use crate::consts;
use crate::eng::Eng;

macro_rules! quantity {
    (
        $(#[$meta:meta])*
        $name:ident, si = $si:literal, base = $base:ident
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
        pub struct $name(f64);

        impl $name {
            /// The zero quantity.
            pub const ZERO: Self = Self(0.0);

            /// Raw value in SI base units.
            #[inline]
            pub const fn $base(self) -> f64 {
                self.0
            }

            /// Absolute value.
            #[inline]
            pub fn abs(self) -> Self {
                Self(self.0.abs())
            }

            /// `true` if the underlying value is finite (not NaN/∞).
            #[inline]
            pub fn is_finite(self) -> bool {
                self.0.is_finite()
            }

            /// The greater of `self` and `other` (NaN-propagating like `f64::max`).
            #[inline]
            pub fn max(self, other: Self) -> Self {
                Self(self.0.max(other.0))
            }

            /// The lesser of `self` and `other`.
            #[inline]
            pub fn min(self, other: Self) -> Self {
                Self(self.0.min(other.0))
            }
        }

        impl Add for $name {
            type Output = Self;
            #[inline]
            fn add(self, rhs: Self) -> Self {
                Self(self.0 + rhs.0)
            }
        }

        impl Sub for $name {
            type Output = Self;
            #[inline]
            fn sub(self, rhs: Self) -> Self {
                Self(self.0 - rhs.0)
            }
        }

        impl AddAssign for $name {
            #[inline]
            fn add_assign(&mut self, rhs: Self) {
                self.0 += rhs.0;
            }
        }

        impl SubAssign for $name {
            #[inline]
            fn sub_assign(&mut self, rhs: Self) {
                self.0 -= rhs.0;
            }
        }

        impl Neg for $name {
            type Output = Self;
            #[inline]
            fn neg(self) -> Self {
                Self(-self.0)
            }
        }

        impl Mul<f64> for $name {
            type Output = Self;
            #[inline]
            fn mul(self, rhs: f64) -> Self {
                Self(self.0 * rhs)
            }
        }

        impl Mul<$name> for f64 {
            type Output = $name;
            #[inline]
            fn mul(self, rhs: $name) -> $name {
                $name(self * rhs.0)
            }
        }

        impl Div<f64> for $name {
            type Output = Self;
            #[inline]
            fn div(self, rhs: f64) -> Self {
                Self(self.0 / rhs)
            }
        }

        impl Div<$name> for $name {
            /// Ratio of two like quantities is dimensionless.
            type Output = f64;
            #[inline]
            fn div(self, rhs: $name) -> f64 {
                self.0 / rhs.0
            }
        }

        impl Sum for $name {
            fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
                Self(iter.map(|q| q.0).sum())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", Eng(self.0), $si)
            }
        }
    };
}

quantity! {
    /// Electric potential, stored in volts.
    Voltage, si = "V", base = volts
}
quantity! {
    /// Electric current, stored in amperes.
    Current, si = "A", base = amperes
}
quantity! {
    /// Current per unit device width (the paper's `mA/µm`), stored in A/m.
    CurrentDensity, si = "A/m", base = amps_per_meter
}
quantity! {
    /// Length, stored in meters.
    Length, si = "m", base = meters
}
quantity! {
    /// Energy, stored in joules.
    Energy, si = "J", base = joules
}
quantity! {
    /// Electric charge, stored in coulombs.
    Charge, si = "C", base = coulombs
}
quantity! {
    /// Capacitance, stored in farads.
    Capacitance, si = "F", base = farads
}
quantity! {
    /// Resistance, stored in ohms.
    Resistance, si = "Ω", base = ohms
}
quantity! {
    /// Conductance, stored in siemens.
    Conductance, si = "S", base = siemens
}
quantity! {
    /// Time, stored in seconds.
    Time, si = "s", base = seconds
}
quantity! {
    /// Absolute temperature, stored in kelvin.
    Temperature, si = "K", base = kelvin
}

impl Voltage {
    /// Constructs a voltage from a value in volts.
    #[inline]
    pub const fn from_volts(v: f64) -> Self {
        Self(v)
    }

    /// Constructs a voltage from a value in millivolts.
    #[inline]
    pub const fn from_millivolts(mv: f64) -> Self {
        Self(mv * 1e-3)
    }

    /// Value in millivolts.
    #[inline]
    pub const fn millivolts(self) -> f64 {
        self.0 * 1e3
    }
}

impl Current {
    /// Constructs a current from a value in amperes.
    #[inline]
    pub const fn from_amperes(a: f64) -> Self {
        Self(a)
    }

    /// Constructs a current from a value in microamperes.
    #[inline]
    pub const fn from_microamperes(ua: f64) -> Self {
        Self(ua * 1e-6)
    }

    /// Constructs a current from a value in nanoamperes.
    #[inline]
    pub const fn from_nanoamperes(na: f64) -> Self {
        Self(na * 1e-9)
    }

    /// Value in microamperes.
    #[inline]
    pub const fn microamperes(self) -> f64 {
        self.0 * 1e6
    }

    /// Value in nanoamperes.
    #[inline]
    pub const fn nanoamperes(self) -> f64 {
        self.0 * 1e9
    }

    /// Normalizes this current by a device width, producing the per-width
    /// density the paper's benchmark plots use.
    #[inline]
    pub fn per_width(self, width: Length) -> CurrentDensity {
        CurrentDensity(self.0 / width.0)
    }
}

impl CurrentDensity {
    /// Constructs a density from a value in A/m.
    #[inline]
    pub const fn from_amps_per_meter(v: f64) -> Self {
        Self(v)
    }

    /// Constructs a density from the paper's customary µA/µm (≡ A/m).
    #[inline]
    pub const fn from_microamps_per_micron(v: f64) -> Self {
        Self(v)
    }

    /// Constructs a density from mA/µm.
    #[inline]
    pub const fn from_milliamps_per_micron(v: f64) -> Self {
        Self(v * 1e3)
    }

    /// Constructs a density from nA/µm.
    #[inline]
    pub const fn from_nanoamps_per_micron(v: f64) -> Self {
        Self(v * 1e-3)
    }

    /// Value in µA/µm (numerically equal to A/m).
    #[inline]
    pub const fn microamps_per_micron(self) -> f64 {
        self.0
    }

    /// Value in mA/µm.
    #[inline]
    pub const fn milliamps_per_micron(self) -> f64 {
        self.0 * 1e-3
    }

    /// Total current through a device of the given width.
    #[inline]
    pub fn times_width(self, width: Length) -> Current {
        Current(self.0 * width.0)
    }
}

impl Length {
    /// Constructs a length from a value in meters.
    #[inline]
    pub const fn from_meters(m: f64) -> Self {
        Self(m)
    }

    /// Constructs a length from a value in nanometers.
    #[inline]
    pub const fn from_nanometers(nm: f64) -> Self {
        Self(nm * 1e-9)
    }

    /// Constructs a length from a value in micrometers.
    #[inline]
    pub const fn from_micrometers(um: f64) -> Self {
        Self(um * 1e-6)
    }

    /// Value in nanometers.
    #[inline]
    pub const fn nanometers(self) -> f64 {
        self.0 * 1e9
    }

    /// Value in micrometers.
    #[inline]
    pub const fn micrometers(self) -> f64 {
        self.0 * 1e6
    }
}

impl Energy {
    /// Constructs an energy from a value in joules.
    #[inline]
    pub const fn from_joules(j: f64) -> Self {
        Self(j)
    }

    /// Constructs an energy from a value in electron-volts.
    #[inline]
    pub const fn from_electron_volts(ev: f64) -> Self {
        Self(ev * consts::Q_E)
    }

    /// Value in electron-volts.
    #[inline]
    pub const fn electron_volts(self) -> f64 {
        self.0 / consts::Q_E
    }

    /// The energy `q·V` an elementary charge gains across a potential.
    #[inline]
    pub fn from_charge_voltage(v: Voltage) -> Self {
        Self(consts::Q_E * v.0)
    }
}

impl Charge {
    /// Constructs a charge from a value in coulombs.
    #[inline]
    pub const fn from_coulombs(c: f64) -> Self {
        Self(c)
    }

    /// Charge of `n` elementary charges.
    #[inline]
    pub fn elementary(n: f64) -> Self {
        Self(n * consts::Q_E)
    }
}

impl Capacitance {
    /// Constructs a capacitance from a value in farads.
    #[inline]
    pub const fn from_farads(f: f64) -> Self {
        Self(f)
    }

    /// Constructs a capacitance from a value in femtofarads.
    #[inline]
    pub const fn from_femtofarads(ff: f64) -> Self {
        Self(ff * 1e-15)
    }

    /// Constructs a capacitance from a value in attofarads.
    #[inline]
    pub const fn from_attofarads(af: f64) -> Self {
        Self(af * 1e-18)
    }

    /// Value in femtofarads.
    #[inline]
    pub const fn femtofarads(self) -> f64 {
        self.0 * 1e15
    }
}

impl Resistance {
    /// Constructs a resistance from a value in ohms.
    #[inline]
    pub const fn from_ohms(o: f64) -> Self {
        Self(o)
    }

    /// Constructs a resistance from a value in kilohms.
    #[inline]
    pub const fn from_kilohms(k: f64) -> Self {
        Self(k * 1e3)
    }

    /// Value in kilohms.
    #[inline]
    pub const fn kilohms(self) -> f64 {
        self.0 * 1e-3
    }

    /// The reciprocal conductance.
    ///
    /// # Panics
    ///
    /// Panics if the resistance is zero.
    #[inline]
    pub fn to_conductance(self) -> Conductance {
        assert!(self.0 != 0.0, "zero resistance has no finite conductance");
        Conductance(1.0 / self.0)
    }
}

impl Conductance {
    /// Constructs a conductance from a value in siemens.
    #[inline]
    pub const fn from_siemens(s: f64) -> Self {
        Self(s)
    }

    /// The reciprocal resistance.
    ///
    /// # Panics
    ///
    /// Panics if the conductance is zero.
    #[inline]
    pub fn to_resistance(self) -> Resistance {
        assert!(self.0 != 0.0, "zero conductance has no finite resistance");
        Resistance(1.0 / self.0)
    }
}

impl Time {
    /// Constructs a time from a value in seconds.
    #[inline]
    pub const fn from_seconds(s: f64) -> Self {
        Self(s)
    }

    /// Constructs a time from a value in picoseconds.
    #[inline]
    pub const fn from_picoseconds(ps: f64) -> Self {
        Self(ps * 1e-12)
    }

    /// Constructs a time from a value in nanoseconds.
    #[inline]
    pub const fn from_nanoseconds(ns: f64) -> Self {
        Self(ns * 1e-9)
    }

    /// Value in picoseconds.
    #[inline]
    pub const fn picoseconds(self) -> f64 {
        self.0 * 1e12
    }
}

impl Temperature {
    /// Constructs a temperature from a value in kelvin.
    ///
    /// # Panics
    ///
    /// Panics if `k` is negative (below absolute zero) or NaN.
    #[inline]
    pub fn from_kelvin(k: f64) -> Self {
        assert!(k >= 0.0, "temperature below absolute zero: {k} K");
        Self(k)
    }

    /// Room temperature, 300 K.
    #[inline]
    pub fn room() -> Self {
        Self(consts::ROOM_TEMPERATURE)
    }

    /// Thermal voltage kT/q at this temperature.
    #[inline]
    pub fn thermal_voltage(self) -> Voltage {
        Voltage(consts::K_B * self.0 / consts::Q_E)
    }

    /// Thermal energy kT at this temperature.
    #[inline]
    pub fn thermal_energy(self) -> Energy {
        Energy(consts::K_B * self.0)
    }
}

// ---- physically meaningful cross-type operations ----

impl Div<Current> for Voltage {
    type Output = Resistance;
    #[inline]
    fn div(self, rhs: Current) -> Resistance {
        Resistance(self.0 / rhs.0)
    }
}

impl Div<Resistance> for Voltage {
    type Output = Current;
    #[inline]
    fn div(self, rhs: Resistance) -> Current {
        Current(self.0 / rhs.0)
    }
}

impl Mul<Resistance> for Current {
    type Output = Voltage;
    #[inline]
    fn mul(self, rhs: Resistance) -> Voltage {
        Voltage(self.0 * rhs.0)
    }
}

impl Mul<Current> for Resistance {
    type Output = Voltage;
    #[inline]
    fn mul(self, rhs: Current) -> Voltage {
        Voltage(self.0 * rhs.0)
    }
}

impl Mul<Voltage> for Conductance {
    type Output = Current;
    #[inline]
    fn mul(self, rhs: Voltage) -> Current {
        Current(self.0 * rhs.0)
    }
}

impl Div<Voltage> for Charge {
    type Output = Capacitance;
    #[inline]
    fn div(self, rhs: Voltage) -> Capacitance {
        Capacitance(self.0 / rhs.0)
    }
}

impl Mul<Voltage> for Capacitance {
    type Output = Charge;
    #[inline]
    fn mul(self, rhs: Voltage) -> Charge {
        Charge(self.0 * rhs.0)
    }
}

impl Div<Time> for Charge {
    type Output = Current;
    #[inline]
    fn div(self, rhs: Time) -> Current {
        Current(self.0 / rhs.0)
    }
}

impl Mul<Time> for Current {
    type Output = Charge;
    #[inline]
    fn mul(self, rhs: Time) -> Charge {
        Charge(self.0 * rhs.0)
    }
}

impl Mul<Capacitance> for Resistance {
    type Output = Time;
    #[inline]
    fn mul(self, rhs: Capacitance) -> Time {
        Time(self.0 * rhs.0)
    }
}

impl Div<Voltage> for Energy {
    type Output = Charge;
    #[inline]
    fn div(self, rhs: Voltage) -> Charge {
        Charge(self.0 / rhs.0)
    }
}

impl Mul<Voltage> for Charge {
    type Output = Energy;
    #[inline]
    fn mul(self, rhs: Voltage) -> Energy {
        Energy(self.0 * rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_constructors_round_trip() {
        assert_eq!(Voltage::from_millivolts(500.0).volts(), 0.5);
        assert!((Current::from_microamperes(20.0).amperes() - 20e-6).abs() < 1e-18);
        assert!((Length::from_nanometers(9.0).nanometers() - 9.0).abs() < 1e-12);
        assert_eq!(Energy::from_electron_volts(0.56).electron_volts(), 0.56);
        assert!((Capacitance::from_femtofarads(10.0).farads() - 10e-15).abs() < 1e-27);
        assert_eq!(Resistance::from_kilohms(50.0).ohms(), 50_000.0);
        assert_eq!(Time::from_picoseconds(3.0).seconds(), 3e-12);
    }

    #[test]
    fn ohms_law_combinations() {
        let v = Voltage::from_volts(1.0);
        let i = Current::from_microamperes(10.0);
        let r = v / i;
        assert!((r.kilohms() - 100.0).abs() < 1e-9);
        let v2 = i * r;
        assert!((v2.volts() - 1.0).abs() < 1e-12);
        let i2 = v / r;
        assert!((i2.microamperes() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn rc_time_constant() {
        let tau = Resistance::from_kilohms(50.0) * Capacitance::from_femtofarads(10.0);
        assert!((tau.picoseconds() - 500.0).abs() < 1e-9);
    }

    #[test]
    fn current_density_normalization() {
        // 20 µA through a 1 µm wide device is 20 µA/µm.
        let d = Current::from_microamperes(20.0).per_width(Length::from_micrometers(1.0));
        assert!((d.microamps_per_micron() - 20.0).abs() < 1e-9);
        // 2 mA/µm (the sub-10nm GNR claim) through 10 nm width is 20 µA.
        let i = CurrentDensity::from_milliamps_per_micron(2.0)
            .times_width(Length::from_nanometers(10.0));
        assert!((i.microamperes() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn thermal_voltage_room() {
        let vt = Temperature::room().thermal_voltage();
        assert!((vt.millivolts() - 25.85).abs() < 0.05);
    }

    #[test]
    #[should_panic(expected = "absolute zero")]
    fn negative_temperature_panics() {
        let _ = Temperature::from_kelvin(-1.0);
    }

    #[test]
    fn arithmetic_and_ordering() {
        let a = Voltage::from_volts(0.3);
        let b = Voltage::from_volts(0.2);
        assert!(((a + b).volts() - 0.5).abs() < 1e-12);
        assert!(((a - b).volts() - 0.1).abs() < 1e-12);
        assert!(a > b);
        assert_eq!((-a).volts(), -0.3);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
        assert_eq!((2.0 * a).volts(), 0.6);
        assert!(((a / 3.0).volts() - 0.1).abs() < 1e-12);
        assert!((a / b - 1.5).abs() < 1e-12);
    }

    #[test]
    fn sum_of_quantities() {
        let total: Current = (1..=4).map(|k| Current::from_microamperes(k as f64)).sum();
        assert!((total.microamperes() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn display_uses_engineering_notation() {
        assert_eq!(format!("{}", Current::from_microamperes(20.0)), "20 µA");
        assert_eq!(format!("{}", Voltage::from_volts(0.5)), "500 mV");
        assert_eq!(format!("{}", Resistance::from_kilohms(50.0)), "50 kΩ");
    }

    #[test]
    fn energy_charge_voltage_relations() {
        let e = Charge::elementary(1.0) * Voltage::from_volts(0.56);
        assert!((e.electron_volts() - 0.56).abs() < 1e-12);
        let q = e / Voltage::from_volts(0.56);
        assert!((q.coulombs() - crate::consts::Q_E).abs() < 1e-30);
    }

    #[test]
    fn conversion_between_r_and_g() {
        let g = Resistance::from_kilohms(10.0).to_conductance();
        assert!((g.siemens() - 1e-4).abs() < 1e-12);
        assert!((g.to_resistance().kilohms() - 10.0).abs() < 1e-9);
        let i = g * Voltage::from_volts(2.0);
        assert!((i.microamperes() - 200.0).abs() < 1e-9);
    }
}

//! Physical constants and unit-safe quantity types for the
//! `carbon-electronics` workspace.
//!
//! Everything downstream of this crate — band structure, device compact
//! models, the circuit simulator — computes in SI internally. This crate
//! provides:
//!
//! * [`consts`]: CODATA physical constants plus the graphene lattice
//!   parameters used by zone-folding band-structure models,
//! * strongly-typed scalar quantities ([`Voltage`], [`Current`],
//!   [`Length`], [`Energy`], ...) so that a gate length cannot be passed
//!   where a bias voltage is expected,
//! * [`eng`]: engineering-notation formatting used by the experiment
//!   tables (`12.3 µA`, `83 mV/dec`, ...).
//!
//! # Examples
//!
//! ```
//! use carbon_units::{Voltage, Length, Energy};
//!
//! let vdd = Voltage::from_volts(0.5);
//! let lg = Length::from_nanometers(9.0);
//! let eg = Energy::from_electron_volts(0.56);
//! assert!(vdd.volts() > 0.0 && lg.meters() < 1e-8 && eg.joules() > 0.0);
//! ```

#![deny(missing_docs)]

pub mod consts;
pub mod eng;
mod quantity;

pub use quantity::{
    Capacitance, Charge, Conductance, Current, CurrentDensity, Energy, Length, Resistance,
    Temperature, Time, Voltage,
};

//! Engineering-notation formatting (SI prefixes).
//!
//! The experiment tables in `carbon-core` print values the way the paper
//! does: `20 µA`, `83 mV/dec`, `6.45 kΩ`. [`Eng`] wraps an `f64` and
//! renders it with an SI prefix chosen so the mantissa falls in `[1, 1000)`.
//!
//! # Examples
//!
//! ```
//! use carbon_units::eng::Eng;
//!
//! assert_eq!(format!("{}A", Eng(2.0e-5)), "20 µA");
//! assert_eq!(format!("{}Ω", Eng(6453.0)), "6.453 kΩ");
//! assert_eq!(format!("{}", Eng(0.0)), "0 ");
//! ```

use std::fmt;

/// An `f64` displayed with an SI engineering prefix.
///
/// The mantissa is printed with up to four significant digits and trailing
/// zeros trimmed; a space separates it from the prefix so a unit symbol can
/// be appended directly (`format!("{}A", Eng(i))`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Eng(pub f64);

const PREFIXES: [(f64, &str); 17] = [
    (1e24, "Y"),
    (1e21, "Z"),
    (1e18, "E"),
    (1e15, "P"),
    (1e12, "T"),
    (1e9, "G"),
    (1e6, "M"),
    (1e3, "k"),
    (1.0, ""),
    (1e-3, "m"),
    (1e-6, "µ"),
    (1e-9, "n"),
    (1e-12, "p"),
    (1e-15, "f"),
    (1e-18, "a"),
    (1e-21, "z"),
    (1e-24, "y"),
];

impl fmt::Display for Eng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let v = self.0;
        if v == 0.0 {
            return write!(f, "0 ");
        }
        if !v.is_finite() {
            return write!(f, "{v} ");
        }
        let mag = v.abs();
        let (scale, prefix) = PREFIXES
            .iter()
            .find(|(s, _)| mag >= *s)
            .copied()
            .unwrap_or((1e-24, "y"));
        let mantissa = v / scale;
        // Up to 4 significant digits, trailing zeros trimmed.
        let digits = if mantissa.abs() >= 100.0 {
            1
        } else if mantissa.abs() >= 10.0 {
            2
        } else {
            3
        };
        let s = format!("{mantissa:.digits$}");
        let s = s.trim_end_matches('0').trim_end_matches('.');
        write!(f, "{s} {prefix}")
    }
}

/// Formats a value with an explicit number of significant decimals and a
/// unit, without prefix scaling — used for quantities with conventional
/// fixed units such as subthreshold swing in mV/dec.
///
/// # Examples
///
/// ```
/// use carbon_units::eng::fixed_unit;
///
/// assert_eq!(fixed_unit(83.2, 1, "mV/dec"), "83.2 mV/dec");
/// ```
pub fn fixed_unit(value: f64, decimals: usize, unit: &str) -> String {
    format!("{value:.decimals$} {unit}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formats_typical_paper_values() {
        assert_eq!(format!("{}A", Eng(66e-6)), "66 µA");
        assert_eq!(format!("{}A/µm", Eng(2e-3)), "2 mA/µm");
        assert_eq!(format!("{}F", Eng(10e-15)), "10 fF");
        assert_eq!(format!("{}Ω", Eng(11e3)), "11 kΩ");
        assert_eq!(format!("{}m", Eng(9e-9)), "9 nm");
    }

    #[test]
    fn negative_values_keep_sign() {
        assert_eq!(format!("{}V", Eng(-0.4)), "-400 mV");
    }

    #[test]
    fn zero_and_non_finite() {
        assert_eq!(format!("{}", Eng(0.0)), "0 ");
        assert!(format!("{}", Eng(f64::INFINITY)).contains("inf"));
    }

    #[test]
    fn tiny_values_clamp_to_smallest_prefix() {
        let s = format!("{}A", Eng(1e-27));
        assert!(s.ends_with("yA"), "got {s}");
    }

    #[test]
    fn significant_digit_policy() {
        assert_eq!(format!("{}", Eng(123.456)), "123.5 ");
        assert_eq!(format!("{}", Eng(12.3456)), "12.35 ");
        assert_eq!(format!("{}", Eng(1.23456)), "1.235 ");
    }

    #[test]
    fn fixed_unit_formatting() {
        assert_eq!(fixed_unit(59.6, 1, "mV/dec"), "59.6 mV/dec");
        assert_eq!(fixed_unit(0.399, 2, "V"), "0.40 V");
    }
}

//! Physical constants (SI) and graphene/carbon-nanotube lattice parameters.
//!
//! Fundamental constants follow CODATA 2018. The graphene tight-binding
//! parameters (`A_CC`, `GAMMA_0`, `FERMI_VELOCITY`) are the values used by
//! the zone-folding compact models the paper's Fig. 1 simulation is based
//! on (Ouyang et al., Appl. Phys. Lett. 89, 203107 (2006)).

/// Elementary charge, C.
pub const Q_E: f64 = 1.602_176_634e-19;

/// Planck constant, J·s.
pub const PLANCK_H: f64 = 6.626_070_15e-34;

/// Reduced Planck constant ħ, J·s.
pub const HBAR: f64 = PLANCK_H / (2.0 * std::f64::consts::PI);

/// Boltzmann constant, J/K.
pub const K_B: f64 = 1.380_649e-23;

/// Vacuum permittivity ε₀, F/m.
pub const EPS_0: f64 = 8.854_187_812_8e-12;

/// Free-electron rest mass, kg.
pub const M_0: f64 = 9.109_383_701_5e-31;

/// Room temperature used throughout the paper's evaluation, K.
pub const ROOM_TEMPERATURE: f64 = 300.0;

/// Thermal voltage kT/q at 300 K, V (≈ 25.85 mV).
pub const VT_300K: f64 = K_B * ROOM_TEMPERATURE / Q_E;

/// Ideal (thermionic) subthreshold swing limit at 300 K, mV/decade.
///
/// The paper quotes "the theoretical limit of ~60 mV/dec at room
/// temperature"; the exact value is `ln(10)·kT/q ≈ 59.6 mV/dec`.
pub const SS_THERMAL_LIMIT_MV_PER_DEC: f64 = VT_300K * std::f64::consts::LN_10 * 1e3;

/// Carbon–carbon bond length in graphene, m (0.142 nm).
pub const A_CC: f64 = 0.142e-9;

/// Graphene lattice constant a = √3·a_cc, m (≈ 0.246 nm).
pub const A_LATTICE: f64 = 1.732_050_807_568_877_2 * A_CC;

/// Nearest-neighbour tight-binding hopping energy γ₀ of graphene, J
/// (3.0 eV, the value conventionally used in CNT zone-folding models).
pub const GAMMA_0: f64 = 3.0 * Q_E;

/// Graphene Fermi velocity v_F = 3·γ₀·a_cc / (2ħ), m/s (≈ 9.7·10⁵).
pub const FERMI_VELOCITY: f64 = 1.5 * GAMMA_0 * A_CC / HBAR;

/// Quantum of conductance per spin-degenerate mode G₀ = 2q²/h, S.
pub const G_QUANTUM: f64 = 2.0 * Q_E * Q_E / PLANCK_H;

/// Minimum two-terminal resistance of a single-walled CNT with 2 conducting
/// subbands (4 modes counting spin): h/(4q²) ≈ 6.45 kΩ.
///
/// The paper's Section III.B quotes 11 kΩ total serial resistance for the
/// best experimental CNT-FET; the quantum limit below is the floor any
/// contact engineering must approach.
pub const R_QUANTUM_CNT: f64 = PLANCK_H / (4.0 * Q_E * Q_E);

/// Relative permittivity of SiO₂.
pub const EPS_R_SIO2: f64 = 3.9;

/// Relative permittivity of HfO₂ (a representative high-k used on CNTs).
pub const EPS_R_HFO2: f64 = 20.0;

/// Relative permittivity of silicon.
pub const EPS_R_SI: f64 = 11.7;

/// Relative permittivity of In₀.₅₃Ga₀.₄₇As.
pub const EPS_R_INGAAS: f64 = 13.9;

/// Relative permittivity of InAs.
pub const EPS_R_INAS: f64 = 15.15;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thermal_voltage_at_room_temperature() {
        assert!(
            (VT_300K - 0.025_85).abs() < 1e-4,
            "kT/q at 300 K ≈ 25.85 mV"
        );
    }

    #[test]
    fn subthreshold_limit_is_about_60mv_per_dec() {
        assert!((SS_THERMAL_LIMIT_MV_PER_DEC - 59.5).abs() < 0.5);
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // compile-time sanity pin
    fn fermi_velocity_is_about_1e6() {
        assert!(FERMI_VELOCITY > 8.0e5 && FERMI_VELOCITY < 1.1e6);
    }

    #[test]
    fn cnt_quantum_resistance_is_6_45_kohm() {
        assert!((R_QUANTUM_CNT - 6453.2).abs() < 10.0);
    }

    #[test]
    fn lattice_constant_follows_bond_length() {
        assert!((A_LATTICE - 0.246e-9).abs() < 1e-12);
    }

    #[test]
    fn hbar_consistent_with_h() {
        assert!((HBAR * 2.0 * std::f64::consts::PI - PLANCK_H).abs() < 1e-45);
    }
}

//! End-to-end service tests: protocol round trips, validation at the
//! boundary, backpressure, deadlines, and graceful drain.

use carbon_json::Json;
use carbon_serve::{Client, Server, ServerConfig};

const RC_DECK: &str = "* rc low-pass\nV1 in 0 1\nR1 in out 1k\nC1 out 0 1u\n.end\n";

fn start(workers: usize, queue_depth: usize) -> Server {
    Server::start(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            queue_depth,
            default_timeout_ms: None,
            ..ServerConfig::default()
        },
    )
    .expect("bind loopback")
}

fn nodes(names: &[&str]) -> Json {
    Json::Arr(names.iter().map(|n| Json::Str((*n).to_owned())).collect())
}

#[test]
fn round_trips_every_job_kind() {
    let server = start(2, 16);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let requests = [
        Json::obj().push("id", 1).push(
            "job",
            Json::obj()
                .push("kind", "op")
                .push("deck", RC_DECK)
                .push("nodes", nodes(&["in", "out"])),
        ),
        Json::obj().push("id", 2).push(
            "job",
            Json::obj()
                .push("kind", "dc_sweep")
                .push("deck", RC_DECK)
                .push("source", "V1")
                .push("from", 0.0)
                .push("to", 1.0)
                .push("step", 0.5)
                .push("nodes", nodes(&["out"])),
        ),
        Json::obj().push("id", 3).push(
            "job",
            Json::obj()
                .push("kind", "ac_sweep")
                .push("deck", RC_DECK)
                .push("source", "V1")
                .push("fstart", 1.0)
                .push("fstop", 1e4)
                .push("points_per_decade", 5)
                .push("nodes", nodes(&["out"])),
        ),
        Json::obj().push("id", 4).push(
            "job",
            Json::obj()
                .push("kind", "transient")
                .push("deck", RC_DECK)
                .push("tstep", 1e-5)
                .push("tstop", 1e-3)
                .push("nodes", nodes(&["out"])),
        ),
        Json::obj()
            .push("id", 5)
            .push("job", Json::obj().push("kind", "fig7")),
    ];
    for request in &requests {
        let response = client.call(request).unwrap();
        assert_eq!(
            response.get("status").and_then(Json::as_str),
            Some("ok"),
            "request {} -> {}",
            request.render(),
            response.render()
        );
        assert_eq!(response.get("id"), request.get("id"), "id echoed");
        assert!(response.get("result").is_some());
    }
    let stats = server.shutdown();
    assert_eq!(stats.accepted, requests.len() as u64);
    assert_eq!(stats.completed, requests.len() as u64);
    assert_eq!(stats.protocol_errors, 0);
}

#[test]
fn ac_response_shows_the_rc_corner() {
    let server = start(1, 4);
    let mut client = Client::connect(server.local_addr()).unwrap();
    // f_c = 1/(2π·RC) ≈ 159 Hz for 1k · 1µ: magnitude at 1 Hz ≈ 1,
    // at 100 kHz ≈ 0.
    let response = client
        .call(
            &Json::obj().push("id", "ac").push(
                "job",
                Json::obj()
                    .push("kind", "ac_sweep")
                    .push("deck", RC_DECK)
                    .push("source", "V1")
                    .push("fstart", 1.0)
                    .push("fstop", 1e5)
                    .push("points_per_decade", 4)
                    .push("nodes", nodes(&["out"])),
            ),
        )
        .unwrap();
    assert_eq!(response.get("status").and_then(Json::as_str), Some("ok"));
    let mags = response
        .get("result")
        .and_then(|r| r.get("nodes"))
        .and_then(|n| n.get("out"))
        .and_then(|o| o.get("magnitude"))
        .and_then(Json::as_array)
        .unwrap();
    let first = mags.first().and_then(Json::as_f64).unwrap();
    let last = mags.last().and_then(Json::as_f64).unwrap();
    assert!(first > 0.99, "passband magnitude {first}");
    assert!(last < 0.01, "stopband magnitude {last}");
}

#[test]
fn invalid_requests_get_structured_errors_and_the_connection_survives() {
    let server = start(1, 4);
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Not JSON at all.
    let resp = client.call_raw(b"hello, world").unwrap();
    let parsed = Json::parse(std::str::from_utf8(&resp).unwrap()).unwrap();
    assert_eq!(parsed.get("status").and_then(Json::as_str), Some("error"));
    assert_eq!(parsed.get("stage").and_then(Json::as_str), Some("parse"));

    // Valid JSON, missing id.
    let resp = client
        .call(&Json::obj().push("job", Json::obj().push("kind", "fig7")))
        .unwrap();
    assert_eq!(resp.get("stage").and_then(Json::as_str), Some("validate"));

    // Unknown kind: the message lists the valid choices.
    let resp = client
        .call(
            &Json::obj()
                .push("id", 9)
                .push("job", Json::obj().push("kind", "warp_drive")),
        )
        .unwrap();
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("error"));
    let message = resp.get("message").and_then(Json::as_str).unwrap();
    assert!(message.contains("warp_drive"), "{message}");
    assert!(message.contains("dc_sweep"), "{message}");

    // Bad field value, field named.
    let resp = client
        .call(
            &Json::obj().push("id", 10).push(
                "job",
                Json::obj()
                    .push("kind", "transient")
                    .push("deck", RC_DECK)
                    .push("tstep", 2.0)
                    .push("tstop", 1.0)
                    .push("nodes", nodes(&["out"])),
            ),
        )
        .unwrap();
    let message = resp.get("message").and_then(Json::as_str).unwrap();
    assert!(message.contains("job.tstep"), "{message}");

    // The connection still works after every rejection.
    let resp = client
        .call(
            &Json::obj()
                .push("id", 11)
                .push("job", Json::obj().push("kind", "fig7")),
        )
        .unwrap();
    assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));

    let stats = server.shutdown();
    assert_eq!(stats.accepted, 1, "only the final good job was admitted");
    assert!(stats.protocol_errors >= 3);
}

#[test]
fn deadline_produces_a_timeout_response() {
    let server = start(1, 4);
    let mut client = Client::connect(server.local_addr()).unwrap();
    // ~10^6 transient steps would take seconds; the 5 ms deadline fires
    // at a per-step checkpoint long before that.
    let response = client
        .call(
            &Json::obj().push("id", "slow").push("timeout_ms", 5).push(
                "job",
                Json::obj()
                    .push("kind", "transient")
                    .push("deck", RC_DECK)
                    .push("tstep", 1e-9)
                    .push("tstop", 1e-3)
                    .push("nodes", nodes(&["out"])),
            ),
        )
        .unwrap();
    assert_eq!(
        response.get("status").and_then(Json::as_str),
        Some("timeout"),
        "{}",
        response.render()
    );
    let stats = server.shutdown();
    assert_eq!(stats.timed_out, 1);
}

#[test]
fn full_queue_answers_busy_without_blocking() {
    // One worker, depth 1: a slow job occupies the worker, one more
    // waits in the queue, and every further concurrent request must be
    // bounced with `busy`.
    let server = start(1, 1);
    let addr = server.local_addr();
    let slow_request = Json::obj()
        .push("id", "slow")
        .push(
            "job",
            Json::obj()
                .push("kind", "transient")
                .push("deck", RC_DECK)
                .push("tstep", 1e-8)
                .push("tstop", 2e-3)
                .push("nodes", nodes(&["out"])),
        )
        .render();
    let statuses: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let body = slow_request.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    let resp = client
                        .call(&Json::parse(&body).unwrap())
                        .expect("every request gets a response");
                    resp.get("status")
                        .and_then(Json::as_str)
                        .unwrap()
                        .to_owned()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let busy = statuses.iter().filter(|s| *s == "busy").count();
    let ok = statuses.iter().filter(|s| *s == "ok").count();
    assert!(
        busy >= 1,
        "expected at least one busy response: {statuses:?}"
    );
    assert!(ok >= 1, "expected at least one completion: {statuses:?}");
    assert_eq!(busy + ok, statuses.len(), "no other statuses: {statuses:?}");
    let stats = server.shutdown();
    assert_eq!(stats.rejected_busy, busy as u64);
    assert_eq!(stats.accepted, ok as u64);
}

#[test]
fn ping_echoes_id_and_reports_version_and_uptime() {
    let server = start(1, 4);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let response = client
        .call(
            &Json::obj()
                .push("id", "are-you-there")
                .push("job", Json::obj().push("kind", "ping")),
        )
        .unwrap();
    assert_eq!(response.get("status").and_then(Json::as_str), Some("ok"));
    assert_eq!(
        response.get("id").and_then(Json::as_str),
        Some("are-you-there")
    );
    let result = response.get("result").unwrap();
    assert_eq!(
        result.get("version").and_then(Json::as_str),
        Some(env!("CARGO_PKG_VERSION"))
    );
    assert!(result.get("uptime_ms").and_then(Json::as_u64).is_some());
    // Ping bypasses admission: nothing was accepted or completed.
    let stats = server.shutdown();
    assert_eq!(stats.accepted, 0);
    assert_eq!(stats.completed, 0);
}

#[test]
fn stats_reports_counters_gauges_and_per_kind_histograms() {
    let server = start(2, 8);
    let mut client = Client::connect(server.local_addr()).unwrap();
    let op_jobs = 3;
    for i in 0..op_jobs {
        // Distinct decks, so each job is a cache miss that solves and
        // records to the per-kind latency histogram (hits record to
        // `serve.cache.hit_latency_ns` instead — covered in cache.rs).
        let deck = format!(
            "* op {i}\nV1 in 0 1\nR1 in out {}\nC1 out 0 1u\n.end\n",
            1000 + i
        );
        let response = client
            .call(
                &Json::obj().push("id", i).push(
                    "job",
                    Json::obj()
                        .push("kind", "op")
                        .push("deck", deck)
                        .push("nodes", nodes(&["out"])),
                ),
            )
            .unwrap();
        assert_eq!(response.get("status").and_then(Json::as_str), Some("ok"));
    }
    let response = client
        .call(
            &Json::obj()
                .push("id", "snap")
                .push("job", Json::obj().push("kind", "stats")),
        )
        .unwrap();
    assert_eq!(response.get("status").and_then(Json::as_str), Some("ok"));
    let result = response.get("result").unwrap();
    assert!(result.get("uptime_ms").and_then(Json::as_u64).is_some());

    let counters = result.get("counters").unwrap();
    let get = |section: &Json, name: &str| section.get(name).and_then(Json::as_u64);
    assert_eq!(get(counters, "serve.accepted"), Some(op_jobs));
    assert_eq!(get(counters, "serve.completed"), Some(op_jobs));
    assert_eq!(get(counters, "serve.rejected_busy"), Some(0));
    assert_eq!(get(counters, "serve.timed_out"), Some(0));
    assert_eq!(get(counters, "serve.stats"), Some(1));
    assert!(get(counters, "serve.worker_busy_ns").unwrap() > 0);
    assert_eq!(get(counters, "serve.cache.hit"), Some(0));
    assert_eq!(get(counters, "serve.cache.miss"), Some(op_jobs));

    let gauges = result.get("gauges").unwrap();
    assert_eq!(get(gauges, "serve.workers"), Some(2));
    assert_eq!(get(gauges, "serve.queue_capacity"), Some(8));
    assert_eq!(get(gauges, "serve.queue_depth"), Some(0));

    // Every queued kind is pre-registered, so the histogram section
    // lists all seven latency histograms even though only `op` ran.
    let histograms = result.get("histograms").unwrap();
    let op_latency = histograms.get("serve.latency_ns.op").unwrap();
    assert_eq!(get(op_latency, "count"), Some(op_jobs));
    assert!(get(op_latency, "p50").unwrap() <= get(op_latency, "p99").unwrap());
    for kind in ["dc_sweep", "ac_sweep", "transient", "fig2", "fig5", "fig7"] {
        let hist = histograms
            .get(&format!("serve.latency_ns.{kind}"))
            .unwrap_or_else(|| panic!("latency histogram for {kind} not pre-registered"));
        assert_eq!(get(hist, "count"), Some(0));
    }
    assert_eq!(
        histograms
            .get("serve.queue_wait_ns.op")
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64),
        Some(op_jobs)
    );
}

#[test]
fn fast_path_answers_while_the_queue_is_full() {
    // One worker, depth 1: two slow jobs fill the worker and the
    // queue. While they grind, a queued job kind must bounce with
    // `busy` — but `ping` and `stats` are answered on the connection
    // thread, before admission, so a saturated server stays
    // observable.
    let server = start(1, 1);
    let addr = server.local_addr();
    let slow_request = Json::obj()
        .push("id", "slow")
        .push(
            "job",
            Json::obj()
                .push("kind", "transient")
                .push("deck", RC_DECK)
                .push("tstep", 1e-8)
                .push("tstop", 2e-3)
                .push("nodes", nodes(&["out"])),
        )
        .render();
    std::thread::scope(|scope| {
        let spawn_slow = |body: String| {
            scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let resp = client.call(&Json::parse(&body).unwrap()).unwrap();
                resp.get("status")
                    .and_then(Json::as_str)
                    .unwrap()
                    .to_owned()
            })
        };

        let mut probe = Client::connect(addr).unwrap();
        let fetch_stats = |client: &mut Client| {
            let resp = client
                .call(
                    &Json::obj()
                        .push("id", "probe")
                        .push("job", Json::obj().push("kind", "stats")),
                )
                .unwrap();
            assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
            resp.get("result").cloned().unwrap()
        };
        // Polls the fast path until the server reaches the given
        // (accepted, completed, queue_depth) state.
        let mut wait_for = |accepted: u64, depth: u64, what: &str| {
            let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
            loop {
                let snap = fetch_stats(&mut probe);
                let counter = |name: &str| {
                    snap.get("counters")
                        .unwrap()
                        .get(name)
                        .and_then(Json::as_u64)
                        .unwrap()
                };
                let gauge_depth = snap
                    .get("gauges")
                    .unwrap()
                    .get("serve.queue_depth")
                    .and_then(Json::as_u64)
                    .unwrap();
                if counter("serve.accepted") == accepted
                    && counter("serve.completed") == 0
                    && gauge_depth == depth
                {
                    break;
                }
                assert!(std::time::Instant::now() < deadline, "timed out: {what}");
                std::thread::yield_now();
            }
        };

        // Admit the slow jobs one at a time so neither is bounced:
        // the first must be on the worker (queue empty again) before
        // the second is sent to fill the queue.
        let first = spawn_slow(slow_request.clone());
        wait_for(1, 0, "first slow job picked up by the worker");
        let second = spawn_slow(slow_request.clone());
        wait_for(2, 1, "second slow job waiting in the queue");
        let slow_handles = [first, second];

        // A queued kind is bounced...
        let busy = probe
            .call(
                &Json::obj().push("id", "bounced").push(
                    "job",
                    Json::obj()
                        .push("kind", "op")
                        .push("deck", RC_DECK)
                        .push("nodes", nodes(&["out"])),
                ),
            )
            .unwrap();
        assert_eq!(busy.get("status").and_then(Json::as_str), Some("busy"));

        // ...but the fast path still answers.
        let pong = probe
            .call(
                &Json::obj()
                    .push("id", "still-there")
                    .push("job", Json::obj().push("kind", "ping")),
            )
            .unwrap();
        assert_eq!(pong.get("status").and_then(Json::as_str), Some("ok"));
        let snap = fetch_stats(&mut probe);
        assert_eq!(
            snap.get("counters")
                .unwrap()
                .get("serve.rejected_busy")
                .and_then(Json::as_u64),
            Some(1)
        );
        assert_eq!(
            snap.get("gauges")
                .unwrap()
                .get("serve.queue_depth")
                .and_then(Json::as_u64),
            Some(1),
            "the queued slow job is still waiting"
        );

        for h in slow_handles {
            assert_eq!(h.join().unwrap(), "ok");
        }
    });
    let stats = server.shutdown();
    assert_eq!(stats.accepted, 2);
    assert_eq!(stats.completed, 2);
    assert_eq!(stats.rejected_busy, 1);
}

#[test]
fn graceful_drain_answers_every_admitted_job() {
    let server = start(2, 32);
    let addr = server.local_addr();
    let responses: Vec<Json> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|conn| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    (0..5)
                        .map(|i| {
                            client
                                .call(
                                    &Json::obj().push("id", conn * 100 + i).push(
                                        "job",
                                        Json::obj()
                                            .push("kind", "op")
                                            .push("deck", RC_DECK)
                                            .push("nodes", nodes(&["out"])),
                                    ),
                                )
                                .unwrap()
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    });
    assert_eq!(responses.len(), 20);
    assert!(responses
        .iter()
        .all(|r| r.get("status").and_then(Json::as_str) == Some("ok")));
    let stats = server.shutdown();
    assert_eq!(stats.accepted, 20);
    assert_eq!(stats.completed, 20);
    assert_eq!(stats.connections, 4);
    assert_eq!(stats.protocol_errors, 0);
}

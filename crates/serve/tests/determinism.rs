//! Determinism at the service boundary (the PR's acceptance bar): the
//! same job set produces byte-identical response bodies per job id
//! regardless of `CARBON_THREADS`, server worker count, connection
//! count, or arrival order.
//!
//! Kept as its own integration-test binary with a single `#[test]` so
//! the `CARBON_THREADS` environment variable is never mutated
//! concurrently with another test.

use std::collections::BTreeMap;

use carbon_json::Json;
use carbon_serve::{Client, Server, ServerConfig};

const RC_DECK: &str = "* rc low-pass\nV1 in 0 1\nR1 in out 1k\nC1 out 0 1u\n.end\n";
const DIVIDER_DECK: &str =
    "* loaded divider\nV1 top 0 2\nR1 top mid 2k\nR2 mid 0 2k\nC1 mid 0 10n\n.end\n";

fn nodes(names: &[&str]) -> Json {
    Json::Arr(names.iter().map(|n| Json::Str((*n).to_owned())).collect())
}

/// The mixed job set, ids `0..n`. Every kind that can complete quickly
/// is represented, over two different decks.
fn job_set() -> Vec<String> {
    let jobs = vec![
        Json::obj()
            .push("kind", "op")
            .push("deck", RC_DECK)
            .push("nodes", nodes(&["in", "out"])),
        Json::obj()
            .push("kind", "op")
            .push("deck", DIVIDER_DECK)
            .push("nodes", nodes(&["mid"])),
        Json::obj()
            .push("kind", "dc_sweep")
            .push("deck", DIVIDER_DECK)
            .push("source", "V1")
            .push("from", 0.0)
            .push("to", 2.0)
            .push("step", 0.1)
            .push("nodes", nodes(&["mid", "top"])),
        Json::obj()
            .push("kind", "ac_sweep")
            .push("deck", RC_DECK)
            .push("source", "V1")
            .push("fstart", 1.0)
            .push("fstop", 1e6)
            .push("points_per_decade", 7)
            .push("nodes", nodes(&["out"])),
        Json::obj()
            .push("kind", "transient")
            .push("deck", RC_DECK)
            .push("tstep", 2e-5)
            .push("tstop", 4e-3)
            .push("nodes", nodes(&["out"])),
        // The adaptive method's accept/reject sequence is a pure
        // function of the deck, so its variable grid must render
        // byte-identically too.
        Json::obj()
            .push("kind", "transient")
            .push("deck", DIVIDER_DECK)
            .push("tstep", 2e-5)
            .push("tstop", 4e-3)
            .push("method", "adaptive")
            .push("options", Json::obj().push("lte_reltol", 1e-4))
            .push("nodes", nodes(&["mid"])),
        Json::obj().push("kind", "fig7"),
    ];
    jobs.into_iter()
        .enumerate()
        .map(|(id, job)| Json::obj().push("id", id).push("job", job).render())
        .collect()
}

/// Runs the whole job set against one server over `connections`
/// parallel connections (round-robin assignment) and returns the raw
/// response bytes keyed by job id.
///
/// Each connection also exercises the metrics fast path — a `ping`
/// before its jobs and a `stats` snapshot after — interleaved with the
/// queued work. Those responses carry uptime and latency aggregates
/// (the documented determinism exception), so they are checked for
/// `ok` but excluded from the byte comparison.
fn run_set(addr: std::net::SocketAddr, connections: usize) -> BTreeMap<u64, Vec<u8>> {
    let requests = job_set();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let mine: Vec<&String> = requests.iter().skip(c).step_by(connections).collect();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    fast_path_call(&mut client, "ping");
                    let responses: Vec<(u64, Vec<u8>)> = mine
                        .into_iter()
                        .map(|body| {
                            let raw = client.call_raw(body.as_bytes()).expect("response");
                            let id = carbon_json::u64_field(
                                std::str::from_utf8(&raw).expect("utf-8 response"),
                                "id",
                            )
                            .expect("response carries the job id");
                            (id, raw)
                        })
                        .collect();
                    fast_path_call(&mut client, "stats");
                    responses
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
}

/// Sends one fast-path request (`ping` or `stats`) and asserts it is
/// answered `ok` on the connection thread. The body is intentionally
/// not returned: fast-path responses are operational state, not
/// simulation output, and never enter the determinism comparison.
fn fast_path_call(client: &mut Client, kind: &str) {
    let response = client
        .call(
            &Json::obj()
                .push("id", format!("fast-{kind}"))
                .push("job", Json::obj().push("kind", kind)),
        )
        .expect("fast-path response");
    assert_eq!(
        response.get("status").and_then(Json::as_str),
        Some("ok"),
        "{kind} answered {}",
        response.render()
    );
}

#[test]
fn responses_are_byte_identical_across_threads_workers_and_connections() {
    let mut reference: Option<BTreeMap<u64, Vec<u8>>> = None;
    for threads in ["1", "2", "4", "8"] {
        std::env::set_var("CARBON_THREADS", threads);
        for (workers, connections) in [(1, 1), (4, 1), (1, 4), (4, 4)] {
            let server = Server::start(
                "127.0.0.1:0",
                ServerConfig {
                    workers,
                    queue_depth: 64,
                    default_timeout_ms: None,
                },
            )
            .expect("bind loopback");
            let got = run_set(server.local_addr(), connections);
            let stats = server.shutdown();
            assert_eq!(stats.protocol_errors, 0);
            // Metrics are always on, and the fast-path traffic rode
            // along — but only the queued jobs count as admissions.
            assert_eq!(
                stats.accepted,
                job_set().len() as u64,
                "accepted == job count with metrics on and fast-path traffic interleaved"
            );
            assert_eq!(stats.completed, job_set().len() as u64);
            assert_eq!(
                got.len(),
                job_set().len(),
                "every job answered exactly once"
            );
            for (id, body) in &got {
                let text = std::str::from_utf8(body).unwrap();
                assert!(
                    text.contains("\"status\":\"ok\""),
                    "job {id} not ok under CARBON_THREADS={threads} \
                     workers={workers} connections={connections}: {text}"
                );
            }
            match &reference {
                None => reference = Some(got),
                Some(reference) => {
                    for (id, body) in &got {
                        assert_eq!(
                            body, &reference[id],
                            "job {id} response drifted under CARBON_THREADS={threads} \
                             workers={workers} connections={connections}"
                        );
                    }
                }
            }
        }
    }
    std::env::remove_var("CARBON_THREADS");
}

//! Determinism at the service boundary (the PR 5 acceptance bar,
//! re-proven every PR since): the same job set produces byte-identical
//! response bodies per job id regardless of `CARBON_THREADS`, server
//! worker count, connection count, arrival order — and, since the
//! response cache landed, regardless of whether a response was solved
//! fresh, served from the cache, or coalesced onto an identical
//! in-flight solve.
//!
//! For every `CARBON_THREADS` in 1/2/4/8, workers in 1/4, and the
//! cache enabled (default budget) and disabled (`cache_bytes: 0`):
//!
//! - a **cold** pass over a fresh server (every key misses),
//! - a **warm** pass over the *same* server (with the cache on, every
//!   key hits),
//! - a **mixed interleaved** pass over another fresh server, where
//!   every job is submitted twice with adjacent ids — cold and warm
//!   requests racing through the queue together, exercising
//!   single-flight coalescing under multiple connections,
//!
//! must all produce responses byte-identical (modulo the echoed id) to
//! one shared reference across the whole matrix.
//!
//! Kept as its own integration-test binary with a single `#[test]` so
//! the `CARBON_THREADS` environment variable is never mutated
//! concurrently with another test.

use std::collections::BTreeMap;

use carbon_json::Json;
use carbon_serve::{Client, Server, ServerConfig, DEFAULT_CACHE_BYTES};

const RC_DECK: &str = "* rc low-pass\nV1 in 0 1\nR1 in out 1k\nC1 out 0 1u\n.end\n";
const DIVIDER_DECK: &str =
    "* loaded divider\nV1 top 0 2\nR1 top mid 2k\nR2 mid 0 2k\nC1 mid 0 10n\n.end\n";

fn nodes(names: &[&str]) -> Json {
    Json::Arr(names.iter().map(|n| Json::Str((*n).to_owned())).collect())
}

/// The mixed job bodies (no ids). Every kind that can complete quickly
/// is represented, over two different decks.
fn jobs() -> Vec<Json> {
    vec![
        Json::obj()
            .push("kind", "op")
            .push("deck", RC_DECK)
            .push("nodes", nodes(&["in", "out"])),
        Json::obj()
            .push("kind", "op")
            .push("deck", DIVIDER_DECK)
            .push("nodes", nodes(&["mid"])),
        Json::obj()
            .push("kind", "dc_sweep")
            .push("deck", DIVIDER_DECK)
            .push("source", "V1")
            .push("from", 0.0)
            .push("to", 2.0)
            .push("step", 0.1)
            .push("nodes", nodes(&["mid", "top"])),
        Json::obj()
            .push("kind", "ac_sweep")
            .push("deck", RC_DECK)
            .push("source", "V1")
            .push("fstart", 1.0)
            .push("fstop", 1e6)
            .push("points_per_decade", 7)
            .push("nodes", nodes(&["out"])),
        Json::obj()
            .push("kind", "transient")
            .push("deck", RC_DECK)
            .push("tstep", 2e-5)
            .push("tstop", 4e-3)
            .push("nodes", nodes(&["out"])),
        // The adaptive method's accept/reject sequence is a pure
        // function of the deck, so its variable grid must render
        // byte-identically too.
        Json::obj()
            .push("kind", "transient")
            .push("deck", DIVIDER_DECK)
            .push("tstep", 2e-5)
            .push("tstop", 4e-3)
            .push("method", "adaptive")
            .push("options", Json::obj().push("lte_reltol", 1e-4))
            .push("nodes", nodes(&["mid"])),
        Json::obj().push("kind", "fig7"),
    ]
}

/// One pass over the job set: ids `0..n`, one request per job.
fn single_set() -> Vec<String> {
    jobs()
        .into_iter()
        .enumerate()
        .map(|(id, job)| Json::obj().push("id", id).push("job", job).render())
        .collect()
}

/// The mixed cold/warm set: every job twice with adjacent ids
/// (`2k` and `2k + 1`), so duplicates race through the queue together
/// and exercise single-flight coalescing. Response for id `i`
/// describes job `i / 2`.
fn interleaved_set() -> Vec<String> {
    jobs()
        .into_iter()
        .enumerate()
        .flat_map(|(k, job)| {
            [
                Json::obj()
                    .push("id", 2 * k)
                    .push("job", job.clone())
                    .render(),
                Json::obj().push("id", 2 * k + 1).push("job", job).render(),
            ]
        })
        .collect()
}

/// The response bytes from the first comma on — everything except the
/// echoed `{"id":<id>` prefix, which is the only part of an `ok`
/// response allowed to differ between requests for the same job.
fn suffix(body: &[u8]) -> &[u8] {
    let comma = body
        .iter()
        .position(|&b| b == b',')
        .expect("response has fields beyond id");
    &body[comma..]
}

/// Runs `requests` against one server over `connections` parallel
/// connections (round-robin assignment) and returns the raw response
/// bytes keyed by job id.
///
/// Each connection also exercises the metrics fast path — a `ping`
/// before its jobs and a `stats` snapshot after — interleaved with the
/// queued work. Those responses carry uptime and latency aggregates
/// (the documented determinism exception), so they are checked for
/// `ok` but excluded from the byte comparison.
fn run_set(
    addr: std::net::SocketAddr,
    requests: &[String],
    connections: usize,
) -> BTreeMap<u64, Vec<u8>> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..connections)
            .map(|c| {
                let mine: Vec<&String> = requests.iter().skip(c).step_by(connections).collect();
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    fast_path_call(&mut client, "ping");
                    let responses: Vec<(u64, Vec<u8>)> = mine
                        .into_iter()
                        .map(|body| {
                            let raw = client.call_raw(body.as_bytes()).expect("response");
                            let id = carbon_json::u64_field(
                                std::str::from_utf8(&raw).expect("utf-8 response"),
                                "id",
                            )
                            .expect("response carries the job id");
                            (id, raw)
                        })
                        .collect();
                    fast_path_call(&mut client, "stats");
                    responses
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect()
    })
}

/// Sends one fast-path request (`ping` or `stats`) and asserts it is
/// answered `ok` on the connection thread. The body is intentionally
/// not returned: fast-path responses are operational state, not
/// simulation output, and never enter the determinism comparison.
fn fast_path_call(client: &mut Client, kind: &str) {
    let response = client
        .call(
            &Json::obj()
                .push("id", format!("fast-{kind}"))
                .push("job", Json::obj().push("kind", kind)),
        )
        .expect("fast-path response");
    assert_eq!(
        response.get("status").and_then(Json::as_str),
        Some("ok"),
        "{kind} answered {}",
        response.render()
    );
}

/// Asserts one pass's responses are all `ok` and byte-identical
/// (modulo the echoed id) to the reference suffixes, `job_of` mapping
/// a response id to its job index.
fn check_against_reference(
    got: &BTreeMap<u64, Vec<u8>>,
    reference: &mut Option<BTreeMap<u64, Vec<u8>>>,
    job_of: impl Fn(u64) -> u64,
    context: &str,
) {
    for (id, body) in got {
        let text = std::str::from_utf8(body).unwrap();
        assert!(
            text.contains("\"status\":\"ok\""),
            "job {id} not ok under {context}: {text}"
        );
    }
    match reference {
        None => {
            *reference = Some(
                got.iter()
                    .map(|(id, body)| (job_of(*id), suffix(body).to_vec()))
                    .collect(),
            );
        }
        Some(reference) => {
            for (id, body) in got {
                assert_eq!(
                    suffix(body),
                    &reference[&job_of(*id)],
                    "job {id} response drifted under {context}"
                );
            }
        }
    }
}

#[test]
fn responses_are_byte_identical_cold_warm_and_interleaved() {
    let n = jobs().len() as u64;
    let mut reference: Option<BTreeMap<u64, Vec<u8>>> = None;
    for threads in ["1", "2", "4", "8"] {
        std::env::set_var("CARBON_THREADS", threads);
        for workers in [1usize, 4] {
            let connections = workers.clamp(1, 4);
            for cache_bytes in [DEFAULT_CACHE_BYTES, 0] {
                let config = ServerConfig {
                    workers,
                    queue_depth: 64,
                    default_timeout_ms: None,
                    cache_bytes,
                };
                let context =
                    format!("CARBON_THREADS={threads} workers={workers} cache_bytes={cache_bytes}");

                // Cold then warm over one server.
                let server = Server::start("127.0.0.1:0", config.clone()).expect("bind loopback");
                let cold = run_set(server.local_addr(), &single_set(), connections);
                assert_eq!(
                    cold.len(),
                    n as usize,
                    "every job answered once ({context})"
                );
                check_against_reference(&cold, &mut reference, |id| id, &format!("{context} cold"));
                let warm = run_set(server.local_addr(), &single_set(), connections);
                check_against_reference(&warm, &mut reference, |id| id, &format!("{context} warm"));
                let stats = server.shutdown();
                assert_eq!(stats.protocol_errors, 0);
                assert_eq!(stats.accepted, 2 * n, "{context}");
                assert_eq!(stats.completed, 2 * n, "{context}");
                assert_eq!(
                    stats.cache_hits + stats.cache_misses,
                    stats.accepted,
                    "every admitted job classified exactly once ({context})"
                );
                if cache_bytes > 0 {
                    // All jobs are distinct, so the cold pass misses n
                    // times and the warm pass hits n times — exactly.
                    assert_eq!(stats.cache_hits, n, "warm pass all-hit ({context})");
                    assert_eq!(stats.cache_misses, n, "cold pass all-miss ({context})");
                } else {
                    assert_eq!(stats.cache_hits, 0, "disabled cache never hits ({context})");
                }

                // Mixed cold/warm interleaved over a fresh server:
                // each job twice with adjacent ids, racing together.
                let server = Server::start("127.0.0.1:0", config).expect("bind loopback");
                let mixed = run_set(server.local_addr(), &interleaved_set(), connections);
                assert_eq!(mixed.len(), 2 * n as usize, "{context}");
                check_against_reference(
                    &mixed,
                    &mut reference,
                    |id| id / 2,
                    &format!("{context} interleaved"),
                );
                let stats = server.shutdown();
                assert_eq!(stats.protocol_errors, 0);
                assert_eq!(stats.accepted, 2 * n, "{context}");
                assert_eq!(stats.completed, 2 * n, "{context}");
                assert_eq!(
                    stats.cache_hits + stats.cache_misses,
                    stats.accepted,
                    "{context}"
                );
                if cache_bytes > 0 {
                    // Whichever twin resolves first leads the solve;
                    // the other is served from the cache or coalesces
                    // onto the flight — either way it counts as a hit,
                    // so the split is exact even under races.
                    assert_eq!(
                        stats.cache_hits, n,
                        "one hit per duplicated job ({context})"
                    );
                    assert_eq!(
                        stats.cache_misses, n,
                        "one solve per distinct job ({context})"
                    );
                } else {
                    assert_eq!(stats.cache_hits, 0, "{context}");
                    assert_eq!(stats.cache_misses, 2 * n, "{context}");
                }
            }
        }
    }
    std::env::remove_var("CARBON_THREADS");
}

//! Cache-layer behaviour through the real server: single-flight
//! coalescing (N identical submissions cost one solve), eviction under
//! a small byte budget with byte-identical re-solves, `stats`
//! flattening of the cache instruments, and `cache_bytes` validation.
//!
//! The coalescing proof reads the process-global
//! `spice.newton.solves.dc` counter, so every other test in this
//! binary sticks to `transient` jobs (whose solves — including the
//! t=0 operating point — record to `spice.newton.solves.tran`) or to
//! no jobs at all; test binaries themselves run sequentially under
//! `cargo test`.

use carbon_json::Json;
use carbon_serve::{Client, Server, ServerConfig};

const RC_DECK: &str = "* rc low-pass\nV1 in 0 1\nR1 in out 1k\nC1 out 0 1u\n.end\n";

fn start(config: ServerConfig) -> Server {
    Server::start("127.0.0.1:0", config).expect("bind loopback")
}

fn op_request(id: &str) -> String {
    Json::obj()
        .push("id", id)
        .push(
            "job",
            Json::obj()
                .push("kind", "op")
                .push("deck", RC_DECK)
                .push("nodes", Json::Arr(vec![Json::Str("out".into())])),
        )
        .render()
}

/// A short transient over a parameter-varied deck: distinct `i` means
/// a distinct deck text, hence a distinct canonical key.
fn transient_request(id: usize, deck_index: usize) -> String {
    let deck = format!(
        "* vary {deck_index}\nV1 in 0 1\nR1 in out {}\nC1 out 0 1u\n.end\n",
        1000 + deck_index
    );
    Json::obj()
        .push("id", id)
        .push(
            "job",
            Json::obj()
                .push("kind", "transient")
                .push("deck", deck)
                .push("tstep", 1e-5)
                .push("tstop", 1e-4)
                .push("nodes", Json::Arr(vec![Json::Str("out".into())])),
        )
        .render()
}

fn dc_solves() -> u64 {
    carbon_metrics::global()
        .counter("spice.newton.solves.dc")
        .total()
}

#[test]
fn identical_submissions_coalesce_to_one_dc_solve() {
    // Baseline: what one op job costs in DC Newton solves.
    let server = start(ServerConfig {
        workers: 2,
        queue_depth: 64,
        ..ServerConfig::default()
    });
    let before = dc_solves();
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let solo = client
        .call_raw(op_request("solo").as_bytes())
        .expect("solo response");
    assert!(std::str::from_utf8(&solo)
        .unwrap()
        .contains("\"status\":\"ok\""));
    let one_job = dc_solves() - before;
    assert!(one_job > 0, "an op job performs at least one DC solve");
    server.shutdown();

    // N threads submit the byte-identical request (same id, same job)
    // against a fresh server: single-flight + the cache mean exactly
    // one solve happens, and every thread gets identical bytes.
    let n = 8;
    let server = start(ServerConfig {
        workers: 4,
        queue_depth: 64,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let before = dc_solves();
    let responses: Vec<Vec<u8>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..n)
            .map(|_| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect");
                    client
                        .call_raw(op_request("shared").as_bytes())
                        .expect("response")
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    let herd = dc_solves() - before;
    assert_eq!(
        herd, one_job,
        "a thundering herd of {n} identical jobs costs exactly one solve"
    );
    for body in &responses {
        assert_eq!(
            body, &responses[0],
            "all coalesced responses are byte-identical"
        );
    }
    assert!(std::str::from_utf8(&responses[0])
        .unwrap()
        .contains("\"status\":\"ok\""));
    let stats = server.shutdown();
    assert_eq!(stats.accepted, n as u64);
    assert_eq!(stats.completed, n as u64);
    assert_eq!(stats.cache_misses, 1, "one leader solved");
    assert_eq!(stats.cache_hits, n as u64 - 1, "everyone else was served");
    assert_eq!(stats.cache_insertions, 1);
}

#[test]
fn small_budget_evicts_deterministically_and_resolves_byte_identically() {
    // 60 distinct keys across 16 shards: by pigeonhole some shard sees
    // at least four, and the budget holds fewer than that per shard —
    // evictions are guaranteed, whatever the key distribution.
    let distinct = 60;
    let server = start(ServerConfig {
        workers: 2,
        queue_depth: 64,
        cache_bytes: 16 * 1024,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let first: Vec<Vec<u8>> = (0..distinct)
        .map(|i| {
            client
                .call_raw(transient_request(i, i).as_bytes())
                .expect("response")
        })
        .collect();
    for (i, body) in first.iter().enumerate() {
        assert!(
            std::str::from_utf8(body)
                .unwrap()
                .contains("\"status\":\"ok\""),
            "job {i} failed"
        );
    }
    let mid = server.stats();
    assert_eq!(mid.cache_misses, distinct as u64, "every key was cold");
    assert!(
        mid.cache_insertions > 0,
        "short transient responses fit the shard budget"
    );
    assert!(
        mid.cache_evicted_bytes > 0,
        "the byte budget forced evictions (insertions {}, evicted {})",
        mid.cache_insertions,
        mid.cache_evicted_bytes
    );

    // Second sweep with the same ids: evicted keys re-solve, resident
    // keys hit — and every response is byte-identical to round one
    // either way. That is the whole point of the byte-identity
    // contract: eviction can cost time, never correctness.
    let second: Vec<Vec<u8>> = (0..distinct)
        .map(|i| {
            client
                .call_raw(transient_request(i, i).as_bytes())
                .expect("response")
        })
        .collect();
    assert_eq!(first, second, "responses drifted across eviction pressure");
    let stats = server.shutdown();
    assert_eq!(stats.accepted, 2 * distinct as u64);
    assert_eq!(
        stats.cache_hits + stats.cache_misses,
        stats.accepted,
        "classification invariant"
    );
    assert!(
        stats.cache_hits > mid.cache_hits || stats.cache_misses > mid.cache_misses,
        "second sweep made progress"
    );
}

#[test]
fn stats_flattens_the_cache_instruments() {
    let server = start(ServerConfig {
        workers: 2,
        queue_depth: 64,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr()).expect("connect");
    // Two identical transients: one miss (inserted), one hit.
    for id in ["a", "b"] {
        let body = Json::obj()
            .push("id", id)
            .push(
                "job",
                Json::obj()
                    .push("kind", "transient")
                    .push("deck", RC_DECK)
                    .push("tstep", 1e-5)
                    .push("tstop", 1e-4)
                    .push("nodes", Json::Arr(vec![Json::Str("out".into())])),
            )
            .render();
        let raw = client.call_raw(body.as_bytes()).expect("response");
        assert!(std::str::from_utf8(&raw)
            .unwrap()
            .contains("\"status\":\"ok\""));
    }
    let response = client
        .call(
            &Json::obj()
                .push("id", "stats")
                .push("job", Json::obj().push("kind", "stats")),
        )
        .expect("stats response");
    let result = response.get("result").expect("stats result");
    let counter = |name: &str| {
        result
            .get("counters")
            .and_then(|c| c.get(name))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("stats counters missing {name}"))
    };
    assert_eq!(counter("serve.cache.hit"), 1);
    assert_eq!(counter("serve.cache.miss"), 1);
    assert_eq!(counter("serve.cache.insert"), 1);
    assert_eq!(counter("serve.cache.evict_bytes"), 0);
    assert_eq!(counter("serve.cache.coalesced"), 0);
    let bytes = result
        .get("gauges")
        .and_then(|g| g.get("serve.cache.bytes"))
        .and_then(Json::as_u64)
        .expect("stats gauges missing serve.cache.bytes");
    assert!(bytes > 0, "one resident entry has nonzero footprint");
    // The hit landed in the dedicated histogram, not a per-kind solve
    // histogram (satellite: hits must not skew solve baselines).
    let hist_count = |name: &str| {
        result
            .get("histograms")
            .and_then(|h| h.get(name))
            .and_then(|h| h.get("count"))
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("stats histograms missing {name}"))
    };
    assert_eq!(hist_count("serve.cache.hit_latency_ns"), 1);
    assert_eq!(hist_count("serve.latency_ns.transient"), 1);
    server.shutdown();
}

#[test]
fn cache_bytes_validation_names_the_field() {
    let err = match Server::start(
        "127.0.0.1:0",
        ServerConfig {
            cache_bytes: 1024,
            ..ServerConfig::default()
        },
    ) {
        Err(err) => err,
        Ok(_) => panic!("a 1 KiB budget must be rejected"),
    };
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(
        err.to_string().contains("config.cache_bytes"),
        "validation names the field: {err}"
    );
    // Zero is the documented off switch, not an error.
    let server = Server::start(
        "127.0.0.1:0",
        ServerConfig {
            cache_bytes: 0,
            ..ServerConfig::default()
        },
    )
    .expect("cache_bytes: 0 disables cleanly");
    server.shutdown();
}

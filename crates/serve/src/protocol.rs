//! Length-prefixed JSON framing.
//!
//! Every message — request or response — is one frame: a 4-byte
//! big-endian unsigned length followed by exactly that many bytes of
//! UTF-8 JSON. The prefix makes the protocol self-delimiting over a
//! stream socket without scanning for terminators, so request bodies may
//! contain arbitrary netlist text (including newlines).
//!
//! Frames larger than [`MAX_FRAME_LEN`] are rejected before any body
//! bytes are read: a malicious or corrupt length prefix must not make
//! the server allocate gigabytes.

use std::io::{self, Read, Write};

/// Largest accepted frame body, bytes. Generous for any fig deck or
/// sweep result (the largest bench response is well under 1 MiB) while
/// still bounding per-connection memory.
pub const MAX_FRAME_LEN: usize = 16 * 1024 * 1024;

/// Errors surfaced by the frame reader.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying stream failed mid-frame, or EOF arrived after a
    /// partial header/body (a clean EOF *between* frames is not an
    /// error — `read_frame` reports it as `Ok(None)`).
    Io(io::Error),
    /// The length prefix exceeded [`MAX_FRAME_LEN`].
    TooLarge {
        /// Length the peer declared.
        declared: usize,
    },
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Io(e) => write!(f, "frame i/o error: {e}"),
            Self::TooLarge { declared } => {
                write!(f, "frame length {declared} exceeds maximum {MAX_FRAME_LEN}")
            }
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

/// Read one frame body. Returns `Ok(None)` on clean EOF at a frame
/// boundary (the peer closed after the last complete message); EOF in
/// the middle of a header or body is an [`FrameError::Io`] with kind
/// `UnexpectedEof`.
pub fn read_frame<R: Read>(r: &mut R) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    // Hand-rolled read_exact for the first byte so a boundary EOF is
    // distinguishable from a truncated header.
    let mut filled = 0;
    while filled < header.len() {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(
                    io::Error::new(io::ErrorKind::UnexpectedEof, "eof inside frame header").into(),
                )
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let declared = u32::from_be_bytes(header) as usize;
    if declared > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge { declared });
    }
    let mut body = vec![0u8; declared];
    r.read_exact(&mut body)?;
    Ok(Some(body))
}

/// Write one frame (header + body) and flush.
pub fn write_frame<W: Write>(w: &mut W, body: &[u8]) -> io::Result<()> {
    debug_assert!(body.len() <= MAX_FRAME_LEN, "oversized outgoing frame");
    let header = (body.len() as u32).to_be_bytes();
    w.write_all(&header)?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_frames() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"{\"id\":1}").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, "snowman \u{2603}".as_bytes()).unwrap();
        let mut r = buf.as_slice();
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"{\"id\":1}");
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"");
        assert_eq!(
            read_frame(&mut r).unwrap().unwrap(),
            "snowman \u{2603}".as_bytes()
        );
        assert!(read_frame(&mut r).unwrap().is_none(), "clean eof");
    }

    #[test]
    fn clean_eof_between_frames_is_none() {
        let mut r: &[u8] = &[];
        assert!(read_frame(&mut r).unwrap().is_none());
    }

    #[test]
    fn truncated_header_is_unexpected_eof() {
        let mut r: &[u8] = &[0, 0, 1];
        match read_frame(&mut r) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected io error, got {other:?}"),
        }
    }

    #[test]
    fn truncated_body_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"abcdef").unwrap();
        buf.truncate(buf.len() - 2);
        let mut r = buf.as_slice();
        match read_frame(&mut r) {
            Err(FrameError::Io(e)) => assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof),
            other => panic!("expected io error, got {other:?}"),
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut r: &[u8] = &[0xff, 0xff, 0xff, 0xff];
        match read_frame(&mut r) {
            Err(FrameError::TooLarge { declared }) => assert_eq!(declared, 0xffff_ffff),
            other => panic!("expected TooLarge, got {other:?}"),
        }
    }
}

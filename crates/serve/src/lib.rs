//! carbon-serve: the simulator exposed as a TCP job service.
//!
//! Zero registry dependencies — the wire format is length-prefixed JSON
//! (4-byte big-endian frame length, then a UTF-8 JSON body) built on the
//! shared [`carbon_json`] module, and all concurrency is std threads plus
//! the deterministic carbon-runtime executor.
//!
//! The crate is organised as:
//!
//! - [`protocol`] — frame reader/writer and the request/response envelope;
//! - [`job`] — the job model (`op`, `dc_sweep`, `ac_sweep`, `transient`,
//!   `fig2`, `fig5`, `fig7`, plus the fast-path `ping` and `stats`) with
//!   up-front validation and deterministic result rendering;
//! - [`queue`] — bounded MPMC job queue with admission control;
//! - [`cache`] — content-addressed response cache (sharded LRU over
//!   canonical job keys) with single-flight deduplication of identical
//!   in-flight solves;
//! - [`server`] — acceptor + worker pool with graceful drain shutdown,
//!   plus the admission-free fast path answering `ping`/`stats` on the
//!   connection thread;
//! - [`client`] — a minimal blocking client used by tests and the
//!   `carbon-bench serve-load` load generator.
//!
//! Every server also owns an always-on `carbon-metrics` registry
//! (per-kind latency and queue-wait histograms, admission counters,
//! queue gauges) exposed through the `stats` job kind.
//!
//! # Determinism at the service boundary
//!
//! For a given request body, the response body is byte-identical
//! regardless of worker count, connection count, or arrival order: jobs
//! run on the deterministic executor, responses carry no timestamps, and
//! floats are rendered with Rust's shortest-round-trip formatter. The
//! fast-path kinds (`ping`, `stats`) are the deliberate exception: they
//! report uptime and latency aggregates, which is operational state,
//! not simulation output. Metrics recording itself never feeds back
//! into any queued job's response bytes.
//!
//! The response cache rides on this contract rather than weakening it:
//! because an `ok` response is a pure function of the canonical job
//! body, serving stored bytes (with the requester's own `id` spliced
//! in) is byte-identical to re-solving, and the cold/warm digest gate
//! in the determinism suite proves it stays that way.

pub mod cache;
pub mod client;
pub mod job;
mod metrics;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::Client;
pub use job::{Job, JobError};
pub use protocol::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
pub use server::{Server, ServerConfig, ServerStats, DEFAULT_CACHE_BYTES, MIN_CACHE_BYTES};

//! carbon-serve: the simulator exposed as a TCP job service.
//!
//! Zero registry dependencies — the wire format is length-prefixed JSON
//! (4-byte big-endian frame length, then a UTF-8 JSON body) built on the
//! shared [`carbon_json`] module, and all concurrency is std threads plus
//! the deterministic carbon-runtime executor.
//!
//! The crate is organised as:
//!
//! - [`protocol`] — frame reader/writer and the request/response envelope;
//! - [`job`] — the job model (`op`, `dc_sweep`, `ac_sweep`, `transient`,
//!   `fig2`, `fig5`, `fig7`) with up-front validation and deterministic
//!   result rendering;
//! - [`queue`] — bounded MPMC job queue with admission control;
//! - [`server`] — acceptor + worker pool with graceful drain shutdown;
//! - [`client`] — a minimal blocking client used by tests and the
//!   `carbon-bench serve-load` load generator.
//!
//! # Determinism at the service boundary
//!
//! For a given request body, the response body is byte-identical
//! regardless of worker count, connection count, or arrival order: jobs
//! run on the deterministic executor, responses carry no timestamps, and
//! floats are rendered with Rust's shortest-round-trip formatter.

pub mod client;
pub mod job;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::Client;
pub use job::{Job, JobError};
pub use protocol::{read_frame, write_frame, FrameError, MAX_FRAME_LEN};
pub use server::{Server, ServerConfig, ServerStats};

//! Bounded MPMC job queue with admission control.
//!
//! A `Mutex<VecDeque>` plus one `Condvar` — deliberately boring. The
//! interesting property is the *backpressure contract*:
//!
//! * producers never block: [`Bounded::try_push`] either admits the
//!   item or returns it immediately, so a connection thread can answer
//!   `busy` without ever waiting on queue space;
//! * consumers block on [`Bounded::pop`] until an item arrives or the
//!   queue is closed **and drained** — closing stops admissions at once
//!   but lets workers finish everything already accepted, which is what
//!   graceful shutdown means.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// A bounded multi-producer multi-consumer FIFO.
pub struct Bounded<T> {
    state: Mutex<State<T>>,
    not_empty: Condvar,
    capacity: usize,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

impl<T> Bounded<T> {
    /// Creates a queue admitting at most `capacity` items (≥ 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            state: Mutex::new(State {
                items: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            not_empty: Condvar::new(),
            capacity,
        }
    }

    /// The admission limit.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current queue depth (racy by nature; informational).
    pub fn depth(&self) -> usize {
        self.state.lock().expect("queue lock poisoned").items.len()
    }

    /// Attempts to admit an item without blocking.
    ///
    /// # Errors
    ///
    /// Returns the item back when the queue is full or closed, so the
    /// caller can turn it into a `busy` response.
    pub fn try_push(&self, item: T) -> Result<usize, T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        if state.closed || state.items.len() >= self.capacity {
            return Err(item);
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Blocks until an item is available; `None` once the queue is
    /// closed **and** empty (the drain is complete).
    pub fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock poisoned");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Some(item);
            }
            if state.closed {
                return None;
            }
            state = self.not_empty.wait(state).expect("queue lock poisoned");
        }
    }

    /// Stops admissions. Items already accepted remain poppable;
    /// blocked consumers wake to drain them and then observe the close.
    pub fn close(&self) {
        self.state.lock().expect("queue lock poisoned").closed = true;
        self.not_empty.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn try_push_rejects_when_full_and_returns_the_item() {
        let q = Bounded::new(2);
        assert_eq!(q.try_push(1), Ok(1));
        assert_eq!(q.try_push(2), Ok(2));
        assert_eq!(q.try_push(3), Err(3), "full queue bounces the item");
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.try_push(4), Ok(2), "space freed by pop re-admits");
    }

    #[test]
    fn close_drains_before_ending() {
        let q = Bounded::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err("c"), "closed queue admits nothing");
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None, "drained and closed");
    }

    #[test]
    fn blocked_consumers_wake_on_close() {
        let q = Arc::new(Bounded::<u32>::new(1));
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let q = Arc::clone(&q);
                std::thread::spawn(move || q.pop())
            })
            .collect();
        q.try_push(7).unwrap();
        q.close();
        let got: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(got.iter().filter(|v| v.is_some()).count(), 1);
        assert_eq!(got.iter().filter(|v| v.is_none()).count(), 2);
    }

    #[test]
    fn fifo_order_is_preserved() {
        let q = Bounded::new(16);
        for i in 0..10 {
            q.try_push(i).unwrap();
        }
        let drained: Vec<_> = (0..10).map(|_| q.pop().unwrap()).collect();
        assert_eq!(drained, (0..10).collect::<Vec<_>>());
    }
}

//! The server's always-on metrics: a per-instance `carbon-metrics`
//! registry with every instrument pre-registered at startup.
//!
//! Pre-registration is what makes `stats` snapshots *structurally*
//! deterministic: the set of counter/gauge/histogram names a server
//! reports is fixed the moment it starts, never a function of which
//! job kinds happened to arrive first. Each server owns its registry
//! (tests run many servers in one process); the `stats` fast path
//! merges the process-global registry (runtime executor, solver
//! counters) in at read time.

use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;

use carbon_metrics::{Counter, Gauge, Histogram, Registry, Snapshot};

use crate::job::QUEUED_JOB_KINDS;
use crate::server::ServerStats;

/// Cached handles into one server's metrics registry. Recording is
/// lock-free (the handles are `Arc`s into sharded atomics); only
/// snapshots touch the registry lock.
pub(crate) struct ServeMetrics {
    registry: Registry,
    started: Instant,
    /// Connections accepted.
    pub connections: Arc<Counter>,
    /// Jobs admitted to the queue.
    pub accepted: Arc<Counter>,
    /// Requests bounced with a `busy` response.
    pub rejected_busy: Arc<Counter>,
    /// Jobs that hit their deadline.
    pub timed_out: Arc<Counter>,
    /// Jobs that ran to an `ok` response.
    pub completed: Arc<Counter>,
    /// Jobs that failed in validation or execution.
    pub errored: Arc<Counter>,
    /// Frames that were not valid request envelopes.
    pub protocol_errors: Arc<Counter>,
    /// `ping` fast-path requests answered.
    pub ping: Arc<Counter>,
    /// `stats` fast-path requests answered.
    pub stats: Arc<Counter>,
    /// Total nanoseconds workers spent executing jobs.
    pub worker_busy_ns: Arc<Counter>,
    /// Admitted jobs served from the response cache (directly or via a
    /// coalesced flight).
    pub cache_hit: Arc<Counter>,
    /// Admitted jobs that had to solve (cache absent, disabled, or the
    /// key was cold). `hit + miss == accepted` over a server's lifetime.
    pub cache_miss: Arc<Counter>,
    /// `ok` responses stored into the cache.
    pub cache_insert: Arc<Counter>,
    /// Bytes evicted from the cache to respect the byte budget.
    pub cache_evict_bytes: Arc<Counter>,
    /// Jobs that waited on another worker's in-flight identical solve
    /// instead of solving themselves.
    pub cache_coalesced: Arc<Counter>,
    /// Bytes currently resident in the response cache.
    pub cache_bytes: Arc<Gauge>,
    /// End-to-end latency of cache hits, ns. Deliberately separate from
    /// the per-kind `serve.latency_ns.*` histograms, which record only
    /// solved (miss) requests — hits would otherwise collapse solve
    /// latency baselines.
    pub cache_hit_latency: Arc<Histogram>,
    /// Jobs currently admitted but not yet completed.
    pub queue_depth: Arc<Gauge>,
    uptime_ms: Arc<Gauge>,
    /// Per-kind end-to-end latency (admission to response), ns.
    latency: BTreeMap<&'static str, Arc<Histogram>>,
    /// Per-kind time spent waiting in the queue, ns.
    queue_wait: BTreeMap<&'static str, Arc<Histogram>>,
}

impl ServeMetrics {
    /// Builds the registry and pre-registers every instrument the
    /// server will ever record, so snapshot structure is fixed from
    /// the first request.
    pub fn new(workers: usize, queue_capacity: usize) -> Self {
        let registry = Registry::new();
        let m = Self {
            connections: registry.counter("serve.connections"),
            accepted: registry.counter("serve.accepted"),
            rejected_busy: registry.counter("serve.rejected_busy"),
            timed_out: registry.counter("serve.timed_out"),
            completed: registry.counter("serve.completed"),
            errored: registry.counter("serve.errored"),
            protocol_errors: registry.counter("serve.protocol_errors"),
            ping: registry.counter("serve.ping"),
            stats: registry.counter("serve.stats"),
            worker_busy_ns: registry.counter("serve.worker_busy_ns"),
            cache_hit: registry.counter("serve.cache.hit"),
            cache_miss: registry.counter("serve.cache.miss"),
            cache_insert: registry.counter("serve.cache.insert"),
            cache_evict_bytes: registry.counter("serve.cache.evict_bytes"),
            cache_coalesced: registry.counter("serve.cache.coalesced"),
            cache_bytes: registry.gauge("serve.cache.bytes"),
            cache_hit_latency: registry.histogram("serve.cache.hit_latency_ns"),
            queue_depth: registry.gauge("serve.queue_depth"),
            uptime_ms: registry.gauge("serve.uptime_ms"),
            latency: QUEUED_JOB_KINDS
                .iter()
                .map(|&kind| {
                    (
                        kind,
                        registry.histogram(&format!("serve.latency_ns.{kind}")),
                    )
                })
                .collect(),
            queue_wait: QUEUED_JOB_KINDS
                .iter()
                .map(|&kind| {
                    (
                        kind,
                        registry.histogram(&format!("serve.queue_wait_ns.{kind}")),
                    )
                })
                .collect(),
            started: Instant::now(),
            registry,
        };
        m.registry
            .gauge("serve.workers")
            .set(i64::try_from(workers).unwrap_or(i64::MAX));
        m.registry
            .gauge("serve.queue_capacity")
            .set(i64::try_from(queue_capacity).unwrap_or(i64::MAX));
        m
    }

    /// End-to-end latency histogram for a queued job kind.
    pub fn latency(&self, kind: &str) -> Option<&Arc<Histogram>> {
        self.latency.get(kind)
    }

    /// Queue-wait histogram for a queued job kind.
    pub fn queue_wait(&self, kind: &str) -> Option<&Arc<Histogram>> {
        self.queue_wait.get(kind)
    }

    /// Milliseconds since the server started.
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// The server's registry snapshot merged with the process-global
    /// registry, with the live `queue_depth` and `uptime_ms` gauges
    /// refreshed first. Returns `(uptime_ms, snapshot)`.
    pub fn merged_snapshot(&self, live_queue_depth: usize) -> (u64, Snapshot) {
        let uptime = self.uptime_ms();
        self.uptime_ms
            .set(i64::try_from(uptime).unwrap_or(i64::MAX));
        self.queue_depth
            .set(i64::try_from(live_queue_depth).unwrap_or(i64::MAX));
        let mut snap = self.registry.snapshot();
        snap.merge(&carbon_metrics::global().snapshot());
        (uptime, snap)
    }

    /// The public lifetime-counter view (the pre-metrics `stats()`
    /// API, now read out of the registry).
    pub fn server_stats(&self) -> ServerStats {
        ServerStats {
            connections: self.connections.total(),
            accepted: self.accepted.total(),
            rejected_busy: self.rejected_busy.total(),
            timed_out: self.timed_out.total(),
            completed: self.completed.total(),
            errored: self.errored.total(),
            protocol_errors: self.protocol_errors.total(),
            cache_hits: self.cache_hit.total(),
            cache_misses: self.cache_miss.total(),
            cache_coalesced: self.cache_coalesced.total(),
            cache_insertions: self.cache_insert.total(),
            cache_evicted_bytes: self.cache_evict_bytes.total(),
        }
    }
}

//! Content-addressed response cache with single-flight deduplication.
//!
//! The determinism contract makes every queued response a pure function
//! of its canonical job body, so a repeated deck is a hash lookup, not
//! a Newton solve. This module provides the two mechanisms the worker
//! path composes:
//!
//! - **Sharded LRU over response bytes.** Sixteen lock-striped shards,
//!   each an LRU keyed by the canonical job key
//!   ([`carbon_json::Json::canonical_key`] of the request's `job`
//!   field). The cached value is the exact response byte frame *minus*
//!   the `{"id":<id>` prefix, so serving a hit is a memcpy plus an id
//!   splice — byte-identical to a fresh solve by construction. The
//!   byte budget is divided evenly across shards; inserting past a
//!   shard's budget evicts least-recently-touched entries first, in a
//!   deterministic order under single-thread replay.
//!
//! - **Single-flight.** The first worker to miss on a key becomes the
//!   *leader* and solves; concurrent workers with the same key get a
//!   [`Lookup::Wait`] handle and block on the leader's [`Flight`]
//!   instead of re-solving. A thundering herd of one fig7 campaign
//!   costs one solve. If the leader fails (error, timeout, panic), its
//!   [`FlightGuard`] publishes the failure and waiters retry the
//!   lookup — the next one in becomes the new leader, so a transient
//!   failure never wedges a key.
//!
//! Both structures for a key live under *one* per-shard mutex, so the
//! hit / lead / wait classification and the leader's completion are
//! each atomic with respect to the shard: there is no window in which
//! two workers can both elect themselves leader for a key, and no
//! window in which a waiter can register on a flight that has already
//! published.
//!
//! The cache never stores non-`ok` responses: errors and timeouts are
//! either load-dependent or carry messages describing a failure worth
//! re-attempting, and `busy` never reaches a worker at all.

use std::collections::{BTreeMap, HashMap};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;

/// Number of lock-striped shards. A power of two so the shard index is
/// a mask of the (well-mixed) FNV key.
const SHARDS: usize = 16;

/// Fixed per-entry overhead charged against the byte budget on top of
/// the suffix length, approximating the map/LRU bookkeeping so many
/// tiny entries cannot blow the budget by orders of magnitude.
const ENTRY_OVERHEAD: u64 = 64;

/// One cached response: the response bytes after the `{"id":<id>`
/// prefix, plus the entry's position in the shard's LRU order.
struct Entry {
    suffix: Vec<u8>,
    tick: u64,
}

/// A shard: LRU entries and in-flight leaders for one sixteenth of the
/// key space, all under one mutex.
struct Shard {
    entries: HashMap<u64, Entry>,
    /// Recency order: logical tick -> key. The smallest tick is the
    /// least-recently-touched entry, i.e. the next eviction victim.
    lru: BTreeMap<u64, u64>,
    /// Keys currently being solved by a leader.
    flights: HashMap<u64, Arc<Flight>>,
    /// Bytes currently charged to this shard (suffixes + overhead).
    bytes: u64,
    /// Monotonic logical clock for LRU ordering; advanced on every
    /// touch and insert, never by wall time, so replay is exact.
    tick: u64,
}

impl Shard {
    fn new() -> Self {
        Self {
            entries: HashMap::new(),
            lru: BTreeMap::new(),
            flights: HashMap::new(),
            bytes: 0,
            tick: 0,
        }
    }
}

/// Rendezvous between a single-flight leader and its waiters.
///
/// State is `None` while the leader is solving, `Some(Some(suffix))`
/// once it published a cacheable `ok` response, and `Some(None)` if it
/// failed (error, timeout, or panic via the guard's `Drop`).
pub struct Flight {
    state: Mutex<Option<Option<Vec<u8>>>>,
    ready: Condvar,
}

impl Flight {
    fn new() -> Self {
        Self {
            state: Mutex::new(None),
            ready: Condvar::new(),
        }
    }

    fn publish(&self, outcome: Option<Vec<u8>>) {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        *state = Some(outcome);
        self.ready.notify_all();
    }

    /// Blocks until the leader publishes, or until `deadline` (the
    /// waiter's own request deadline) passes.
    pub fn wait(&self, deadline: Option<Instant>) -> WaitOutcome {
        let mut state = self
            .state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        loop {
            if let Some(outcome) = state.as_ref() {
                return match outcome {
                    Some(suffix) => WaitOutcome::Ready(suffix.clone()),
                    None => WaitOutcome::LeaderFailed,
                };
            }
            match deadline {
                None => {
                    state = self
                        .ready
                        .wait(state)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                }
                Some(deadline) => {
                    let now = Instant::now();
                    if now >= deadline {
                        return WaitOutcome::TimedOut;
                    }
                    let (guard, _timeout) = self
                        .ready
                        .wait_timeout(state, deadline - now)
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    state = guard;
                }
            }
        }
    }
}

/// What a waiter observed when its leader's flight resolved.
pub enum WaitOutcome {
    /// The leader produced an `ok` response; these are its bytes after
    /// the id prefix, ready to splice.
    Ready(Vec<u8>),
    /// The leader failed; retry the lookup (the retrier may become the
    /// new leader).
    LeaderFailed,
    /// The waiter's own deadline expired before the leader finished.
    TimedOut,
}

/// Result of a cache lookup for one admitted job.
pub enum Lookup {
    /// Cached: the response bytes after the id prefix.
    Hit(Vec<u8>),
    /// This worker is the leader for the key: solve, then resolve the
    /// guard with [`FlightGuard::complete_ok`] or [`FlightGuard::fail`].
    Lead(FlightGuard),
    /// Another worker is already solving this key; block on the flight.
    Wait(Arc<Flight>),
}

/// What happened to the byte budget when a leader published.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Whether the suffix was stored (false when it alone exceeds a
    /// shard's budget — waiters are still served from the flight).
    pub inserted: bool,
    /// Bytes evicted (suffixes + overhead) to make room.
    pub evicted_bytes: u64,
}

/// Leadership over one in-flight key. Dropping the guard without
/// completing it publishes failure — a panicking worker can never
/// leave waiters blocked forever.
pub struct FlightGuard {
    cache: Arc<ResponseCache>,
    key: u64,
    flight: Arc<Flight>,
    armed: bool,
}

impl FlightGuard {
    /// Publishes an `ok` response's suffix to waiters and stores it in
    /// the LRU (evicting as needed).
    pub fn complete_ok(mut self, suffix: Vec<u8>) -> InsertOutcome {
        self.armed = false;
        self.cache.complete(self.key, &self.flight, Some(suffix))
    }

    /// Publishes failure: waiters retry the lookup, nothing is cached.
    pub fn fail(mut self) {
        self.armed = false;
        self.cache.complete(self.key, &self.flight, None);
    }
}

impl Drop for FlightGuard {
    fn drop(&mut self) {
        if self.armed {
            self.cache.complete(self.key, &self.flight, None);
        }
    }
}

/// The sharded LRU response cache. Construct with [`ResponseCache::new`]
/// and share via `Arc` across the worker pool.
pub struct ResponseCache {
    shards: Vec<Mutex<Shard>>,
    /// Per-shard byte budget (total budget / shard count).
    shard_budget: u64,
    /// Live total across shards, for the `serve.cache.bytes` gauge.
    total_bytes: std::sync::atomic::AtomicU64,
}

impl ResponseCache {
    /// A cache with `byte_budget` total capacity, split evenly across
    /// the shards. `byte_budget` must be positive — a disabled cache is
    /// represented by *not constructing one* (`cache_bytes: 0` in the
    /// server config), not by a zero-capacity instance.
    pub fn new(byte_budget: u64) -> Arc<Self> {
        assert!(byte_budget > 0, "a zero-budget cache should not exist");
        Arc::new(Self {
            shards: (0..SHARDS).map(|_| Mutex::new(Shard::new())).collect(),
            shard_budget: (byte_budget / SHARDS as u64).max(ENTRY_OVERHEAD + 1),
            total_bytes: std::sync::atomic::AtomicU64::new(0),
        })
    }

    fn shard(&self, key: u64) -> &Mutex<Shard> {
        // FNV output is well mixed in the low bits; mask selects the stripe.
        &self.shards[(key as usize) & (SHARDS - 1)]
    }

    /// Classifies one admitted job: served from cache, leader, or
    /// waiter. Hits refresh the entry's LRU position.
    pub fn begin(self: &Arc<Self>, key: u64) -> Lookup {
        let mut shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let shard = &mut *shard;
        if shard.entries.contains_key(&key) {
            shard.tick += 1;
            let tick = shard.tick;
            let entry = shard.entries.get_mut(&key).expect("checked above");
            let old_tick = std::mem::replace(&mut entry.tick, tick);
            let suffix = entry.suffix.clone();
            shard.lru.remove(&old_tick);
            shard.lru.insert(tick, key);
            return Lookup::Hit(suffix);
        }
        if let Some(flight) = shard.flights.get(&key) {
            return Lookup::Wait(Arc::clone(flight));
        }
        let flight = Arc::new(Flight::new());
        shard.flights.insert(key, Arc::clone(&flight));
        Lookup::Lead(FlightGuard {
            cache: Arc::clone(self),
            key,
            flight,
            armed: true,
        })
    }

    /// Read-only probe: is `key` resident? Does *not* refresh LRU order
    /// or interact with flights — for stats and tests only.
    pub fn peek(&self, key: u64) -> Option<Vec<u8>> {
        let shard = self
            .shard(key)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        shard.entries.get(&key).map(|e| e.suffix.clone())
    }

    /// Bytes currently charged across all shards (suffixes + fixed
    /// per-entry overhead).
    pub fn bytes(&self) -> u64 {
        self.total_bytes.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Resident entry count across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .entries
                    .len()
            })
            .sum()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Leader completion: removes the flight, publishes to waiters,
    /// and (on `ok`) stores the suffix, evicting oldest-touched
    /// entries until it fits.
    fn complete(&self, key: u64, flight: &Flight, outcome: Option<Vec<u8>>) -> InsertOutcome {
        use std::sync::atomic::Ordering;
        let mut result = InsertOutcome::default();
        {
            let mut shard = self
                .shard(key)
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let shard = &mut *shard;
            shard.flights.remove(&key);
            if let Some(suffix) = outcome.as_ref() {
                let cost = suffix.len() as u64 + ENTRY_OVERHEAD;
                if cost <= self.shard_budget {
                    while shard.bytes + cost > self.shard_budget {
                        let (&victim_tick, &victim_key) =
                            shard.lru.iter().next().expect("bytes > 0 implies entries");
                        shard.lru.remove(&victim_tick);
                        let victim = shard
                            .entries
                            .remove(&victim_key)
                            .expect("lru and entries agree");
                        let victim_cost = victim.suffix.len() as u64 + ENTRY_OVERHEAD;
                        shard.bytes -= victim_cost;
                        result.evicted_bytes += victim_cost;
                    }
                    shard.tick += 1;
                    let tick = shard.tick;
                    shard.lru.insert(tick, key);
                    shard.entries.insert(
                        key,
                        Entry {
                            suffix: suffix.clone(),
                            tick,
                        },
                    );
                    shard.bytes += cost;
                    result.inserted = true;
                    self.total_bytes.fetch_add(cost, Ordering::Relaxed);
                }
            }
        }
        if result.evicted_bytes > 0 {
            self.total_bytes
                .fetch_sub(result.evicted_bytes, Ordering::Relaxed);
        }
        // Publish after the shard lock is released: waiters woken here
        // may immediately re-enter `begin` and must not contend with a
        // lock we still hold.
        flight.publish(outcome);
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Keys landing in shard 3: distinct multiples of 16, offset 3.
    fn key(i: u64) -> u64 {
        i * 16 + 3
    }

    fn put(cache: &Arc<ResponseCache>, k: u64, len: usize) -> InsertOutcome {
        match cache.begin(k) {
            Lookup::Lead(guard) => guard.complete_ok(vec![b'v'; len]),
            _ => panic!("expected to lead key {k}"),
        }
    }

    #[test]
    fn hit_returns_inserted_bytes_and_refreshes_lru() {
        let cache = ResponseCache::new(16 * 4096);
        assert!(cache.is_empty());
        let outcome = put(&cache, key(0), 100);
        assert!(outcome.inserted);
        assert_eq!(outcome.evicted_bytes, 0);
        match cache.begin(key(0)) {
            Lookup::Hit(suffix) => assert_eq!(suffix, vec![b'v'; 100]),
            _ => panic!("expected a hit"),
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.bytes(), 100 + 64);
    }

    #[test]
    fn evicts_oldest_touched_deterministically() {
        // Shard budget = 65536/16 = 4096; each 1000-byte suffix costs
        // 1064, so three fit (3192) and a fourth (4256) evicts.
        let cache = ResponseCache::new(16 * 4096);
        put(&cache, key(0), 1000);
        put(&cache, key(1), 1000);
        put(&cache, key(2), 1000);
        // Touch key(0): key(1) is now the oldest-touched.
        assert!(matches!(cache.begin(key(0)), Lookup::Hit(_)));
        let outcome = put(&cache, key(3), 1000);
        assert!(outcome.inserted);
        assert_eq!(outcome.evicted_bytes, 1064);
        assert!(cache.peek(key(1)).is_none(), "oldest-touched evicted");
        for k in [key(0), key(2), key(3)] {
            assert!(cache.peek(k).is_some(), "key {k} survives");
        }
        // Next insert evicts key(2) — untouched since insertion, older
        // than both key(0)'s refresh and key(3)'s insert.
        let outcome = put(&cache, key(4), 1000);
        assert_eq!(outcome.evicted_bytes, 1064);
        assert!(cache.peek(key(2)).is_none());
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.bytes(), 3 * 1064);
    }

    #[test]
    fn oversized_value_is_served_but_not_stored() {
        let cache = ResponseCache::new(16 * 4096);
        let outcome = put(&cache, key(0), 5000); // 5064 > 4096 shard budget
        assert!(!outcome.inserted);
        assert_eq!(outcome.evicted_bytes, 0);
        assert!(cache.peek(key(0)).is_none());
        assert_eq!(cache.bytes(), 0);
    }

    #[test]
    fn single_flight_coalesces_and_publishes() {
        let cache = ResponseCache::new(16 * 4096);
        let guard = match cache.begin(key(7)) {
            Lookup::Lead(guard) => guard,
            _ => panic!("first lookup leads"),
        };
        let flight = match cache.begin(key(7)) {
            Lookup::Wait(flight) => flight,
            _ => panic!("second lookup waits"),
        };
        guard.complete_ok(b"suffix".to_vec());
        match flight.wait(None) {
            WaitOutcome::Ready(suffix) => assert_eq!(suffix, b"suffix"),
            _ => panic!("waiter sees the leader's bytes"),
        }
        assert!(matches!(cache.begin(key(7)), Lookup::Hit(_)));
    }

    #[test]
    fn leader_failure_wakes_waiters_and_allows_retry() {
        let cache = ResponseCache::new(16 * 4096);
        let guard = match cache.begin(key(9)) {
            Lookup::Lead(guard) => guard,
            _ => panic!("first lookup leads"),
        };
        let flight = match cache.begin(key(9)) {
            Lookup::Wait(flight) => flight,
            _ => panic!("second lookup waits"),
        };
        drop(guard); // panic-safety path: unresolved guard publishes failure
        assert!(matches!(flight.wait(None), WaitOutcome::LeaderFailed));
        // The retrying waiter becomes the new leader.
        assert!(matches!(cache.begin(key(9)), Lookup::Lead(_)));
    }

    #[test]
    fn waiter_deadline_expires_without_leader() {
        let cache = ResponseCache::new(16 * 4096);
        let _guard = match cache.begin(key(11)) {
            Lookup::Lead(guard) => guard,
            _ => panic!("first lookup leads"),
        };
        let flight = match cache.begin(key(11)) {
            Lookup::Wait(flight) => flight,
            _ => panic!("second lookup waits"),
        };
        let deadline = Instant::now() + std::time::Duration::from_millis(10);
        assert!(matches!(flight.wait(Some(deadline)), WaitOutcome::TimedOut));
    }
}

//! The job model: what the service runs, validated up front.
//!
//! A job arrives as the `"job"` object of a request envelope. Its
//! `"kind"` selects one of nine shapes:
//!
//! * circuit analyses on a netlist deck carried in the request —
//!   `"op"`, `"dc_sweep"`, `"ac_sweep"`, `"transient"`; each names the
//!   probe nodes explicitly, so a response never depends on internal
//!   table ordering;
//! * paper figure experiments — `"fig2"`, `"fig5"`, `"fig7"` — which
//!   take no parameters and return the flat scalar reports of
//!   [`carbon_core::jobs`];
//! * service introspection — `"ping"` (liveness: version + uptime) and
//!   `"stats"` (the full metrics-registry snapshot). These are answered
//!   on the connection thread's admission-free fast path: they never
//!   enter the bounded queue, so a server saturated with solves still
//!   answers its health checks.
//!
//! [`Job::from_json`] performs the whole validation — unknown kinds are
//! rejected with the valid choices listed, missing or ill-typed fields
//! are named, numeric bounds are enforced, and the netlist deck is
//! parsed — **before** the job is admitted to the queue, so a malformed
//! request can never occupy a worker.
//!
//! Execution ([`Job::run`]) produces a [`Json`] tree with insertion-
//! ordered fields and no timestamps, so the rendered result for a given
//! request body is byte-identical regardless of worker count or arrival
//! order.

use carbon_json::Json;
use carbon_spice::parser::parse_deck;
use carbon_spice::{Circuit, SpiceError, TranMethod, TranOptions};

/// The job kinds the service accepts, in the order error messages list
/// them.
pub const JOB_KINDS: [&str; 9] = [
    "op",
    "dc_sweep",
    "ac_sweep",
    "transient",
    "fig2",
    "fig5",
    "fig7",
    "ping",
    "stats",
];

/// The job kinds that travel through the bounded queue to a worker —
/// everything except the connection-thread fast-path kinds (`ping`,
/// `stats`). This is the set the server pre-registers latency and
/// queue-wait histograms for.
pub const QUEUED_JOB_KINDS: [&str; 7] = [
    "op",
    "dc_sweep",
    "ac_sweep",
    "transient",
    "fig2",
    "fig5",
    "fig7",
];

/// Largest accepted AC grid, points. Bounds the work a single request
/// can demand.
pub const MAX_AC_POINTS: usize = 100_000;

/// Largest accepted `max_devices` for the adaptive fig7 campaign.
/// Bounds the work a single request can demand.
pub const MAX_CAMPAIGN_DEVICES: usize = 1_000_000;

/// Errors from job validation and execution.
#[derive(Debug, Clone, PartialEq)]
pub enum JobError {
    /// The request was rejected before execution; the message names the
    /// offending field.
    Invalid {
        /// Human-readable reason, naming the field.
        reason: String,
    },
    /// The analysis itself failed (non-convergence, singular matrix,
    /// unknown probe node, ...).
    Exec {
        /// The underlying error, rendered.
        message: String,
    },
    /// The job observed its deadline (or an explicit cancel) at a
    /// solver checkpoint and stopped early.
    Cancelled {
        /// The underlying cancellation report.
        message: String,
    },
}

impl std::fmt::Display for JobError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Invalid { reason } => write!(f, "invalid job: {reason}"),
            Self::Exec { message } => write!(f, "job failed: {message}"),
            Self::Cancelled { message } => write!(f, "job cancelled: {message}"),
        }
    }
}

impl std::error::Error for JobError {}

impl JobError {
    fn invalid(reason: impl Into<String>) -> Self {
        Self::Invalid {
            reason: reason.into(),
        }
    }

    /// Classifies a solver error: cancellation keeps its own variant so
    /// the server can answer with status `"timeout"` instead of
    /// `"error"`.
    fn from_spice(e: &SpiceError) -> Self {
        match e {
            SpiceError::Cancelled { .. } => Self::Cancelled {
                message: e.to_string(),
            },
            other => Self::Exec {
                message: other.to_string(),
            },
        }
    }
}

/// A validated, ready-to-run job. Decks are parsed at validation time,
/// so a `Job` that reaches a worker can only fail in the solver.
#[derive(Debug)]
pub enum Job {
    /// DC operating point of a deck; reports the named node voltages.
    Op {
        /// The parsed netlist.
        circuit: Circuit,
        /// Probe nodes, in request order.
        nodes: Vec<String>,
    },
    /// DC sweep of a named source.
    DcSweep {
        /// The parsed netlist.
        circuit: Circuit,
        /// Swept source name.
        source: String,
        /// Sweep start, V or A.
        from: f64,
        /// Sweep stop, V or A.
        to: f64,
        /// Sweep step (positive).
        step: f64,
        /// Probe nodes, in request order.
        nodes: Vec<String>,
    },
    /// AC sweep over a log-spaced frequency grid.
    AcSweep {
        /// The parsed netlist.
        circuit: Circuit,
        /// AC stimulus source name.
        source: String,
        /// Materialized frequency grid, Hz.
        freqs: Vec<f64>,
        /// Probe nodes, in request order.
        nodes: Vec<String>,
    },
    /// Transient analysis: fixed-step by default (byte-identical to the
    /// pre-`method` responses), LTE-adaptive on request.
    Transient {
        /// The parsed netlist.
        circuit: Circuit,
        /// Time step, s (initial step for the adaptive method).
        tstep: f64,
        /// Stop time, s.
        tstop: f64,
        /// Method and LTE tuning, resolved from the optional
        /// `"method"`/`"options"` request fields.
        options: TranOptions,
        /// Probe nodes, in request order.
        nodes: Vec<String>,
    },
    /// The Fig. 2 inverter experiment.
    Fig2,
    /// The Fig. 5 CNT benchmarking experiment.
    Fig5,
    /// The §V variability-statistics experiment. Parameterless by
    /// default (the fixed 10,000-device campaign); an optional
    /// `target_ci` switches to adaptive sizing, with `max_devices`
    /// capping the growth.
    Fig7 {
        /// Target 95 % CI half-width on the functional yield;
        /// `None` runs the fixed campaign.
        target_ci: Option<f64>,
        /// Device cap for the adaptive campaign.
        max_devices: Option<usize>,
    },
    /// Liveness probe: echoes the request `id`, reports crate version
    /// and server uptime. Answered on the connection fast path — never
    /// queued, so it cannot be starved by a full queue.
    Ping,
    /// Metrics snapshot: the server's registry (per-kind latency and
    /// queue-wait histograms with p50/p90/p99, counters, gauges) merged
    /// with the process-global registry. Answered on the connection
    /// fast path.
    Stats,
}

impl Job {
    /// The job's kind string, for spans and load statistics.
    pub fn kind(&self) -> &'static str {
        match self {
            Self::Op { .. } => "op",
            Self::DcSweep { .. } => "dc_sweep",
            Self::AcSweep { .. } => "ac_sweep",
            Self::Transient { .. } => "transient",
            Self::Fig2 => "fig2",
            Self::Fig5 => "fig5",
            Self::Fig7 { .. } => "fig7",
            Self::Ping => "ping",
            Self::Stats => "stats",
        }
    }

    /// Whether this job is answered on the connection thread's
    /// admission-free fast path instead of the bounded queue.
    pub fn is_fast_path(&self) -> bool {
        matches!(self, Self::Ping | Self::Stats)
    }

    /// Whether an `ok` response for this job may be served from the
    /// response cache. Exactly the queued kinds: their responses are
    /// pure functions of the canonical job body under the byte-identity
    /// contract. The fast-path kinds report operational state (uptime,
    /// latency aggregates) and are never cached — and never reach a
    /// worker anyway.
    pub fn is_cacheable(&self) -> bool {
        !self.is_fast_path()
    }

    /// Validates the `"job"` object of a request.
    ///
    /// # Errors
    ///
    /// Returns [`JobError::Invalid`] naming the offending field for
    /// unknown kinds, missing or ill-typed fields, out-of-range values,
    /// and malformed decks.
    pub fn from_json(job: &Json) -> Result<Self, JobError> {
        if !matches!(job, Json::Obj(_)) {
            return Err(JobError::invalid("job must be an object"));
        }
        let kind = job
            .get("kind")
            .and_then(Json::as_str)
            .ok_or_else(|| JobError::invalid("job.kind must be a string"))?;
        match kind {
            "op" => Ok(Self::Op {
                circuit: deck_field(job)?,
                nodes: nodes_field(job)?,
            }),
            "dc_sweep" => {
                let from = num_field(job, "from")?;
                let to = num_field(job, "to")?;
                let step = num_field(job, "step")?;
                if step <= 0.0 {
                    return Err(JobError::invalid(format!(
                        "job.step = {step} must be positive"
                    )));
                }
                Ok(Self::DcSweep {
                    circuit: deck_field(job)?,
                    source: str_field(job, "source")?,
                    from,
                    to,
                    step,
                    nodes: nodes_field(job)?,
                })
            }
            "ac_sweep" => {
                let fstart = num_field(job, "fstart")?;
                let fstop = num_field(job, "fstop")?;
                let ppd = job
                    .get("points_per_decade")
                    .and_then(Json::as_u64)
                    .ok_or_else(|| {
                        JobError::invalid("job.points_per_decade must be a positive integer")
                    })?;
                if fstart <= 0.0 {
                    return Err(JobError::invalid(format!(
                        "job.fstart = {fstart} must be positive"
                    )));
                }
                if fstop < fstart {
                    return Err(JobError::invalid(format!(
                        "job.fstop = {fstop} must be at least job.fstart = {fstart}"
                    )));
                }
                if ppd == 0 {
                    return Err(JobError::invalid(
                        "job.points_per_decade must be a positive integer",
                    ));
                }
                // Bound the grid from the decade count BEFORE
                // materializing it — the estimate is within one point
                // of the real size, so an oversized request cannot
                // allocate an oversized vector first.
                let estimated = (fstop / fstart).log10().max(0.0) * ppd as f64;
                if !estimated.is_finite() || estimated >= MAX_AC_POINTS as f64 {
                    return Err(JobError::invalid(format!(
                        "ac grid would have about {estimated:.0} points, more than the \
                         maximum {MAX_AC_POINTS}"
                    )));
                }
                let freqs = log_grid(fstart, fstop, ppd);
                Ok(Self::AcSweep {
                    circuit: deck_field(job)?,
                    source: str_field(job, "source")?,
                    freqs,
                    nodes: nodes_field(job)?,
                })
            }
            "transient" => {
                let tstep = num_field(job, "tstep")?;
                let tstop = num_field(job, "tstop")?;
                for (field, value) in [("tstep", tstep), ("tstop", tstop)] {
                    if value <= 0.0 {
                        return Err(JobError::invalid(format!(
                            "job.{field} = {value} must be positive"
                        )));
                    }
                }
                if tstep > tstop {
                    return Err(JobError::invalid(format!(
                        "job.tstep = {tstep} exceeds job.tstop = {tstop}"
                    )));
                }
                Ok(Self::Transient {
                    circuit: deck_field(job)?,
                    tstep,
                    tstop,
                    options: tran_options_fields(job)?,
                    nodes: nodes_field(job)?,
                })
            }
            "fig2" => Ok(Self::Fig2),
            "fig5" => Ok(Self::Fig5),
            "ping" => Ok(Self::Ping),
            "stats" => Ok(Self::Stats),
            "fig7" => {
                let target_ci = match job.get("target_ci") {
                    None => None,
                    Some(v) => Some(
                        v.as_f64()
                            .filter(|t| t.is_finite() && *t > 0.0 && *t < 1.0)
                            .ok_or_else(|| {
                                JobError::invalid("job.target_ci must be a number in (0, 1)")
                            })?,
                    ),
                };
                let max_devices = match job.get("max_devices") {
                    None => None,
                    Some(v) => {
                        // Like transient options without the adaptive
                        // method: a cap on a fixed-size campaign would
                        // be silently ignored, so reject it.
                        if target_ci.is_none() {
                            return Err(JobError::invalid(
                                "job.max_devices is only accepted with job.target_ci",
                            ));
                        }
                        let m = v
                            .as_u64()
                            .filter(|m| *m > 0 && *m <= MAX_CAMPAIGN_DEVICES as u64)
                            .ok_or_else(|| {
                                JobError::invalid(format!(
                                    "job.max_devices must be a positive integer at most \
                                     {MAX_CAMPAIGN_DEVICES}"
                                ))
                            })?;
                        Some(m as usize)
                    }
                };
                Ok(Self::Fig7 {
                    target_ci,
                    max_devices,
                })
            }
            other => Err(JobError::invalid(format!(
                "unknown job.kind '{other}': valid kinds are {}",
                JOB_KINDS.join(", ")
            ))),
        }
    }

    /// Runs the job to a deterministic result tree.
    ///
    /// Workers install a [`carbon_runtime::CancelToken`] scope around
    /// this call; solver checkpoints turn an expired deadline into
    /// [`JobError::Cancelled`].
    ///
    /// # Errors
    ///
    /// [`JobError::Exec`] for solver failures and unknown probe names,
    /// [`JobError::Cancelled`] when a deadline fires.
    pub fn run(&self) -> Result<Json, JobError> {
        match self {
            Self::Op { circuit, nodes } => {
                let op = circuit.op().map_err(|e| JobError::from_spice(&e))?;
                let mut voltages = Json::obj();
                for node in nodes {
                    let v = op.voltage(node).map_err(|e| JobError::from_spice(&e))?;
                    voltages = voltages.push(node, v);
                }
                Ok(Json::obj().push("nodes", voltages))
            }
            Self::DcSweep {
                circuit,
                source,
                from,
                to,
                step,
                nodes,
            } => {
                let sweep = circuit
                    .dc_sweep(source, *from, *to, *step)
                    .map_err(|e| JobError::from_spice(&e))?;
                let mut traces = Json::obj();
                for node in nodes {
                    let vs = sweep.voltages(node).map_err(|e| JobError::from_spice(&e))?;
                    traces = traces.push(node, float_array(&vs));
                }
                Ok(Json::obj()
                    .push("sweep", float_array(sweep.sweep_values()))
                    .push("newton_iterations", sweep.total_newton_iterations())
                    .push("nodes", traces))
            }
            Self::AcSweep {
                circuit,
                source,
                freqs,
                nodes,
            } => {
                let ac = circuit
                    .ac_sweep(source, freqs)
                    .map_err(|e| JobError::from_spice(&e))?;
                let mut traces = Json::obj();
                for node in nodes {
                    let mag = ac.magnitude(node).map_err(|e| JobError::from_spice(&e))?;
                    let phase = ac.phase(node).map_err(|e| JobError::from_spice(&e))?;
                    traces = traces.push(
                        node,
                        Json::obj()
                            .push("magnitude", float_array(&mag))
                            .push("phase_rad", float_array(&phase)),
                    );
                }
                Ok(Json::obj()
                    .push("freqs", float_array(ac.frequencies()))
                    .push("nodes", traces))
            }
            Self::Transient {
                circuit,
                tstep,
                tstop,
                options,
                nodes,
            } => {
                let tran = circuit
                    .transient_with(*tstep, *tstop, *options)
                    .map_err(|e| JobError::from_spice(&e))?;
                let mut traces = Json::obj();
                for node in nodes {
                    let vs = tran.voltages(node).map_err(|e| JobError::from_spice(&e))?;
                    traces = traces.push(node, float_array(vs));
                }
                let mut result = Json::obj().push("times", float_array(tran.times()));
                // The default (fixed) response keeps its historical
                // shape byte for byte; the adaptive method reports its
                // step-controller statistics alongside.
                if options.method == TranMethod::Adaptive {
                    result = result
                        .push("steps", tran.accepted_steps())
                        .push("rejects", tran.rejected_steps());
                }
                Ok(result.push("nodes", traces))
            }
            Self::Fig2 => figure_result(carbon_core::jobs::fig2_report()),
            Self::Fig5 => figure_result(carbon_core::jobs::fig5_report()),
            // No target: the fixed campaign, byte-identical to the
            // historical parameterless response.
            Self::Fig7 {
                target_ci: None, ..
            } => figure_result(carbon_core::jobs::fig7_report()),
            Self::Fig7 {
                target_ci: Some(target),
                max_devices,
            } => figure_result(carbon_core::jobs::fig7_report_adaptive(
                *target,
                max_devices.unwrap_or(carbon_core::fig7_stats::ADAPTIVE_MAX_DEFAULT),
            )),
            // Fast-path kinds need server context (uptime, the server's
            // metrics registry) and are answered by the connection
            // thread before admission; a worker can never see them.
            Self::Ping | Self::Stats => Err(JobError::Exec {
                message: format!(
                    "'{}' is answered on the server's connection fast path, \
                     not by a worker",
                    self.kind()
                ),
            }),
        }
    }
}

/// Renders a figure report as `{"name":..., "scalars":{...}}`.
fn figure_result(
    report: Result<carbon_core::jobs::JobReport, carbon_core::CoreError>,
) -> Result<Json, JobError> {
    let report = report.map_err(|e| JobError::Exec {
        message: e.to_string(),
    })?;
    let mut scalars = Json::obj();
    for (name, value) in &report.scalars {
        scalars = scalars.push(name, *value);
    }
    Ok(Json::obj()
        .push("name", report.name)
        .push("scalars", scalars))
}

fn float_array(values: &[f64]) -> Json {
    Json::Arr(values.iter().map(|&v| Json::Num(v)).collect())
}

/// Required non-empty string field.
fn str_field(job: &Json, field: &str) -> Result<String, JobError> {
    match job.get(field).and_then(Json::as_str) {
        Some(s) if !s.is_empty() => Ok(s.to_owned()),
        Some(_) => Err(JobError::invalid(format!("job.{field} must be non-empty"))),
        None => Err(JobError::invalid(format!("job.{field} must be a string"))),
    }
}

/// Required finite numeric field. (The JSON parser already rejects
/// non-finite literals; this guards against missing or ill-typed
/// fields.)
fn num_field(job: &Json, field: &str) -> Result<f64, JobError> {
    job.get(field)
        .and_then(Json::as_f64)
        .filter(|v| v.is_finite())
        .ok_or_else(|| JobError::invalid(format!("job.{field} must be a finite number")))
}

/// Required `deck` field, parsed into a circuit up front.
fn deck_field(job: &Json) -> Result<Circuit, JobError> {
    let deck = str_field(job, "deck")?;
    parse_deck(&deck).map_err(|e| JobError::invalid(format!("job.deck: {e}")))
}

/// Optional `"method"` / `"options"` fields of a transient job.
///
/// `"method"` must be `"fixed"` (the default) or `"adaptive"`;
/// `"options"` is an object of LTE knobs (`lte_reltol`, `lte_abstol`,
/// `max_step`, `min_step`, each a positive finite number) and is only
/// accepted with the adaptive method — the fixed method ignores every
/// knob, and silently accepting them would mask request bugs. Unknown
/// option keys are rejected by name.
fn tran_options_fields(job: &Json) -> Result<TranOptions, JobError> {
    let method = match job.get("method") {
        None => TranMethod::FixedStep,
        Some(m) => match m.as_str() {
            Some("fixed") => TranMethod::FixedStep,
            Some("adaptive") => TranMethod::Adaptive,
            Some(other) => {
                return Err(JobError::invalid(format!(
                    "job.method '{other}' is not a transient method: valid methods are \
                     fixed, adaptive"
                )))
            }
            None => return Err(JobError::invalid("job.method must be a string")),
        },
    };
    let mut options = TranOptions {
        method,
        ..TranOptions::default()
    };
    let Some(opts) = job.get("options") else {
        return Ok(options);
    };
    if method != TranMethod::Adaptive {
        return Err(JobError::invalid(
            "job.options is only accepted with job.method = \"adaptive\"",
        ));
    }
    let Json::Obj(entries) = opts else {
        return Err(JobError::invalid("job.options must be an object"));
    };
    for (key, value) in entries {
        let v = value
            .as_f64()
            .filter(|v| v.is_finite() && *v > 0.0)
            .ok_or_else(|| {
                JobError::invalid(format!(
                    "job.options.{key} must be a positive finite number"
                ))
            })?;
        match key.as_str() {
            "lte_reltol" => options.lte_reltol = v,
            "lte_abstol" => options.lte_abstol = v,
            "max_step" => options.max_step = Some(v),
            "min_step" => options.min_step = Some(v),
            other => {
                return Err(JobError::invalid(format!(
                    "unknown transient option 'job.options.{other}': valid options are \
                     lte_reltol, lte_abstol, max_step, min_step"
                )))
            }
        }
    }
    Ok(options)
}

/// Required non-empty `nodes` array of non-empty strings.
fn nodes_field(job: &Json) -> Result<Vec<String>, JobError> {
    let items = job
        .get("nodes")
        .and_then(Json::as_array)
        .ok_or_else(|| JobError::invalid("job.nodes must be an array of node names"))?;
    if items.is_empty() {
        return Err(JobError::invalid("job.nodes must name at least one node"));
    }
    items
        .iter()
        .map(|item| match item.as_str() {
            Some(s) if !s.is_empty() => Ok(s.to_owned()),
            _ => Err(JobError::invalid(
                "job.nodes entries must be non-empty strings",
            )),
        })
        .collect()
}

/// Log-spaced frequency grid: `points_per_decade` points per decade
/// from `fstart` up to and including `fstop`. Pure function of its
/// inputs, so every worker materializes the identical grid.
fn log_grid(fstart: f64, fstop: f64, points_per_decade: u64) -> Vec<f64> {
    let mut freqs = Vec::new();
    let ppd = points_per_decade as f64;
    let mut k = 0u64;
    loop {
        let f = fstart * 10f64.powf(k as f64 / ppd);
        if f >= fstop {
            freqs.push(fstop);
            return freqs;
        }
        freqs.push(f);
        k += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const RC_DECK: &str = "* rc low-pass\nV1 in 0 1\nR1 in out 1k\nC1 out 0 1u\n.end\n";

    fn job(kind_body: &str) -> Json {
        Json::parse(kind_body).expect("test job parses")
    }

    #[test]
    fn unknown_kind_lists_valid_choices() {
        let err = Job::from_json(&job("{\"kind\":\"bogus\"}")).unwrap_err();
        let JobError::Invalid { reason } = &err else {
            panic!("expected Invalid, got {err:?}");
        };
        assert!(reason.contains("bogus"), "{reason}");
        for kind in JOB_KINDS {
            assert!(reason.contains(kind), "missing {kind} in {reason}");
        }
    }

    #[test]
    fn fast_path_kinds_parse_but_never_run_on_workers() {
        for kind in ["ping", "stats"] {
            let parsed = Job::from_json(&job(&format!("{{\"kind\":\"{kind}\"}}"))).unwrap();
            assert_eq!(parsed.kind(), kind);
            assert!(parsed.is_fast_path());
            let err = parsed.run().unwrap_err();
            assert!(
                matches!(&err, JobError::Exec { message } if message.contains("fast path")),
                "{err:?}"
            );
        }
        // Every queued kind is a listed kind, and the fast-path kinds
        // are exactly the difference.
        for kind in QUEUED_JOB_KINDS {
            assert!(JOB_KINDS.contains(&kind));
        }
        let fast: Vec<&str> = JOB_KINDS
            .iter()
            .filter(|k| !QUEUED_JOB_KINDS.contains(k))
            .copied()
            .collect();
        assert_eq!(fast, ["ping", "stats"]);
    }

    #[test]
    fn validation_names_the_offending_field() {
        let cases = [
            ("{\"kind\":\"op\",\"nodes\":[\"out\"]}", "job.deck"),
            ("{\"kind\":\"op\",\"deck\":\"V1 a 0 1\"}", "job.nodes"),
            (
                "{\"kind\":\"op\",\"deck\":\"V1 a 0 1\",\"nodes\":[]}",
                "job.nodes",
            ),
            (
                "{\"kind\":\"dc_sweep\",\"deck\":\"V1 a 0 1\",\"source\":\"V1\",\
                 \"from\":0,\"to\":1,\"step\":-0.1,\"nodes\":[\"a\"]}",
                "job.step",
            ),
            (
                "{\"kind\":\"ac_sweep\",\"deck\":\"V1 a 0 1\",\"source\":\"V1\",\
                 \"fstart\":0.0,\"fstop\":10,\"points_per_decade\":10,\"nodes\":[\"a\"]}",
                "job.fstart",
            ),
            (
                "{\"kind\":\"ac_sweep\",\"deck\":\"V1 a 0 1\",\"source\":\"V1\",\
                 \"fstart\":100,\"fstop\":10,\"points_per_decade\":10,\"nodes\":[\"a\"]}",
                "job.fstop",
            ),
            (
                "{\"kind\":\"transient\",\"deck\":\"V1 a 0 1\",\"tstep\":2.0,\
                 \"tstop\":1.0,\"nodes\":[\"a\"]}",
                "job.tstep",
            ),
            (
                "{\"kind\":\"transient\",\"deck\":\"V1 a 0 1\",\"tstep\":0.0,\
                 \"tstop\":1.0,\"nodes\":[\"a\"]}",
                "job.tstep",
            ),
        ];
        for (body, expected_field) in cases {
            let err = Job::from_json(&job(body)).unwrap_err();
            let JobError::Invalid { reason } = &err else {
                panic!("expected Invalid for {body}, got {err:?}");
            };
            assert!(
                reason.contains(expected_field),
                "expected '{expected_field}' in '{reason}' for {body}"
            );
        }
    }

    #[test]
    fn malformed_deck_is_rejected_at_validation() {
        let body = Json::obj()
            .push("kind", "op")
            .push("deck", "R1 in out not_a_number")
            .push("nodes", Json::Arr(vec![Json::Str("out".into())]));
        let err = Job::from_json(&body).unwrap_err();
        assert!(
            matches!(&err, JobError::Invalid { reason } if reason.contains("job.deck")),
            "{err:?}"
        );
    }

    #[test]
    fn op_job_runs_and_renders_deterministically() {
        let body = Json::obj().push("kind", "op").push("deck", RC_DECK).push(
            "nodes",
            Json::Arr(vec![Json::Str("in".into()), Json::Str("out".into())]),
        );
        let parsed = Job::from_json(&body).unwrap();
        assert_eq!(parsed.kind(), "op");
        let a = parsed.run().unwrap().render();
        let b = Job::from_json(&body).unwrap().run().unwrap().render();
        assert_eq!(a, b, "same job renders byte-identically");
        let tree = Json::parse(&a).unwrap();
        let out = tree
            .get("nodes")
            .and_then(|n| n.get("out"))
            .and_then(Json::as_f64)
            .unwrap();
        assert!((out - 1.0).abs() < 1e-9, "dc: capacitor open, out = in");
    }

    #[test]
    fn dc_sweep_job_reports_probed_traces() {
        let body = Json::obj()
            .push("kind", "dc_sweep")
            .push("deck", RC_DECK)
            .push("source", "V1")
            .push("from", 0.0)
            .push("to", 1.0)
            .push("step", 0.25)
            .push("nodes", Json::Arr(vec![Json::Str("out".into())]));
        let result = Job::from_json(&body).unwrap().run().unwrap();
        let sweep = result.get("sweep").and_then(Json::as_array).unwrap();
        assert_eq!(sweep.len(), 5);
        let trace = result
            .get("nodes")
            .and_then(|n| n.get("out"))
            .and_then(Json::as_array)
            .unwrap();
        assert_eq!(trace.len(), 5);
    }

    #[test]
    fn unknown_probe_node_is_an_exec_error() {
        let body = Json::obj()
            .push("kind", "op")
            .push("deck", RC_DECK)
            .push("nodes", Json::Arr(vec![Json::Str("nope".into())]));
        let err = Job::from_json(&body).unwrap().run().unwrap_err();
        assert!(
            matches!(&err, JobError::Exec { message } if message.contains("nope")),
            "{err:?}"
        );
    }

    #[test]
    fn log_grid_is_inclusive_and_monotonic() {
        let g = log_grid(1.0, 1000.0, 10);
        assert_eq!(g.len(), 31);
        assert_eq!(g[0], 1.0);
        assert_eq!(*g.last().unwrap(), 1000.0);
        assert!(g.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(log_grid(5.0, 5.0, 10), vec![5.0]);
    }

    #[test]
    fn adaptive_transient_job_reports_step_statistics() {
        let body = Json::obj()
            .push("kind", "transient")
            .push("deck", RC_DECK)
            .push("tstep", 2e-5)
            .push("tstop", 4e-3)
            .push("method", "adaptive")
            .push("nodes", Json::Arr(vec![Json::Str("out".into())]));
        let result = Job::from_json(&body).unwrap().run().unwrap();
        let steps = result.get("steps").and_then(Json::as_u64).unwrap();
        let times = result.get("times").and_then(Json::as_array).unwrap();
        assert_eq!(steps as usize + 1, times.len());
        assert!(result.get("rejects").and_then(Json::as_u64).is_some());
        // The default (and explicit "fixed") response keeps the
        // historical shape: no step-controller fields.
        for method in [None, Some("fixed")] {
            let mut fixed = Json::obj()
                .push("kind", "transient")
                .push("deck", RC_DECK)
                .push("tstep", 2e-5)
                .push("tstop", 4e-3);
            if let Some(m) = method {
                fixed = fixed.push("method", m);
            }
            let fixed = fixed.push("nodes", Json::Arr(vec![Json::Str("out".into())]));
            let result = Job::from_json(&fixed).unwrap().run().unwrap();
            assert!(result.get("steps").is_none());
            assert!(result.get("rejects").is_none());
        }
    }

    #[test]
    fn transient_method_and_options_are_validated() {
        let base = || {
            Json::obj()
                .push("kind", "transient")
                .push("deck", RC_DECK)
                .push("tstep", 2e-5)
                .push("tstop", 4e-3)
                .push("nodes", Json::Arr(vec![Json::Str("out".into())]))
        };
        let err = Job::from_json(&base().push("method", "euler")).unwrap_err();
        assert!(
            matches!(&err, JobError::Invalid { reason }
                if reason.contains("euler") && reason.contains("adaptive")),
            "{err:?}"
        );
        // Options without the adaptive method are a request bug.
        let err = Job::from_json(&base().push("options", Json::obj().push("lte_reltol", 1e-4)))
            .unwrap_err();
        assert!(
            matches!(&err, JobError::Invalid { reason } if reason.contains("adaptive")),
            "{err:?}"
        );
        // Unknown option keys are rejected by name.
        let err = Job::from_json(
            &base()
                .push("method", "adaptive")
                .push("options", Json::obj().push("reltol", 1e-4)),
        )
        .unwrap_err();
        assert!(
            matches!(&err, JobError::Invalid { reason }
                if reason.contains("job.options.reltol") && reason.contains("lte_reltol")),
            "{err:?}"
        );
        // Non-positive knob values are rejected by name.
        let err = Job::from_json(
            &base()
                .push("method", "adaptive")
                .push("options", Json::obj().push("max_step", 0.0)),
        )
        .unwrap_err();
        assert!(
            matches!(&err, JobError::Invalid { reason } if reason.contains("job.options.max_step")),
            "{err:?}"
        );
        // Valid knobs pass validation and thread into the solver.
        let ok = Job::from_json(
            &base()
                .push("method", "adaptive")
                .push("options", Json::obj().push("lte_reltol", 1e-4)),
        )
        .unwrap();
        assert!(ok.run().is_ok());
    }

    #[test]
    fn fig7_campaign_fields_are_validated() {
        // target_ci must be a number in (0, 1).
        for bad in ["0.0", "1.0", "-0.1", "\"tight\""] {
            let err = Job::from_json(&job(&format!("{{\"kind\":\"fig7\",\"target_ci\":{bad}}}")))
                .unwrap_err();
            assert!(
                matches!(&err, JobError::Invalid { reason } if reason.contains("job.target_ci")),
                "for {bad}: {err:?}"
            );
        }
        // max_devices without target_ci would be silently ignored.
        let err = Job::from_json(&job("{\"kind\":\"fig7\",\"max_devices\":5000}")).unwrap_err();
        assert!(
            matches!(&err, JobError::Invalid { reason }
                if reason.contains("job.max_devices") && reason.contains("job.target_ci")),
            "{err:?}"
        );
        // max_devices bounds.
        for bad in ["0", "2000000", "-5", "1.5"] {
            let err = Job::from_json(&job(&format!(
                "{{\"kind\":\"fig7\",\"target_ci\":0.02,\"max_devices\":{bad}}}"
            )))
            .unwrap_err();
            assert!(
                matches!(&err, JobError::Invalid { reason } if reason.contains("job.max_devices")),
                "for {bad}: {err:?}"
            );
        }
        // Valid shapes parse.
        assert!(matches!(
            Job::from_json(&job("{\"kind\":\"fig7\"}")).unwrap(),
            Job::Fig7 {
                target_ci: None,
                max_devices: None
            }
        ));
        assert!(matches!(
            Job::from_json(&job(
                "{\"kind\":\"fig7\",\"target_ci\":0.02,\"max_devices\":50000}"
            ))
            .unwrap(),
            Job::Fig7 {
                target_ci: Some(_),
                max_devices: Some(50_000)
            }
        ));
    }

    #[test]
    fn adaptive_fig7_job_reports_campaign_scalars() {
        let result = Job::from_json(&job("{\"kind\":\"fig7\",\"target_ci\":0.02}"))
            .unwrap()
            .run()
            .unwrap();
        let scalars = result.get("scalars").unwrap();
        for name in ["functional_yield", "devices", "rounds", "ci_half_width"] {
            assert!(scalars.get(name).is_some(), "missing scalar {name}");
        }
        assert_eq!(
            scalars.get("converged").and_then(Json::as_f64),
            Some(1.0),
            "0.02 is reachable well before the default cap"
        );
        // The parameterless job keeps its historical shape: no
        // campaign-sizing scalars.
        let fixed = Job::from_json(&job("{\"kind\":\"fig7\"}"))
            .unwrap()
            .run()
            .unwrap();
        assert!(fixed.get("scalars").unwrap().get("devices").is_none());
    }

    #[test]
    fn cancelled_solve_maps_to_timeout_variant() {
        let body = Json::obj()
            .push("kind", "transient")
            .push("deck", RC_DECK)
            .push("tstep", 1e-6)
            .push("tstop", 1e-2)
            .push("nodes", Json::Arr(vec![Json::Str("out".into())]));
        let parsed = Job::from_json(&body).unwrap();
        let token = carbon_runtime::CancelToken::new();
        token.cancel();
        let err = carbon_runtime::cancel::scope(&token, || parsed.run()).unwrap_err();
        assert!(matches!(err, JobError::Cancelled { .. }), "{err:?}");
    }
}

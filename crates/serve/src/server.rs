//! The job server: acceptor, connection threads, and a deterministic
//! worker pool over the bounded queue.
//!
//! # Threading model
//!
//! One acceptor thread owns the listener; each accepted connection gets
//! a thread that reads frames *sequentially* — a connection has at most
//! one request in flight, so per-connection response order is trivially
//! the request order, and concurrency comes from the number of
//! connections. Jobs are handed to a fixed pool of worker threads
//! through the bounded queue; the pool is sized like the carbon-runtime
//! executor (`CARBON_THREADS` or the machine's parallelism) so service
//! workers and the executor's own fan-out (inside `fig7`-style jobs)
//! follow one configuration.
//!
//! # Determinism
//!
//! Workers never contribute timing or identity to a response body:
//! results come from deterministic analyses, floats render via the
//! shortest-round-trip formatter, and object fields keep a fixed
//! insertion order. The same request body therefore yields the same
//! response bytes at any worker count, connection count, or arrival
//! order. (`busy` responses are the one exception — admission is
//! inherently load-dependent — and carry that dependence only in the
//! reported queue depth.)
//!
//! # Backpressure and deadlines
//!
//! Admission control is [`crate::queue::Bounded::try_push`]: a full
//! queue answers `busy` immediately instead of stalling the connection.
//! Each admitted job runs under a [`CancelToken`] scope whose deadline
//! is the request's `timeout_ms` (or the server default); solver
//! checkpoints inside carbon-spice turn an expired deadline into a
//! `timeout` response between Newton iterations or sweep points.
//!
//! # Shutdown
//!
//! [`Server::shutdown`] is a graceful drain: stop accepting, let
//! connection threads finish their in-flight request, close the queue,
//! and join the workers — every admitted job is answered before the
//! pool exits.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::SyncSender;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use carbon_json::Json;
use carbon_runtime::CancelToken;

use crate::cache::{FlightGuard, Lookup, ResponseCache, WaitOutcome};
use crate::job::{Job, JobError};
use crate::metrics::ServeMetrics;
use crate::protocol::{write_frame, FrameError, MAX_FRAME_LEN};
use crate::queue::Bounded;

/// How long a blocked socket read waits before re-checking the
/// shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// Default response-cache byte budget: 64 MiB. Typical figure-job
/// responses are a few kilobytes, so the default holds on the order of
/// ten thousand distinct decks before evicting.
pub const DEFAULT_CACHE_BYTES: u64 = 64 * 1024 * 1024;

/// Smallest enabled cache the server accepts. Below this the 16-way
/// sharding leaves shards too small to hold even one typical response,
/// which silently degrades to a cache that never stores anything.
pub const MIN_CACHE_BYTES: u64 = 4096;

/// Tuning knobs for [`Server::start`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing jobs. Defaults to the carbon-runtime
    /// executor's thread count (`CARBON_THREADS` or machine
    /// parallelism).
    pub workers: usize,
    /// Bounded-queue depth: jobs admitted but not yet running. Requests
    /// arriving beyond this get `busy` responses.
    pub queue_depth: usize,
    /// Deadline applied to jobs whose request carries no `timeout_ms`.
    /// `None` means no default deadline.
    pub default_timeout_ms: Option<u64>,
    /// Byte budget of the content-addressed response cache.
    /// `0` disables caching (and single-flight deduplication) entirely;
    /// any other value must be at least [`MIN_CACHE_BYTES`]. Defaults
    /// to [`DEFAULT_CACHE_BYTES`].
    pub cache_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: carbon_runtime::Executor::new().threads(),
            queue_depth: 64,
            default_timeout_ms: None,
            cache_bytes: DEFAULT_CACHE_BYTES,
        }
    }
}

/// Monotonic counters describing a server's lifetime so far.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Connections accepted.
    pub connections: u64,
    /// Jobs admitted to the queue.
    pub accepted: u64,
    /// Requests bounced with a `busy` response.
    pub rejected_busy: u64,
    /// Jobs that hit their deadline and answered `timeout`.
    pub timed_out: u64,
    /// Jobs that answered `ok` — freshly solved or served from the
    /// response cache.
    pub completed: u64,
    /// Jobs that failed in validation or execution (`error` responses).
    pub errored: u64,
    /// Frames that were not valid request envelopes.
    pub protocol_errors: u64,
    /// Admitted jobs served from the response cache (directly or by
    /// waiting on an identical in-flight solve).
    pub cache_hits: u64,
    /// Admitted jobs a worker solved itself — counted whether the cache
    /// is enabled or not, so `cache_hits + cache_misses == accepted`
    /// always holds.
    pub cache_misses: u64,
    /// Jobs that coalesced onto another worker's identical in-flight
    /// solve instead of solving themselves.
    pub cache_coalesced: u64,
    /// `ok` responses stored into the cache.
    pub cache_insertions: u64,
    /// Bytes evicted from the cache to respect the byte budget.
    pub cache_evicted_bytes: u64,
}

/// An admitted job travelling from a connection thread to a worker.
struct Ticket {
    /// The request's `id`, echoed verbatim into the response.
    id: Json,
    job: Job,
    /// Canonical job key: FNV-1a-64 over the canonical (sorted-key)
    /// rendering of the request's `job` field — `id` and `timeout_ms`
    /// never participate, so identical decks from different clients
    /// share a cache entry.
    key: u64,
    timeout_ms: Option<u64>,
    enqueued: Instant,
    /// Rendezvous back to the connection thread. Capacity 1, so the
    /// worker's send never blocks even if the connection died.
    resp: SyncSender<Vec<u8>>,
}

/// A running job server. Dropping it performs the graceful drain.
pub struct Server {
    addr: SocketAddr,
    queue: Arc<Bounded<Ticket>>,
    shutdown: Arc<AtomicBool>,
    metrics: Arc<ServeMetrics>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    config: ServerConfig,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port) and starts the
    /// acceptor and worker pool.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding, and rejects a
    /// `cache_bytes` between `1` and [`MIN_CACHE_BYTES`] (a budget
    /// that small silently never stores anything; use `0` to disable
    /// caching).
    pub fn start(addr: impl ToSocketAddrs, config: ServerConfig) -> std::io::Result<Self> {
        if config.cache_bytes != 0 && config.cache_bytes < MIN_CACHE_BYTES {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!(
                    "config.cache_bytes must be 0 (cache disabled) or at least \
                     {MIN_CACHE_BYTES}, got {}",
                    config.cache_bytes
                ),
            ));
        }
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let queue = Arc::new(Bounded::new(config.queue_depth));
        let shutdown = Arc::new(AtomicBool::new(false));
        // Every instrument is pre-registered here, so the `stats`
        // snapshot has the same structure on a fresh server as on a
        // loaded one.
        let metrics = Arc::new(ServeMetrics::new(config.workers.max(1), config.queue_depth));
        let cache = (config.cache_bytes > 0).then(|| ResponseCache::new(config.cache_bytes));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let metrics = Arc::clone(&metrics);
                let cache = cache.clone();
                std::thread::spawn(move || worker_loop(&queue, &metrics, cache.as_ref()))
            })
            .collect();

        let acceptor = {
            let queue = Arc::clone(&queue);
            let shutdown = Arc::clone(&shutdown);
            let metrics = Arc::clone(&metrics);
            let default_timeout_ms = config.default_timeout_ms;
            std::thread::spawn(move || {
                accept_loop(&listener, &queue, &shutdown, &metrics, default_timeout_ms);
            })
        };

        Ok(Self {
            addr,
            queue,
            shutdown,
            metrics,
            acceptor: Some(acceptor),
            workers,
            config,
        })
    }

    /// The bound address (with the resolved ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The configuration the server was started with.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// A snapshot of the lifetime counters.
    pub fn stats(&self) -> ServerStats {
        self.metrics.server_stats()
    }

    /// Graceful drain: stop accepting, finish in-flight requests,
    /// run every admitted job, join all threads. Returns the final
    /// counters.
    pub fn shutdown(mut self) -> ServerStats {
        self.drain();
        self.metrics.server_stats()
    }

    fn drain(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        // Only after every connection thread has stopped producing may
        // the queue close; workers then drain what was admitted.
        self.queue.close();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

fn accept_loop(
    listener: &TcpListener,
    queue: &Arc<Bounded<Ticket>>,
    shutdown: &Arc<AtomicBool>,
    metrics: &Arc<ServeMetrics>,
    default_timeout_ms: Option<u64>,
) {
    let mut connections: Vec<JoinHandle<()>> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Responses are single small frames; Nagle + delayed
                // ACK would add ~40 ms to every request.
                let _ = stream.set_nodelay(true);
                metrics.connections.incr();
                let queue = Arc::clone(queue);
                let shutdown = Arc::clone(shutdown);
                let metrics = Arc::clone(metrics);
                connections.push(std::thread::spawn(move || {
                    connection_loop(stream, &queue, &shutdown, &metrics, default_timeout_ms);
                }));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => break,
        }
        // Reap finished connection threads so a long-lived server does
        // not accumulate handles.
        connections.retain(|h| !h.is_finished());
    }
    for h in connections {
        let _ = h.join();
    }
}

fn connection_loop(
    mut stream: TcpStream,
    queue: &Bounded<Ticket>,
    shutdown: &AtomicBool,
    metrics: &ServeMetrics,
    default_timeout_ms: Option<u64>,
) {
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    loop {
        let body = match read_frame_interruptible(&mut stream, shutdown) {
            Ok(Some(body)) => body,
            Ok(None) | Err(_) => return,
        };
        let response = match parse_envelope(&body, default_timeout_ms) {
            // ping/stats are answered here, on the connection thread,
            // before admission — a full queue cannot starve them.
            Ok((id, job, _, _)) if job.is_fast_path() => {
                fast_path_response(&id, &job, queue, metrics)
            }
            Ok((id, job, key, timeout_ms)) => dispatch(id, job, key, timeout_ms, queue, metrics),
            Err(resp) => {
                metrics.protocol_errors.incr();
                resp
            }
        };
        if write_frame(&mut stream, &response).is_err() {
            return;
        }
    }
}

/// Answers the admission-free kinds (`ping`, `stats`) directly on the
/// connection thread. These responses intentionally carry timing
/// (uptime, latency aggregates) — they are operational introspection,
/// not simulation results, and are excluded from the byte-identity
/// contract the queued kinds keep.
fn fast_path_response(
    id: &Json,
    job: &Job,
    queue: &Bounded<Ticket>,
    metrics: &ServeMetrics,
) -> Vec<u8> {
    match job {
        Job::Ping => {
            metrics.ping.incr();
            let result = Json::obj()
                .push("version", env!("CARGO_PKG_VERSION"))
                .push("uptime_ms", metrics.uptime_ms());
            ok_response(id, "ping", &result)
        }
        Job::Stats => {
            metrics.stats.incr();
            let (uptime_ms, snapshot) = metrics.merged_snapshot(queue.depth());
            let mut result = Json::obj().push("uptime_ms", uptime_ms);
            // Splice the snapshot's fixed-order sections (counters,
            // gauges, histograms) into the result object.
            if let Json::Obj(sections) = snapshot.to_json() {
                for (key, value) in sections {
                    result = result.push(&key, value);
                }
            }
            ok_response(id, "stats", &result)
        }
        _ => unreachable!("fast_path_response called for a queued job kind"),
    }
}

/// Validates one request envelope into `(id, job, key, timeout_ms)`,
/// where `key` is the canonical content key of the `job` field;
/// failures come back as ready-to-send response bytes.
fn parse_envelope(
    body: &[u8],
    default_timeout_ms: Option<u64>,
) -> Result<(Json, Job, u64, Option<u64>), Vec<u8>> {
    let text = std::str::from_utf8(body)
        .map_err(|_| error_response(&Json::Null, "parse", "request is not UTF-8"))?;
    let envelope =
        Json::parse(text).map_err(|e| error_response(&Json::Null, "parse", &e.to_string()))?;
    let id = envelope
        .get("id")
        .cloned()
        .ok_or_else(|| error_response(&Json::Null, "validate", "request.id is required"))?;
    if matches!(id, Json::Arr(_) | Json::Obj(_)) {
        return Err(error_response(
            &Json::Null,
            "validate",
            "request.id must be a scalar",
        ));
    }
    let timeout_ms = match envelope.get("timeout_ms") {
        None | Some(Json::Null) => default_timeout_ms,
        Some(v) => match v.as_u64() {
            Some(ms) if ms > 0 => Some(ms),
            _ => {
                return Err(error_response(
                    &id,
                    "validate",
                    "request.timeout_ms must be a positive integer",
                ))
            }
        },
    };
    let job_field = envelope
        .get("job")
        .ok_or_else(|| error_response(&id, "validate", "request.job is required"))?;
    let job = Job::from_json(job_field).map_err(|e| match e {
        JobError::Invalid { reason } => error_response(&id, "validate", &reason),
        other => error_response(&id, "validate", &other.to_string()),
    })?;
    // Content identity of the work itself: the `job` field only, in
    // canonical (sorted-key) form. `id` and `timeout_ms` are excluded —
    // an `ok` response is a pure function of the job body, so neither
    // may split the cache key space.
    let key = job_field.canonical_key();
    Ok((id, job, key, timeout_ms))
}

/// Admits the job (or answers `busy`) and waits for the worker's
/// response.
fn dispatch(
    id: Json,
    job: Job,
    key: u64,
    timeout_ms: Option<u64>,
    queue: &Bounded<Ticket>,
    metrics: &ServeMetrics,
) -> Vec<u8> {
    let (resp_tx, resp_rx) = std::sync::mpsc::sync_channel(1);
    let ticket = Ticket {
        id: id.clone(),
        job,
        key,
        timeout_ms,
        enqueued: Instant::now(),
        resp: resp_tx,
    };
    match queue.try_push(ticket) {
        Ok(depth) => {
            metrics.accepted.incr();
            metrics
                .queue_depth
                .set(i64::try_from(depth).unwrap_or(i64::MAX));
            carbon_trace::counter!("serve.accepted");
            carbon_trace::gauge!("serve.queue_depth", depth);
            resp_rx.recv().unwrap_or_else(|_| {
                error_response(&id, "exec", "worker dropped the job (server shutting down)")
            })
        }
        Err(_rejected) => {
            metrics.rejected_busy.incr();
            carbon_trace::counter!("serve.rejected_busy");
            busy_response(&id, queue.depth(), queue.capacity())
        }
    }
}

/// How one admitted ticket resolved against the response cache.
enum CacheDecision {
    /// Serve these bytes (already id-spliced); no solve happens.
    Served(Vec<u8>),
    /// The waiter's deadline expired before its leader finished.
    WaitTimedOut,
    /// Solve it ourselves. The guard is `Some` when this worker leads a
    /// flight other workers may be waiting on, `None` when the cache is
    /// disabled or the job is not cacheable.
    Solve(Option<FlightGuard>),
}

/// Classifies one ticket against the cache: hit, coalesced wait, or
/// leader/solo solve. Loops because a leader may fail — the first
/// retrying waiter then becomes the new leader.
fn resolve_cache(
    cache: Option<&Arc<ResponseCache>>,
    ticket: &Ticket,
    metrics: &ServeMetrics,
) -> CacheDecision {
    let Some(cache) = cache.filter(|_| ticket.job.is_cacheable()) else {
        return CacheDecision::Solve(None);
    };
    let mut counted_coalesced = false;
    loop {
        match cache.begin(ticket.key) {
            Lookup::Hit(suffix) => {
                return CacheDecision::Served(splice_cached(&ticket.id, &suffix))
            }
            Lookup::Lead(guard) => return CacheDecision::Solve(Some(guard)),
            Lookup::Wait(flight) => {
                if !counted_coalesced {
                    metrics.cache_coalesced.incr();
                    counted_coalesced = true;
                }
                // The waiter's own deadline still applies while the
                // leader solves, mirroring the CancelToken a solving
                // worker would run under.
                let deadline = ticket
                    .timeout_ms
                    .map(|ms| Instant::now() + Duration::from_millis(ms));
                match flight.wait(deadline) {
                    WaitOutcome::Ready(suffix) => {
                        return CacheDecision::Served(splice_cached(&ticket.id, &suffix))
                    }
                    WaitOutcome::TimedOut => return CacheDecision::WaitTimedOut,
                    WaitOutcome::LeaderFailed => {} // retry: maybe lead now
                }
            }
        }
    }
}

fn worker_loop(
    queue: &Bounded<Ticket>,
    metrics: &ServeMetrics,
    cache: Option<&Arc<ResponseCache>>,
) {
    while let Some(ticket) = queue.pop() {
        metrics
            .queue_depth
            .set(i64::try_from(queue.depth()).unwrap_or(i64::MAX));
        let queue_ns = u64::try_from(ticket.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let kind = ticket.job.kind();
        if let Some(hist) = metrics.queue_wait(kind) {
            hist.record(queue_ns);
        }
        let mut span = carbon_trace::span!("serve.request");
        if span.is_live() {
            span.record("kind", kind);
            span.record("queue_ns", queue_ns);
        }
        // Every admitted ticket is classified exactly once as a cache
        // hit (served from stored bytes or a coalesced flight) or a
        // miss (this worker produces the response itself, including
        // the waiter-deadline edge) — so hit + miss == accepted.
        let mut guard = match resolve_cache(cache, &ticket, metrics) {
            CacheDecision::Served(response) => {
                metrics.cache_hit.incr();
                metrics.completed.incr();
                carbon_trace::counter!("serve.cache.hit");
                metrics.cache_hit_latency.record(
                    u64::try_from(ticket.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX),
                );
                if span.is_live() {
                    span.record("status", "ok");
                    span.record("cache", "hit");
                    span.record("resp_bytes", response.len());
                }
                drop(span);
                let _ = ticket.resp.send(response);
                continue;
            }
            CacheDecision::WaitTimedOut => {
                metrics.cache_miss.incr();
                metrics.timed_out.incr();
                carbon_trace::counter!("serve.timed_out");
                let response = timeout_response(
                    &ticket.id,
                    kind,
                    "deadline expired while coalesced onto an identical in-flight job",
                );
                if let Some(hist) = metrics.latency(kind) {
                    hist.record(
                        u64::try_from(ticket.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX),
                    );
                }
                if span.is_live() {
                    span.record("status", "timeout");
                    span.record("resp_bytes", response.len());
                }
                drop(span);
                let _ = ticket.resp.send(response);
                continue;
            }
            CacheDecision::Solve(guard) => {
                metrics.cache_miss.incr();
                guard
            }
        };
        let token = match ticket.timeout_ms {
            Some(ms) => CancelToken::with_timeout(Duration::from_millis(ms)),
            None => CancelToken::new(),
        };
        let exec_started = Instant::now();
        let outcome = carbon_runtime::cancel::scope(&token, || ticket.job.run());
        metrics
            .worker_busy_ns
            .add(u64::try_from(exec_started.elapsed().as_nanos()).unwrap_or(u64::MAX));
        let (status, response) = match outcome {
            Ok(result) => {
                metrics.completed.incr();
                let response = ok_response(&ticket.id, kind, &result);
                // Only `ok` responses enter the cache: the stored value
                // is everything after the `{"id":<id>` prefix, so a
                // later hit splices its own id in front and is
                // byte-identical to this solve by construction.
                if let Some(guard) = guard.take() {
                    let prefix_len = 6 + ticket.id.render().len();
                    let insert = guard.complete_ok(response[prefix_len..].to_vec());
                    if insert.inserted {
                        metrics.cache_insert.incr();
                    }
                    if insert.evicted_bytes > 0 {
                        metrics.cache_evict_bytes.add(insert.evicted_bytes);
                    }
                    if let Some(cache) = cache {
                        metrics
                            .cache_bytes
                            .set(i64::try_from(cache.bytes()).unwrap_or(i64::MAX));
                    }
                }
                ("ok", response)
            }
            Err(JobError::Cancelled { message }) => {
                metrics.timed_out.incr();
                carbon_trace::counter!("serve.timed_out");
                ("timeout", timeout_response(&ticket.id, kind, &message))
            }
            Err(e) => {
                metrics.errored.incr();
                ("error", error_response(&ticket.id, "exec", &e.to_string()))
            }
        };
        // A failed leader (timeout/error) publishes failure so waiters
        // retry; nothing is cached.
        if let Some(guard) = guard.take() {
            guard.fail();
        }
        // End-to-end latency: admission to response, queue wait
        // included — what a client experiences. Only misses land here;
        // hits go to `serve.cache.hit_latency_ns` so cached repeats
        // cannot skew the solve-latency baselines.
        if let Some(hist) = metrics.latency(kind) {
            hist.record(u64::try_from(ticket.enqueued.elapsed().as_nanos()).unwrap_or(u64::MAX));
        }
        if span.is_live() {
            span.record("status", status);
            span.record("resp_bytes", response.len());
        }
        drop(span);
        // The connection may have vanished; the response is then simply
        // dropped (capacity-1 channel: never blocks).
        let _ = ticket.resp.send(response);
    }
}

/// Reassembles a full response from a cached suffix: `{"id":` + the
/// request's own id + the stored bytes (which begin at the comma after
/// the leader's id and run to the closing brace).
fn splice_cached(id: &Json, suffix: &[u8]) -> Vec<u8> {
    let id_rendered = id.render();
    let mut out = Vec::with_capacity(6 + id_rendered.len() + suffix.len());
    out.extend_from_slice(b"{\"id\":");
    out.extend_from_slice(id_rendered.as_bytes());
    out.extend_from_slice(suffix);
    out
}

fn ok_response(id: &Json, kind: &str, result: &Json) -> Vec<u8> {
    Json::obj()
        .push("id", id.clone())
        .push("status", "ok")
        .push("kind", kind)
        .push("result", result.clone())
        .render()
        .into_bytes()
}

fn error_response(id: &Json, stage: &str, message: &str) -> Vec<u8> {
    Json::obj()
        .push("id", id.clone())
        .push("status", "error")
        .push("stage", stage)
        .push("message", message)
        .render()
        .into_bytes()
}

fn timeout_response(id: &Json, kind: &str, message: &str) -> Vec<u8> {
    Json::obj()
        .push("id", id.clone())
        .push("status", "timeout")
        .push("kind", kind)
        .push("message", message)
        .render()
        .into_bytes()
}

fn busy_response(id: &Json, depth: usize, capacity: usize) -> Vec<u8> {
    Json::obj()
        .push("id", id.clone())
        .push("status", "busy")
        .push("queue_depth", depth)
        .push("queue_capacity", capacity)
        .push("message", "queue full, retry later")
        .render()
        .into_bytes()
}

/// Like [`crate::protocol::read_frame`], but built for a socket with a
/// short read timeout: between frames a timeout re-checks the shutdown
/// flag (and abandons the connection once it is set); inside a frame
/// the read keeps waiting unless the server is shutting down.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    shutdown: &AtomicBool,
) -> Result<Option<Vec<u8>>, FrameError> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < header.len() {
        match stream.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                )
                .into())
            }
            Ok(n) => filled += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    if filled == 0 {
                        return Ok(None); // clean: between frames
                    }
                    return Err(e.into()); // drain cut a partial frame
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    let declared = u32::from_be_bytes(header) as usize;
    if declared > MAX_FRAME_LEN {
        return Err(FrameError::TooLarge { declared });
    }
    let mut body = vec![0u8; declared];
    let mut got = 0;
    while got < declared {
        match stream.read(&mut body[got..]) {
            Ok(0) => {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "eof inside frame body",
                )
                .into())
            }
            Ok(n) => got += n,
            Err(e)
                if matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                if shutdown.load(Ordering::SeqCst) {
                    return Err(e.into());
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e.into()),
        }
    }
    Ok(Some(body))
}

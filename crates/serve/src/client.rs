//! A minimal blocking client: one connection, one request in flight.
//!
//! Used by the integration tests and by `carbon-bench serve-load`. The
//! client is intentionally dumb — it frames, sends, and waits — so that
//! load-generator concurrency comes from running many clients on many
//! threads, mirroring how real callers would drive the service.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use carbon_json::{Json, ParseError};

use crate::protocol::{read_frame, write_frame, FrameError};

/// Client-side failures.
#[derive(Debug)]
pub enum ClientError {
    /// Socket or framing failure.
    Frame(FrameError),
    /// The server closed the connection instead of responding.
    Closed,
    /// The response body was not valid JSON — a protocol violation.
    BadResponse(ParseError),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Frame(e) => write!(f, "client frame error: {e}"),
            Self::Closed => write!(f, "server closed the connection before responding"),
            Self::BadResponse(e) => write!(f, "malformed response body: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        Self::Frame(e)
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        Self::Frame(FrameError::Io(e))
    }
}

/// A blocking connection to a job server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects to a server.
    ///
    /// # Errors
    ///
    /// Propagates socket errors.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self { stream })
    }

    /// Sends raw request bytes and returns the raw response bytes —
    /// the primitive the determinism tests compare byte for byte.
    ///
    /// # Errors
    ///
    /// [`ClientError::Closed`] if the server hangs up before
    /// responding; framing errors otherwise.
    pub fn call_raw(&mut self, body: &[u8]) -> Result<Vec<u8>, ClientError> {
        write_frame(&mut self.stream, body).map_err(FrameError::Io)?;
        read_frame(&mut self.stream)?.ok_or(ClientError::Closed)
    }

    /// Sends a request envelope and parses the response.
    ///
    /// # Errors
    ///
    /// As [`Client::call_raw`], plus [`ClientError::BadResponse`] if
    /// the response is not valid JSON.
    pub fn call(&mut self, request: &Json) -> Result<Json, ClientError> {
        let response = self.call_raw(request.render().as_bytes())?;
        let text = std::str::from_utf8(&response).map_err(|_| {
            ClientError::BadResponse(ParseError {
                offset: 0,
                reason: "response is not UTF-8".to_owned(),
            })
        })?;
        Json::parse(text).map_err(ClientError::BadResponse)
    }
}

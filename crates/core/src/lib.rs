//! Experiment layer: every figure and quantitative claim of
//! *Kreupl, "Advancing CMOS with Carbon Electronics", DATE 2014*,
//! regenerated from the workspace's own substrates.
//!
//! One module per artifact (see `DESIGN.md` §3 for the experiment
//! index):
//!
//! | Module | Paper artifact |
//! |--------|----------------|
//! | [`fig1`] | Fig. 1 — simulated CNT-FET vs GNR-FET, same 0.56 eV gap |
//! | [`fig2`] | Fig. 2 — inverter VTCs with/without current saturation |
//! | [`fig3`] | Fig. 3 — GAA electrostatics + Skotnicki–Boeuf dark space |
//! | [`fig4`] | Fig. 4 — contact resistance degrading the CNT-FET |
//! | [`fig5`] | Fig. 5 — Ion vs gate length benchmark (CNT/Si/III-V) |
//! | [`fig6`] | Fig. 6 — CNT tunnel FET with sub-thermal swing |
//! | [`cascade`] | §II — signal regeneration in cascaded logic |
//! | [`claims`] | §II/§III scalar claims (trigate vs CNT, 11 kΩ, ...) |
//! | [`rf`] | §II RF argument — no saturation, no voltage gain, no f_max |
//! | [`ablations`] | design-knob sweeps behind each figure |
//! | [`variability_logic`] | §V dispersion → noise-margin Monte-Carlo |
//! | [`fig7_stats`] | §V — Park-style 10,000-device statistics |
//! | [`fig8_computer`] | §V — the one-bit SUBNEG CNT computer |
//!
//! Every module exposes `run()` returning a typed result whose
//! `Display` prints the same rows/series the paper reports; the
//! `report` binary (`cargo run -p carbon-core --bin report`) prints all
//! of them, which is how `EXPERIMENTS.md` is produced.

#![deny(missing_docs)]

pub mod ablations;
pub mod cascade;
pub mod claims;
pub mod error;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7_stats;
pub mod fig8_computer;
pub mod jobs;
pub mod refdata;
pub mod rf;
pub mod table;
pub mod variability_logic;

pub use error::CoreError;
pub use table::Table;

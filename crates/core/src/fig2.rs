//! Fig. 2 — SPICE simulation of inverter voltage-transfer curves with
//! and without current saturation.
//!
//! Reproduced claims:
//!
//! * the saturating inverter comes "very close to the ideal behavior"
//!   with noise margins of "almost 0.4 Volt at the high as well as at
//!   the low voltage side";
//! * the non-saturating inverter's "absolute gain ... never exceeds
//!   unity and therefore the noise margin is almost zero";
//! * the non-saturating pair is "conductive almost during the whole
//!   transition and would burn dc power";
//! * the conclusion survives constant-field scaling to lower V_DD.

use carbon_logic::{Inverter, NoiseMargins, Vtc};
use carbon_units::{Capacitance, Time};

use crate::error::CoreError;
use crate::table::{num, Table};

/// Results of the Fig. 2 experiment.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// VTC of the saturating (well-behaved) inverter.
    pub vtc_saturating: Vtc,
    /// VTC of the non-saturating (real-GNR-like) inverter.
    pub vtc_non_saturating: Vtc,
    /// Noise margins of the saturating inverter.
    pub margins_saturating: NoiseMargins,
    /// Noise margins of the non-saturating inverter.
    pub margins_non_saturating: NoiseMargins,
    /// Peak |gain| of each inverter (saturating, non-saturating).
    pub max_gain: [f64; 2],
    /// Fraction of the sweep with supply current above half its peak.
    pub conduction_fraction: [f64; 2],
    /// Average propagation delay of the saturating inverter into the
    /// paper's 10 fF load, s.
    pub stage_delay_s: f64,
}

/// Runs the Fig. 2 experiment.
///
/// # Errors
///
/// Propagates circuit-simulation failures.
pub fn run() -> Result<Fig2, CoreError> {
    let mut fig_span = carbon_trace::span!("core.fig2");
    let good = Inverter::fig2_saturating();
    let bad = Inverter::fig2_non_saturating();
    let vtc_saturating = good.vtc(101)?;
    let vtc_non_saturating = bad.vtc(101)?;
    let margins_saturating = vtc_saturating.noise_margins();
    let margins_non_saturating = vtc_non_saturating.noise_margins();
    let max_gain = [
        vtc_saturating.max_abs_gain(),
        vtc_non_saturating.max_abs_gain(),
    ];
    let conduction_fraction = [
        vtc_saturating.conduction_fraction(),
        vtc_non_saturating.conduction_fraction(),
    ];
    let delays = good.propagation_delay(
        Capacitance::from_femtofarads(10.0),
        Time::from_nanoseconds(1.0),
    )?;
    if fig_span.is_live() {
        fig_span.record("vtc_points", vtc_saturating.vin().len());
        fig_span.record("max_gain_sat", max_gain[0]);
        fig_span.record("max_gain_nonsat", max_gain[1]);
        fig_span.record("stage_delay_ps", delays.average().seconds() * 1e12);
    }
    Ok(Fig2 {
        vtc_saturating,
        vtc_non_saturating,
        margins_saturating,
        margins_non_saturating,
        max_gain,
        conduction_fraction,
        stage_delay_s: delays.average().seconds(),
    })
}

impl std::fmt::Display for Fig2 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Fig. 2(c)/(d) — inverter voltage-transfer curves (V_DD = 1 V, 10 fF load)",
            &[
                "V_in [V]",
                "V_out saturating [V]",
                "V_out non-saturating [V]",
            ],
        );
        for k in (0..self.vtc_saturating.vin().len()).step_by(10) {
            t.push_owned_row(vec![
                num(self.vtc_saturating.vin()[k], 2),
                num(self.vtc_saturating.vout()[k], 3),
                num(self.vtc_non_saturating.vout()[k], 3),
            ]);
        }
        writeln!(f, "{t}")?;
        let mut s = Table::new(
            "Fig. 2 — summary",
            &["metric", "saturating FETs", "non-saturating FETs", "paper"],
        );
        s.push_owned_row(vec![
            "max |gain|".into(),
            num(self.max_gain[0], 2),
            num(self.max_gain[1], 2),
            "≫1 vs <1".into(),
        ]);
        s.push_owned_row(vec![
            "NM_L [V]".into(),
            num(self.margins_saturating.low, 2),
            num(self.margins_non_saturating.low, 2),
            "≈0.4 vs ≈0".into(),
        ]);
        s.push_owned_row(vec![
            "NM_H [V]".into(),
            num(self.margins_saturating.high, 2),
            num(self.margins_non_saturating.high, 2),
            "≈0.4 vs ≈0".into(),
        ]);
        s.push_owned_row(vec![
            "conduction fraction".into(),
            num(self.conduction_fraction[0], 2),
            num(self.conduction_fraction[1], 2),
            "short pulse vs whole transition".into(),
        ]);
        s.push_owned_row(vec![
            "stage delay @10 fF".into(),
            format!("{:.1} ps", self.stage_delay_s * 1e12),
            "—".into(),
            "(dynamic check)".into(),
        ]);
        writeln!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_fig2_verdict() {
        let fig = run().unwrap();
        assert!(fig.max_gain[0] > 3.0, "saturating gain {}", fig.max_gain[0]);
        assert!(
            fig.max_gain[1] < 1.0,
            "non-saturating gain {}",
            fig.max_gain[1]
        );
        assert!(fig.margins_saturating.low > 0.25);
        assert!(fig.margins_saturating.high > 0.25);
        assert_eq!(fig.margins_non_saturating.low, 0.0);
        assert_eq!(fig.margins_non_saturating.high, 0.0);
    }

    #[test]
    fn short_circuit_conduction_contrast() {
        let fig = run().unwrap();
        assert!(
            fig.conduction_fraction[1] > 1.7 * fig.conduction_fraction[0],
            "non-saturating {} vs saturating {}",
            fig.conduction_fraction[1],
            fig.conduction_fraction[0]
        );
        assert!(fig.conduction_fraction[1] > 0.5, "most of the transition");
    }

    #[test]
    fn delay_is_picosecond_scale() {
        let fig = run().unwrap();
        let ps = fig.stage_delay_s * 1e12;
        assert!((1.0..100.0).contains(&ps), "delay {ps} ps");
    }

    #[test]
    fn report_renders() {
        let s = run().unwrap().to_string();
        assert!(s.contains("noise") || s.contains("NM_L"));
        assert!(s.contains("Fig. 2"));
    }
}

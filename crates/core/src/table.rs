//! Plain-text tables for experiment reports.

use std::fmt;

/// A titled, column-aligned text table.
///
/// # Examples
///
/// ```
/// use carbon_core::Table;
///
/// let mut t = Table::new("Demo", &["device", "I_on"]);
/// t.push_row(&["CNT", "20 µA"]);
/// let s = t.to_string();
/// assert!(s.contains("Demo") && s.contains("20 µA"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self {
            title: title.to_owned(),
            headers: headers.iter().map(|s| (*s).to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_row(&mut self, cells: &[&str]) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows
            .push(cells.iter().map(|s| (*s).to_owned()).collect());
    }

    /// Appends a row of owned strings.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn push_owned_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        writeln!(f, "### {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (w, cell) in widths.iter().zip(cells) {
                let pad = w - cell.chars().count();
                write!(f, " {}{} |", cell, " ".repeat(pad))?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        write!(f, "|")?;
        for w in &widths {
            write!(f, "{}|", "-".repeat(w + 2))?;
        }
        writeln!(f)?;
        for row in &self.rows {
            line(f, row)?;
        }
        Ok(())
    }
}

/// Formats an `f64` with `digits` significant decimals, trimming noise.
pub fn num(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

/// Formats a current in amperes as µA with two decimals.
pub fn microamps(amps: f64) -> String {
    format!("{:.2} µA", amps * 1e6)
}

/// Formats a value in scientific notation with two significant decimals.
pub fn sci(value: f64) -> String {
    format!("{value:.2e}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_markdown() {
        let mut t = Table::new("T", &["a", "long header"]);
        t.push_row(&["x", "1"]);
        t.push_owned_row(vec!["longer cell".into(), "2".into()]);
        let s = t.to_string();
        assert!(s.starts_with("### T\n"));
        assert!(s.contains("| a           | long header |"));
        assert!(s.contains("| longer cell | 2           |"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn rejects_mismatched_rows() {
        let mut t = Table::new("T", &["a", "b"]);
        t.push_row(&["only one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(num(0.39942, 2), "0.40");
        assert_eq!(microamps(6.6e-5), "66.00 µA");
        assert_eq!(sci(123456.0), "1.23e5");
    }
}

//! §II — signal regeneration in cascaded logic.
//!
//! The paper's final blow against non-saturating devices: "the dynamic
//! behavior of cascaded logic circuits based on FETs without saturation
//! would be difficult to predict, as there are no defined logical 'high'
//! and 'low' levels and the transition is very smooth."
//!
//! This experiment drives a *degraded* input (a high that sags to 65 %
//! of the rail) into a chain of inverters and records the level at every
//! stage:
//!
//! * with saturating devices, each stage regenerates — the signal snaps
//!   back to the rails within a stage or two and stays there;
//! * with non-saturating devices, gain < 1 means every stage *loses*
//!   level: the chain decays toward the mid-rail fixed point and logical
//!   values cease to exist.

use std::sync::Arc;

use carbon_devices::{AlphaPowerFet, Fet, LinearGnrFet};
use carbon_spice::Circuit;

use crate::error::CoreError;
use crate::table::{num, Table};

/// Per-stage levels of one cascade.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeTrace {
    /// Voltage at the input and after each stage, V.
    pub levels: Vec<f64>,
    /// Distance from the ideal alternating rail at each stage, V.
    pub rail_error: Vec<f64>,
}

/// Results of the cascade experiment.
#[derive(Debug, Clone)]
pub struct Cascade {
    /// Supply voltage, V.
    pub vdd: f64,
    /// The degraded input level, V.
    pub input: f64,
    /// Saturating-device chain.
    pub saturating: CascadeTrace,
    /// Non-saturating-device chain.
    pub non_saturating: CascadeTrace,
}

/// Chain length (stages).
pub const STAGES: usize = 6;

fn chain_levels(
    nfet: Arc<dyn Fet>,
    pfet: Arc<dyn Fet>,
    vdd: f64,
    input: f64,
) -> Result<CascadeTrace, CoreError> {
    let mut ckt = Circuit::new();
    ckt.voltage_source("vdd", "vdd", "0", vdd);
    ckt.voltage_source("vin", "s0", "0", input);
    for k in 0..STAGES {
        let inp = format!("s{k}");
        let out = format!("s{}", k + 1);
        ckt.fet(
            &format!("mp{k}"),
            &out,
            &inp,
            "vdd",
            Arc::new(FetRef(pfet.clone())),
        )?;
        ckt.fet(
            &format!("mn{k}"),
            &out,
            &inp,
            "0",
            Arc::new(FetRef(nfet.clone())),
        )?;
    }
    let op = ckt.op()?;
    let mut levels = Vec::with_capacity(STAGES + 1);
    let mut rail_error = Vec::with_capacity(STAGES + 1);
    for k in 0..=STAGES {
        let v = op.voltage(&format!("s{k}"))?;
        levels.push(v);
        // Stage k should sit at the rail matching an inverted-k-times
        // logical high input.
        let ideal = if k % 2 == 0 { vdd } else { 0.0 };
        rail_error.push((v - ideal).abs());
    }
    Ok(CascadeTrace { levels, rail_error })
}

/// Runs the cascade experiment at `V_DD = 1 V` with a 0.65·V_DD input.
///
/// # Errors
///
/// Propagates circuit-simulation failures.
pub fn run() -> Result<Cascade, CoreError> {
    let vdd = 1.0;
    let input = 0.65;
    let saturating = chain_levels(
        Arc::new(AlphaPowerFet::fig2_nfet()),
        Arc::new(AlphaPowerFet::fig2_pfet()),
        vdd,
        input,
    )?;
    let non_saturating = chain_levels(
        Arc::new(LinearGnrFet::fig2_nfet()),
        Arc::new(LinearGnrFet::fig2_pfet()),
        vdd,
        input,
    )?;
    Ok(Cascade {
        vdd,
        input,
        saturating,
        non_saturating,
    })
}

struct FetRef(Arc<dyn Fet>);

impl carbon_spice::FetCurve for FetRef {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        self.0.ids(vgs, vds)
    }
    fn gm_gds(&self, vgs: f64, vds: f64) -> (f64, f64) {
        self.0.gm_gds(vgs, vds)
    }
    // Forward the batched entry points too, so a table model's shared
    // clamp/index fast path survives the trait-object indirection.
    fn ids_batch(&self, bias: &[(f64, f64)], out: &mut [f64]) {
        self.0.ids_batch(bias, out);
    }
    fn eval(&self, vgs: f64, vds: f64) -> (f64, f64, f64) {
        self.0.eval(vgs, vds)
    }
}

impl std::fmt::Display for Cascade {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "§II — signal regeneration through a 6-stage inverter chain (degraded 0.65 V input)",
            &["stage", "saturating [V]", "non-saturating [V]"],
        );
        for k in 0..self.saturating.levels.len() {
            t.push_owned_row(vec![
                if k == 0 {
                    "input".into()
                } else {
                    format!("{k}")
                },
                num(self.saturating.levels[k], 3),
                num(self.non_saturating.levels[k], 3),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "final rail error: saturating {:.3} V (restored), non-saturating {:.3} V (no logic levels)",
            self.saturating.rail_error.last().copied().unwrap_or(f64::NAN),
            self.non_saturating.rail_error.last().copied().unwrap_or(f64::NAN)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturating_chain_restores_the_rails() {
        let c = run().unwrap();
        let last = *c.saturating.rail_error.last().unwrap();
        assert!(last < 0.02, "restored to the rail: error {last}");
        // And restoration happens fast: by stage 2 the error is tiny.
        assert!(
            c.saturating.rail_error[2] < 0.05,
            "{:?}",
            c.saturating.rail_error
        );
    }

    #[test]
    fn non_saturating_chain_decays_to_mid_rail() {
        let c = run().unwrap();
        let last = *c.non_saturating.levels.last().unwrap();
        assert!(
            (last - 0.5).abs() < 0.1,
            "gain < 1 decays toward mid-rail: {last}"
        );
        let final_err = *c.non_saturating.rail_error.last().unwrap();
        assert!(final_err > 0.35, "no logic level: error {final_err}");
    }

    #[test]
    fn degradation_is_monotone_without_gain() {
        let c = run().unwrap();
        // Distance from mid-rail shrinks every stage for the gain-less
        // chain.
        let d: Vec<f64> = c
            .non_saturating
            .levels
            .iter()
            .map(|v| (v - 0.5).abs())
            .collect();
        assert!(d.windows(2).all(|w| w[1] <= w[0] + 1e-9), "{d:?}");
    }

    #[test]
    fn report_renders() {
        let s = run().unwrap().to_string();
        assert!(s.contains("regeneration"));
        assert!(s.contains("no logic levels"));
    }
}

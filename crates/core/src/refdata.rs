//! Literature reference datasets for the Fig. 5 benchmark.
//!
//! The paper's Fig. 5 overlays CNT-FET measurements on del Alamo's
//! benchmark of Si, InAs, and InGaAs transistors (Nature 479, 317
//! (2011)): on-current at `V_DS = 0.5 V`, normalized to an off-current
//! of 100 nA/µm, versus gate length. The Si/III-V points below are
//! curated approximations of that plot's trend lines (the paper itself
//! uses them as literature data, not as its own measurements); the CNT
//! points are *simulated* by `carbon-devices`, mirroring how the paper
//! adds measured CNT devices onto the literature background.

/// One reference device point for the benchmark plot.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefPoint {
    /// Gate length, nm.
    pub gate_length_nm: f64,
    /// On-current density at `V_DS = 0.5 V`, `I_off = 100 nA/µm`, in
    /// µA/µm.
    pub ion_ua_per_um: f64,
}

/// A labelled reference technology series.
#[derive(Debug, Clone, PartialEq)]
pub struct RefSeries {
    /// Technology label as used in the paper's legend.
    pub label: &'static str,
    /// Benchmark points, sorted by gate length.
    pub points: Vec<RefPoint>,
}

fn series(label: &'static str, data: &[(f64, f64)]) -> RefSeries {
    RefSeries {
        label,
        points: data
            .iter()
            .map(|&(l, i)| RefPoint {
                gate_length_nm: l,
                ion_ua_per_um: i,
            })
            .collect(),
    }
}

/// Silicon MOSFET trend (planar + early FinFET era): current density
/// degrades as the gate shortens because the supply and electrostatics
/// tighten together.
pub fn silicon() -> RefSeries {
    series(
        "Si MOSFET",
        &[
            (30.0, 300.0),
            (45.0, 380.0),
            (65.0, 450.0),
            (90.0, 500.0),
            (130.0, 520.0),
        ],
    )
}

/// InAs HEMT benchmark points (del Alamo).
pub fn inas_hemt() -> RefSeries {
    series(
        "InAs HEMT",
        &[
            (30.0, 450.0),
            (40.0, 500.0),
            (60.0, 560.0),
            (85.0, 600.0),
            (130.0, 620.0),
        ],
    )
}

/// InGaAs HEMT/MOSFET benchmark points.
pub fn ingaas() -> RefSeries {
    series(
        "InGaAs FET",
        &[
            (30.0, 350.0),
            (45.0, 420.0),
            (75.0, 480.0),
            (110.0, 520.0),
            (150.0, 540.0),
        ],
    )
}

/// All literature series of the Fig. 5 background.
pub fn all_reference_series() -> Vec<RefSeries> {
    vec![silicon(), inas_hemt(), ingaas()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn series_are_sorted_and_positive() {
        for s in all_reference_series() {
            assert!(!s.points.is_empty(), "{}", s.label);
            assert!(
                s.points
                    .windows(2)
                    .all(|w| w[1].gate_length_nm > w[0].gate_length_nm),
                "{} sorted",
                s.label
            );
            assert!(s.points.iter().all(|p| p.ion_ua_per_um > 0.0));
        }
    }

    #[test]
    fn iii_v_beats_silicon_at_short_gate_length() {
        // The del Alamo story the paper builds on.
        let si = silicon();
        let inas = inas_hemt();
        assert!(inas.points[0].ion_ua_per_um > si.points[0].ion_ua_per_um);
    }

    #[test]
    fn everything_degrades_toward_short_channels() {
        for s in all_reference_series() {
            assert!(
                s.points
                    .windows(2)
                    .all(|w| w[1].ion_ua_per_um >= w[0].ion_ua_per_um),
                "{} monotone with length",
                s.label
            );
        }
    }
}

//! §II RF argument — "no current saturation, no f_max".
//!
//! The paper (citing Schwierz's overview, ref. \[8\]) explains why GNRs
//! also fail in radio-frequency use: a short-channel device without
//! current saturation has a huge output conductance, "which as a
//! consequence, leads to very low voltage gain in the FET and this only
//! enables very low values of the maximum frequency of oscillation
//! (f_max)". This experiment computes the small-signal figures of merit
//! of the saturating CNT-FET and the non-saturating real-GNR device at
//! the same footprint and bias class, and cross-validates the analytic
//! gain against an AC simulation of the actual common-source stage.

use std::sync::Arc;

use carbon_devices::{BallisticFet, LinearGnrFet};
use carbon_logic::{RfFigures, RfStage};
use carbon_units::{Capacitance, Resistance, Voltage};

use crate::error::CoreError;
use crate::table::Table;

/// Results of the RF comparison.
#[derive(Debug, Clone)]
pub struct RfComparison {
    /// CNT-FET figures of merit.
    pub cnt: RfFigures,
    /// Real-GNR figures of merit.
    pub gnr: RfFigures,
    /// Simulated (AC engine) voltage gain of the CNT stage.
    pub cnt_simulated_gain: f64,
    /// Simulated voltage gain of the GNR stage.
    pub gnr_simulated_gain: f64,
}

/// Runs the RF experiment.
///
/// # Errors
///
/// Propagates device and simulation failures.
pub fn run() -> Result<RfComparison, CoreError> {
    // Identical parasitic environment: 30 nm of wrap gate at
    // ~0.4 fF/µm-equivalent → ~12 aF split 2:1 between C_gs and C_gd,
    // 100 Ω gate resistance.
    let cgs = Capacitance::from_attofarads(8.0);
    let cgd = Capacitance::from_attofarads(4.0);
    let rg = Resistance::from_ohms(100.0);
    let load = Resistance::from_kilohms(500.0);

    let cnt_stage = RfStage::new(
        Arc::new(BallisticFet::cnt_fig1()?),
        Voltage::from_volts(0.5),
        Voltage::from_volts(0.4),
        cgs,
        cgd,
        rg,
    )?;
    let gnr_stage = RfStage::new(
        Arc::new(LinearGnrFet::sub10nm_fig1()),
        Voltage::from_volts(1.0),
        Voltage::from_volts(0.5),
        cgs,
        cgd,
        rg,
    )?;
    Ok(RfComparison {
        cnt: cnt_stage.figures(),
        gnr: gnr_stage.figures(),
        cnt_simulated_gain: cnt_stage.simulated_voltage_gain(load)?,
        gnr_simulated_gain: gnr_stage.simulated_voltage_gain(load)?,
    })
}

impl std::fmt::Display for RfComparison {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "§II RF — saturating CNT-FET vs non-saturating GNR (same parasitics)",
            &["figure of merit", "CNT-FET", "real GNR", "paper"],
        );
        t.push_owned_row(vec![
            "g_m [µS]".into(),
            format!("{:.1}", self.cnt.gm * 1e6),
            format!("{:.1}", self.gnr.gm * 1e6),
            "—".into(),
        ]);
        t.push_owned_row(vec![
            "g_ds [µS]".into(),
            format!("{:.1}", self.cnt.gds * 1e6),
            format!("{:.1}", self.gnr.gds * 1e6),
            "huge without saturation".into(),
        ]);
        t.push_owned_row(vec![
            "A_v = g_m/g_ds".into(),
            format!("{:.1}", self.cnt.voltage_gain),
            format!("{:.2}", self.gnr.voltage_gain),
            "very low voltage gain (GNR)".into(),
        ]);
        t.push_owned_row(vec![
            "A_v (AC simulation)".into(),
            format!("{:.1}", self.cnt_simulated_gain),
            format!("{:.2}", self.gnr_simulated_gain),
            "(cross-check)".into(),
        ]);
        t.push_owned_row(vec![
            "f_T [GHz]".into(),
            format!("{:.0}", self.cnt.ft / 1e9),
            format!("{:.0}", self.gnr.ft / 1e9),
            "high f_T possible either way".into(),
        ]);
        t.push_owned_row(vec![
            "f_max [GHz]".into(),
            format!("{:.0}", self.cnt.fmax / 1e9),
            format!("{:.0}", self.gnr.fmax / 1e9),
            "very low f_max (GNR)".into(),
        ]);
        writeln!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnt_has_gain_gnr_does_not() {
        let rf = run().unwrap();
        assert!(rf.cnt.voltage_gain > 5.0, "CNT A_v {}", rf.cnt.voltage_gain);
        assert!(rf.gnr.voltage_gain < 2.0, "GNR A_v {}", rf.gnr.voltage_gain);
    }

    #[test]
    fn fmax_ratio_is_large() {
        let rf = run().unwrap();
        assert!(
            rf.cnt.fmax / rf.gnr.fmax > 3.0,
            "f_max: CNT {:.2e} vs GNR {:.2e}",
            rf.cnt.fmax,
            rf.gnr.fmax
        );
    }

    #[test]
    fn ac_engine_confirms_the_gain_ordering() {
        let rf = run().unwrap();
        assert!(rf.cnt_simulated_gain > 2.0 * rf.gnr_simulated_gain);
        assert!(rf.gnr_simulated_gain < 1.5);
    }

    #[test]
    fn report_renders() {
        let s = run().unwrap().to_string();
        assert!(s.contains("f_max"));
        assert!(s.contains("A_v"));
    }
}

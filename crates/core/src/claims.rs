//! Scalar claims of §II/§III, each reproduced as a checked number.
//!
//! * Intel 30 nm trigate delivers ~66 µA at `(1 V, 1 V)`; the Franklin
//!   CNT-FET "delivers already an impressive ~20 µA at V_DS = 0.6 V,
//!   which is almost 1/3 of the trigate's current";
//! * "the trigate channel's cross-section area is more than 300 times
//!   bigger than the cross-section of the CNTFET";
//! * sub-10 nm GNRs: `I_on/I_off = 10⁶`, `2 mA/µm` at 1 V — but no
//!   saturation;
//! * "the overall serial resistance of a single CNT-FET has been shown
//!   to be as low as 11 kOhm";
//! * the ~60 mV/dec room-temperature swing limit.

use carbon_band::{Band1d, CntBand};
use carbon_devices::series::cnt_series_resistance;
use carbon_devices::{AlphaPowerFet, BallisticFet, Fet, LinearGnrFet};
use carbon_spice::FetCurve;
use carbon_units::consts::SS_THERMAL_LIMIT_MV_PER_DEC;
use carbon_units::{Current, Energy, Length, Temperature, Voltage};

use crate::error::CoreError;
use crate::table::Table;

/// All §II/§III scalar claims, measured.
#[derive(Debug, Clone)]
pub struct Claims {
    /// Trigate on-current at (1 V, 1 V), A.
    pub trigate_ion: f64,
    /// CNT-FET on-current at (0.6 V, 0.6 V), A.
    pub cnt_ion_06: f64,
    /// Trigate/CNT cross-section area ratio.
    pub cross_section_ratio: f64,
    /// Sub-10 nm GNR drive density at (1 V, 1 V), mA/µm.
    pub gnr_density_ma_um: f64,
    /// Sub-10 nm GNR on/off ratio.
    pub gnr_on_off: f64,
    /// Best-case CNT series resistance (20 nm contacts), kΩ.
    pub cnt_series_kohm: f64,
    /// Room-temperature thermionic swing limit, mV/dec.
    pub thermal_limit: f64,
    /// CNT injection velocity at on-state bias, m/s (§I: "injection
    /// velocity ... is more important" than mobility).
    pub cnt_injection_velocity: f64,
}

/// Runs all scalar-claim measurements.
///
/// # Errors
///
/// Propagates device construction failures.
pub fn run() -> Result<Claims, CoreError> {
    let trigate = AlphaPowerFet::intel_trigate_30nm();
    let trigate_ion = trigate.ids(1.0, 1.0);
    let cnt = BallisticFet::cnt_fig1()?;
    let cnt_ion_06 = cnt.ids(0.6, 0.6);
    // Fin cross-section 35 nm × 18 nm vs tube cross-section π·(d/2)².
    let fin_area = 35e-9 * 18e-9;
    let d = Fet::width(&cnt)
        .unwrap_or(Length::from_nanometers(1.5))
        .meters();
    let tube_area = std::f64::consts::PI * (d / 2.0) * (d / 2.0);
    let cross_section_ratio = fin_area / tube_area;

    let gnr = LinearGnrFet::sub10nm_fig1();
    let gnr_density_ma_um = Current::from_amperes(gnr.ids(1.0, 1.0))
        .per_width(Fet::width(&gnr).expect("preset has width"))
        .milliamps_per_micron();
    let gnr_on_off = gnr
        .transfer(
            Voltage::from_volts(-0.6),
            Voltage::from_volts(1.0),
            161,
            Voltage::from_volts(1.0),
        )
        .on_off_ratio();
    let cnt_series_kohm = cnt_series_resistance(Length::from_nanometers(20.0)).kilohms();
    // Injection velocity of the CNT band at a degenerate on-state bias
    // (Fermi level ~0.15 eV above the first subband edge).
    let band = CntBand::from_bandgap(Energy::from_electron_volts(0.56))
        .map_err(|e| CoreError::Device(e.to_string()))?;
    let cnt_injection_velocity =
        band.injection_velocity(Energy::from_electron_volts(0.43), Temperature::room());
    Ok(Claims {
        trigate_ion,
        cnt_ion_06,
        cross_section_ratio,
        gnr_density_ma_um,
        gnr_on_off,
        cnt_series_kohm,
        thermal_limit: SS_THERMAL_LIMIT_MV_PER_DEC,
        cnt_injection_velocity,
    })
}

impl std::fmt::Display for Claims {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new("§II/§III scalar claims", &["claim", "measured", "paper"]);
        t.push_owned_row(vec![
            "trigate I_on (1 V, 1 V)".into(),
            format!("{:.1} µA", self.trigate_ion * 1e6),
            "~66 µA".into(),
        ]);
        t.push_owned_row(vec![
            "CNT-FET I_on (0.6 V)".into(),
            format!("{:.1} µA", self.cnt_ion_06 * 1e6),
            "~20 µA".into(),
        ]);
        t.push_owned_row(vec![
            "CNT/trigate current fraction".into(),
            format!("{:.2}", self.cnt_ion_06 / self.trigate_ion),
            "almost 1/3".into(),
        ]);
        t.push_owned_row(vec![
            "cross-section ratio".into(),
            format!("{:.0}×", self.cross_section_ratio),
            ">300×".into(),
        ]);
        t.push_owned_row(vec![
            "sub-10 nm GNR drive".into(),
            format!("{:.2} mA/µm", self.gnr_density_ma_um),
            "2 mA/µm".into(),
        ]);
        t.push_owned_row(vec![
            "sub-10 nm GNR on/off".into(),
            format!("{:.1e}", self.gnr_on_off),
            "10⁶".into(),
        ]);
        t.push_owned_row(vec![
            "CNT series resistance".into(),
            format!("{:.1} kΩ", self.cnt_series_kohm),
            "11 kΩ".into(),
        ]);
        t.push_owned_row(vec![
            "thermionic swing limit".into(),
            format!("{:.1} mV/dec", self.thermal_limit),
            "~60 mV/dec".into(),
        ]);
        t.push_owned_row(vec![
            "CNT injection velocity".into(),
            format!("{:.1e} m/s", self.cnt_injection_velocity),
            "§I: beats mobility thinking (Si v_th ≈ 1.3e5 m/s)".into(),
        ]);
        writeln!(f, "{t}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigate_and_cnt_currents() {
        let c = run().unwrap();
        assert!(
            (c.trigate_ion * 1e6 - 66.0).abs() < 5.0,
            "trigate {}",
            c.trigate_ion
        );
        assert!(
            (8.0..40.0).contains(&(c.cnt_ion_06 * 1e6)),
            "CNT at 0.6 V: {} µA",
            c.cnt_ion_06 * 1e6
        );
        let frac = c.cnt_ion_06 / c.trigate_ion;
        assert!((0.15..0.6).contains(&frac), "fraction {frac} (paper ~1/3)");
    }

    #[test]
    fn cross_section_ratio_above_300() {
        let c = run().unwrap();
        assert!(
            c.cross_section_ratio > 300.0,
            "ratio {}",
            c.cross_section_ratio
        );
    }

    #[test]
    fn gnr_claims() {
        let c = run().unwrap();
        assert!((c.gnr_density_ma_um - 2.0).abs() < 0.3);
        assert!(c.gnr_on_off > 1e6);
    }

    #[test]
    fn series_resistance_claim() {
        let c = run().unwrap();
        assert!(
            (c.cnt_series_kohm - 11.0).abs() < 1.5,
            "{} kΩ",
            c.cnt_series_kohm
        );
    }

    #[test]
    fn cnt_injection_velocity_beats_silicon_thermal_velocity() {
        let c = run().unwrap();
        // Si ~1.3e5 m/s; CNTs inject at several 1e5 m/s.
        assert!(
            c.cnt_injection_velocity > 2.5e5,
            "v_inj = {:.2e} m/s",
            c.cnt_injection_velocity
        );
        assert!(c.cnt_injection_velocity < 1e6, "bounded by v_F");
    }

    #[test]
    fn report_renders() {
        let s = run().unwrap().to_string();
        assert!(s.contains("66 µA") || s.contains("~66 µA"));
        assert!(s.contains("11 kΩ"));
        assert!(s.contains("injection velocity"));
    }
}

//! Ablation studies: sweeping the design knob behind each figure.
//!
//! The paper presents binary contrasts (saturating vs not, contacted vs
//! ideal, ballistic vs not). Each of those is really a continuum with a
//! knob, and the reproduction makes the knob explicit; these ablations
//! sweep them:
//!
//! * **saturation quality** — the saturation-onset voltage `V_crit` of
//!   the Fig. 2(b) device class, from saturating-inside-the-supply to
//!   ohmic, at fixed drive current: where exactly does logic die?
//! * **ballisticity** — mean free path against the Fig. 5 on-current;
//! * **contact resistance** — per-contact R against the Fig. 4
//!   saturation figure;
//! * **TFET electrostatics** — gate efficiency against the Fig. 6
//!   average swing (§IV's "an even better result should be obtainable").

use std::sync::Arc;

use carbon_band::CntBand;
use carbon_devices::{BallisticFet, CntTfet, Fet, LinearGnrFet, SeriesResistance};
use carbon_logic::Inverter;
use carbon_spice::FetCurve;
use carbon_units::{Energy, Length, Resistance, Temperature, Voltage};

use crate::error::CoreError;
use crate::table::{num, Table};

/// One row of the saturation-quality ablation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SaturationRow {
    /// Saturation-onset voltage `V_crit`, V (small = saturates within
    /// the supply window; large = ohmic).
    pub v_crit: f64,
    /// Peak inverter gain.
    pub max_gain: f64,
    /// Worst-side noise margin, V.
    pub noise_margin: f64,
}

/// All ablation sweeps.
#[derive(Debug, Clone)]
pub struct Ablations {
    /// Noise margin vs saturation onset.
    pub saturation: Vec<SaturationRow>,
    /// `(mfp nm, Ion µA)` at a 30 nm channel, (0.5 V, 0.5 V).
    pub ballisticity: Vec<(f64, f64)>,
    /// `(R per contact kΩ, saturation figure)` for the Fig. 4 device.
    pub contacts: Vec<(f64, f64)>,
    /// `(gate efficiency, average swing mV/dec)` for the Fig. 6 TFET.
    pub tfet: Vec<(f64, f64)>,
    /// `(temperature K, thermionic SS mV/dec)` of the ballistic CNT-FET —
    /// linear in T, unlike the BTBT tunnel FET (§IV's motivation).
    pub temperature: Vec<(f64, f64)>,
}

/// Runs all ablations.
///
/// # Errors
///
/// Propagates device and circuit failures.
pub fn run() -> Result<Ablations, CoreError> {
    // 1. Saturation quality: sweep the Fig. 2(b) device class from
    // saturating-within-the-supply (V_crit ≪ V_DD) to ohmic
    // (V_crit ≫ V_DD), holding the (1 V, 1 V) drive current fixed so
    // the comparison isolates the output characteristic's *shape*.
    let mut saturation = Vec::new();
    let i_ref = {
        let reference = carbon_devices::AlphaPowerFet::fig2_nfet();
        reference.ids(1.0, 1.0)
    };
    for v_crit in [0.1, 0.3, 1.0, 3.0, 10.0] {
        let (vt, ss, v_on) = (0.0, 700.0, 1.2);
        let s_soft = ss / 1e3 / std::f64::consts::LN_10;
        let soft1: f64 = s_soft * ((1.0 - vt) / s_soft).exp().ln_1p();
        let g_on = i_ref * (1.0 + 1.0 / v_crit) * v_on / soft1;
        let nfet = LinearGnrFet::new(g_on, vt, ss, v_on, v_crit)
            .map_err(|e| CoreError::Device(e.to_string()))?;
        let pfet = nfet.clone().into_p_type();
        let inv = Inverter::new(Arc::new(nfet), Arc::new(pfet), Voltage::from_volts(1.0))?;
        let vtc = inv.vtc(101)?;
        let nm = vtc.noise_margins();
        saturation.push(SaturationRow {
            v_crit,
            max_gain: vtc.max_abs_gain(),
            noise_margin: nm.low.min(nm.high),
        });
    }

    // 2. Ballisticity: mean free path at fixed 30 nm channel.
    let band = CntBand::from_bandgap(Energy::from_electron_volts(0.56))
        .map_err(|e| CoreError::Device(e.to_string()))?;
    let mut ballisticity = Vec::new();
    for mfp_nm in [30.0, 100.0, 300.0, 1000.0] {
        let fet = BallisticFet::builder(Arc::new(band.clone()))
            .threshold_voltage(0.3)
            .channel(
                Length::from_nanometers(30.0),
                Length::from_nanometers(mfp_nm),
            )
            .build()
            .map_err(|e| CoreError::Device(e.to_string()))?;
        ballisticity.push((mfp_nm, fet.ids(0.5, 0.5) * 1e6));
    }

    // 3. Contact resistance sweep.
    let ideal: Arc<dyn Fet> = Arc::new(BallisticFet::cnt_fig1()?);
    let mut contacts = Vec::new();
    for r_kohm in [0.001, 10.0, 25.0, 50.0, 100.0] {
        let dev = SeriesResistance::symmetric(ideal.clone(), Resistance::from_kilohms(r_kohm));
        let sat = dev
            .output(
                Voltage::ZERO,
                Voltage::from_volts(0.5),
                51,
                Voltage::from_volts(0.5),
            )
            .saturation_figure();
        contacts.push((r_kohm, sat));
    }

    // 4. TFET gate efficiency.
    let mut tfet = Vec::new();
    for eff in [0.25, 0.4, 0.6, 0.8] {
        let dev = CntTfet::fig6().with_gate_efficiency(eff);
        let curve = dev.reverse_transfer(
            Voltage::from_volts(-1.2),
            Voltage::from_volts(0.2),
            281,
            Voltage::from_volts(-0.5),
        );
        let swing = curve.swing_between(1e-11, 1e-7)?;
        tfet.push((eff, swing));
    }

    // 5. Temperature: the thermionic swing is kT/q·ln10-limited, so a
    // ballistic FET's SS scales linearly with T — the §IV motivation
    // for tunnel FETs, whose BTBT swing does not.
    let mut temperature = Vec::new();
    for t_kelvin in [150.0, 225.0, 300.0, 375.0] {
        let fet = BallisticFet::builder(Arc::new(band.clone()))
            .threshold_voltage(0.3)
            .temperature(Temperature::from_kelvin(t_kelvin))
            .build()
            .map_err(|e| CoreError::Device(e.to_string()))?;
        let curve = fet.transfer(
            Voltage::from_volts(-0.25),
            Voltage::from_volts(0.45),
            141,
            Voltage::from_volts(0.5),
        );
        let ss = curve.swing_between(1e-10, 1e-8)?;
        temperature.push((t_kelvin, ss));
    }

    Ok(Ablations {
        saturation,
        ballisticity,
        contacts,
        tfet,
        temperature,
    })
}

impl std::fmt::Display for Ablations {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut s = Table::new(
            "Ablation — noise margin vs saturation onset V_crit (Fig. 2 knob, fixed drive)",
            &["V_crit [V]", "max |gain|", "worst NM [V]"],
        );
        for r in &self.saturation {
            s.push_owned_row(vec![
                num(r.v_crit, 1),
                num(r.max_gain, 2),
                num(r.noise_margin, 3),
            ]);
        }
        writeln!(f, "{s}")?;
        let mut b = Table::new(
            "Ablation — on-current vs mean free path at L = 30 nm (Fig. 5 knob)",
            &["mfp [nm]", "I_on [µA]"],
        );
        for (mfp, ion) in &self.ballisticity {
            b.push_owned_row(vec![num(*mfp, 0), num(*ion, 2)]);
        }
        writeln!(f, "{b}")?;
        let mut c = Table::new(
            "Ablation — saturation figure vs contact resistance (Fig. 4 knob)",
            &["R per contact [kΩ]", "saturation figure"],
        );
        for (r, sat) in &self.contacts {
            c.push_owned_row(vec![num(*r, 1), num(*sat, 2)]);
        }
        writeln!(f, "{c}")?;
        let mut t = Table::new(
            "Ablation — TFET average swing vs gate efficiency (Fig. 6 / §IV knob)",
            &["gate efficiency [eV/V]", "avg swing [mV/dec]"],
        );
        for (eff, swing) in &self.tfet {
            t.push_owned_row(vec![num(*eff, 2), num(*swing, 1)]);
        }
        writeln!(f, "{t}")?;
        let mut temp = Table::new(
            "Ablation — thermionic SS vs temperature (why §IV wants tunnel FETs)",
            &["T [K]", "SS [mV/dec]", "kT/q·ln10 [mV/dec]"],
        );
        for (t_kelvin, ss) in &self.temperature {
            let limit = carbon_units::consts::K_B * t_kelvin / carbon_units::consts::Q_E
                * std::f64::consts::LN_10
                * 1e3;
            temp.push_owned_row(vec![num(*t_kelvin, 0), num(*ss, 1), num(limit, 1)]);
        }
        writeln!(f, "{temp}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noise_margin_dies_as_saturation_degrades() {
        let a = run().unwrap();
        let rows = &a.saturation;
        assert!(
            rows[0].max_gain > 1.0,
            "early saturation regenerates: {:?}",
            rows[0]
        );
        assert!(
            rows.windows(2)
                .all(|w| w[1].noise_margin <= w[0].noise_margin + 0.02),
            "monotone degradation: {rows:?}"
        );
        let last = rows.last().unwrap();
        assert!(last.max_gain < 1.0, "ohmic limit has no gain: {last:?}");
        assert_eq!(last.noise_margin, 0.0, "and no noise margin");
    }

    #[test]
    fn gain_tracks_saturation_quality() {
        let a = run().unwrap();
        assert!(a.saturation[0].max_gain > 1.5 * a.saturation.last().unwrap().max_gain);
    }

    #[test]
    fn longer_mfp_buys_current_with_diminishing_returns() {
        let a = run().unwrap();
        let ion: Vec<f64> = a.ballisticity.iter().map(|(_, i)| *i).collect();
        assert!(ion.windows(2).all(|w| w[1] > w[0]), "monotone: {ion:?}");
        let gain_low = ion[1] / ion[0];
        let gain_high = ion[3] / ion[2];
        assert!(gain_low > gain_high, "diminishing returns");
    }

    #[test]
    fn contact_resistance_monotonically_linearizes() {
        let a = run().unwrap();
        let sat: Vec<f64> = a.contacts.iter().map(|(_, s)| *s).collect();
        assert!(
            sat.windows(2).all(|w| w[1] < w[0]),
            "more contact R → less saturation: {sat:?}"
        );
    }

    #[test]
    fn better_electrostatics_steepens_the_tfet() {
        let a = run().unwrap();
        let swing: Vec<f64> = a.tfet.iter().map(|(_, s)| *s).collect();
        assert!(
            swing.windows(2).all(|w| w[1] < w[0]),
            "higher gate efficiency → steeper: {swing:?}"
        );
        assert!(swing[0] > 100.0 && *swing.last().unwrap() < 60.0);
    }

    #[test]
    fn thermionic_swing_is_linear_in_temperature() {
        let a = run().unwrap();
        let rows = &a.temperature;
        assert!(
            rows.windows(2).all(|w| w[1].1 > w[0].1),
            "SS grows with T: {rows:?}"
        );
        // Ratio of SS to temperature is constant within the gate-control
        // factor: SS(T)/T spread under 10 %.
        let ratios: Vec<f64> = rows.iter().map(|(t, ss)| ss / t).collect();
        let (lo, hi) = ratios
            .iter()
            .fold((f64::MAX, f64::MIN), |(l, h), &r| (l.min(r), h.max(r)));
        assert!(hi / lo < 1.1, "linear in T: {ratios:?}");
        // And each sits just above the ideal kT/q·ln10 line (α_G < 1).
        for (t, ss) in rows {
            let limit = carbon_units::consts::K_B * t / carbon_units::consts::Q_E
                * std::f64::consts::LN_10
                * 1e3;
            assert!(
                *ss > limit && *ss < 1.35 * limit,
                "T = {t}: {ss} vs {limit}"
            );
        }
    }

    #[test]
    fn report_renders() {
        let s = run().unwrap().to_string();
        assert!(s.contains("Ablation"));
        assert!(s.contains("mean free path"));
        assert!(s.contains("temperature"));
    }
}

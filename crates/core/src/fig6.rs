//! Fig. 6 — the CNT tunnel FET (gated PIN diode).
//!
//! Reproduced claims:
//!
//! * reverse-biased: "a very sharp turn-on with gate voltage going
//!   negative and a SS of 83 mV/dec", with "individual sweep points"
//!   even steeper ("like 32 mV/dec" — sub-thermal either way);
//! * "the on-current density is still in the range of 1 mA/µm";
//! * forward-biased: "the application of the back voltage is hardly
//!   modulating the current".

use carbon_devices::{CntTfet, Fet, IvCurve};
use carbon_units::consts::SS_THERMAL_LIMIT_MV_PER_DEC;
use carbon_units::{Current, Voltage};

use crate::error::CoreError;
use crate::table::{num, sci, Table};

/// Results of the Fig. 6 experiment.
#[derive(Debug, Clone)]
pub struct Fig6 {
    /// Reverse-bias transfer curve (|I| vs V_G at V_D = −0.5 V).
    pub reverse_transfer: IvCurve,
    /// Average swing over the turn-on decades, mV/dec.
    pub average_swing: f64,
    /// Steepest single-interval swing, mV/dec.
    pub best_swing: f64,
    /// On-current density, mA/µm.
    pub on_density_ma_per_um: f64,
    /// `true` if the forward branch is gate-insensitive.
    pub forward_gate_insensitive: bool,
    /// On/off ratio across the sweep.
    pub on_off: f64,
}

/// Runs the Fig. 6 experiment.
///
/// # Errors
///
/// Propagates extraction failures.
pub fn run() -> Result<Fig6, CoreError> {
    let tfet = CntTfet::fig6();
    let reverse_transfer = tfet.reverse_transfer(
        Voltage::from_volts(-1.0),
        Voltage::from_volts(0.2),
        241,
        Voltage::from_volts(-0.5),
    );
    let average_swing = reverse_transfer.swing_between(1e-11, 1e-7)?;
    let best_swing = reverse_transfer.steepest_swing(1.3)?;
    let i_on = reverse_transfer.current()[0];
    let width = Fet::width(&tfet).ok_or_else(|| {
        CoreError::Extract("TFET preset must carry a width for density normalization".into())
    })?;
    let on_density_ma_per_um = Current::from_amperes(i_on)
        .per_width(width)
        .milliamps_per_micron();
    let forward_gate_insensitive =
        tfet.forward_is_gate_insensitive(Voltage::from_volts(-1.0), Voltage::from_volts(0.5), 1.01);
    let on_off = reverse_transfer.on_off_ratio();
    Ok(Fig6 {
        reverse_transfer,
        average_swing,
        best_swing,
        on_density_ma_per_um,
        forward_gate_insensitive,
        on_off,
    })
}

impl std::fmt::Display for Fig6 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Fig. 6(b) — gated PIN diode, reverse bias (V_D = −0.5 V)",
            &["V_G [V]", "|I| [A]"],
        );
        for k in (0..self.reverse_transfer.len()).step_by(20) {
            t.push_owned_row(vec![
                num(self.reverse_transfer.bias()[k], 2),
                sci(self.reverse_transfer.current()[k]),
            ]);
        }
        writeln!(f, "{t}")?;
        let mut s = Table::new("Fig. 6 — summary", &["metric", "measured", "paper"]);
        s.push_owned_row(vec![
            "average swing".into(),
            format!("{:.1} mV/dec", self.average_swing),
            "83 mV/dec".into(),
        ]);
        s.push_owned_row(vec![
            "best interval".into(),
            format!("{:.1} mV/dec", self.best_swing),
            "32 mV/dec".into(),
        ]);
        s.push_owned_row(vec![
            "on-current density".into(),
            format!("{:.2} mA/µm", self.on_density_ma_per_um),
            "~1 mA/µm".into(),
        ]);
        s.push_owned_row(vec![
            "forward gate modulation".into(),
            if self.forward_gate_insensitive {
                "< 1 %".into()
            } else {
                "significant".into()
            },
            "hardly modulating".into(),
        ]);
        s.push_owned_row(vec![
            "on/off".into(),
            format!("{:.1e}", self.on_off),
            "several decades".into(),
        ]);
        writeln!(f, "{s}")?;
        writeln!(
            f,
            "thermal limit: {SS_THERMAL_LIMIT_MV_PER_DEC:.1} mV/dec — the best interval beats it"
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swing_matches_the_paper_window() {
        let fig = run().unwrap();
        assert!(
            (60.0..105.0).contains(&fig.average_swing),
            "average {} (paper 83)",
            fig.average_swing
        );
        assert!(
            fig.best_swing < SS_THERMAL_LIMIT_MV_PER_DEC,
            "best interval {} must be sub-thermal",
            fig.best_swing
        );
    }

    #[test]
    fn on_current_is_milliamp_class() {
        let fig = run().unwrap();
        assert!(
            fig.on_density_ma_per_um > 0.3,
            "density {} mA/µm",
            fig.on_density_ma_per_um
        );
    }

    #[test]
    fn forward_branch_is_a_diode_not_a_fet() {
        let fig = run().unwrap();
        assert!(fig.forward_gate_insensitive);
    }

    #[test]
    fn many_decades_of_modulation() {
        let fig = run().unwrap();
        assert!(fig.on_off > 1e4, "on/off {}", fig.on_off);
    }

    #[test]
    fn report_renders() {
        let s = run().unwrap().to_string();
        assert!(s.contains("83 mV/dec"));
        assert!(s.contains("thermal limit"));
    }
}

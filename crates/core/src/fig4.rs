//! Fig. 4 — an ideal CNT-FET versus the same device behind 50 kΩ of
//! contact resistance per terminal.
//!
//! Reproduced claims: "not only is the current reduced ..., also the
//! shape of the I-V has changed to a more linear characteristic with
//! less saturation at this voltage range", plus the §III.B
//! contact-length scaling and the 11 kΩ best-case series resistance.

use std::sync::Arc;

use carbon_devices::series::cnt_series_resistance;
use carbon_devices::{BallisticFet, Fet, IvCurve, SeriesResistance};
use carbon_units::{Length, Resistance, Voltage};

use crate::error::CoreError;
use crate::table::{num, sci, Table};

/// Results of the Fig. 4 experiment.
#[derive(Debug, Clone)]
pub struct Fig4 {
    /// Output curves of the ideal device at several gate voltages.
    pub ideal: Vec<(f64, IvCurve)>,
    /// Output curves with 50 kΩ per contact.
    pub contacted: Vec<(f64, IvCurve)>,
    /// On-current reduction factor at (0.5 V, 0.5 V).
    pub current_reduction: f64,
    /// Saturation figures (ideal, contacted) at V_GS = 0.5 V.
    pub saturation: [f64; 2],
    /// §III.B: total series resistance vs contact length, (nm, kΩ).
    pub series_vs_contact_length: Vec<(f64, f64)>,
}

/// Runs the Fig. 4 experiment.
///
/// # Errors
///
/// Propagates device-model failures.
pub fn run() -> Result<Fig4, CoreError> {
    let ideal_dev = Arc::new(BallisticFet::cnt_fig1()?);
    let contacted_dev =
        SeriesResistance::symmetric(ideal_dev.clone(), Resistance::from_kilohms(50.0));
    let gate_voltages = [0.3, 0.4, 0.5];
    let sweep = |d: &dyn Fet, vg: f64| {
        d.output(
            Voltage::ZERO,
            Voltage::from_volts(0.5),
            51,
            Voltage::from_volts(vg),
        )
    };
    let ideal: Vec<(f64, IvCurve)> = gate_voltages
        .iter()
        .map(|&vg| (vg, sweep(ideal_dev.as_ref(), vg)))
        .collect();
    let contacted: Vec<(f64, IvCurve)> = gate_voltages
        .iter()
        .map(|&vg| (vg, sweep(&contacted_dev, vg)))
        .collect();
    let i_ideal = ideal.last().expect("non-empty").1.current_at(0.5);
    let i_contacted = contacted.last().expect("non-empty").1.current_at(0.5);
    let saturation = [
        ideal.last().expect("non-empty").1.saturation_figure(),
        contacted.last().expect("non-empty").1.saturation_figure(),
    ];
    let series_vs_contact_length = [10.0, 20.0, 40.0, 100.0, 300.0]
        .iter()
        .map(|&lc| {
            (
                lc,
                cnt_series_resistance(Length::from_nanometers(lc)).kilohms(),
            )
        })
        .collect();
    Ok(Fig4 {
        ideal,
        contacted,
        current_reduction: i_ideal / i_contacted,
        saturation,
        series_vs_contact_length,
    })
}

impl std::fmt::Display for Fig4 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Fig. 4 — CNT-FET output curves, ideal vs 50 kΩ per contact",
            &[
                "V_DS [V]",
                "ideal @V_G=0.5 [A]",
                "contacted @V_G=0.5 [A]",
                "ideal @V_G=0.4 [A]",
                "contacted @V_G=0.4 [A]",
            ],
        );
        let (ideal5, contacted5) = (&self.ideal[2].1, &self.contacted[2].1);
        let (ideal4, contacted4) = (&self.ideal[1].1, &self.contacted[1].1);
        for k in (0..ideal5.len()).step_by(5) {
            t.push_owned_row(vec![
                num(ideal5.bias()[k], 2),
                sci(ideal5.current()[k]),
                sci(contacted5.current()[k]),
                sci(ideal4.current()[k]),
                sci(contacted4.current()[k]),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(
            f,
            "on-current reduction at (0.5 V, 0.5 V): {:.2}× (paper: current reduced)",
            self.current_reduction
        )?;
        writeln!(
            f,
            "saturation figure: ideal {:.2} → contacted {:.2} (paper: more linear, less saturation)",
            self.saturation[0], self.saturation[1]
        )?;
        let mut r = Table::new(
            "§III.B — total series resistance vs contact length (transfer-length model)",
            &["L_contact [nm]", "R_S + R_D + h/4q² [kΩ]"],
        );
        for (lc, rk) in &self.series_vs_contact_length {
            r.push_owned_row(vec![num(*lc, 0), num(*rk, 1)]);
        }
        writeln!(f, "{r}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contacts_reduce_and_linearize() {
        let fig = run().unwrap();
        assert!(
            fig.current_reduction > 1.4,
            "reduction {}",
            fig.current_reduction
        );
        assert!(
            fig.saturation[1] < 0.7 * fig.saturation[0],
            "ideal {} vs contacted {}",
            fig.saturation[0],
            fig.saturation[1]
        );
    }

    #[test]
    fn twenty_nanometer_contacts_hit_eleven_kilohm() {
        let fig = run().unwrap();
        let at_20 = fig
            .series_vs_contact_length
            .iter()
            .find(|(lc, _)| *lc == 20.0)
            .expect("20 nm row")
            .1;
        assert!((at_20 - 11.0).abs() < 1.5, "R(20 nm) = {at_20} kΩ");
    }

    #[test]
    fn series_resistance_monotone_in_contact_length() {
        let fig = run().unwrap();
        assert!(fig
            .series_vs_contact_length
            .windows(2)
            .all(|w| w[1].1 <= w[0].1));
    }

    #[test]
    fn all_curves_monotone_in_vds() {
        let fig = run().unwrap();
        for (vg, c) in fig.ideal.iter().chain(fig.contacted.iter()) {
            assert!(
                c.current().windows(2).all(|w| w[1] >= w[0] - 1e-12),
                "V_G = {vg}"
            );
        }
    }

    #[test]
    fn report_renders() {
        let s = run().unwrap().to_string();
        assert!(s.contains("50 kΩ"));
        assert!(s.contains("series resistance"));
    }
}

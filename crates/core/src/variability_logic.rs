//! From device statistics to circuit robustness: Monte-Carlo noise
//! margins under threshold-voltage dispersion.
//!
//! §V's measurement campaign (Park et al.) exists because "thorough
//! statistical analysis of recipes and methods needs to \[be\] applied":
//! a CNT technology is only usable if its device *distributions* still
//! yield working logic. This experiment samples inverter pairs with the
//! measured V_T dispersion (σ ≈ 70 mV from the Fig. 7 campaign), sweeps
//! each pair's VTC, and reports the noise-margin distribution and the
//! fraction of gates meeting a robustness floor — connecting
//! `carbon-fab`'s statistics to `carbon-logic`'s circuit analysis.

use std::sync::Arc;

use carbon_devices::AlphaPowerFet;
use carbon_fab::stats::{mean, percentile, std_dev};
use carbon_logic::Inverter;
use carbon_runtime::{par_mc_fine, Distribution, Normal};
use carbon_units::Voltage;

use crate::error::CoreError;
use crate::table::{num, Table};

/// One row of the study: V_T dispersion in, noise-margin statistics out.
#[derive(Debug, Clone, PartialEq)]
pub struct DispersionRow {
    /// Threshold-voltage sigma, V.
    pub vt_sigma: f64,
    /// Mean worst-side noise margin, V.
    pub nm_mean: f64,
    /// Noise-margin standard deviation, V.
    pub nm_sigma: f64,
    /// 5th-percentile noise margin, V.
    pub nm_p5: f64,
    /// Fraction of sampled gates with worst-side NM above 0.2 V.
    pub robust_fraction: f64,
}

/// Results of the variability-to-logic study.
#[derive(Debug, Clone)]
pub struct VariabilityLogic {
    /// One row per dispersion level.
    pub rows: Vec<DispersionRow>,
    /// Samples per row.
    pub samples: usize,
}

/// Samples per dispersion level (kept modest: each sample is a full
/// 61-point VTC solve).
pub const SAMPLES: usize = 40;

/// Runs the study at σ(V_T) ∈ {20, 70, 120} mV — the middle value being
/// the Fig. 7 campaign's measured dispersion.
///
/// Each sample is a full 61-point VTC solve, so the samples of a row
/// run in parallel on the runtime executor; per-sample seeding keeps
/// the margins identical at every thread count.
///
/// # Errors
///
/// Propagates device and circuit failures.
pub fn run() -> Result<VariabilityLogic, CoreError> {
    let mut rows = Vec::new();
    for vt_sigma in [0.02, 0.07, 0.12] {
        let seed = 2014 + (vt_sigma * 1e3) as u64;
        let dist = Normal::new(0.3, vt_sigma).map_err(|e| CoreError::Device(e.to_string()))?;
        let margins: Vec<f64> = par_mc_fine(seed, SAMPLES, |_, rng| -> Result<f64, CoreError> {
            // Independent V_T draws for the n and p device, clamped to
            // the model's validity range.
            let vt_n = dist.sample(rng).clamp(0.05, 0.6);
            let vt_p = dist.sample(rng).clamp(0.05, 0.6);
            let nfet = AlphaPowerFet::new(vt_n, 1.3, 7.2e-4, 0.8, 0.15, 75.0)
                .map_err(|e| CoreError::Device(e.to_string()))?;
            let pfet = AlphaPowerFet::new(vt_p, 1.3, 7.2e-4, 0.8, 0.15, 75.0)
                .map_err(|e| CoreError::Device(e.to_string()))?
                .into_p_type();
            let inv = Inverter::new(Arc::new(nfet), Arc::new(pfet), Voltage::from_volts(1.0))?;
            let vtc = inv.vtc(61)?;
            let nm = vtc.noise_margins();
            Ok(nm.low.min(nm.high))
        })
        .into_iter()
        .collect::<Result<_, _>>()?;
        let robust = margins.iter().filter(|&&m| m > 0.2).count() as f64 / SAMPLES as f64;
        rows.push(DispersionRow {
            vt_sigma,
            nm_mean: mean(&margins),
            nm_sigma: std_dev(&margins),
            nm_p5: percentile(&margins, 5.0),
            robust_fraction: robust,
        });
    }
    Ok(VariabilityLogic {
        rows,
        samples: SAMPLES,
    })
}

impl std::fmt::Display for VariabilityLogic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "§V — noise margin under V_T dispersion (Monte-Carlo inverter pairs)",
            &[
                "σ(V_T) [mV]",
                "NM mean [V]",
                "NM σ [V]",
                "NM p5 [V]",
                "robust (NM > 0.2 V)",
            ],
        );
        for r in &self.rows {
            t.push_owned_row(vec![
                num(r.vt_sigma * 1e3, 0),
                num(r.nm_mean, 3),
                num(r.nm_sigma, 3),
                num(r.nm_p5, 3),
                format!("{:.0} %", r.robust_fraction * 100.0),
            ]);
        }
        writeln!(f, "{t}")?;
        writeln!(f, "({} sampled inverter pairs per row)", self.samples)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispersion_erodes_the_margin_tail() {
        let v = run().unwrap();
        assert_eq!(v.rows.len(), 3);
        // The p5 tail degrades monotonically with dispersion.
        assert!(
            v.rows.windows(2).all(|w| w[1].nm_p5 <= w[0].nm_p5 + 0.01),
            "{:?}",
            v.rows
        );
        // Tight control: everything robust. Loose control: casualties.
        assert!(v.rows[0].robust_fraction > 0.95, "{:?}", v.rows[0]);
        assert!(v.rows[2].robust_fraction < v.rows[0].robust_fraction);
    }

    #[test]
    fn park_dispersion_keeps_most_gates_alive() {
        let v = run().unwrap();
        let park = &v.rows[1]; // σ = 70 mV
        assert!(
            park.robust_fraction > 0.6,
            "the measured dispersion must leave logic viable: {park:?}"
        );
        assert!(park.nm_mean > 0.2);
    }

    #[test]
    fn spread_grows_with_sigma() {
        let v = run().unwrap();
        assert!(v.rows[2].nm_sigma > v.rows[0].nm_sigma);
    }

    #[test]
    fn report_renders() {
        let s = run().unwrap().to_string();
        assert!(s.contains("V_T dispersion"));
        assert!(s.contains("robust"));
    }
}

//! Fig. 3 — the gate-all-around CNT-FET structure, quantified.
//!
//! The paper's Fig. 3 is a schematic; its quantitative content is the
//! §III.A electrostatics argument: "the most intense channel control can
//! be achieved with a gate-all-around structure ... the smallest short
//! channel effects, like drain-induced barrier lowering and very high on
//! current", plus the §III.B fringe-capacitance benefit of offset
//! contacts. This experiment produces the SS/DIBL-versus-gate-length
//! table for planar, double-gate, and GAA stacks on the same body, the
//! Skotnicki–Boeuf dark-space (CET-in-inversion) comparison across
//! channel materials, and the fringe-capacitance reduction from contact
//! lowering.

use carbon_electro::{ChannelMaterial, DarkSpaceModel, FringeModel, GateGeometry, Mosfet2dModel};
use carbon_units::Length;

use crate::error::CoreError;
use crate::table::{num, Table};

/// One geometry's scaling row.
#[derive(Debug, Clone)]
pub struct GeometryScaling {
    /// The gate geometry.
    pub geometry: GateGeometry,
    /// Scale length λ, nm.
    pub lambda_nm: f64,
    /// SS (mV/dec) at the probed gate lengths.
    pub ss: Vec<f64>,
    /// DIBL (mV/V) at the probed gate lengths.
    pub dibl: Vec<f64>,
}

/// Results of the Fig. 3 experiment.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Probed gate lengths, nm.
    pub gate_lengths_nm: Vec<f64>,
    /// One row per geometry (planar, double gate, GAA).
    pub geometries: Vec<GeometryScaling>,
    /// Dark-space CET in inversion (nm) per material at EOT = 0.7 nm.
    pub cet_by_material: Vec<(String, f64)>,
    /// Fringe-capacitance reduction from lowering the contacts, as a
    /// fraction.
    pub fringe_reduction: f64,
}

/// Runs the Fig. 3 experiment.
///
/// # Errors
///
/// Returns [`CoreError::Device`] if a geometry is rejected (cannot
/// happen for the fixed preset values).
pub fn run() -> Result<Fig3, CoreError> {
    let gate_lengths_nm = vec![9.0, 14.0, 20.0, 30.0, 50.0, 100.0];
    let body = Length::from_nanometers(1.5); // the nanotube body
    let tox = Length::from_nanometers(3.0);
    let mut geometries = Vec::new();
    for geometry in [
        GateGeometry::Planar,
        GateGeometry::DoubleGate,
        GateGeometry::GateAllAround,
    ] {
        let m = Mosfet2dModel::new(geometry, body, tox, 11.7, 16.0)
            .map_err(|e| CoreError::Device(e.to_string()))?;
        let ss = gate_lengths_nm
            .iter()
            .map(|&l| m.subthreshold_swing(Length::from_nanometers(l)))
            .collect();
        let dibl = gate_lengths_nm
            .iter()
            .map(|&l| m.dibl(Length::from_nanometers(l)))
            .collect();
        geometries.push(GeometryScaling {
            geometry,
            lambda_nm: m.scale_length().nanometers(),
            ss,
            dibl,
        });
    }
    let eot = Length::from_nanometers(0.7);
    let cet_by_material = [
        ChannelMaterial::silicon(),
        ChannelMaterial::germanium(),
        ChannelMaterial::ingaas(),
        ChannelMaterial::inas(),
        ChannelMaterial::cnt(),
    ]
    .into_iter()
    .map(|m| {
        let name = m.name().to_owned();
        (name, DarkSpaceModel::new(m).cet_inversion(eot).nanometers())
    })
    .collect();
    let fringe = FringeModel::new(
        Length::from_nanometers(30.0),
        Length::from_nanometers(30.0),
        Length::from_nanometers(6.0),
        7.0,
    )
    .map_err(|e| CoreError::Device(e.to_string()))?;
    let fringe_reduction = fringe.reduction_from_contact_lowering(Length::from_nanometers(5.0));
    Ok(Fig3 {
        gate_lengths_nm,
        geometries,
        cet_by_material,
        fringe_reduction,
    })
}

impl std::fmt::Display for Fig3 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Fig. 3 — SS [mV/dec] vs gate length per gate geometry (1.5 nm body, 3 nm high-k)",
            &["L_G [nm]", "planar", "double gate", "gate-all-around"],
        );
        for (k, &l) in self.gate_lengths_nm.iter().enumerate() {
            let fmt_ss = |x: f64| {
                if x.is_finite() {
                    num(x, 1)
                } else {
                    "no turn-off".into()
                }
            };
            t.push_owned_row(vec![
                num(l, 0),
                fmt_ss(self.geometries[0].ss[k]),
                fmt_ss(self.geometries[1].ss[k]),
                fmt_ss(self.geometries[2].ss[k]),
            ]);
        }
        writeln!(f, "{t}")?;
        let mut d = Table::new(
            "Fig. 3 — DIBL [mV/V] vs gate length per gate geometry",
            &["L_G [nm]", "planar", "double gate", "gate-all-around"],
        );
        for (k, &l) in self.gate_lengths_nm.iter().enumerate() {
            d.push_owned_row(vec![
                num(l, 0),
                num(self.geometries[0].dibl[k], 0),
                num(self.geometries[1].dibl[k], 0),
                num(self.geometries[2].dibl[k], 0),
            ]);
        }
        writeln!(f, "{d}")?;
        let mut c = Table::new(
            "Skotnicki–Boeuf dark space — CET in inversion at EOT = 0.7 nm",
            &["channel", "CET_inv [nm]"],
        );
        for (name, cet) in &self.cet_by_material {
            c.push_owned_row(vec![name.clone(), num(*cet, 2)]);
        }
        writeln!(f, "{c}")?;
        writeln!(
            f,
            "offset-contact fringe-capacitance reduction: {:.0} %",
            self.fringe_reduction * 100.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaa_dominates_every_gate_length() {
        let fig = run().unwrap();
        for k in 0..fig.gate_lengths_nm.len() {
            let p = fig.geometries[0].ss[k];
            let g = fig.geometries[2].ss[k];
            assert!(g <= p, "GAA at {} nm", fig.gate_lengths_nm[k]);
        }
    }

    #[test]
    fn gaa_cnt_stack_survives_9nm() {
        let fig = run().unwrap();
        let gaa_9nm = fig.geometries[2].ss[0];
        assert!(gaa_9nm < 70.0, "9 nm GAA SS {gaa_9nm} stays near-thermal");
        // A 1.5 nm body keeps even the planar stack alive at 9 nm, but
        // the GAA advantage is clearly measurable in both SS and DIBL.
        let planar_9nm = fig.geometries[0].ss[0];
        assert!(
            planar_9nm > gaa_9nm + 5.0,
            "planar {planar_9nm} vs GAA {gaa_9nm} at 9 nm"
        );
        let dibl_ratio = fig.geometries[0].dibl[0] / fig.geometries[2].dibl[0];
        assert!(dibl_ratio > 10.0, "DIBL contrast {dibl_ratio}×");
    }

    #[test]
    fn darkspace_ordering_matches_the_paper() {
        let fig = run().unwrap();
        let cet = |name: &str| {
            fig.cet_by_material
                .iter()
                .find(|(n, _)| n == name)
                .map(|(_, c)| *c)
                .expect("material present")
        };
        assert!(cet("CNT") < cet("Si"), "no dark space in a CNT");
        assert!(cet("Si") < cet("InGaAs"));
        assert!(cet("InGaAs") < cet("InAs"));
    }

    #[test]
    fn offset_contacts_pay_off() {
        let fig = run().unwrap();
        assert!(
            fig.fringe_reduction > 0.5,
            "reduction {}",
            fig.fringe_reduction
        );
    }

    #[test]
    fn report_renders() {
        let s = run().unwrap().to_string();
        assert!(s.contains("gate-all-around"));
        assert!(s.contains("CET"));
    }
}

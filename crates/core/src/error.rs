//! Error type aggregating the substrate failures an experiment can hit.

use carbon_logic::LogicError;
use carbon_spice::SpiceError;

/// Errors from running a paper experiment.
#[derive(Debug)]
pub enum CoreError {
    /// A device model could not be built.
    Device(String),
    /// The circuit simulator failed.
    Circuit(SpiceError),
    /// Logic-level analysis failed.
    Logic(LogicError),
    /// A figure of merit could not be extracted from simulated data.
    Extract(String),
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Device(msg) => write!(f, "device model failed: {msg}"),
            Self::Circuit(e) => write!(f, "circuit simulation failed: {e}"),
            Self::Logic(e) => write!(f, "logic analysis failed: {e}"),
            Self::Extract(msg) => write!(f, "extraction failed: {msg}"),
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Circuit(e) => Some(e),
            Self::Logic(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SpiceError> for CoreError {
    fn from(e: SpiceError) -> Self {
        Self::Circuit(e)
    }
}

impl From<LogicError> for CoreError {
    fn from(e: LogicError) -> Self {
        Self::Logic(e)
    }
}

impl From<carbon_devices::metrics::ExtractError> for CoreError {
    fn from(e: carbon_devices::metrics::ExtractError) -> Self {
        Self::Extract(e.to_string())
    }
}

impl From<Box<dyn std::error::Error + Send + Sync>> for CoreError {
    fn from(e: Box<dyn std::error::Error + Send + Sync>) -> Self {
        Self::Device(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CoreError = SpiceError::UnknownNode { name: "x".into() }.into();
        assert!(e.to_string().contains("circuit"));
        assert!(std::error::Error::source(&e).is_some());
        let e: CoreError = LogicError::InvalidParameter { reason: "r".into() }.into();
        assert!(e.to_string().contains("logic"));
        let e = CoreError::Extract("no crossing".into());
        assert!(e.to_string().contains("no crossing"));
    }
}

//! §V — industrial-grade integration statistics.
//!
//! Two reproductions in one experiment:
//!
//! * the **Park et al. \[22\] measurement campaign**: a >10,000-device
//!   array from self-assembly placement, with site-occupancy fractions,
//!   threshold-voltage statistics, on-current percentiles, and on/off
//!   histograms — "for the first time a statistical analysis of more
//!   than 10,000 CNTFETs that have been measured, was available";
//! * the **sorting economics**: semiconducting purity versus passes for
//!   gel chromatography / density gradient / DNA wrapping, with the
//!   cumulative material yield each purity level costs.

use carbon_fab::stats::{percentile_sorted, sort_samples};
use carbon_fab::{DevicePopulation, SortingProcess, VariabilityModel};

use crate::error::CoreError;
use crate::table::{num, sci, Table};

/// Results of the §V statistics experiment.
#[derive(Debug, Clone)]
pub struct Fig7Stats {
    /// The simulated measurement campaign.
    pub population: DevicePopulation,
    /// Functional / short / empty fractions.
    pub fractions: [f64; 3],
    /// Mean and sigma of the threshold voltage, V.
    pub vt_stats: (f64, f64),
    /// 5/50/95 percentiles of the on-current, µA.
    pub ion_percentiles: [f64; 3],
    /// Sorting table rows: (process, passes to 5 nines, cumulative yield).
    pub sorting: Vec<(String, usize, f64)>,
}

/// Number of devices in the campaign (the paper's ">10,000").
pub const CAMPAIGN_SIZE: usize = 10_000;

/// Campaign seed (the paper's year).
pub const CAMPAIGN_SEED: u64 = 2014;

/// Runs the §V statistics experiment with a fixed seed.
///
/// The measurement campaign runs on the runtime executor: the same
/// summary statistics come out at any thread count (the executor's
/// deterministic chunked schedule), while the 10,000 device solves
/// spread across the available cores.
///
/// # Errors
///
/// This experiment is deterministic and cannot fail at runtime; the
/// `Result` keeps the interface uniform with the other experiments.
pub fn run() -> Result<Fig7Stats, CoreError> {
    let mut campaign_span = carbon_trace::span!("core.fig7_campaign");
    let model = VariabilityModel::park_experiment();
    let population = model.sample_population_par(CAMPAIGN_SEED, CAMPAIGN_SIZE);
    let stats = stats_from(population);
    if campaign_span.is_live() {
        campaign_span.record("devices", CAMPAIGN_SIZE);
        campaign_span.record("seed", CAMPAIGN_SEED);
        campaign_span.record("functional_yield", stats.fractions[0]);
        campaign_span.record("vt_sigma", stats.vt_stats.1);
    }
    Ok(stats)
}

/// Default device cap for the adaptive campaign (10× the fixed size).
pub const ADAPTIVE_MAX_DEFAULT: usize = 100_000;

/// The §V campaign with adaptive sizing: growing in
/// [`carbon_runtime::MC_CHUNK`] rounds until the 95 % CI half-width on
/// the functional yield drops below `target_ci` or `max_devices` is
/// reached. Same seed and per-chunk RNG streams as [`run`], so a
/// campaign that stops at 10,000 devices is byte-identical to the fixed
/// one — and any stop size is byte-identical across `CARBON_THREADS`.
///
/// # Errors
///
/// Deterministic; `Result` kept uniform with the other experiments.
pub fn run_adaptive(target_ci: f64, max_devices: usize) -> Result<Fig7Adaptive, CoreError> {
    let model = VariabilityModel::park_experiment();
    let campaign = model.sample_population_adaptive(
        &carbon_runtime::Executor::new(),
        CAMPAIGN_SEED,
        target_ci,
        max_devices,
    );
    Ok(Fig7Adaptive {
        stats: stats_from(campaign.population),
        rounds: campaign.rounds,
        ci_half_width: campaign.ci_half_width,
        converged: campaign.converged,
    })
}

/// Summary statistics and the sorting table for a measured population —
/// shared by the fixed-size and adaptive campaigns.
fn stats_from(population: DevicePopulation) -> Fig7Stats {
    let fractions = [
        population.functional_yield(),
        population.short_fraction(),
        population.empty_fraction(),
    ];
    let vt_stats = population.vt_statistics();
    let mut ion: Vec<f64> = population.on_currents();
    // One sort serves all three percentile reads.
    sort_samples(&mut ion);
    let ion_percentiles = [
        percentile_sorted(&ion, 5.0) * 1e6,
        percentile_sorted(&ion, 50.0) * 1e6,
        percentile_sorted(&ion, 95.0) * 1e6,
    ];
    let sorting = [
        SortingProcess::gel_chromatography(),
        SortingProcess::density_gradient(),
        SortingProcess::dna_wrapping(),
    ]
    .into_iter()
    .map(|p| {
        let (passes, yield_) = p
            .passes_to_reach(0.67, 0.99999)
            .expect("all presets reach five nines");
        (p.name().to_owned(), passes, yield_)
    })
    .collect();
    Fig7Stats {
        population,
        fractions,
        vt_stats,
        ion_percentiles,
        sorting,
    }
}

/// Results of the adaptive §V campaign ([`run_adaptive`]).
#[derive(Debug, Clone)]
pub struct Fig7Adaptive {
    /// The same statistics as the fixed campaign, over the devices
    /// actually measured.
    pub stats: Fig7Stats,
    /// Chunk rounds run.
    pub rounds: usize,
    /// Final 95 % CI half-width on the functional yield.
    pub ci_half_width: f64,
    /// `true` if the target was met before `max_devices`.
    pub converged: bool,
}

impl std::fmt::Display for Fig7Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "§V — Park-style measurement campaign (10,000 self-assembled devices)",
            &["metric", "value"],
        );
        t.push_owned_row(vec![
            "devices measured".into(),
            format!("{}", self.population.len()),
        ]);
        t.push_owned_row(vec![
            "functional".into(),
            format!("{:.1} %", self.fractions[0] * 100.0),
        ]);
        t.push_owned_row(vec![
            "metallic shorts".into(),
            format!("{:.2} %", self.fractions[1] * 100.0),
        ]);
        t.push_owned_row(vec![
            "empty sites".into(),
            format!("{:.1} %", self.fractions[2] * 100.0),
        ]);
        t.push_owned_row(vec![
            "V_T mean ± σ".into(),
            format!("{:.3} ± {:.3} V", self.vt_stats.0, self.vt_stats.1),
        ]);
        t.push_owned_row(vec![
            "I_on p5/p50/p95".into(),
            format!(
                "{} / {} / {} µA",
                num(self.ion_percentiles[0], 1),
                num(self.ion_percentiles[1], 1),
                num(self.ion_percentiles[2], 1)
            ),
        ]);
        writeln!(f, "{t}")?;
        let mut s = Table::new(
            "§V — sorting economics: passes to 99.999 % semiconducting purity from as-grown 67 %",
            &["process", "passes", "cumulative material yield"],
        );
        for (name, passes, yield_) in &self.sorting {
            s.push_owned_row(vec![name.clone(), format!("{passes}"), sci(*yield_)]);
        }
        writeln!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_ten_thousand_devices() {
        let fig = run().unwrap();
        assert_eq!(fig.population.len(), CAMPAIGN_SIZE);
        let sum: f64 = fig.fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn statistics_are_physical() {
        let fig = run().unwrap();
        assert!(fig.fractions[0] > 0.5, "mostly functional");
        assert!((fig.vt_stats.0 - 0.35).abs() < 0.02);
        let [p5, p50, p95] = fig.ion_percentiles;
        assert!(p5 < p50 && p50 < p95);
        assert!(p50 > 1.0, "µA-class devices: median {p50} µA");
    }

    #[test]
    fn every_sorting_process_reaches_five_nines() {
        let fig = run().unwrap();
        assert_eq!(fig.sorting.len(), 3);
        for (name, passes, yield_) in &fig.sorting {
            assert!(*passes >= 1 && *passes <= 20, "{name}: {passes} passes");
            assert!(*yield_ > 0.0 && *yield_ < 1.0, "{name}: yield {yield_}");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run().unwrap();
        let b = run().unwrap();
        assert_eq!(a.fractions, b.fractions);
        assert_eq!(a.vt_stats, b.vt_stats);
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        // The executor's determinism contract, checked end to end: the
        // campaign must produce identical statistics at 1 and N threads.
        let model = carbon_fab::VariabilityModel::park_experiment();
        let sample = |threads: usize| {
            let ex = carbon_runtime::Executor::with_threads(threads);
            let pop = model.sample_population_with(&ex, CAMPAIGN_SEED, CAMPAIGN_SIZE);
            (pop.vt_statistics(), pop.functional_yield())
        };
        let single = sample(1);
        for threads in [2, 4, 8] {
            assert_eq!(sample(threads), single, "divergence at {threads} threads");
        }
    }

    #[test]
    fn adaptive_campaign_converges_on_whole_chunks() {
        let fig = run_adaptive(0.02, ADAPTIVE_MAX_DEFAULT).unwrap();
        assert!(fig.converged);
        assert!(fig.ci_half_width <= 0.02);
        let n = fig.stats.population.len();
        assert_eq!(n, fig.rounds * carbon_runtime::MC_CHUNK);
        assert!(n <= ADAPTIVE_MAX_DEFAULT);
        // Same seed, same streams: the adaptive population is a prefix
        // (or extension) of the fixed campaign's device sequence.
        let fixed = run().unwrap();
        let m = n.min(fixed.population.len());
        assert_eq!(
            fig.stats.population.outcomes()[..m],
            fixed.population.outcomes()[..m]
        );
    }

    #[test]
    fn adaptive_campaign_is_deterministic() {
        let a = run_adaptive(0.03, ADAPTIVE_MAX_DEFAULT).unwrap();
        let b = run_adaptive(0.03, ADAPTIVE_MAX_DEFAULT).unwrap();
        assert_eq!(a.stats.population.outcomes(), b.stats.population.outcomes());
        assert_eq!(a.rounds, b.rounds);
        assert_eq!(a.ci_half_width, b.ci_half_width);
    }

    #[test]
    fn report_renders() {
        let s = run().unwrap().to_string();
        assert!(s.contains("10,000") || s.contains("10000"));
        assert!(s.contains("sorting economics"));
    }
}

//! §V — industrial-grade integration statistics.
//!
//! Two reproductions in one experiment:
//!
//! * the **Park et al. \[22\] measurement campaign**: a >10,000-device
//!   array from self-assembly placement, with site-occupancy fractions,
//!   threshold-voltage statistics, on-current percentiles, and on/off
//!   histograms — "for the first time a statistical analysis of more
//!   than 10,000 CNTFETs that have been measured, was available";
//! * the **sorting economics**: semiconducting purity versus passes for
//!   gel chromatography / density gradient / DNA wrapping, with the
//!   cumulative material yield each purity level costs.

use carbon_fab::stats::percentile;
use carbon_fab::{DevicePopulation, SortingProcess, VariabilityModel};

use crate::error::CoreError;
use crate::table::{num, sci, Table};

/// Results of the §V statistics experiment.
#[derive(Debug, Clone)]
pub struct Fig7Stats {
    /// The simulated measurement campaign.
    pub population: DevicePopulation,
    /// Functional / short / empty fractions.
    pub fractions: [f64; 3],
    /// Mean and sigma of the threshold voltage, V.
    pub vt_stats: (f64, f64),
    /// 5/50/95 percentiles of the on-current, µA.
    pub ion_percentiles: [f64; 3],
    /// Sorting table rows: (process, passes to 5 nines, cumulative yield).
    pub sorting: Vec<(String, usize, f64)>,
}

/// Number of devices in the campaign (the paper's ">10,000").
pub const CAMPAIGN_SIZE: usize = 10_000;

/// Campaign seed (the paper's year).
pub const CAMPAIGN_SEED: u64 = 2014;

/// Runs the §V statistics experiment with a fixed seed.
///
/// The measurement campaign runs on the runtime executor: the same
/// summary statistics come out at any thread count (the executor's
/// deterministic chunked schedule), while the 10,000 device solves
/// spread across the available cores.
///
/// # Errors
///
/// This experiment is deterministic and cannot fail at runtime; the
/// `Result` keeps the interface uniform with the other experiments.
pub fn run() -> Result<Fig7Stats, CoreError> {
    let mut campaign_span = carbon_trace::span!("core.fig7_campaign");
    let model = VariabilityModel::park_experiment();
    let population = model.sample_population_par(CAMPAIGN_SEED, CAMPAIGN_SIZE);
    let fractions = [
        population.functional_yield(),
        population.short_fraction(),
        population.empty_fraction(),
    ];
    let vt_stats = population.vt_statistics();
    if campaign_span.is_live() {
        campaign_span.record("devices", CAMPAIGN_SIZE);
        campaign_span.record("seed", CAMPAIGN_SEED);
        campaign_span.record("functional_yield", fractions[0]);
        campaign_span.record("vt_sigma", vt_stats.1);
    }
    let ion: Vec<f64> = population.on_currents();
    let ion_percentiles = [
        percentile(&ion, 5.0) * 1e6,
        percentile(&ion, 50.0) * 1e6,
        percentile(&ion, 95.0) * 1e6,
    ];
    let sorting = [
        SortingProcess::gel_chromatography(),
        SortingProcess::density_gradient(),
        SortingProcess::dna_wrapping(),
    ]
    .into_iter()
    .map(|p| {
        let (passes, yield_) = p
            .passes_to_reach(0.67, 0.99999)
            .expect("all presets reach five nines");
        (p.name().to_owned(), passes, yield_)
    })
    .collect();
    Ok(Fig7Stats {
        population,
        fractions,
        vt_stats,
        ion_percentiles,
        sorting,
    })
}

impl std::fmt::Display for Fig7Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "§V — Park-style measurement campaign (10,000 self-assembled devices)",
            &["metric", "value"],
        );
        t.push_owned_row(vec![
            "devices measured".into(),
            format!("{}", self.population.len()),
        ]);
        t.push_owned_row(vec![
            "functional".into(),
            format!("{:.1} %", self.fractions[0] * 100.0),
        ]);
        t.push_owned_row(vec![
            "metallic shorts".into(),
            format!("{:.2} %", self.fractions[1] * 100.0),
        ]);
        t.push_owned_row(vec![
            "empty sites".into(),
            format!("{:.1} %", self.fractions[2] * 100.0),
        ]);
        t.push_owned_row(vec![
            "V_T mean ± σ".into(),
            format!("{:.3} ± {:.3} V", self.vt_stats.0, self.vt_stats.1),
        ]);
        t.push_owned_row(vec![
            "I_on p5/p50/p95".into(),
            format!(
                "{} / {} / {} µA",
                num(self.ion_percentiles[0], 1),
                num(self.ion_percentiles[1], 1),
                num(self.ion_percentiles[2], 1)
            ),
        ]);
        writeln!(f, "{t}")?;
        let mut s = Table::new(
            "§V — sorting economics: passes to 99.999 % semiconducting purity from as-grown 67 %",
            &["process", "passes", "cumulative material yield"],
        );
        for (name, passes, yield_) in &self.sorting {
            s.push_owned_row(vec![name.clone(), format!("{passes}"), sci(*yield_)]);
        }
        writeln!(f, "{s}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_ten_thousand_devices() {
        let fig = run().unwrap();
        assert_eq!(fig.population.len(), CAMPAIGN_SIZE);
        let sum: f64 = fig.fractions.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn statistics_are_physical() {
        let fig = run().unwrap();
        assert!(fig.fractions[0] > 0.5, "mostly functional");
        assert!((fig.vt_stats.0 - 0.35).abs() < 0.02);
        let [p5, p50, p95] = fig.ion_percentiles;
        assert!(p5 < p50 && p50 < p95);
        assert!(p50 > 1.0, "µA-class devices: median {p50} µA");
    }

    #[test]
    fn every_sorting_process_reaches_five_nines() {
        let fig = run().unwrap();
        assert_eq!(fig.sorting.len(), 3);
        for (name, passes, yield_) in &fig.sorting {
            assert!(*passes >= 1 && *passes <= 20, "{name}: {passes} passes");
            assert!(*yield_ > 0.0 && *yield_ < 1.0, "{name}: yield {yield_}");
        }
    }

    #[test]
    fn runs_are_deterministic() {
        let a = run().unwrap();
        let b = run().unwrap();
        assert_eq!(a.fractions, b.fractions);
        assert_eq!(a.vt_stats, b.vt_stats);
    }

    #[test]
    fn campaign_is_thread_count_invariant() {
        // The executor's determinism contract, checked end to end: the
        // campaign must produce identical statistics at 1 and N threads.
        let model = carbon_fab::VariabilityModel::park_experiment();
        let sample = |threads: usize| {
            let ex = carbon_runtime::Executor::with_threads(threads);
            let pop = model.sample_population_with(&ex, CAMPAIGN_SEED, CAMPAIGN_SIZE);
            (pop.vt_statistics(), pop.functional_yield())
        };
        let single = sample(1);
        for threads in [2, 4, 8] {
            assert_eq!(sample(threads), single, "divergence at {threads} threads");
        }
    }

    #[test]
    fn report_renders() {
        let s = run().unwrap().to_string();
        assert!(s.contains("10,000") || s.contains("10000"));
        assert!(s.contains("sorting economics"));
    }
}

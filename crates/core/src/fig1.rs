//! Fig. 1 — simulated I-V characteristics of a CNT-FET and a GNR-FET
//! with the same 0.56 eV bandgap (after Ouyang et al.), plus the
//! experimentally observed non-saturating "real GNR".
//!
//! Reproduced claims:
//!
//! * **(a)** the `I_D(V_GS)` curves of the two simulated devices overlap
//!   on a log plot at `V_DS = 0.5 V`;
//! * **(b)** both *simulated* devices saturate in `I_D(V_DS)` at
//!   `V_GS = 0.5 V` (current "hardly changes between 0.2 V and 0.5 V"),
//!   while the *real* GNR stays a gate-steered linear resistor at both
//!   gate voltages.

use carbon_devices::{BallisticFet, Fet, IvCurve, LinearGnrFet};
use carbon_units::Voltage;

use crate::error::CoreError;
use crate::table::{sci, Table};

/// All series of Fig. 1 plus the derived summary metrics.
#[derive(Debug, Clone)]
pub struct Fig1 {
    /// (a): CNT transfer curve at `V_DS = 0.5 V`.
    pub cnt_transfer: IvCurve,
    /// (a): GNR transfer curve at `V_DS = 0.5 V`.
    pub gnr_transfer: IvCurve,
    /// (b): CNT output curve at `V_GS = 0.5 V`.
    pub cnt_output: IvCurve,
    /// (b): GNR output curve at `V_GS = 0.5 V`.
    pub gnr_output: IvCurve,
    /// (b): real (measured-like) GNR output curves at two gate voltages.
    pub real_gnr_outputs: [IvCurve; 2],
    /// Worst log₁₀ distance between the two transfer curves over the
    /// common gate window (the "overlap" claim).
    pub transfer_log_gap: f64,
    /// Saturation figures of the three output curves
    /// (CNT, GNR-simulated, real GNR at the higher V_G).
    pub saturation_figures: [f64; 3],
    /// `I(0.5 V)/I(0.2 V)` for the simulated CNT output curve.
    pub cnt_sat_ratio: f64,
}

/// Runs the Fig. 1 experiment.
///
/// # Errors
///
/// Propagates device-model construction failures.
pub fn run() -> Result<Fig1, CoreError> {
    let cnt = BallisticFet::cnt_fig1()?;
    let gnr = BallisticFet::gnr_fig1()?;
    let real = LinearGnrFet::sub10nm_fig1();

    let vds = Voltage::from_volts(0.5);
    let vg_lo = Voltage::from_volts(-0.1);
    let vg_hi = Voltage::from_volts(0.9);
    let n = 101;
    let cnt_transfer = cnt.transfer(vg_lo, vg_hi, n, vds);
    let gnr_transfer = gnr.transfer(vg_lo, vg_hi, n, vds);

    let vgs = Voltage::from_volts(0.5);
    let cnt_output = cnt.output(Voltage::ZERO, vds, 51, vgs);
    let gnr_output = gnr.output(Voltage::ZERO, vds, 51, vgs);
    let real_gnr_outputs = [
        real.output(Voltage::ZERO, vds, 51, Voltage::from_volts(0.5)),
        real.output(Voltage::ZERO, vds, 51, Voltage::from_volts(1.0)),
    ];

    // Overlap metric: max |log10(I_cnt) − log10(I_gnr)| over the window
    // where both are above numerical noise.
    let transfer_log_gap = cnt_transfer
        .current()
        .iter()
        .zip(gnr_transfer.current())
        .filter(|(&a, &b)| a > 1e-15 && b > 1e-15)
        .map(|(&a, &b)| (a.log10() - b.log10()).abs())
        .fold(0.0, f64::max);

    let saturation_figures = [
        cnt_output.saturation_figure(),
        gnr_output.saturation_figure(),
        real_gnr_outputs[1].saturation_figure(),
    ];
    let i02 = cnt_output.current_at(0.2);
    let i05 = cnt_output.current_at(0.5);
    let cnt_sat_ratio = i05 / i02;

    Ok(Fig1 {
        cnt_transfer,
        gnr_transfer,
        cnt_output,
        gnr_output,
        real_gnr_outputs,
        transfer_log_gap,
        saturation_figures,
        cnt_sat_ratio,
    })
}

impl std::fmt::Display for Fig1 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut a = Table::new(
            "Fig. 1(a) — I_D(V_GS) at V_DS = 0.5 V (ballistic model, E_g = 0.56 eV)",
            &["V_GS [V]", "I_D CNT [A]", "I_D GNR [A]"],
        );
        for k in (0..self.cnt_transfer.len()).step_by(10) {
            a.push_owned_row(vec![
                format!("{:.2}", self.cnt_transfer.bias()[k]),
                sci(self.cnt_transfer.current()[k]),
                sci(self.gnr_transfer.current()[k]),
            ]);
        }
        writeln!(f, "{a}")?;
        let mut b = Table::new(
            "Fig. 1(b) — I_D(V_DS) at V_GS = 0.5 V",
            &[
                "V_DS [V]",
                "CNT (sim) [A]",
                "GNR (sim) [A]",
                "real GNR @0.5V [A]",
                "real GNR @1.0V [A]",
            ],
        );
        for k in (0..self.cnt_output.len()).step_by(5) {
            b.push_owned_row(vec![
                format!("{:.2}", self.cnt_output.bias()[k]),
                sci(self.cnt_output.current()[k]),
                sci(self.gnr_output.current()[k]),
                sci(self.real_gnr_outputs[0].current()[k]),
                sci(self.real_gnr_outputs[1].current()[k]),
            ]);
        }
        writeln!(f, "{b}")?;
        writeln!(
            f,
            "transfer overlap: max log10 gap = {:.2} decades (paper: curves overlap)",
            self.transfer_log_gap
        )?;
        writeln!(
            f,
            "saturation figures: CNT {:.1}, GNR(sim) {:.1}, real GNR {:.2} (≈1 = ohmic)",
            self.saturation_figures[0], self.saturation_figures[1], self.saturation_figures[2]
        )?;
        writeln!(
            f,
            "CNT I(0.5 V)/I(0.2 V) = {:.2} (paper: current hardly changes)",
            self.cnt_sat_ratio
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_curves_overlap_on_log_scale() {
        let fig = run().unwrap();
        // Degeneracy 4 vs 2 bounds the gap near log10(2) ≈ 0.3; "overlap
        // on this scale" means well under one decade.
        assert!(
            fig.transfer_log_gap < 0.8,
            "log gap {} decades",
            fig.transfer_log_gap
        );
    }

    #[test]
    fn simulated_devices_saturate_but_real_gnr_does_not() {
        let fig = run().unwrap();
        let [cnt, gnr, real] = fig.saturation_figures;
        assert!(cnt > 2.0, "CNT saturation figure {cnt}");
        assert!(gnr > 2.0, "GNR(sim) saturation figure {gnr}");
        assert!(real < 1.8, "real GNR must look ohmic, figure {real}");
    }

    #[test]
    fn cnt_current_hardly_changes_between_02_and_05() {
        let fig = run().unwrap();
        assert!(
            fig.cnt_sat_ratio < 1.35,
            "I(0.5)/I(0.2) = {}",
            fig.cnt_sat_ratio
        );
    }

    #[test]
    fn real_gnr_is_steered_by_gate() {
        let fig = run().unwrap();
        let i_lo = fig.real_gnr_outputs[0].current_at(0.4);
        let i_hi = fig.real_gnr_outputs[1].current_at(0.4);
        assert!(
            i_hi > 1.2 * i_lo,
            "gate moves the resistor: {i_lo} → {i_hi}"
        );
    }

    #[test]
    fn report_renders() {
        let fig = run().unwrap();
        let s = fig.to_string();
        assert!(s.contains("Fig. 1(a)"));
        assert!(s.contains("real GNR"));
    }
}

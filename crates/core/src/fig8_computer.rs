//! §V — the one-bit CNT computer, end to end.
//!
//! The chain the paper's §V implies, executed in one experiment:
//!
//! 1. build a complementary inverter from the **ballistic CNT-FET**
//!    compact model (tabulated for speed) and verify it regenerates;
//! 2. measure the CNT technology's stage delay with a SPICE **ring
//!    oscillator**;
//! 3. run the **SUBNEG one-bit computer** (counting and sorting — the
//!    programs the Shulaker machine demonstrated) with instruction
//!    timing grounded in that stage delay;
//! 4. fold in the §V statistics: computer yield versus semiconducting
//!    purity, for the 178-CNFET Shulaker design.

use std::sync::Arc;

use carbon_devices::{BallisticFet, TableFet};
use carbon_logic::computer::{counting_program, sorting_program, Halt, SubnegComputer};
use carbon_logic::{Inverter, RingOscillator};
use carbon_runtime::Xoshiro256pp;
use carbon_units::{Capacitance, Time, Voltage};

use carbon_fab::{CircuitYield, SelfAssembly, VariabilityModel, VmrProcess, WaferModel};

use crate::error::CoreError;
use crate::table::{num, Table};

/// Results of the CNT-computer experiment.
#[derive(Debug, Clone)]
pub struct Fig8Computer {
    /// Peak inverter gain of the CNT technology at V_DD = 0.5 V.
    pub inverter_gain: f64,
    /// Ring-oscillator stage delay, s.
    pub stage_delay_s: f64,
    /// Counting program: instructions executed and runtime, s.
    pub counting: (u64, f64),
    /// Sorting program result `(min, max)` for the (9, 3) input.
    pub sorted: (i64, i64),
    /// Yield rows: (semiconducting purity, device yield, computer yield).
    pub yield_vs_purity: Vec<(f64, f64, f64)>,
    /// VMR rescue: computer yield at 99 % purity before and after the
    /// metallic burn-off step.
    pub vmr_rescue: (f64, f64),
    /// Expected working computers on a Shulaker-run wafer.
    pub wafer_expected: f64,
    /// ASCII wafer map of one sampled run.
    pub wafer_map: String,
}

/// Runs the CNT-computer experiment.
///
/// # Errors
///
/// Propagates device, circuit, and logic failures.
pub fn run() -> Result<Fig8Computer, CoreError> {
    let vdd = 0.5;
    let nfet_live = BallisticFet::cnt_fig1()?;
    let pfet_live = {
        let band =
            carbon_band::CntBand::from_bandgap(carbon_units::Energy::from_electron_volts(0.56))
                .map_err(|e| CoreError::Device(e.to_string()))?;
        BallisticFet::builder(Arc::new(band))
            .threshold_voltage(0.3)
            .p_type()
            .width(carbon_units::Length::from_nanometers(1.5))
            .build()
            .map_err(|e| CoreError::Device(e.to_string()))?
    };
    // Tabulate for transient speed; windows cover rail excursions.
    let win = 0.2;
    let nfet = Arc::new(
        TableFet::sample(&nfet_live, (-win, vdd + win), (-win, vdd + win), 49, 49)
            .map_err(|e| CoreError::Device(e.to_string()))?,
    );
    let pfet = Arc::new(
        TableFet::sample(&pfet_live, (-vdd - win, win), (-vdd - win, win), 49, 49)
            .map_err(|e| CoreError::Device(e.to_string()))?,
    );

    let inverter = Inverter::new(nfet.clone(), pfet.clone(), Voltage::from_volts(vdd))?;
    let inverter_gain = inverter.vtc(101)?.max_abs_gain();

    let ring = RingOscillator::new(
        nfet,
        pfet,
        3,
        Voltage::from_volts(vdd),
        Capacitance::from_femtofarads(1.0),
    )?;
    let osc = ring.oscillation(Time::from_nanoseconds(4.0))?;
    let stage_delay_s = osc.stage_delay.seconds();

    // Counting: the Shulaker demo program.
    let (prog, mem) = counting_program(7);
    let mut cpu = SubnegComputer::new(prog, mem, 8, osc.stage_delay)?;
    let (halt, stats) = cpu.run(10_000)?;
    if halt != Halt::ProgramEnd || cpu.memory()[1] != -1 {
        return Err(CoreError::Extract(format!(
            "counting program misbehaved: halt {halt:?}, counter {}",
            cpu.memory()[1]
        )));
    }
    let counting = (stats.instructions, stats.execution_time.seconds());

    // Sorting (9, 3).
    let (prog, mem) = sorting_program(9, 3);
    let mut cpu = SubnegComputer::new(prog, mem, 8, osc.stage_delay)?;
    let (halt, _) = cpu.run(10_000)?;
    if halt != Halt::ProgramEnd {
        return Err(CoreError::Extract(format!(
            "sorting program halt: {halt:?}"
        )));
    }
    let sorted = (cpu.memory()[2], cpu.memory()[3]);

    // Yield vs purity for the 178-CNFET design, device yield from the
    // placement+purity Monte-Carlo.
    let mut yield_vs_purity = Vec::new();
    for purity in [0.99, 0.999, 0.9999, 0.99999] {
        let model = VariabilityModel::new(
            SelfAssembly::park_high_density(),
            purity,
            0.35,
            0.07,
            10e-6,
            0.4,
        )
        .map_err(|e| CoreError::Device(e.to_string()))?;
        let pop = model.sample_population(&mut Xoshiro256pp::seed_from_u64(99), 20_000);
        // Empty sites are screened out at test time (as in the Shulaker
        // flow); what kills a shipped circuit is the metallic-short
        // fraction among *occupied* sites.
        let occupied = 1.0 - pop.empty_fraction();
        let device_yield = if occupied > 0.0 {
            pop.functional_yield() / occupied
        } else {
            0.0
        };
        let cy = CircuitYield::new(device_yield).map_err(|e| CoreError::Device(e.to_string()))?;
        yield_vs_purity.push((
            purity,
            device_yield,
            cy.all_of(CircuitYield::SHULAKER_COMPUTER_CNFETS),
        ));
    }
    // VMR rescue at 99 % ink: §V's imperfection-immune trick.
    let vmr = VmrProcess::shulaker();
    let out = vmr.simulate(
        &mut Xoshiro256pp::seed_from_u64(7),
        &SelfAssembly::park_high_density(),
        0.99,
        20_000,
    );
    let n_dev = CircuitYield::SHULAKER_COMPUTER_CNFETS;
    let occupied = 1.0 - 0.1; // Poisson empties are screened out
    let before = CircuitYield::new((out.functional_before / occupied).min(1.0))
        .map_err(|e| CoreError::Device(e.to_string()))?
        .all_of(n_dev);
    let after = CircuitYield::new((out.functional_after / occupied).min(1.0))
        .map_err(|e| CoreError::Device(e.to_string()))?
        .all_of(n_dev);

    // A full wafer of one-bit computers.
    let wafer = WaferModel::shulaker_run();
    let wafer_expected = wafer.expected_good_dies();
    let wafer_map = wafer
        .sample(&mut Xoshiro256pp::seed_from_u64(2013))
        .to_string();

    Ok(Fig8Computer {
        inverter_gain,
        stage_delay_s,
        counting,
        sorted,
        yield_vs_purity,
        vmr_rescue: (before, after),
        wafer_expected,
        wafer_map,
    })
}

impl std::fmt::Display for Fig8Computer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "§V — one-bit SUBNEG CNT computer (stage delay from SPICE ring oscillator)",
            &["metric", "value"],
        );
        t.push_owned_row(vec![
            "CNT inverter peak gain (V_DD = 0.5 V)".into(),
            num(self.inverter_gain, 1),
        ]);
        t.push_owned_row(vec![
            "ring-oscillator stage delay".into(),
            format!("{:.1} ps", self.stage_delay_s * 1e12),
        ]);
        t.push_owned_row(vec![
            "counting(7): instructions".into(),
            format!("{}", self.counting.0),
        ]);
        t.push_owned_row(vec![
            "counting(7): runtime".into(),
            format!("{:.2} ns", self.counting.1 * 1e9),
        ]);
        t.push_owned_row(vec![
            "sorting(9, 3) → (min, max)".into(),
            format!("({}, {})", self.sorted.0, self.sorted.1),
        ]);
        writeln!(f, "{t}")?;
        let mut y = Table::new(
            "§V — computer yield vs semiconducting purity (178 CNFETs, Park-style placement)",
            &["purity", "device yield", "computer yield"],
        );
        for (p, dy, cy) in &self.yield_vs_purity {
            y.push_owned_row(vec![
                format!("{:.3} %", p * 100.0),
                format!("{:.2} %", dy * 100.0),
                format!("{:.2e}", cy),
            ]);
        }
        writeln!(f, "{y}")?;
        writeln!(
            f,
            "VMR (metallic burn-off) rescue at 99 % ink: computer yield {:.2e} → {:.2}",
            self.vmr_rescue.0, self.vmr_rescue.1
        )?;
        writeln!(
            f,
            "\nShulaker-run wafer map ({:.0} working computers expected; # = works, · = fails):\n{}",
            self.wafer_expected, self.wafer_map
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnt_technology_regenerates_and_rings() {
        let fig = run().unwrap();
        assert!(fig.inverter_gain > 1.5, "gain {}", fig.inverter_gain);
        let ps = fig.stage_delay_s * 1e12;
        assert!((1.0..2000.0).contains(&ps), "stage delay {ps} ps");
    }

    #[test]
    fn programs_execute_correctly() {
        let fig = run().unwrap();
        assert_eq!(fig.sorted, (3, 9));
        assert_eq!(fig.counting.0, 15, "2·7 + 1 instructions");
        assert!(fig.counting.1 > 0.0);
    }

    #[test]
    fn yield_collapses_without_purity() {
        let fig = run().unwrap();
        let first = fig.yield_vs_purity.first().unwrap();
        let last = fig.yield_vs_purity.last().unwrap();
        assert!(first.0 < last.0);
        assert!(
            last.2 > 10.0 * first.2,
            "purity buys computer yield: {:.2e} → {:.2e}",
            first.2,
            last.2
        );
    }

    #[test]
    fn vmr_rescues_the_computer() {
        let fig = run().unwrap();
        let (before, after) = fig.vmr_rescue;
        assert!(after > 10.0 * before, "VMR: {before:.2e} → {after:.2e}");
        assert!(after > 0.3, "rescued to a usable yield: {after}");
    }

    #[test]
    fn wafer_holds_several_computers() {
        let fig = run().unwrap();
        assert!(fig.wafer_expected > 5.0, "{} expected", fig.wafer_expected);
        assert!(fig.wafer_map.contains('#'));
    }

    #[test]
    fn report_renders() {
        let s = run().unwrap().to_string();
        assert!(s.contains("SUBNEG"));
        assert!(s.contains("computer yield"));
        assert!(s.contains("wafer map"));
    }
}

//! Figure experiments as service jobs.
//!
//! The carbon-serve job service runs the paper's figure experiments on
//! demand. The experiments return rich result structs; the service needs
//! a flat, deterministic rendering. This module adapts the two: each
//! `figN_report` runs the experiment and folds it into a [`JobReport`] —
//! an ordered scalar list whose order and values are identical on every
//! run, so a serialized report is byte-stable.
//!
//! New scalars may be appended over time; existing names and their
//! relative order are part of the service contract and must not change.

use crate::error::CoreError;
use crate::{fig2, fig5, fig7_stats};

/// Flat, deterministically ordered summary of one figure experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct JobReport {
    /// Experiment name (`"fig2"`, `"fig5"`, `"fig7"`).
    pub name: &'static str,
    /// Named scalar results, in a fixed order.
    pub scalars: Vec<(&'static str, f64)>,
}

/// Runs the Fig. 2 inverter experiment and flattens it.
///
/// # Errors
///
/// Propagates circuit-simulation failures from [`fig2::run`].
pub fn fig2_report() -> Result<JobReport, CoreError> {
    let r = fig2::run()?;
    Ok(JobReport {
        name: "fig2",
        scalars: vec![
            ("nm_low_saturating_v", r.margins_saturating.low),
            ("nm_high_saturating_v", r.margins_saturating.high),
            ("nm_low_non_saturating_v", r.margins_non_saturating.low),
            ("nm_high_non_saturating_v", r.margins_non_saturating.high),
            ("max_gain_saturating", r.max_gain[0]),
            ("max_gain_non_saturating", r.max_gain[1]),
            ("conduction_fraction_saturating", r.conduction_fraction[0]),
            (
                "conduction_fraction_non_saturating",
                r.conduction_fraction[1],
            ),
            ("stage_delay_s", r.stage_delay_s),
        ],
    })
}

/// Runs the Fig. 5 CNT benchmarking experiment and flattens it.
///
/// # Errors
///
/// Propagates device construction and extraction failures from
/// [`fig5::run`].
pub fn fig5_report() -> Result<JobReport, CoreError> {
    let r = fig5::run()?;
    let mut scalars = vec![
        ("min_advantage", r.min_advantage),
        ("cnt_points", r.cnt.len() as f64),
        ("reference_series", r.references.len() as f64),
    ];
    if let Some(shortest) = r.cnt.first() {
        scalars.push(("shortest_gate_nm", shortest.gate_length_nm));
        scalars.push(("shortest_gate_ion_ua_per_um", shortest.ion_ua_per_um));
        scalars.push(("shortest_gate_ballisticity", shortest.ballisticity));
    }
    Ok(JobReport {
        name: "fig5",
        scalars,
    })
}

/// Runs the §V variability-statistics experiment and flattens it.
///
/// # Errors
///
/// The campaign itself is deterministic and infallible; the `Result`
/// mirrors [`fig7_stats::run`].
pub fn fig7_report() -> Result<JobReport, CoreError> {
    let r = fig7_stats::run()?;
    Ok(JobReport {
        name: "fig7",
        scalars: fig7_scalars(&r),
    })
}

/// Runs the adaptive §V campaign and flattens it. The base scalars keep
/// the exact names and order of [`fig7_report`] (computed over the
/// devices actually measured); the campaign-sizing scalars are appended
/// after them.
///
/// # Errors
///
/// Mirrors [`fig7_stats::run_adaptive`].
pub fn fig7_report_adaptive(target_ci: f64, max_devices: usize) -> Result<JobReport, CoreError> {
    let r = fig7_stats::run_adaptive(target_ci, max_devices)?;
    let mut scalars = fig7_scalars(&r.stats);
    scalars.push(("devices", r.stats.population.len() as f64));
    scalars.push(("rounds", r.rounds as f64));
    scalars.push(("ci_half_width", r.ci_half_width));
    scalars.push(("converged", if r.converged { 1.0 } else { 0.0 }));
    Ok(JobReport {
        name: "fig7",
        scalars,
    })
}

/// The fig7 scalar list — single source of the name order shared by the
/// fixed and adaptive reports.
fn fig7_scalars(r: &fig7_stats::Fig7Stats) -> Vec<(&'static str, f64)> {
    vec![
        ("functional_yield", r.fractions[0]),
        ("short_fraction", r.fractions[1]),
        ("empty_fraction", r.fractions[2]),
        ("vt_mean_v", r.vt_stats.0),
        ("vt_sigma_v", r.vt_stats.1),
        ("ion_p5_ua", r.ion_percentiles[0]),
        ("ion_p50_ua", r.ion_percentiles[1]),
        ("ion_p95_ua", r.ion_percentiles[2]),
        ("sorting_processes", r.sorting.len() as f64),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig7_report_is_deterministic_and_ordered() {
        let a = fig7_report().unwrap();
        let b = fig7_report().unwrap();
        assert_eq!(a, b, "repeated runs must produce identical reports");
        assert_eq!(a.name, "fig7");
        let names: Vec<_> = a.scalars.iter().map(|(n, _)| *n).collect();
        assert_eq!(names[0], "functional_yield");
        assert!(
            a.scalars.iter().all(|(_, v)| v.is_finite()),
            "all report scalars must be finite: {:?}",
            a.scalars
        );
    }

    #[test]
    fn fig7_adaptive_report_extends_the_fixed_scalar_order() {
        let adaptive = fig7_report_adaptive(0.02, fig7_stats::ADAPTIVE_MAX_DEFAULT).unwrap();
        let fixed = fig7_report().unwrap();
        let base: Vec<_> = fixed.scalars.iter().map(|(n, _)| *n).collect();
        let ext: Vec<_> = adaptive.scalars.iter().map(|(n, _)| *n).collect();
        assert_eq!(&ext[..base.len()], &base[..], "base order is the contract");
        assert_eq!(
            &ext[base.len()..],
            &["devices", "rounds", "ci_half_width", "converged"]
        );
        assert!(adaptive.scalars.iter().all(|(_, v)| v.is_finite()));
    }

    #[test]
    fn fig2_report_names_are_unique() {
        let r = fig2_report().unwrap();
        let mut names: Vec<_> = r.scalars.iter().map(|(n, _)| *n).collect();
        let len = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), len, "duplicate scalar name in fig2 report");
        assert!(r.scalars.iter().all(|(_, v)| v.is_finite()));
    }
}

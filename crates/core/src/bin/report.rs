//! Prints every experiment table of the reproduction — the source of
//! `EXPERIMENTS.md`.
//!
//! ```text
//! cargo run --release -p carbon-core --bin report
//! ```

use carbon_core::{
    ablations, cascade, claims, fig1, fig2, fig3, fig4, fig5, fig6, fig7_stats, fig8_computer, rf,
    variability_logic,
};

fn main() -> Result<(), carbon_core::CoreError> {
    println!(
        "# Experiment report — Kreupl, \"Advancing CMOS with Carbon Electronics\" (DATE 2014)\n"
    );
    println!(
        "## Fig. 1 — CNT-FET vs GNR-FET, same bandgap\n\n{}",
        fig1::run()?
    );
    println!(
        "## Fig. 2 — inverter VTCs with and without saturation\n\n{}",
        fig2::run()?
    );
    println!(
        "## Fig. 3 — gate-all-around electrostatics and dark space\n\n{}",
        fig3::run()?
    );
    println!("## Fig. 4 — contact resistance\n\n{}", fig4::run()?);
    println!("## Fig. 5 — technology benchmark\n\n{}", fig5::run()?);
    println!("## Fig. 6 — CNT tunnel FET\n\n{}", fig6::run()?);
    println!("## Scalar claims\n\n{}", claims::run()?);
    println!("## §II — RF figures of merit\n\n{}", rf::run()?);
    println!("## §II — cascaded logic\n\n{}", cascade::run()?);
    println!("## §V — integration statistics\n\n{}", fig7_stats::run()?);
    println!("## §V — one-bit CNT computer\n\n{}", fig8_computer::run()?);
    println!("## Ablations\n\n{}", ablations::run()?);
    println!(
        "## §V — variability to logic robustness\n\n{}",
        variability_logic::run()?
    );
    Ok(())
}

//! One-command reproduction gate: runs every experiment and checks the
//! paper's headline claim for each, printing a ✓/✗ checklist.
//!
//! ```text
//! cargo run --release -p carbon-core --bin verify
//! ```
//!
//! Exits non-zero if any claim fails, so CI can gate on it.

use carbon_core::{
    ablations, cascade, claims, fig1, fig2, fig3, fig4, fig5, fig6, fig7_stats, fig8_computer, rf,
    variability_logic,
};

struct Checklist {
    failures: usize,
}

impl Checklist {
    fn check(&mut self, claim: &str, pass: bool, detail: String) {
        let mark = if pass { "✓" } else { "✗" };
        println!("{mark} {claim:<58} {detail}");
        if !pass {
            self.failures += 1;
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut list = Checklist { failures: 0 };
    println!("Reproduction gate — Kreupl, DATE 2014\n");

    let f1 = fig1::run()?;
    list.check(
        "Fig1a: CNT and GNR transfer curves overlap (log scale)",
        f1.transfer_log_gap < 0.8,
        format!("gap {:.2} dec", f1.transfer_log_gap),
    );
    list.check(
        "Fig1b: simulated devices saturate, real GNR is ohmic",
        f1.saturation_figures[0] > 2.0 && f1.saturation_figures[2] < 1.8,
        format!(
            "CNT {:.1} vs real GNR {:.2}",
            f1.saturation_figures[0], f1.saturation_figures[2]
        ),
    );
    list.check(
        "Fig1b: CNT current hardly changes 0.2 → 0.5 V",
        f1.cnt_sat_ratio < 1.35,
        format!("ratio {:.2}", f1.cnt_sat_ratio),
    );

    let f2 = fig2::run()?;
    list.check(
        "Fig2: saturating inverter has ~0.4 V noise margins",
        f2.margins_saturating.low > 0.25 && f2.margins_saturating.high > 0.25,
        format!(
            "NM {:.2}/{:.2} V",
            f2.margins_saturating.low, f2.margins_saturating.high
        ),
    );
    list.check(
        "Fig2: non-saturating inverter gain < 1, NM = 0",
        f2.max_gain[1] < 1.0 && f2.margins_non_saturating.low == 0.0,
        format!("gain {:.2}", f2.max_gain[1]),
    );

    let f3 = fig3::run()?;
    let cet = |name: &str| {
        f3.cet_by_material
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, c)| *c)
            .unwrap_or(f64::NAN)
    };
    list.check(
        "Fig3: GAA beats planar at every gate length",
        (0..f3.gate_lengths_nm.len()).all(|k| f3.geometries[2].ss[k] <= f3.geometries[0].ss[k]),
        format!(
            "SS@9nm {:.1} vs {:.1} mV/dec",
            f3.geometries[2].ss[0], f3.geometries[0].ss[0]
        ),
    );
    list.check(
        "Dark space: CNT < Si < InGaAs < InAs (CET in inversion)",
        cet("CNT") < cet("Si") && cet("Si") < cet("InGaAs") && cet("InGaAs") < cet("InAs"),
        format!(
            "{:.2} < {:.2} < {:.2} < {:.2} nm",
            cet("CNT"),
            cet("Si"),
            cet("InGaAs"),
            cet("InAs")
        ),
    );

    let f4 = fig4::run()?;
    list.check(
        "Fig4: 50 kΩ contacts reduce current and linearize the I-V",
        f4.current_reduction > 1.4 && f4.saturation[1] < 0.7 * f4.saturation[0],
        format!(
            "÷{:.2}, saturation {:.1} → {:.1}",
            f4.current_reduction, f4.saturation[0], f4.saturation[1]
        ),
    );

    let f5 = fig5::run()?;
    list.check(
        "Fig5: CNTFET outperforms Si/InAs/InGaAs at every length",
        f5.min_advantage > 1.0,
        format!("min advantage {:.1}×", f5.min_advantage),
    );

    let f6 = fig6::run()?;
    list.check(
        "Fig6: TFET average swing ≈ 83 mV/dec, best interval sub-60",
        (60.0..105.0).contains(&f6.average_swing) && f6.best_swing < 59.6,
        format!(
            "avg {:.1}, best {:.1} mV/dec",
            f6.average_swing, f6.best_swing
        ),
    );
    list.check(
        "Fig6: ~1 mA/µm on-current, forward diode gate-insensitive",
        f6.on_density_ma_per_um > 0.3 && f6.forward_gate_insensitive,
        format!("{:.2} mA/µm", f6.on_density_ma_per_um),
    );

    let c = claims::run()?;
    list.check(
        "§III.E: trigate ~66 µA; CNT ~1/3 at 0.6 V; >300× area",
        (c.trigate_ion * 1e6 - 66.0).abs() < 5.0
            && (0.15..0.6).contains(&(c.cnt_ion_06 / c.trigate_ion))
            && c.cross_section_ratio > 300.0,
        format!(
            "{:.0} µA, {:.2}, {:.0}×",
            c.trigate_ion * 1e6,
            c.cnt_ion_06 / c.trigate_ion,
            c.cross_section_ratio
        ),
    );
    list.check(
        "§III.B: 11 kΩ series-resistance floor",
        (c.cnt_series_kohm - 11.0).abs() < 1.5,
        format!("{:.1} kΩ", c.cnt_series_kohm),
    );
    list.check(
        "§II: sub-10 nm GNR with 10⁶ on/off and 2 mA/µm",
        c.gnr_on_off > 1e6 && (c.gnr_density_ma_um - 2.0).abs() < 0.3,
        format!("{:.1e}, {:.2} mA/µm", c.gnr_on_off, c.gnr_density_ma_um),
    );

    let r = rf::run()?;
    list.check(
        "§II RF: GNR gain < 1 → f_max collapses vs CNT",
        r.gnr.voltage_gain < 2.0 && r.cnt.fmax / r.gnr.fmax > 3.0,
        format!(
            "A_v {:.2} vs {:.1}; f_max ratio {:.0}×",
            r.gnr.voltage_gain,
            r.cnt.voltage_gain,
            r.cnt.fmax / r.gnr.fmax
        ),
    );

    let casc = cascade::run()?;
    list.check(
        "§II: cascaded logic regenerates only with saturation",
        casc.saturating.rail_error.last().copied().unwrap_or(1.0) < 0.02
            && casc
                .non_saturating
                .rail_error
                .last()
                .copied()
                .unwrap_or(0.0)
                > 0.35,
        format!(
            "final rail error {:.3} vs {:.3} V",
            casc.saturating
                .rail_error
                .last()
                .copied()
                .unwrap_or(f64::NAN),
            casc.non_saturating
                .rail_error
                .last()
                .copied()
                .unwrap_or(f64::NAN)
        ),
    );

    let f7 = fig7_stats::run()?;
    list.check(
        "§V: 10,000-device campaign with physical statistics",
        f7.population.len() == 10_000 && f7.fractions[0] > 0.5,
        format!("functional {:.1} %", f7.fractions[0] * 100.0),
    );

    let f8 = fig8_computer::run()?;
    list.check(
        "§V: SUBNEG computer counts and sorts on CNT logic",
        f8.sorted == (3, 9) && f8.inverter_gain > 1.5,
        format!(
            "sorted {:?}, stage {:.0} ps",
            f8.sorted,
            f8.stage_delay_s * 1e12
        ),
    );
    list.check(
        "§V: purity (or VMR) decides wafer-scale yield",
        f8.yield_vs_purity.last().map(|r| r.2).unwrap_or(0.0) > 0.9
            && f8.vmr_rescue.1 > 10.0 * f8.vmr_rescue.0
            && f8.wafer_expected > 5.0,
        format!(
            "5-nines yield {:.2}, VMR {:.1e}→{:.2}, {:.0} dies/wafer",
            f8.yield_vs_purity.last().map(|r| r.2).unwrap_or(0.0),
            f8.vmr_rescue.0,
            f8.vmr_rescue.1,
            f8.wafer_expected
        ),
    );

    let a = ablations::run()?;
    list.check(
        "Ablations: every design knob moves its figure the right way",
        a.saturation
            .last()
            .map(|r| r.max_gain < 1.0)
            .unwrap_or(false)
            && a.contacts.windows(2).all(|w| w[1].1 < w[0].1)
            && a.temperature.windows(2).all(|w| w[1].1 > w[0].1),
        format!("{} sweeps", 5),
    );

    let v = variability_logic::run()?;
    list.check(
        "§V: measured V_T dispersion still yields robust logic",
        v.rows[1].robust_fraction > 0.6,
        format!(
            "{:.0} % robust at σ = 70 mV",
            v.rows[1].robust_fraction * 100.0
        ),
    );

    println!();
    if list.failures == 0 {
        println!("all claims reproduced ✓");
        Ok(())
    } else {
        Err(format!("{} claim(s) failed", list.failures).into())
    }
}

//! Fig. 5 — benchmarking CNT-FETs against Si, InAs, and InGaAs: on-
//! current density at `V_DS = 0.5 V`, off-current normalized to
//! 100 nA/µm, versus gate length.
//!
//! The Si/III-V series are the literature background (del Alamo); the
//! CNT series is *simulated* here exactly the way the paper adds
//! measured CNT devices onto the plot: for each gate length, a ballistic
//! top-of-barrier CNT-FET with mean-free-path-limited ballisticity and
//! scale-length-degraded drain control is swept, the gate window is
//! positioned at the standard off-current, and the on-current is read
//! one supply above. The headline claim: "Clearly, the CNTFET
//! outperforms the alternatives."

use std::sync::Arc;

use carbon_band::CntBand;
use carbon_devices::metrics::normalized_on_current;
use carbon_devices::{BallisticFet, Fet};
use carbon_electro::{GateGeometry, Mosfet2dModel};
use carbon_units::{Energy, Length, Voltage};

use crate::error::CoreError;
use crate::refdata::{all_reference_series, RefSeries};
use crate::table::{num, Table};

/// One simulated CNT benchmark point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CntPoint {
    /// Gate length, nm.
    pub gate_length_nm: f64,
    /// Ballisticity `λ/(λ+L)` at this length.
    pub ballisticity: f64,
    /// Normalized on-current density, µA/µm.
    pub ion_ua_per_um: f64,
}

/// Results of the Fig. 5 experiment.
#[derive(Debug, Clone)]
pub struct Fig5 {
    /// Simulated CNT series.
    pub cnt: Vec<CntPoint>,
    /// Literature background series.
    pub references: Vec<RefSeries>,
    /// Minimum CNT advantage over the best reference at overlapping
    /// gate lengths (×).
    pub min_advantage: f64,
}

/// The benchmark's off-current target, A/m (100 nA/µm).
pub const I_OFF_TARGET_A_PER_M: f64 = 100e-9 / 1e-6;

/// Runs the Fig. 5 experiment.
///
/// # Errors
///
/// Propagates device construction and extraction failures.
pub fn run() -> Result<Fig5, CoreError> {
    let gate_lengths = [9.0, 15.0, 30.0, 60.0, 100.0, 300.0, 1000.0, 3000.0];
    let mfp = Length::from_nanometers(300.0);
    let diameter = Length::from_nanometers(1.5);
    let vdd = Voltage::from_volts(0.5);
    // Drain control degraded by the GAA scale length as channels shorten.
    let electro = Mosfet2dModel::new(
        GateGeometry::GateAllAround,
        diameter,
        Length::from_nanometers(3.0),
        11.7,
        16.0,
    )
    .map_err(|e| CoreError::Device(e.to_string()))?;
    let band = CntBand::from_bandgap(Energy::from_electron_volts(0.56))
        .map_err(|e| CoreError::Device(e.to_string()))?;

    // Each gate length is an independent 131-point transfer sweep;
    // fan the ladder out on the runtime executor.
    let cnt: Vec<CntPoint> =
        carbon_runtime::par_map(gate_lengths.len(), |k| -> Result<CntPoint, CoreError> {
            let lg = gate_lengths[k];
            let alpha_d = (electro.dibl(Length::from_nanometers(lg)) / 1e3).clamp(1e-3, 0.5);
            let fet = BallisticFet::builder(Arc::new(band.clone()))
                .threshold_voltage(0.25)
                .alpha_drain(alpha_d)
                .channel(Length::from_nanometers(lg), mfp)
                .width(diameter)
                .build()
                .map_err(|e| CoreError::Device(e.to_string()))?;
            let transfer = fet.transfer(
                Voltage::from_volts(-0.3),
                Voltage::from_volts(1.0),
                131,
                vdd,
            );
            // The paper notes the 9 nm device was normalized at 10× higher
            // off-current (its measurement floor).
            let i_off_target = if lg <= 9.0 {
                10.0 * I_OFF_TARGET_A_PER_M
            } else {
                I_OFF_TARGET_A_PER_M
            } * diameter.meters();
            let ion = normalized_on_current(&transfer, i_off_target, vdd)?;
            Ok(CntPoint {
                gate_length_nm: lg,
                ballisticity: fet.ballisticity(),
                ion_ua_per_um: ion / diameter.meters() * 1e6 / 1e6, // A/m = µA/µm
            })
        })
        .into_iter()
        .collect::<Result<_, CoreError>>()?;

    let references = all_reference_series();
    // CNT advantage at every reference gate length we bracket.
    let mut min_advantage = f64::INFINITY;
    for r in &references {
        for p in &r.points {
            let Some(cnt_at) = interpolate_cnt(&cnt, p.gate_length_nm) else {
                continue;
            };
            min_advantage = min_advantage.min(cnt_at / p.ion_ua_per_um);
        }
    }
    Ok(Fig5 {
        cnt,
        references,
        min_advantage,
    })
}

fn interpolate_cnt(cnt: &[CntPoint], lg: f64) -> Option<f64> {
    let first = cnt.first()?;
    let last = cnt.last()?;
    if lg < first.gate_length_nm || lg > last.gate_length_nm {
        return None;
    }
    for w in cnt.windows(2) {
        if lg >= w[0].gate_length_nm && lg <= w[1].gate_length_nm {
            let f = (lg - w[0].gate_length_nm) / (w[1].gate_length_nm - w[0].gate_length_nm);
            return Some(w[0].ion_ua_per_um * (1.0 - f) + w[1].ion_ua_per_um * f);
        }
    }
    None
}

impl std::fmt::Display for Fig5 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut t = Table::new(
            "Fig. 5 — I_on at V_DS = 0.5 V, I_off = 100 nA/µm (simulated CNT series)",
            &["L_G [nm]", "ballisticity", "I_on [µA/µm]"],
        );
        for p in &self.cnt {
            t.push_owned_row(vec![
                num(p.gate_length_nm, 0),
                num(p.ballisticity, 2),
                num(p.ion_ua_per_um, 0),
            ]);
        }
        writeln!(f, "{t}")?;
        let mut r = Table::new(
            "Fig. 5 — literature background (del Alamo)",
            &["technology", "L_G [nm]", "I_on [µA/µm]"],
        );
        for s in &self.references {
            for p in &s.points {
                r.push_owned_row(vec![
                    s.label.to_owned(),
                    num(p.gate_length_nm, 0),
                    num(p.ion_ua_per_um, 0),
                ]);
            }
        }
        writeln!(f, "{r}")?;
        writeln!(
            f,
            "minimum CNT advantage over the best alternative: {:.1}× (paper: CNTFET outperforms the alternatives)",
            self.min_advantage
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cnt_outperforms_every_alternative() {
        let fig = run().unwrap();
        assert!(
            fig.min_advantage > 1.0,
            "CNT must sit on top; advantage {}",
            fig.min_advantage
        );
    }

    #[test]
    fn cnt_density_is_milliamp_per_micron_class() {
        let fig = run().unwrap();
        let short = &fig.cnt[2]; // 30 nm
        assert!(
            short.ion_ua_per_um > 1000.0,
            "per-diameter normalization puts CNTs in the mA/µm class: {}",
            short.ion_ua_per_um
        );
    }

    #[test]
    fn long_channels_lose_ballisticity_and_current() {
        let fig = run().unwrap();
        let first = fig.cnt.first().unwrap();
        let last = fig.cnt.last().unwrap();
        assert!(first.ballisticity > 0.9);
        assert!(last.ballisticity < 0.15);
        assert!(last.ion_ua_per_um < first.ion_ua_per_um);
    }

    #[test]
    fn series_is_monotone_against_gate_length_above_9nm() {
        let fig = run().unwrap();
        // Skip the 9 nm point (different off-current normalization).
        let tail: Vec<f64> = fig.cnt[1..].iter().map(|p| p.ion_ua_per_um).collect();
        assert!(
            tail.windows(2).all(|w| w[1] <= w[0] * 1.05),
            "longer channel → lower normalized Ion: {tail:?}"
        );
    }

    #[test]
    fn report_renders() {
        let s = run().unwrap().to_string();
        assert!(s.contains("del Alamo"));
        assert!(s.contains("CNTFET outperforms"));
    }
}

//! Property-based tests of the circuit simulator: conservation laws on
//! random circuits, waveform envelopes, and parser robustness.

use carbon_runtime::prop::prelude::*;
use carbon_spice::parser::{parse_deck, parse_value};
use carbon_spice::{Circuit, Waveform};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// KCL at the source: the current delivered by the only source of a
    /// random star network equals the sum of branch currents computed
    /// from the node voltages.
    #[test]
    fn star_network_conserves_current(
        rs in carbon_runtime::prop::vec(10.0_f64..1e6, 2..8),
        v in -10.0_f64..10.0,
    ) {
        let mut ckt = Circuit::new();
        ckt.voltage_source("v", "hub", "0", v);
        for (k, r) in rs.iter().enumerate() {
            ckt.resistor(&format!("r{k}"), "hub", "0", *r).expect("unique names");
        }
        let op = ckt.op().expect("solvable");
        let hub = op.voltage("hub").expect("node");
        prop_assert!((hub - v).abs() < 1e-9);
        let i_source = -op.source_current("v").expect("branch");
        let i_sum: f64 = rs.iter().map(|r| v / r).sum();
        prop_assert!((i_source - i_sum).abs() < 1e-9 + 1e-6 * i_sum.abs());
    }

    /// Superposition on a linear two-source network.
    #[test]
    fn linear_superposition(
        v1 in -5.0_f64..5.0,
        v2 in -5.0_f64..5.0,
        r in 100.0_f64..1e5,
    ) {
        let build = |a: f64, b: f64| {
            let mut ckt = Circuit::new();
            ckt.voltage_source("va", "a", "0", a);
            ckt.voltage_source("vb", "b", "0", b);
            ckt.resistor("r1", "a", "mid", r).expect("r1");
            ckt.resistor("r2", "b", "mid", 2.0 * r).expect("r2");
            ckt.resistor("r3", "mid", "0", r).expect("r3");
            ckt.op().expect("solves").voltage("mid").expect("node")
        };
        let both = build(v1, v2);
        let only1 = build(v1, 0.0);
        let only2 = build(0.0, v2);
        prop_assert!((both - only1 - only2).abs() < 1e-8);
    }

    /// Sine waveforms stay inside offset ± amplitude.
    #[test]
    fn sin_waveform_bounded(
        offset in -2.0_f64..2.0,
        amplitude in 0.0_f64..3.0,
        freq in 1e3_f64..1e9,
        t in 0.0_f64..1e-3,
    ) {
        let w = Waveform::Sin { offset, amplitude, freq, delay: 0.0 };
        let v = w.value_at(t);
        prop_assert!(v >= offset - amplitude - 1e-12);
        prop_assert!(v <= offset + amplitude + 1e-12);
    }

    /// PWL interpolation never leaves the convex hull of its corner
    /// values.
    #[test]
    fn pwl_within_hull(
        vals in carbon_runtime::prop::vec(-5.0_f64..5.0, 2..6),
        t in 0.0_f64..10.0,
    ) {
        let pts: Vec<(f64, f64)> = vals
            .iter()
            .enumerate()
            .map(|(k, &v)| (k as f64, v))
            .collect();
        let w = Waveform::Pwl(pts);
        let v = w.value_at(t);
        let lo = vals.iter().cloned().fold(f64::MAX, f64::min);
        let hi = vals.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
    }

    /// The deck parser never panics on arbitrary printable input.
    #[test]
    fn parser_never_panics(deck in carbon_runtime::prop::printable_ascii(0..201)) {
        let _ = parse_deck(&deck);
    }

    /// Numbers with suffixes round-trip through the parser at the right
    /// magnitude.
    #[test]
    fn value_suffix_roundtrip(mantissa in 0.001_f64..999.0, suffix in 0usize..8) {
        let (txt, scale) = [
            ("f", 1e-15), ("p", 1e-12), ("n", 1e-9), ("u", 1e-6),
            ("m", 1e-3), ("k", 1e3), ("meg", 1e6), ("g", 1e9),
        ][suffix];
        let token = format!("{mantissa}{txt}");
        let v = parse_value(&token).expect("parses");
        prop_assert!((v / (mantissa * scale) - 1.0).abs() < 1e-12, "{token} → {v}");
    }

    /// Transient of a source-driven resistor tracks the waveform exactly
    /// (no spurious dynamics without reactive elements).
    #[test]
    fn resistive_transient_tracks_source(
        amp in 0.1_f64..3.0,
        freq_mhz in 0.5_f64..5.0,
    ) {
        let mut ckt = Circuit::new();
        ckt.voltage_source_wave(
            "v",
            "in",
            "0",
            Waveform::Sin { offset: 0.0, amplitude: amp, freq: freq_mhz * 1e6, delay: 0.0 },
        ).expect("source");
        ckt.resistor("r1", "in", "out", 1e3).expect("r1");
        ckt.resistor("r2", "out", "0", 1e3).expect("r2");
        let tran = ckt.transient(1e-8, 1e-6).expect("integrates");
        let t = tran.times();
        let v = tran.voltages("out").expect("node");
        for k in (0..t.len()).step_by(17) {
            let expect = 0.5 * amp * (2.0 * std::f64::consts::PI * freq_mhz * 1e6 * t[k]).sin();
            prop_assert!((v[k] - expect).abs() < 1e-6 + 1e-6 * amp, "t = {}", t[k]);
        }
    }

    /// The sparse complex replay path agrees with the dense complex
    /// oracle on random RC ladders: same circuit, same frequencies,
    /// answers equal to tight relative tolerance at every unknown.
    /// (Exact bit equality is reserved for same-path comparisons — the
    /// two solvers eliminate in different orders.)
    #[test]
    fn ac_sparse_agrees_with_dense_oracle(
        stages in 17usize..40,
        r_exp in 2.0_f64..5.0,
        c_exp in -13.0_f64..-10.0,
        f_lo_exp in 3.0_f64..6.0,
    ) {
        let (r, c) = (10f64.powf(r_exp), 10f64.powf(c_exp));
        let mut ckt = Circuit::new();
        ckt.voltage_source("vin", "n0", "0", 0.0);
        for k in 0..stages {
            ckt.resistor(&format!("r{k}"), &format!("n{k}"), &format!("n{}", k + 1), r)
                .expect("unique");
            ckt.capacitor(&format!("c{k}"), &format!("n{}", k + 1), "0", c)
                .expect("unique");
        }
        let freqs: Vec<f64> = (0..8)
            .map(|k| 10f64.powf(f_lo_exp) * 10f64.powf(k as f64 / 2.0))
            .collect();
        let dense = ckt
            .ac_sweep_with("vin", &freqs, carbon_spice::AcMethod::Dense)
            .expect("dense solves");
        let sparse = ckt
            .ac_sweep_with("vin", &freqs, carbon_spice::AcMethod::Sparse)
            .expect("sparse solves");
        for (fd, fs) in dense.solutions().iter().zip(sparse.solutions()) {
            for (d, s) in fd.iter().zip(fs) {
                let err = (*d - *s).abs();
                prop_assert!(
                    err < 1e-9 * d.abs().max(1e-3),
                    "dense {d:?} vs sparse {s:?} (err {err:.3e})"
                );
            }
        }
    }

    /// AC magnitude of the RC low-pass is the analytic |H| at every
    /// random frequency.
    #[test]
    fn rc_ac_matches_analytic(f in 1e3_f64..1e9) {
        let (r, c) = (1e3, 1e-9);
        let mut ckt = Circuit::new();
        ckt.voltage_source("vin", "in", "0", 0.0);
        ckt.resistor("r", "in", "out", r).expect("r");
        ckt.capacitor("c", "out", "0", c).expect("c");
        let ac = ckt.ac_sweep("vin", &[f]).expect("solves");
        let mag = ac.magnitude("out").expect("node")[0];
        let w = 2.0 * std::f64::consts::PI * f;
        let expect = 1.0 / (1.0 + (w * r * c).powi(2)).sqrt();
        prop_assert!((mag - expect).abs() < 1e-6 + 1e-3 * expect, "f = {f:.3e}");
    }
}

//! Integration tests: complete circuits solved end-to-end.

use std::sync::Arc;

use carbon_spice::{Circuit, FetCurve, SpiceError, Waveform};

#[test]
fn resistive_divider() {
    let mut ckt = Circuit::new();
    ckt.voltage_source("vin", "in", "0", 2.0);
    ckt.resistor("r1", "in", "out", 1e3).unwrap();
    ckt.resistor("r2", "out", "0", 1e3).unwrap();
    let op = ckt.op().unwrap();
    assert!((op.voltage("out").unwrap() - 1.0).abs() < 1e-9);
    // Source supplies 1 mA; convention: current into the + terminal.
    assert!((op.source_current("vin").unwrap() + 1e-3).abs() < 1e-9);
}

#[test]
fn ladder_network_kcl() {
    // 5-stage R ladder: analytic node voltages.
    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "n0", "0", 1.0);
    for i in 0..5 {
        ckt.resistor(
            &format!("rs{i}"),
            &format!("n{i}"),
            &format!("n{}", i + 1),
            1e3,
        )
        .unwrap();
        ckt.resistor(&format!("rp{i}"), &format!("n{}", i + 1), "0", 1e3)
            .unwrap();
    }
    let op = ckt.op().unwrap();
    // Every node voltage must be positive and decreasing along the ladder.
    let mut prev = 1.0;
    for i in 1..=5 {
        let v = op.voltage(&format!("n{i}")).unwrap();
        assert!(v > 0.0 && v < prev, "n{i} = {v}");
        prev = v;
    }
}

#[test]
fn floating_node_is_singular() {
    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "a", "0", 1.0);
    ckt.resistor("r", "a", "b", 1e3).unwrap();
    // Node "c" exists but only via a capacitor → DC-floating; gmin keeps
    // it solvable, so this should NOT error.
    ckt.capacitor("c", "b", "c", 1e-15).unwrap();
    let op = ckt.op().unwrap();
    assert!((op.voltage("b").unwrap() - 1.0).abs() < 1e-6);
}

#[test]
fn voltage_source_loop_is_singular() {
    let mut ckt = Circuit::new();
    ckt.voltage_source("v1", "a", "0", 1.0);
    ckt.voltage_source("v2", "a", "0", 2.0);
    assert!(matches!(ckt.op(), Err(SpiceError::SingularMatrix { .. })));
}

#[test]
fn current_source_into_resistor() {
    let mut ckt = Circuit::new();
    ckt.current_source("i1", "out", "0", 1e-3).unwrap();
    ckt.resistor("r", "out", "0", 2e3).unwrap();
    let op = ckt.op().unwrap();
    // 1 mA into 2 kΩ → 2 V.
    assert!((op.voltage("out").unwrap() - 2.0).abs() < 1e-6);
}

#[test]
fn diode_clamps_forward_voltage() {
    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "in", "0", 5.0);
    ckt.resistor("r", "in", "d", 1e3).unwrap();
    ckt.diode("d1", "d", "0", 1e-15, 1.0).unwrap();
    let op = ckt.op().unwrap();
    let vd = op.voltage("d").unwrap();
    assert!((0.55..0.85).contains(&vd), "diode drop {vd} V");
    let i = -op.source_current("v").unwrap();
    assert!((i - (5.0 - vd) / 1e3).abs() < 1e-9);
}

#[test]
fn reverse_diode_blocks() {
    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "in", "0", -5.0);
    ckt.resistor("r", "in", "d", 1e3).unwrap();
    ckt.diode("d1", "d", "0", 1e-15, 1.0).unwrap();
    let op = ckt.op().unwrap();
    let i = op.source_current("v").unwrap().abs();
    assert!(i < 1e-9, "reverse current {i} A");
}

#[test]
fn vccs_amplifier() {
    // gm of 1 mS driving 1 kΩ from a 0.5 V input: output = −gm·R·vin
    // with our sign convention (current enters p = "out").
    let mut ckt = Circuit::new();
    ckt.voltage_source("vin", "in", "0", 0.5);
    ckt.vccs("g1", "out", "0", "in", "0", 1e-3).unwrap();
    ckt.resistor("rl", "out", "0", 1e3).unwrap();
    let op = ckt.op().unwrap();
    assert!((op.voltage("out").unwrap() - 0.5).abs() < 1e-9);
}

#[derive(Debug)]
struct SquareLawNfet {
    k: f64,
    vt: f64,
}

impl FetCurve for SquareLawNfet {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        if vds < 0.0 {
            // Symmetric conduction for reversed drain.
            return -self.ids(vgs - vds, -vds);
        }
        let vov = vgs - self.vt;
        if vov <= 0.0 {
            0.0
        } else if vds < vov {
            self.k * (vov * vds - 0.5 * vds * vds)
        } else {
            0.5 * self.k * vov * vov
        }
    }
}

#[test]
fn nfet_common_source_with_resistor_load() {
    let model = Arc::new(SquareLawNfet { k: 1e-3, vt: 0.4 });
    let mut ckt = Circuit::new();
    ckt.voltage_source("vdd", "vdd", "0", 1.0);
    ckt.voltage_source("vg", "g", "0", 0.8);
    ckt.resistor("rl", "vdd", "d", 10e3).unwrap();
    ckt.fet("m1", "d", "g", "0", model).unwrap();
    let op = ckt.op().unwrap();
    let vd = op.voltage("d").unwrap();
    // Solve by hand: in saturation Id = 0.5e-3·0.4² = 80 µA → drop 0.8 V
    // → vd = 0.2 V < vov = 0.4 V → actually triode. Solve triode:
    // (1 − vd)/10e3 = 1e-3(0.4·vd − vd²/2) → 1 − vd = 4vd − 5vd²
    // → 5vd² − 5vd + 1 = 0 → vd = (5 − √5)/10 ≈ 0.2764.
    assert!((vd - 0.2764).abs() < 1e-3, "vd = {vd}");
}

#[test]
fn fet_off_state_leaks_nothing() {
    let model = Arc::new(SquareLawNfet { k: 1e-3, vt: 0.4 });
    let mut ckt = Circuit::new();
    ckt.voltage_source("vdd", "vdd", "0", 1.0);
    ckt.voltage_source("vg", "g", "0", 0.0);
    ckt.resistor("rl", "vdd", "d", 10e3).unwrap();
    ckt.fet("m1", "d", "g", "0", model).unwrap();
    let op = ckt.op().unwrap();
    assert!((op.voltage("d").unwrap() - 1.0).abs() < 1e-4);
}

#[test]
fn dc_sweep_traces_square_law() {
    let model = Arc::new(SquareLawNfet { k: 1e-3, vt: 0.4 });
    let mut ckt = Circuit::new();
    ckt.voltage_source("vd", "d", "0", 1.0);
    ckt.voltage_source("vg", "g", "0", 1.0);
    ckt.fet("m1", "d", "g", "0", model).unwrap();
    let sweep = ckt.dc_sweep("vg", 0.0, 1.0, 0.05).unwrap();
    assert_eq!(sweep.len(), 21);
    let id: Vec<f64> = sweep.currents("vd").unwrap().iter().map(|i| -i).collect();
    // Monotone non-decreasing, zero below Vt, 180 µA at Vgs = 1 V.
    assert!(id.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    assert!(id[4] < 1e-9, "below threshold at 0.2 V");
    assert!((id[20] - 0.5e-3 * 0.36).abs() < 1e-6, "Id(1V) = {}", id[20]);
}

#[test]
fn downward_sweep_works() {
    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "a", "0", 0.0);
    ckt.resistor("r", "a", "0", 1e3).unwrap();
    let sweep = ckt.dc_sweep("v", 1.0, 0.0, 0.25).unwrap();
    assert_eq!(sweep.sweep_values(), &[1.0, 0.75, 0.5, 0.25, 0.0]);
}

#[test]
fn sweep_rejects_bad_step() {
    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "a", "0", 0.0);
    ckt.resistor("r", "a", "0", 1e3).unwrap();
    assert!(matches!(
        ckt.dc_sweep("v", 0.0, 1.0, 0.0),
        Err(SpiceError::InvalidSweep { .. })
    ));
    assert!(matches!(
        ckt.dc_sweep("nope", 0.0, 1.0, 0.1),
        Err(SpiceError::UnknownSource { .. })
    ));
}

#[test]
fn rc_charging_transient() {
    // R = 1 kΩ, C = 1 nF, step 0 → 1 V at t = t0: v = 1 − e^(−(t−t0)/RC).
    // The edge is delayed past t = 0 so the DC initial condition sees the
    // low level and the capacitor starts discharged.
    let tau = 1e-6;
    let h = tau / 100.0;
    let t0 = 5.0 * h;
    let mut ckt = Circuit::new();
    ckt.voltage_source_wave(
        "v",
        "in",
        "0",
        Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: t0,
            rise: 0.0,
            fall: 0.0,
            width: 1.0,
            period: 0.0,
        },
    )
    .unwrap();
    ckt.resistor("r", "in", "out", 1e3).unwrap();
    ckt.capacitor("c", "out", "0", 1e-9).unwrap();
    let tran = ckt.transient(h, 5.0 * tau).unwrap();
    let v = tran.voltages("out").unwrap();
    let t = tran.times();
    for (k, (&tk, &vk)) in t.iter().zip(v.iter()).enumerate() {
        if tk <= t0 + 2.0 * h {
            continue; // skip the discrete edge itself
        }
        let exact = 1.0 - (-(tk - t0) / tau).exp();
        assert!(
            (vk - exact).abs() < 1e-2,
            "step {k}: v = {vk}, exact = {exact}"
        );
    }
    // Final value reaches the rail.
    assert!((v.last().unwrap() - 1.0).abs() < 0.02);
}

#[test]
fn lc_free_of_caps_transient_follows_source() {
    let mut ckt = Circuit::new();
    ckt.voltage_source_wave(
        "v",
        "in",
        "0",
        Waveform::Sin {
            offset: 0.0,
            amplitude: 1.0,
            freq: 1e6,
            delay: 0.0,
        },
    )
    .unwrap();
    ckt.resistor("r", "in", "out", 1e3).unwrap();
    ckt.resistor("r2", "out", "0", 1e3).unwrap();
    let tran = ckt.transient(1e-8, 1e-6).unwrap();
    let v = tran.voltages("out").unwrap();
    // Pure resistive divider follows the sine at half amplitude.
    let quarter = 25; // t = 0.25 µs, sin peak
    assert!((v[quarter] - 0.5).abs() < 1e-3, "v = {}", v[quarter]);
}

#[test]
fn transient_rejects_bad_grid() {
    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "a", "0", 1.0);
    ckt.resistor("r", "a", "0", 1e3).unwrap();
    assert!(ckt.transient(0.0, 1e-6).is_err());
    assert!(ckt.transient(1e-6, 0.0).is_err());
    assert!(ckt.transient(1e-6, 1e-9).is_err());
}

#[test]
fn cmos_like_inverter_vtc_with_toy_models() {
    // Symmetric square-law n/p pair; the VTC must swing rail to rail and
    // cross Vdd/2 at Vin = Vdd/2.
    #[derive(Debug)]
    struct SquareLawPfet {
        k: f64,
        vt: f64,
    }
    impl FetCurve for SquareLawPfet {
        fn ids(&self, vgs: f64, vds: f64) -> f64 {
            // p-type: conduct for vgs < −|vt|; mirror of the n-type.
            let n = SquareLawNfet {
                k: self.k,
                vt: self.vt,
            };
            -n.ids(-vgs, -vds)
        }
    }
    let nfet = Arc::new(SquareLawNfet { k: 2e-3, vt: 0.3 });
    let pfet = Arc::new(SquareLawPfet { k: 2e-3, vt: 0.3 });
    let mut ckt = Circuit::new();
    ckt.voltage_source("vdd", "vdd", "0", 1.0);
    ckt.voltage_source("vin", "in", "0", 0.0);
    ckt.fet("mp", "out", "in", "vdd", pfet).unwrap();
    ckt.fet("mn", "out", "in", "0", nfet).unwrap();
    let sweep = ckt.dc_sweep("vin", 0.0, 1.0, 0.02).unwrap();
    let vout = sweep.voltages("out").unwrap();
    assert!(vout[0] > 0.99, "output high at Vin = 0: {}", vout[0]);
    assert!(vout[50] < 0.01, "output low at Vin = 1: {}", vout[50]);
    // Monotone decreasing.
    assert!(vout.windows(2).all(|w| w[1] <= w[0] + 1e-9));
    // The switching threshold brackets mid-rail for the symmetric pair.
    // (With ideal square-law devices the VTC is vertical at Vdd/2, so the
    // mid-point value itself is indeterminate inside the plateau.)
    assert!(vout[23] > 0.5, "V(out) at 0.46 V = {}", vout[23]);
    assert!(vout[27] < 0.5, "V(out) at 0.54 V = {}", vout[27]);
}

#[test]
fn op_result_error_paths() {
    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "a", "0", 1.0);
    ckt.resistor("r", "a", "0", 1e3).unwrap();
    let op = ckt.op().unwrap();
    assert!(op.voltage("ghost").is_err());
    assert!(op.source_current("r").is_err());
    assert_eq!(op.voltage("0").unwrap(), 0.0);
}

#[test]
fn inductor_is_a_dc_short() {
    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "in", "0", 1.0);
    ckt.resistor("r", "in", "mid", 1e3).unwrap();
    ckt.inductor("l", "mid", "0", 1e-3).unwrap();
    let op = ckt.op().unwrap();
    assert!(op.voltage("mid").unwrap().abs() < 1e-6, "short to ground");
    // The inductor branch carries the full loop current.
    assert!((op.source_current("l").unwrap() - 1e-3).abs() < 1e-8);
}

#[test]
fn rl_current_rises_exponentially() {
    // V steps 0 → 1 V at t0 into R = 1 kΩ + L = 1 mH: τ = L/R = 1 µs,
    // i(t) = (V/R)·(1 − e^(−(t − t0)/τ)).
    let tau = 1e-6;
    let h = tau / 100.0;
    let t0 = 5.0 * h;
    let mut ckt = Circuit::new();
    ckt.voltage_source_wave(
        "v",
        "in",
        "0",
        Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: t0,
            rise: 0.0,
            fall: 0.0,
            width: 1.0,
            period: 0.0,
        },
    )
    .unwrap();
    ckt.resistor("r", "in", "mid", 1e3).unwrap();
    ckt.inductor("l", "mid", "0", 1e-3).unwrap();
    let tran = ckt.transient(h, 5.0 * tau).unwrap();
    // Probe the inductor current through the mid-node voltage:
    // v(mid) = v_L = V − i·R → i = (v(in) − v(mid))/R.
    let vin = tran.voltages("in").unwrap();
    let vmid = tran.voltages("mid").unwrap();
    let t = tran.times();
    for k in 0..t.len() {
        if t[k] <= t0 + 2.0 * h {
            continue;
        }
        let i = (vin[k] - vmid[k]) / 1e3;
        let exact = 1e-3 * (1.0 - (-(t[k] - t0) / tau).exp());
        assert!(
            (i - exact).abs() < 2e-5,
            "t = {:.3e}: i = {i:.4e} vs {exact:.4e}",
            t[k]
        );
    }
}

#[test]
fn lc_tank_resonates_in_ac() {
    // Series R into a parallel LC tank: the tank impedance peaks at
    // f0 = 1/(2π√(LC)) ≈ 503 kHz for L = 1 mH, C = 100 nF.
    let mut ckt = Circuit::new();
    ckt.voltage_source("vin", "in", "0", 0.0);
    ckt.resistor("rs", "in", "tank", 10e3).unwrap();
    ckt.inductor("l", "tank", "0", 1e-3).unwrap();
    ckt.capacitor("c", "tank", "0", 100e-9).unwrap();
    let freqs: Vec<f64> = (0..161)
        .map(|k| 1e4 * 10f64.powf(k as f64 / 40.0))
        .collect();
    let ac = ckt.ac_sweep("vin", &freqs).unwrap();
    let mag = ac.magnitude("tank").unwrap();
    let (k_peak, peak) =
        mag.iter().enumerate().fold(
            (0, 0.0),
            |(bi, bv), (i, &v)| if v > bv { (i, v) } else { (bi, bv) },
        );
    let f_peak = freqs[k_peak];
    let f0 = 1.0 / (2.0 * std::f64::consts::PI * (1e-3_f64 * 100e-9).sqrt());
    assert!(
        (f_peak / f0 - 1.0).abs() < 0.1,
        "peak at {f_peak:.3e} vs f0 = {f0:.3e}"
    );
    assert!(peak > 5.0 * mag[0], "resonant peak stands out: {peak:.3}");
}

#[test]
fn deck_parser_accepts_inductor_cards() {
    let ckt = carbon_spice::parser::parse_deck(
        "V1 in 0 1.0
         R1 in mid 1k
         L1 mid 0 10u",
    )
    .unwrap();
    let op = ckt.op().unwrap();
    assert!(op.voltage("mid").unwrap().abs() < 1e-6);
}

#[test]
fn transient_rejects_bad_horizons_naming_the_field() {
    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "a", "0", 1.0);
    ckt.resistor("r", "a", "0", 1e3).unwrap();
    let cases = [
        (f64::NAN, 1e-3, "tstep"),
        (f64::INFINITY, 1e-3, "tstep"),
        (1e-6, f64::NAN, "tstop"),
        (1e-6, f64::NEG_INFINITY, "tstop"),
        (0.0, 1e-3, "tstep"),
        (-1e-6, 1e-3, "tstep"),
        (1e-6, 0.0, "tstop"),
        (1e-6, -1e-3, "tstop"),
    ];
    for (tstep, tstop, field) in cases {
        match ckt.transient(tstep, tstop) {
            Err(SpiceError::InvalidSweep { reason }) => assert!(
                reason.contains(field),
                "transient({tstep}, {tstop}): expected '{field}' in '{reason}'"
            ),
            other => panic!("transient({tstep}, {tstop}): expected InvalidSweep, got {other:?}"),
        }
    }
    // A step longer than the horizon is named with both values.
    match ckt.transient(2e-3, 1e-3) {
        Err(SpiceError::InvalidSweep { reason }) => {
            assert!(
                reason.contains("tstep") && reason.contains("tstop"),
                "{reason}"
            );
        }
        other => panic!("expected InvalidSweep, got {other:?}"),
    }
}

#[test]
fn pre_cancelled_token_stops_every_analysis() {
    use carbon_runtime::{cancel, CancelToken};

    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "in", "0", 1.0);
    ckt.resistor("r", "in", "out", 1e3).unwrap();
    ckt.capacitor("c", "out", "0", 1e-9).unwrap();
    let token = CancelToken::new();
    token.cancel();
    cancel::scope(&token, || {
        assert!(matches!(ckt.op(), Err(SpiceError::Cancelled { .. })));
        assert!(matches!(
            ckt.dc_sweep("v", 0.0, 1.0, 0.1),
            Err(SpiceError::Cancelled { .. })
        ));
        assert!(matches!(
            ckt.ac_sweep("v", &[1e3, 1e4]),
            Err(SpiceError::Cancelled { .. })
        ));
        assert!(matches!(
            ckt.transient(1e-7, 1e-5),
            Err(SpiceError::Cancelled { .. })
        ));
    });
    // Outside the scope the same analyses run to completion.
    assert!(ckt.op().is_ok());
    assert!(ckt.transient(1e-7, 1e-6).is_ok());
}

//! End-to-end tests of the instrumentation layer: the trace must
//! record what the solver actually did (staleness fallbacks, step
//! halvings, iteration counts) without perturbing any result.

use std::sync::Arc;

use carbon_spice::{Circuit, FetCurve, SpiceError};
use carbon_trace::collect::Collector;
use carbon_trace::{Event, Value};

/// The solver bench's nonlinear workload: `n` forward diode drops from
/// a 5 V source. The diode conductances swing by many decades over the
/// first Newton iterations, which drives the sparse LU's pivot-growth
/// staleness check.
fn diode_chain(n: usize) -> Circuit {
    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "n0", "0", 5.0);
    ckt.resistor("r", "n0", "d0", 1e3).expect("unique");
    for i in 0..n {
        ckt.diode(
            &format!("d{i}"),
            &format!("d{i}"),
            &format!("d{}", i + 1),
            1e-15,
            1.0,
        )
        .expect("unique");
    }
    ckt.resistor("rt", &format!("d{n}"), "0", 10.0)
        .expect("unique");
    ckt
}

#[test]
fn stale_pivot_fallback_happens_exactly_once_and_is_traced() {
    let collector = Collector::new();
    let traced = carbon_trace::with_subscriber(collector.clone(), || diode_chain(24).op())
        .expect("chain solves");

    // The cold solve starts from the flat initial guess, so the first
    // factorization's pivot order goes stale exactly once as the diode
    // conductances jump; every later iteration replays cleanly.
    assert_eq!(collector.counter_total("spice.sparse.factor"), 1);
    assert_eq!(
        collector.counter_total("spice.sparse.repivot"),
        1,
        "staleness fallback must fire exactly once: {:?}",
        collector.counter_totals()
    );
    assert!(collector.counter_total("spice.sparse.replay") >= 1);

    // The fallback leaves a locatable instant event.
    let stale: Vec<Event> = collector
        .events()
        .into_iter()
        .filter(|e| matches!(e, Event::Instant { .. }) && e.name() == "spice.sparse.stale_pivot")
        .collect();
    assert_eq!(stale.len(), 1);
    if let Event::Instant { fields, .. } = &stale[0] {
        assert!(fields.iter().any(|f| f.key == "iter"));
        let n = fields
            .iter()
            .find(|f| f.key == "n")
            .and_then(|f| f.value.as_u64())
            .expect("stale_pivot records the system size");
        assert!(n >= 25, "24-diode chain has at least 25 unknowns, got {n}");
    }

    // Observation must not participate: the traced solution is
    // bit-identical to an untraced one.
    let untraced = diode_chain(24).op().expect("chain solves");
    for node in (0..=24).map(|i| format!("d{i}")) {
        assert_eq!(
            traced.voltage(&node).expect("node"),
            untraced.voltage(&node).expect("node"),
            "tracing changed the solution at {node}"
        );
    }
}

#[test]
fn dc_sweep_spans_nest_newton_solves() {
    let mut ckt = Circuit::new();
    ckt.voltage_source("vin", "in", "0", 0.0);
    ckt.resistor("r1", "in", "out", 1e3).expect("unique");
    ckt.diode("d1", "out", "0", 1e-15, 1.0).expect("unique");

    let collector = Collector::new();
    carbon_trace::with_subscriber(collector.clone(), || {
        ckt.dc_sweep("vin", 0.0, 1.0, 0.1).expect("sweeps")
    });

    let sweeps = collector.spans("spice.dc_sweep");
    assert_eq!(sweeps.len(), 1);
    assert_eq!(
        collector.span_field("spice.dc_sweep", "points"),
        vec![Value::U64(11)]
    );
    let total = match collector.span_field("spice.dc_sweep", "total_iters")[..] {
        [Value::U64(t)] => t,
        ref other => panic!("missing total_iters: {other:?}"),
    };
    assert!(total >= 11, "at least one Newton iteration per point");

    // Every Newton solve ran inside the sweep span.
    let sweep_id = match sweeps[0] {
        Event::Span { id, .. } => id,
        _ => unreachable!(),
    };
    let solves = collector.spans("spice.newton_solve");
    assert!(!solves.is_empty());
    for ev in &solves {
        if let Event::Span { parent, .. } = ev {
            assert_eq!(*parent, Some(sweep_id), "newton span escaped the sweep");
        }
    }
}

/// Series-R / shunt-C ladder with `n` stages; n ≥ 16 puts the AC sweep
/// on the sparse replay path.
fn rc_ladder(n: usize) -> Circuit {
    let mut ckt = Circuit::new();
    ckt.voltage_source("vin", "n0", "0", 0.0);
    for k in 0..n {
        ckt.resistor(
            &format!("r{k}"),
            &format!("n{k}"),
            &format!("n{}", k + 1),
            1e3,
        )
        .expect("unique");
        ckt.capacitor(&format!("c{k}"), &format!("n{}", k + 1), "0", 1e-12)
            .expect("unique");
    }
    ckt
}

#[test]
fn ac_sweep_traces_one_factor_and_replays_the_rest() {
    let ckt = rc_ladder(20);
    let freqs: Vec<f64> = (0..12).map(|k| 1e5 * 10f64.powf(k as f64 / 3.0)).collect();

    let collector = Collector::new();
    let traced = carbon_trace::with_subscriber(collector.clone(), || ckt.ac_sweep("vin", &freqs))
        .expect("sweeps");

    // The factor/replay schedule is the whole point of the sparse AC
    // path: one full factorization at the head frequency, and every
    // other point either replays or (rarely) falls back to a repivot.
    assert_eq!(collector.counter_total("spice.sparse.ac_factor"), 1);
    assert_eq!(
        collector.counter_total("spice.sparse.ac_replay")
            + collector.counter_total("spice.sparse.ac_repivot"),
        (freqs.len() - 1) as u64,
        "every non-head frequency is a replay or a repivot: {:?}",
        collector.counter_totals()
    );

    // The sweep span carries the system size, point count, and path.
    let sweeps = collector.spans("spice.ac_sweep");
    assert_eq!(sweeps.len(), 1);
    assert_eq!(
        collector.span_field("spice.ac_sweep", "points"),
        vec![Value::U64(freqs.len() as u64)]
    );
    assert_eq!(
        collector.span_field("spice.ac_sweep", "method"),
        vec![Value::Str("sparse".into())]
    );
    assert_eq!(
        collector.span_field("spice.ac_sweep", "n"),
        vec![Value::U64(22)],
        "21 nodes plus the source branch"
    );

    // Observation must not participate.
    let untraced = ckt.ac_sweep("vin", &freqs).expect("sweeps");
    assert_eq!(traced.solutions(), untraced.solutions());
}

#[test]
fn ac_sweep_par_traces_chunk_spans() {
    let ckt = rc_ladder(20);
    let freqs: Vec<f64> = (0..10).map(|k| 1e5 * 10f64.powf(k as f64 / 3.0)).collect();

    let collector = Collector::new();
    // One worker keeps every span on the subscriber's thread.
    let ex = carbon_runtime::executor::Executor::with_threads(1);
    let traced = carbon_trace::with_subscriber(collector.clone(), || {
        ckt.ac_sweep_par_on(&ex, "vin", &freqs, 4)
    })
    .expect("sweeps");

    assert_eq!(collector.spans("spice.ac_sweep_par").len(), 1);
    assert_eq!(
        collector.span_field("spice.ac_sweep_par", "n_chunks"),
        vec![Value::U64(3)]
    );
    assert_eq!(
        collector.spans("spice.ac_chunk").len(),
        3,
        "one span per chunk"
    );
    // Each chunk factors at its own head frequency, then replays.
    assert_eq!(collector.counter_total("spice.sparse.ac_factor"), 3);
    assert_eq!(
        collector.counter_total("spice.sparse.ac_replay")
            + collector.counter_total("spice.sparse.ac_repivot"),
        (freqs.len() - 3) as u64
    );

    let untraced = ckt.ac_sweep_par_on(&ex, "vin", &freqs, 4).expect("sweeps");
    assert_eq!(traced.solutions(), untraced.solutions());
}

/// A deliberately broken device: the drain current steps discontinuously
/// once the gate passes threshold, so Newton two-cycles between the
/// on- and off-branches and no amount of step halving can converge the
/// bias points beyond the step.
struct SnapFet;

impl FetCurve for SnapFet {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        if vgs >= 0.6 && vds >= 0.5 {
            1.5e-3
        } else {
            0.0
        }
    }
}

#[test]
fn continuation_exhaustion_reports_sweep_value_and_residual() {
    let mut ckt = Circuit::new();
    ckt.voltage_source("vdd", "vdd", "0", 1.0);
    ckt.voltage_source("vin", "g", "0", 0.0);
    ckt.resistor("rl", "vdd", "d", 1e3).expect("unique");
    ckt.fet("m1", "d", "g", "0", Arc::new(SnapFet))
        .expect("fet");

    let collector = Collector::new();
    let err =
        carbon_trace::with_subscriber(collector.clone(), || ckt.dc_sweep("vin", 0.0, 1.0, 0.25))
            .expect_err("the snap device cannot converge past threshold");

    match err {
        SpiceError::ContinuationExhausted {
            sweep_value,
            iterations,
            residual,
        } => {
            assert!(
                (0.5..=0.75).contains(&sweep_value),
                "failure must be localized past the 0.6 V threshold, got {sweep_value}"
            );
            assert!(iterations > 0);
            assert!(
                residual.is_finite() && residual > 0.0,
                "residual must be the real last Newton update, got {residual}"
            );
            // The operator-facing message carries both diagnostics.
            let msg = SpiceError::ContinuationExhausted {
                sweep_value,
                iterations,
                residual,
            }
            .to_string();
            assert!(msg.contains("sweep value"), "{msg}");
            assert!(msg.contains("residual"), "{msg}");
        }
        other => panic!("expected ContinuationExhausted, got {other:?}"),
    }

    // The retry ladder is visible in the trace: halvings were burned
    // before giving up, and the exhaustion itself is an instant event.
    assert!(collector.counter_total("spice.continuation_halvings") >= 1);
    let exhausted = collector
        .events()
        .iter()
        .filter(|e| e.name() == "spice.continuation_exhausted")
        .count();
    assert_eq!(exhausted, 1);
}

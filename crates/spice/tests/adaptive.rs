//! Adaptive transient integration tests: agreement with the fixed-step
//! oracle on RC/RLC/ring decks, exact breakpoint landing, clean
//! mid-horizon cancellation, and trace evidence that the sparse LU
//! factors once per deck and replays everywhere else.

use std::sync::Arc;

use carbon_spice::{Circuit, FetCurve, SpiceError, TranOptions, Waveform};
use carbon_trace::collect::Collector;
use carbon_trace::{with_subscriber, Value};

/// R = 1 kΩ, C = 1 nF step charge delayed past t = 0 so the DC initial
/// condition sees the low level.
fn rc_step() -> (Circuit, f64, f64) {
    let tau = 1e-6;
    let t0 = 5e-8;
    let mut ckt = Circuit::new();
    ckt.voltage_source_wave(
        "v",
        "in",
        "0",
        Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: t0,
            rise: 0.0,
            fall: 0.0,
            width: 1.0,
            period: 0.0,
        },
    )
    .unwrap();
    ckt.resistor("r", "in", "out", 1e3).unwrap();
    ckt.capacitor("c", "out", "0", 1e-9).unwrap();
    (ckt, tau, t0)
}

#[derive(Debug)]
struct SquareLawNfet {
    k: f64,
    vt: f64,
}

impl FetCurve for SquareLawNfet {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        if vds < 0.0 {
            return -self.ids(vgs - vds, -vds);
        }
        let vov = vgs - self.vt;
        if vov <= 0.0 {
            0.0
        } else if vds < vov {
            self.k * (vov * vds - 0.5 * vds * vds)
        } else {
            0.5 * self.k * vov * vov
        }
    }
}

#[derive(Debug)]
struct SquareLawPfet {
    k: f64,
    vt: f64,
}

impl FetCurve for SquareLawPfet {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        let n = SquareLawNfet {
            k: self.k,
            vt: self.vt,
        };
        -n.ids(-vgs, -vds)
    }
}

/// Odd-stage square-law CMOS ring with per-stage load caps and a kick
/// pulse that knocks it off its metastable DC point.
fn ring(stages: usize, horizon: f64) -> Circuit {
    let mut ckt = Circuit::new();
    ckt.voltage_source("vdd", "vdd", "0", 1.0);
    for s in 0..stages {
        let input = format!("n{s}");
        let output = format!("n{}", (s + 1) % stages);
        let pfet = Arc::new(SquareLawPfet { k: 2e-3, vt: 0.3 });
        let nfet = Arc::new(SquareLawNfet { k: 2e-3, vt: 0.3 });
        ckt.fet(&format!("mp{s}"), &output, &input, "vdd", pfet)
            .unwrap();
        ckt.fet(&format!("mn{s}"), &output, &input, "0", nfet)
            .unwrap();
        ckt.capacitor(&format!("cl{s}"), &output, "0", 1e-14)
            .unwrap();
    }
    ckt.current_source_wave(
        "ikick",
        "n0",
        "0",
        Waveform::Pulse {
            low: 0.0,
            high: 6e-5,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: horizon / 50.0,
            period: 0.0,
        },
    )
    .unwrap();
    ckt
}

/// Rising mid-rail crossing times of a trace, linearly interpolated.
fn rising_crossings(times: &[f64], v: &[f64], mid: f64, settle: f64) -> Vec<f64> {
    let mut crossings = Vec::new();
    for k in 1..v.len() {
        if times[k] > settle && v[k - 1] < mid && v[k] >= mid {
            let f = (mid - v[k - 1]) / (v[k] - v[k - 1]);
            crossings.push(times[k - 1] + f * (times[k] - times[k - 1]));
        }
    }
    crossings
}

#[test]
fn adaptive_rc_matches_the_analytic_charge_curve() {
    let (ckt, tau, t0) = rc_step();
    let tran = ckt.transient_adaptive(1e-8, 5.0 * tau).unwrap();
    let v = tran.voltages("out").unwrap();
    for (&tk, &vk) in tran.times().iter().zip(v.iter()) {
        let exact = if tk <= t0 {
            0.0
        } else {
            1.0 - (-(tk - t0) / tau).exp()
        };
        assert!(
            (vk - exact).abs() < 5e-3,
            "t = {tk}: v = {vk}, exact = {exact}"
        );
    }
    assert!((v.last().unwrap() - 1.0).abs() < 0.01, "reaches the rail");
    // The controller must beat the 500-step uniform grid it was seeded
    // with, or adaptivity is not paying for its second solve per step.
    assert!(
        tran.accepted_steps() < 500,
        "took {} steps",
        tran.accepted_steps()
    );
}

#[test]
fn adaptive_rlc_matches_a_fine_fixed_reference() {
    // Series RLC, underdamped (ζ = 0.1, ω₀ = 1e6 rad/s): several ring
    // cycles inside the horizon exercise both LTE growth and shrink.
    let build = || {
        let mut ckt = Circuit::new();
        ckt.voltage_source_wave(
            "v",
            "in",
            "0",
            Waveform::Pulse {
                low: 0.0,
                high: 1.0,
                delay: 1e-7,
                rise: 0.0,
                fall: 0.0,
                width: 1.0,
                period: 0.0,
            },
        )
        .unwrap();
        ckt.resistor("r", "in", "l", 200.0).unwrap();
        ckt.inductor("ind", "l", "out", 1e-3).unwrap();
        ckt.capacitor("c", "out", "0", 1e-9).unwrap();
        ckt
    };
    let fixed = build().transient(1e-8, 3e-5).unwrap();
    let adaptive = build().transient_adaptive(1e-8, 3e-5).unwrap();
    let v = adaptive.voltages("out").unwrap();
    // Compare at the adaptive grid's own points against the fine fixed
    // reference (3000 uniform steps), so no coarse-grid interpolation
    // error pollutes the bound. Swing peaks near 1.7 V; 2% of swing.
    for (&tk, &vk) in adaptive.times().iter().zip(v.iter()) {
        let reference = fixed.sample_at("out", tk).unwrap();
        assert!(
            (vk - reference).abs() < 0.04,
            "t = {tk}: adaptive {vk} vs fixed {reference}"
        );
    }
    assert!(
        adaptive.accepted_steps() < 3000,
        "took {} steps",
        adaptive.accepted_steps()
    );
}

#[test]
fn adaptive_ring_reproduces_period_and_swing() {
    let horizon = 2e-9;
    let fixed = ring(3, horizon)
        .transient(horizon / 4000.0, horizon)
        .unwrap();
    let adaptive = ring(3, horizon)
        .transient_with(
            horizon / 4000.0,
            horizon,
            TranOptions {
                lte_reltol: 1e-4,
                ..TranOptions::adaptive()
            },
        )
        .unwrap();
    let settle = horizon * 0.25;
    let period = |tran: &carbon_spice::TranResult| {
        let crossings = rising_crossings(tran.times(), tran.voltages("n0").unwrap(), 0.5, settle);
        assert!(crossings.len() >= 3, "ring must oscillate: {crossings:?}");
        let periods: Vec<f64> = crossings.windows(2).map(|w| w[1] - w[0]).collect();
        periods.iter().sum::<f64>() / periods.len() as f64
    };
    let (pf, pa) = (period(&fixed), period(&adaptive));
    assert!(
        ((pa - pf) / pf).abs() < 0.05,
        "period drift: fixed {pf:.3e} vs adaptive {pa:.3e}"
    );
    let swing = |v: &[f64]| {
        let tail = &v[v.len() / 2..];
        tail.iter().fold(f64::MIN, |hi, &x| hi.max(x))
            - tail.iter().fold(f64::MAX, |lo, &x| lo.min(x))
    };
    let sf = swing(fixed.voltages("n0").unwrap());
    let sa = swing(adaptive.voltages("n0").unwrap());
    assert!(
        (sa - sf).abs() < 0.05 * sf.max(1e-30),
        "swing drift: fixed {sf} vs adaptive {sa}"
    );
}

#[test]
fn adaptive_lands_on_source_breakpoints_bitwise() {
    let (ckt, tau, t0) = rc_step();
    let tran = ckt.transient_adaptive(1e-8, 5.0 * tau).unwrap();
    assert!(
        tran.times().iter().any(|t| t.to_bits() == t0.to_bits()),
        "pulse edge at {t0} must be a grid point"
    );
    // A PWL ramp contributes both corners, landed on exactly even when
    // they are not multiples of the initial step.
    let mut ckt = Circuit::new();
    let (c0, c1) = (3.7e-7, 7.21e-7);
    ckt.voltage_source_wave(
        "v",
        "in",
        "0",
        Waveform::Pwl(vec![(0.0, 0.0), (c0, 0.0), (c1, 1.0)]),
    )
    .unwrap();
    ckt.resistor("r", "in", "out", 1e3).unwrap();
    ckt.capacitor("c", "out", "0", 1e-10).unwrap();
    let tran = ckt.transient_adaptive(1e-8, 2e-6).unwrap();
    for corner in [c0, c1] {
        assert!(
            tran.times().iter().any(|t| t.to_bits() == corner.to_bits()),
            "PWL corner at {corner} must be a grid point"
        );
    }
    assert_eq!(
        tran.times().last().copied().unwrap().to_bits(),
        2e-6_f64.to_bits(),
        "horizon end is the final mandatory stop"
    );
}

#[test]
fn fixed_horizons_that_drop_a_step_are_rejected_by_name() {
    let mut ckt = Circuit::new();
    ckt.voltage_source("v", "a", "0", 1.0);
    ckt.resistor("r", "a", "0", 1e3).unwrap();
    // 1e-6 / 3e-9 = 333.33 steps: rounding would silently retime the
    // final third of a step.
    let err = ckt.transient(3e-9, 1e-6).unwrap_err();
    let SpiceError::InvalidSweep { reason } = err else {
        panic!("expected InvalidSweep");
    };
    assert!(
        reason.contains("tstep") && reason.contains("tstop"),
        "{reason}"
    );
    // The adaptive method has no uniform grid, so the same horizon is
    // fine there.
    assert!(ckt.transient_adaptive(3e-9, 1e-6).is_ok());
}

#[test]
fn mid_horizon_cancellation_returns_a_clean_timeout() {
    for adaptive in [false, true] {
        let (ckt, tau, _) = rc_step();
        let token = carbon_runtime::CancelToken::new();
        let canceller = {
            let token = token.clone();
            std::thread::spawn(move || {
                std::thread::sleep(std::time::Duration::from_millis(5));
                token.cancel();
            })
        };
        // A horizon far too long to finish in 5 ms, so the cancel fires
        // mid-horizon at an accept/reject boundary.
        let result = carbon_runtime::cancel::scope(&token, || {
            if adaptive {
                // hmin pinned to the initial step so the controller
                // cannot grow the grid coarse enough to finish early.
                ckt.transient_with(
                    1e-9,
                    1e6 * tau,
                    TranOptions {
                        max_step: Some(1e-9),
                        ..TranOptions::adaptive()
                    },
                )
            } else {
                ckt.transient(1e-9, 1e6 * tau)
            }
        });
        canceller.join().unwrap();
        // The checkpoint that fires first may be the step boundary or
        // the Newton loop's own; both report a clean transient cancel.
        assert!(
            matches!(
                &result,
                Err(SpiceError::Cancelled { analysis }) if analysis.contains("transient")
            ),
            "adaptive = {adaptive}: {result:?}"
        );
    }
}

#[test]
fn transient_factors_once_and_replays_every_newton_iteration() {
    // 20-node RC ladder → 21 unknowns, over the sparse threshold (16),
    // so the transient runs on the sparse LU path.
    let build = || {
        let mut ckt = Circuit::new();
        ckt.voltage_source_wave(
            "v",
            "n0",
            "0",
            Waveform::Pulse {
                low: 0.0,
                high: 1.0,
                delay: 1e-9,
                rise: 0.0,
                fall: 0.0,
                width: 1.0,
                period: 0.0,
            },
        )
        .unwrap();
        for s in 0..20 {
            ckt.resistor(
                &format!("r{s}"),
                &format!("n{s}"),
                &format!("n{}", s + 1),
                1e3,
            )
            .unwrap();
            ckt.capacitor(&format!("c{s}"), &format!("n{}", s + 1), "0", 1e-12)
                .unwrap();
        }
        ckt
    };
    for adaptive in [false, true] {
        let collector = Collector::new();
        let steps = with_subscriber(collector.clone(), || {
            let ckt = build();
            let tran = if adaptive {
                ckt.transient_adaptive(1e-9, 1e-7).unwrap()
            } else {
                ckt.transient(1e-9, 1e-7).unwrap()
            };
            tran.accepted_steps()
        });
        let factors = collector.counter_total("spice.sparse.factor");
        let replays = collector.counter_total("spice.sparse.replay");
        let repivots = collector.counter_total("spice.sparse.repivot");
        assert_eq!(
            factors, 1,
            "adaptive = {adaptive}: symbolic analysis + first factorization happen once per deck"
        );
        assert_eq!(repivots, 0, "a linear ladder never goes stale");
        assert!(
            replays as usize >= steps,
            "adaptive = {adaptive}: every subsequent Newton iteration replays \
             (got {replays} replays over {steps} steps)"
        );
        // The span carries the step accounting.
        let spans = collector.spans("spice.transient");
        assert_eq!(spans.len(), 1);
        let methods = collector.span_field("spice.transient", "method");
        assert_eq!(
            methods,
            vec![Value::Str(
                if adaptive { "adaptive" } else { "fixed" }.into()
            )]
        );
        let recorded: Vec<u64> = collector
            .span_field("spice.transient", "steps")
            .iter()
            .filter_map(Value::as_u64)
            .collect();
        assert_eq!(recorded, vec![steps as u64]);
        assert_eq!(collector.counter_total("spice.tran.step"), steps as u64);
    }
}

//! Byte-identity of the adaptive step sequence: the accept/reject/grow
//! /shrink decisions are a pure function of the deck, so the variable
//! grid — every time point and every voltage, to the last bit — must
//! not move with `CARBON_THREADS`, with tracing, or across runs.
//!
//! Kept as its own integration-test binary with a single `#[test]` so
//! the `CARBON_THREADS` environment variable is never mutated
//! concurrently with another test.

use carbon_spice::{Circuit, Waveform};
use carbon_trace::collect::Collector;
use carbon_trace::with_subscriber;

/// A deck with both fast and slow dynamics plus a pulse edge, so the
/// controller exercises growth, shrink-on-reject, and breakpoint
/// landing in one run.
fn deck() -> Circuit {
    let mut ckt = Circuit::new();
    ckt.voltage_source_wave(
        "v",
        "in",
        "0",
        Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 1e-8,
            rise: 1e-9,
            fall: 1e-9,
            width: 5e-7,
            period: 0.0,
        },
    )
    .unwrap();
    ckt.resistor("r1", "in", "fast", 1e2).unwrap();
    ckt.capacitor("c1", "fast", "0", 1e-11).unwrap();
    ckt.resistor("r2", "fast", "slow", 1e4).unwrap();
    ckt.capacitor("c2", "slow", "0", 1e-9).unwrap();
    ckt
}

/// The full result as raw bit patterns: times, then every node trace.
fn run_bits() -> Vec<u64> {
    let tran = deck().transient_adaptive(1e-9, 2e-6).unwrap();
    let mut bits: Vec<u64> = tran.times().iter().map(|t| t.to_bits()).collect();
    bits.push(tran.accepted_steps() as u64);
    bits.push(tran.rejected_steps() as u64);
    for node in tran.node_names().to_vec() {
        bits.extend(tran.voltages(&node).unwrap().iter().map(|v| v.to_bits()));
    }
    bits
}

#[test]
fn adaptive_step_sequence_is_byte_identical_across_threads_and_tracing() {
    let reference = run_bits();
    assert!(reference.len() > 20, "non-trivial grid");
    // Repeated runs in the same configuration.
    assert_eq!(run_bits(), reference, "repeat run drifted");
    // Every thread count, untraced and traced.
    for threads in ["1", "2", "4", "8"] {
        std::env::set_var("CARBON_THREADS", threads);
        assert_eq!(
            run_bits(),
            reference,
            "untraced run drifted at CARBON_THREADS={threads}"
        );
        let collector = Collector::new();
        let traced = with_subscriber(collector.clone(), run_bits);
        assert_eq!(
            traced, reference,
            "traced run drifted at CARBON_THREADS={threads}"
        );
        assert!(
            !collector.spans("spice.transient").is_empty(),
            "tracing was actually live"
        );
    }
    std::env::remove_var("CARBON_THREADS");
}

//! End-to-end tests of the sparse AC fast path: thread-count
//! determinism of `ac_sweep_par`, chunk-schedule equivalence with the
//! serial sweep, and dense/sparse agreement on real circuit shapes.

use carbon_runtime::executor::Executor;
use carbon_spice::{AcMethod, Circuit};

/// Series-R / shunt-C ladder with `n` stages: n + 1 node unknowns plus
/// the source branch, so anything from n = 16 up runs the sparse path.
fn rc_ladder(n: usize) -> Circuit {
    let mut ckt = Circuit::new();
    ckt.voltage_source("vin", "n0", "0", 0.0);
    for k in 0..n {
        ckt.resistor(
            &format!("r{k}"),
            &format!("n{k}"),
            &format!("n{}", k + 1),
            1e3,
        )
        .expect("unique");
        ckt.capacitor(&format!("c{k}"), &format!("n{}", k + 1), "0", 1e-12)
            .expect("unique");
    }
    ckt
}

/// `n` log-spaced frequencies over `lo..hi`.
fn log_freqs(n: usize, lo: f64, hi: f64) -> Vec<f64> {
    (0..n)
        .map(|k| lo * (hi / lo).powf(k as f64 / (n - 1) as f64))
        .collect()
}

#[test]
fn ac_sweep_par_is_byte_identical_at_every_thread_count() {
    let ckt = rc_ladder(32);
    let freqs = log_freqs(40, 1e3, 1e9);
    let reference = ckt
        .ac_sweep_par_on(&Executor::with_threads(1), "vin", &freqs, 8)
        .expect("sweeps");
    for threads in [2, 4, 8] {
        let out = ckt
            .ac_sweep_par_on(&Executor::with_threads(threads), "vin", &freqs, 8)
            .expect("sweeps");
        assert_eq!(
            out.solutions(),
            reference.solutions(),
            "divergence at {threads} threads"
        );
    }
}

#[test]
fn ac_sweep_par_single_chunk_matches_serial_sweep_bitwise() {
    // One chunk runs the exact serial schedule — factor at the head
    // frequency, replay the rest — so the parallel sweep must
    // reproduce the serial one bit for bit, workers or not.
    let ckt = rc_ladder(24);
    let freqs = log_freqs(25, 1e4, 1e8);
    let serial = ckt.ac_sweep("vin", &freqs).expect("sweeps");
    let par = ckt
        .ac_sweep_par_on(&Executor::with_threads(4), "vin", &freqs, freqs.len())
        .expect("sweeps");
    assert_eq!(par.solutions(), serial.solutions());
}

#[test]
fn ac_sweep_par_dense_circuit_matches_serial() {
    // Below the sparse threshold the parallel sweep runs the dense
    // per-point solver; points are fully independent, so any chunking
    // matches the serial sweep exactly.
    let mut ckt = Circuit::new();
    ckt.voltage_source("vin", "in", "0", 0.0);
    ckt.resistor("r", "in", "out", 1e3).expect("unique");
    ckt.capacitor("c", "out", "0", 1e-9).expect("unique");
    let freqs = log_freqs(17, 1e3, 1e8);
    let serial = ckt.ac_sweep("vin", &freqs).expect("sweeps");
    for chunk in [1, 3, 100] {
        let par = ckt
            .ac_sweep_par_on(&Executor::with_threads(4), "vin", &freqs, chunk)
            .expect("sweeps");
        assert_eq!(par.solutions(), serial.solutions(), "chunk = {chunk}");
    }
}

#[test]
fn sparse_and_dense_agree_on_rlc_ladder_with_fets() {
    // A ladder with inductor branches and a FET load: every dynamic
    // stamp kind (jωC node pattern, −jωL branch diagonal) plus
    // op-point linearized conductances in one circuit.
    #[derive(Debug)]
    struct LinearFet;
    impl carbon_spice::FetCurve for LinearFet {
        fn ids(&self, vgs: f64, vds: f64) -> f64 {
            1e-3 * vgs + 1e-5 * vds
        }
    }
    let mut ckt = Circuit::new();
    ckt.voltage_source("vin", "n0", "0", 0.5);
    for k in 0..10 {
        ckt.resistor(
            &format!("r{k}"),
            &format!("n{k}"),
            &format!("n{}", k + 1),
            100.0,
        )
        .expect("unique");
        ckt.capacitor(&format!("c{k}"), &format!("n{}", k + 1), "0", 1e-12)
            .expect("unique");
        ckt.inductor(&format!("l{k}"), &format!("n{}", k + 1), "0", 1e-6)
            .expect("unique");
    }
    ckt.fet("m1", "n10", "n5", "0", std::sync::Arc::new(LinearFet))
        .expect("fet");
    let freqs = log_freqs(15, 1e6, 1e9);
    let dense = ckt
        .ac_sweep_with("vin", &freqs, AcMethod::Dense)
        .expect("dense");
    let sparse = ckt
        .ac_sweep_with("vin", &freqs, AcMethod::Sparse)
        .expect("sparse");
    for (fd, fs) in dense.solutions().iter().zip(sparse.solutions()) {
        for (d, s) in fd.iter().zip(fs) {
            let err = (*d - *s).abs();
            assert!(err < 1e-9 * d.abs().max(1.0), "dense {d:?} vs sparse {s:?}");
        }
    }
}

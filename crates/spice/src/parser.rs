//! A parser for a practical subset of the classic SPICE deck format.
//!
//! Supported cards (case-insensitive, one per line):
//!
//! ```text
//! * comment                      ; also lines starting with ';'
//! Rname node+ node- value        ; resistor, ohms
//! Cname node+ node- value        ; capacitor, farads
//! Lname node+ node- value        ; inductor, henries
//! Vname node+ node- value        ; DC voltage source, volts
//! Vname node+ node- PULSE(lo hi delay rise fall width period)
//! Vname node+ node- SIN(offset amplitude freq [delay])
//! Iname node+ node- value        ; DC current source, amperes
//! Dname node+ node- [is=..] [n=..]
//! Gname out+ out- ctrl+ ctrl- gm ; VCCS
//! .end                           ; optional terminator
//! ```
//!
//! Values accept the standard SPICE suffixes (`f p n u m k meg g t`,
//! plus the `µ` alias for `u`): `10k`, `1.5MEG`, `100n`, `2.2u`.
//! FET elements have no card syntax (compact models are Rust values);
//! build those netlists programmatically.

use crate::error::SpiceError;
use crate::netlist::Circuit;
use crate::waveform::Waveform;

/// Parses a SPICE deck into a [`Circuit`].
///
/// # Errors
///
/// Returns [`SpiceError::InvalidValue`] with the offending line number
/// for malformed cards, bad numbers, or unsupported element types, and
/// propagates the netlist builder's validation errors.
///
/// # Examples
///
/// ```
/// use carbon_spice::parser::parse_deck;
///
/// # fn main() -> Result<(), carbon_spice::SpiceError> {
/// let ckt = parse_deck(
///     "* a divider
///      V1 in 0 2.0
///      R1 in out 1k
///      R2 out 0 1k
///      .end",
/// )?;
/// let op = ckt.op()?;
/// assert!((op.voltage("out")? - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn parse_deck(deck: &str) -> Result<Circuit, SpiceError> {
    let mut ckt = Circuit::new();
    for (lineno, raw) in deck.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('*') || line.starts_with(';') {
            continue;
        }
        let lower = line.to_ascii_lowercase();
        if lower == ".end" {
            break;
        }
        if lower.starts_with('.') {
            return Err(err(lineno, format!("unsupported control card '{line}'")));
        }
        parse_card_into(&mut ckt, lineno, line)?;
    }
    Ok(ckt)
}

fn err(lineno: usize, reason: String) -> SpiceError {
    SpiceError::InvalidValue {
        element: format!("line {}", lineno + 1),
        reason,
    }
}

pub(crate) fn parse_card_into(
    ckt: &mut Circuit,
    lineno: usize,
    line: &str,
) -> Result<(), SpiceError> {
    let tokens: Vec<&str> = line.split_whitespace().collect();
    let name = tokens[0];
    let kind = name
        .chars()
        .next()
        .expect("non-empty token")
        .to_ascii_lowercase();
    let need = |n: usize| -> Result<(), SpiceError> {
        if tokens.len() < n {
            Err(err(lineno, format!("'{name}' needs at least {} fields", n)))
        } else {
            Ok(())
        }
    };
    match kind {
        'r' => {
            need(4)?;
            let v = parse_value(tokens[3]).map_err(|m| err(lineno, m))?;
            ckt.resistor(name, tokens[1], tokens[2], v)
        }
        'c' => {
            need(4)?;
            let v = parse_value(tokens[3]).map_err(|m| err(lineno, m))?;
            ckt.capacitor(name, tokens[1], tokens[2], v)
        }
        'l' => {
            need(4)?;
            let v = parse_value(tokens[3]).map_err(|m| err(lineno, m))?;
            ckt.inductor(name, tokens[1], tokens[2], v)
        }
        'v' | 'i' => {
            need(4)?;
            let rest = tokens[3..].join(" ");
            let wave = parse_source(&rest).map_err(|m| err(lineno, m))?;
            if kind == 'v' {
                ckt.voltage_source_wave(name, tokens[1], tokens[2], wave)
            } else {
                ckt.current_source_wave(name, tokens[1], tokens[2], wave)
            }
        }
        'd' => {
            need(3)?;
            let mut i_s = 1e-15;
            let mut n_ideality = 1.0;
            for t in &tokens[3..] {
                let lower = t.to_ascii_lowercase();
                if let Some(v) = lower.strip_prefix("is=") {
                    i_s = parse_value(v).map_err(|m| err(lineno, m))?;
                } else if let Some(v) = lower.strip_prefix("n=") {
                    n_ideality = parse_value(v).map_err(|m| err(lineno, m))?;
                } else {
                    return Err(err(lineno, format!("unknown diode parameter '{t}'")));
                }
            }
            ckt.diode(name, tokens[1], tokens[2], i_s, n_ideality)
        }
        'g' => {
            need(6)?;
            let gm = parse_value(tokens[5]).map_err(|m| err(lineno, m))?;
            ckt.vccs(name, tokens[1], tokens[2], tokens[3], tokens[4], gm)
        }
        other => Err(err(
            lineno,
            format!("unsupported element type '{other}' (supported: R C L V I D G)"),
        )),
    }
}

fn parse_source(spec: &str) -> Result<Waveform, String> {
    let lower = spec.to_ascii_lowercase();
    if let Some(args) = function_args(&lower, "pulse") {
        let v = parse_list(&args)?;
        if v.len() != 7 {
            return Err(format!("PULSE needs 7 arguments, got {}", v.len()));
        }
        return Ok(Waveform::Pulse {
            low: v[0],
            high: v[1],
            delay: v[2],
            rise: v[3],
            fall: v[4],
            width: v[5],
            period: v[6],
        });
    }
    if let Some(args) = function_args(&lower, "sin") {
        let v = parse_list(&args)?;
        if !(3..=4).contains(&v.len()) {
            return Err(format!("SIN needs 3 or 4 arguments, got {}", v.len()));
        }
        return Ok(Waveform::Sin {
            offset: v[0],
            amplitude: v[1],
            freq: v[2],
            delay: v.get(3).copied().unwrap_or(0.0),
        });
    }
    Ok(Waveform::Dc(parse_value(lower.trim())?))
}

fn function_args(spec: &str, func: &str) -> Option<String> {
    let spec = spec.trim();
    let body = spec.strip_prefix(func)?.trim_start();
    let body = body.strip_prefix('(')?;
    let body = body.strip_suffix(')')?;
    Some(body.to_owned())
}

fn parse_list(args: &str) -> Result<Vec<f64>, String> {
    args.split([',', ' '])
        .filter(|s| !s.is_empty())
        .map(parse_value)
        .collect()
}

/// Parses a SPICE number with magnitude suffix.
pub fn parse_value(token: &str) -> Result<f64, String> {
    let t = token.trim().to_ascii_lowercase();
    if t.is_empty() {
        return Err("empty value".to_owned());
    }
    // Longest suffixes first ("meg" before "m").
    const SUFFIXES: [(&str, f64); 10] = [
        ("meg", 1e6),
        ("f", 1e-15),
        ("p", 1e-12),
        ("n", 1e-9),
        ("u", 1e-6),
        ("µ", 1e-6),
        ("m", 1e-3),
        ("k", 1e3),
        ("g", 1e9),
        ("t", 1e12),
    ];
    for (suffix, scale) in SUFFIXES {
        if let Some(num) = t.strip_suffix(suffix) {
            // Guard against "1e-15" matching the "f"-less path: the
            // stripped remainder must parse and not end in 'e'.
            if !num.is_empty() && !num.ends_with(['e', '+', '-']) {
                if let Ok(v) = num.parse::<f64>() {
                    return Ok(v * scale);
                }
            }
        }
    }
    t.parse::<f64>()
        .map_err(|_| format!("cannot parse value '{token}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_suffixes() {
        assert_eq!(parse_value("10k").unwrap(), 10e3);
        assert_eq!(parse_value("1.5MEG").unwrap(), 1.5e6);
        assert!((parse_value("100n").unwrap() - 100e-9).abs() < 1e-21);
        assert_eq!(parse_value("2.2u").unwrap(), 2.2e-6);
        assert_eq!(parse_value("3p").unwrap(), 3e-12);
        assert_eq!(parse_value("4f").unwrap(), 4e-15);
        assert_eq!(parse_value("5m").unwrap(), 5e-3);
        assert_eq!(parse_value("2g").unwrap(), 2e9);
        assert_eq!(parse_value("1t").unwrap(), 1e12);
        assert_eq!(parse_value("1e-15").unwrap(), 1e-15);
        assert_eq!(parse_value("-0.5").unwrap(), -0.5);
        assert!(parse_value("abc").is_err());
        assert!(parse_value("").is_err());
    }

    #[test]
    fn parses_and_solves_divider() {
        let ckt = parse_deck(
            "* divider
             V1 in 0 2.0
             R1 in out 1k
             R2 out 0 1k",
        )
        .unwrap();
        let op = ckt.op().unwrap();
        assert!((op.voltage("out").unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn parses_diode_card_with_parameters() {
        let ckt = parse_deck(
            "V1 in 0 5
             R1 in d 1k
             D1 d 0 is=1e-15 n=1.2",
        )
        .unwrap();
        let op = ckt.op().unwrap();
        let vd = op.voltage("d").unwrap();
        assert!((0.5..1.0).contains(&vd));
    }

    #[test]
    fn parses_pulse_and_runs_transient() {
        let ckt = parse_deck(
            "V1 in 0 PULSE(0 1 1u 1n 1n 10u 0)
             R1 in out 1k
             C1 out 0 1n",
        )
        .unwrap();
        let tran = ckt.transient(1e-7, 1e-5).unwrap();
        let v = tran.voltages("out").unwrap();
        assert!(v[0] < 0.01 && *v.last().unwrap() > 0.9);
    }

    #[test]
    fn parses_sin_source() {
        let ckt = parse_deck("V1 in 0 SIN(0.5 0.2 1meg)\nR1 in 0 1k").unwrap();
        let op = ckt.op().unwrap();
        assert!(
            (op.voltage("in").unwrap() - 0.5).abs() < 1e-9,
            "DC value is the offset"
        );
    }

    #[test]
    fn parses_vccs() {
        let ckt = parse_deck(
            "V1 in 0 0.5
             G1 out 0 in 0 1m
             R1 out 0 1k",
        )
        .unwrap();
        let op = ckt.op().unwrap();
        assert!((op.voltage("out").unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn comments_blanks_and_end_are_handled() {
        let ckt = parse_deck(
            "* top comment
             ; another comment

             V1 a 0 1.0
             R1 a 0 1k
             .END
             R2 ignored 0 1k",
        )
        .unwrap();
        assert_eq!(ckt.num_elements(), 2, "cards after .end are ignored");
    }

    #[test]
    fn error_reporting_carries_line_numbers() {
        let e = parse_deck("V1 a 0 1.0\nR1 a 0 notanumber").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        let e = parse_deck("X1 a 0 model").unwrap_err();
        assert!(e.to_string().contains("unsupported element"), "{e}");
        let e = parse_deck(".tran 1n 1u").unwrap_err();
        assert!(e.to_string().contains("control card"), "{e}");
        let e = parse_deck("R1 a 0").unwrap_err();
        assert!(e.to_string().contains("at least"), "{e}");
        let e = parse_deck("V1 a 0 PULSE(0 1)").unwrap_err();
        assert!(e.to_string().contains("PULSE needs 7"), "{e}");
        let e = parse_deck("D1 a 0 beta=2").unwrap_err();
        assert!(e.to_string().contains("unknown diode parameter"), "{e}");
    }

    #[test]
    fn duplicate_names_propagate_builder_errors() {
        let e = parse_deck("R1 a 0 1k\nR1 b 0 2k").unwrap_err();
        assert!(matches!(e, SpiceError::DuplicateElement { .. }));
    }
}

//! A standalone SPICE-deck runner over the `carbon-spice` engine.
//!
//! ```text
//! cargo run --release -p carbon-spice --bin spice -- deck.cir
//! cat deck.cir | cargo run --release -p carbon-spice --bin spice
//! ```
//!
//! Supports the element cards documented in
//! [`carbon_spice::parser`] plus `.op`, `.dc`, `.tran`, `.ac`, `.print`,
//! and `.end` control cards; results print as tab-separated columns.

use std::io::Read;

use carbon_spice::runner::parse_full_deck;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().collect();
    let text = match args.get(1).map(String::as_str) {
        Some("-h") | Some("--help") => {
            eprintln!("usage: spice [deck-file]   (reads stdin without a file)");
            return Ok(());
        }
        Some(path) => std::fs::read_to_string(path)?,
        None => {
            let mut buf = String::new();
            std::io::stdin().read_to_string(&mut buf)?;
            buf
        }
    };
    let deck = parse_full_deck(&text)?;
    if deck.analyses.is_empty() {
        eprintln!("deck has no analysis cards (.op/.dc/.tran/.ac); nothing to run");
        return Ok(());
    }
    print!("{}", deck.run()?);
    Ok(())
}

//! Circuit elements and the compact-model interface.
//!
//! Elements are data; the stamping logic lives in
//! [`analysis`](crate::analysis) where integration state is managed. The
//! one abstraction exported to other crates is [`FetCurve`]: any
//! three-terminal transistor model that can report a drain current for a
//! `(V_GS, V_DS)` pair can be placed in a circuit, which is how the
//! compact models of `carbon-devices` drive the paper's Fig. 2 inverter
//! simulation.

use std::sync::Arc;

use crate::netlist::NodeId;
use crate::waveform::Waveform;

/// A three-terminal FET compact model as seen by the simulator.
///
/// Conventions:
///
/// * `ids(vgs, vds)` is the current flowing **into the drain and out of
///   the source**, in amperes, for terminal voltages in volts measured
///   source-referred.
/// * n-type models return positive current for positive `vgs`/`vds`;
///   p-type models implement their polarity internally (negative `vgs`,
///   `vds`, and current in normal operation).
/// * The model must be defined for all finite inputs (the Newton solver
///   will probe outside the normal operating region while converging).
pub trait FetCurve: Send + Sync {
    /// Drain current, A.
    fn ids(&self, vgs: f64, vds: f64) -> f64;

    /// Transconductance `∂I_DS/∂V_GS` and output conductance
    /// `∂I_DS/∂V_DS`.
    ///
    /// The default implementation uses central finite differences with a
    /// 1 mV step, which is adequate for the smooth compact models in this
    /// workspace; models with analytic derivatives can override.
    fn gm_gds(&self, vgs: f64, vds: f64) -> (f64, f64) {
        const H: f64 = 1e-3;
        let gm = (self.ids(vgs + H, vds) - self.ids(vgs - H, vds)) / (2.0 * H);
        let gds = (self.ids(vgs, vds + H) - self.ids(vgs, vds - H)) / (2.0 * H);
        (gm, gds)
    }

    /// Drain current for a batch of `(vgs, vds)` bias points, writing
    /// into `out` (same length as `bias`).
    ///
    /// The default loops over [`ids`](Self::ids); table-backed models
    /// override to amortize clamp/index math across the batch. Each
    /// output must be **bit-identical** to the corresponding scalar
    /// `ids` call — batching is a speedup, never a numerics change.
    ///
    /// # Panics
    ///
    /// Panics per [`batch_lanes_match`] when `out.len() != bias.len()`;
    /// empty batches return immediately. Every implementation (and the
    /// SoA layer in `carbon-devices`) shares that one contract.
    fn ids_batch(&self, bias: &[(f64, f64)], out: &mut [f64]) {
        if !batch_lanes_match(&[("bias", bias.len()), ("out", out.len())]) {
            return;
        }
        for (o, &(vgs, vds)) in out.iter_mut().zip(bias) {
            *o = self.ids(vgs, vds);
        }
    }

    /// Current and both derivatives in one call: `(ids, gm, gds)`.
    ///
    /// This is what the Newton stamp uses — one virtual dispatch per
    /// FET per iteration instead of two, and models can share the
    /// evaluation work between the value and its finite-difference
    /// stencil. The default composes [`ids`](Self::ids) and
    /// [`gm_gds`](Self::gm_gds), so overriding models must stay
    /// bit-identical to that composition.
    fn eval(&self, vgs: f64, vds: f64) -> (f64, f64, f64) {
        let id = self.ids(vgs, vds);
        let (gm, gds) = self.gm_gds(vgs, vds);
        (id, gm, gds)
    }
}

/// The shared length contract for every batched device-evaluation entry
/// point: all lanes (`bias`/`out` for [`FetCurve::ids_batch`], the
/// `vgs`/`vds`/parameter/output lanes of the SoA layer in
/// `carbon-devices`) must have the same length, and an empty batch is a
/// no-op.
///
/// Returns `false` when the (matching) lanes are empty — the caller's
/// zero-length fast path — and panics with a named-field message on the
/// first mismatched lane. Implementations call this instead of ad-hoc
/// `assert_eq!` so the panic text is identical everywhere.
///
/// # Panics
///
/// Panics if any lane's length differs from the first lane's, naming
/// both fields, e.g. `batch lane length mismatch: bias.len() = 5 but
/// out.len() = 4 (all lanes must match)`.
#[inline]
#[track_caller]
pub fn batch_lanes_match(lanes: &[(&str, usize)]) -> bool {
    let (first_name, first_len) = lanes[0];
    for &(name, len) in &lanes[1..] {
        assert!(
            len == first_len,
            "batch lane length mismatch: {first_name}.len() = {first_len} but \
             {name}.len() = {len} (all lanes must match)"
        );
    }
    first_len != 0
}

impl<T: FetCurve + ?Sized> FetCurve for Arc<T> {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        (**self).ids(vgs, vds)
    }
    fn gm_gds(&self, vgs: f64, vds: f64) -> (f64, f64) {
        (**self).gm_gds(vgs, vds)
    }
    fn ids_batch(&self, bias: &[(f64, f64)], out: &mut [f64]) {
        (**self).ids_batch(bias, out);
    }
    fn eval(&self, vgs: f64, vds: f64) -> (f64, f64, f64) {
        (**self).eval(vgs, vds)
    }
}

/// A named element instance.
#[derive(Debug, Clone)]
pub(crate) struct Element {
    pub name: String,
    pub kind: ElementKind,
}

/// The element zoo.
#[derive(Clone)]
pub(crate) enum ElementKind {
    /// Linear resistor between `p` and `n` with conductance `g`.
    Resistor { p: NodeId, n: NodeId, g: f64 },
    /// Linear capacitor; open in DC, companion-stamped in transient.
    Capacitor { p: NodeId, n: NodeId, c: f64 },
    /// Independent voltage source with an MNA branch-current unknown.
    VoltageSource {
        p: NodeId,
        n: NodeId,
        branch: usize,
        wave: Waveform,
    },
    /// Linear inductor with an MNA branch-current unknown; a short in
    /// DC, companion-stamped in transient, `jωL` in AC.
    Inductor {
        p: NodeId,
        n: NodeId,
        branch: usize,
        l: f64,
    },
    /// Independent current source injecting from `n` into `p`.
    CurrentSource {
        p: NodeId,
        n: NodeId,
        wave: Waveform,
    },
    /// Shockley diode `p → n` with saturation current `i_s` and ideality
    /// factor `n_ideality` at 300 K.
    Diode {
        p: NodeId,
        n: NodeId,
        i_s: f64,
        n_ideality: f64,
    },
    /// Voltage-controlled current source: injects
    /// `gm·(v(cp) − v(cn))` from `n` into `p`.
    Vccs {
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gm: f64,
    },
    /// Behavioral three-terminal FET driven by a [`FetCurve`].
    Fet {
        d: NodeId,
        g: NodeId,
        s: NodeId,
        model: Arc<dyn FetCurve>,
    },
}

impl std::fmt::Debug for ElementKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Resistor { p, n, g } => {
                write!(f, "Resistor(p: {p:?}, n: {n:?}, g: {g:.3e} S)")
            }
            Self::Capacitor { p, n, c } => {
                write!(f, "Capacitor(p: {p:?}, n: {n:?}, c: {c:.3e} F)")
            }
            Self::VoltageSource { p, n, branch, wave } => {
                write!(
                    f,
                    "VoltageSource(p: {p:?}, n: {n:?}, branch: {branch}, wave: {wave:?})"
                )
            }
            Self::Inductor { p, n, branch, l } => {
                write!(
                    f,
                    "Inductor(p: {p:?}, n: {n:?}, branch: {branch}, l: {l:.3e} H)"
                )
            }
            Self::CurrentSource { p, n, wave } => {
                write!(f, "CurrentSource(p: {p:?}, n: {n:?}, wave: {wave:?})")
            }
            Self::Diode {
                p,
                n,
                i_s,
                n_ideality,
            } => write!(
                f,
                "Diode(p: {p:?}, n: {n:?}, is: {i_s:.3e} A, n: {n_ideality})"
            ),
            Self::Vccs { p, n, cp, cn, gm } => write!(
                f,
                "Vccs(p: {p:?}, n: {n:?}, ctrl: ({cp:?}, {cn:?}), gm: {gm:.3e} S)"
            ),
            Self::Fet { d, g, s, .. } => {
                write!(
                    f,
                    "Fet(d: {d:?}, g: {g:?}, s: {s:?}, model: <dyn FetCurve>)"
                )
            }
        }
    }
}

/// Shockley diode current and conductance with junction voltage limiting:
/// the exponential is evaluated at a critical-voltage-limited argument so
/// Newton steps cannot overflow.
pub(crate) fn diode_iv(v: f64, i_s: f64, n_ideality: f64) -> (f64, f64) {
    let vt = n_ideality * 0.02585;
    // Limit the exponent to keep e^x finite; beyond x_max the model
    // continues linearly (standard SPICE junction treatment).
    let x = v / vt;
    let x_max = 80.0;
    if x > x_max {
        let i_knee = i_s * (x_max.exp() - 1.0);
        let g_knee = i_s * x_max.exp() / vt;
        (i_knee + g_knee * (v - x_max * vt), g_knee)
    } else {
        let e = x.exp();
        (i_s * (e - 1.0), (i_s * e / vt).max(1e-15))
    }
}

/// SPICE-style junction voltage limiting (`pnjlim`): bounds how far a
/// junction's loaded voltage may move in one Newton iteration once it is
/// past its critical voltage, turning the junction on in logarithmic
/// steps instead of letting the exponential stall the whole iteration.
///
/// `vnew` is this iteration's candidate junction voltage, `vold` the
/// voltage actually loaded last iteration. Near a fixed point
/// (`|vnew − vold| ≤ 2·vt`) the candidate passes through unchanged, so
/// limiting never distorts a converged solution.
pub(crate) fn pnjlim(vnew: f64, vold: f64, vt: f64, vcrit: f64) -> f64 {
    if vnew > vcrit && (vnew - vold).abs() > 2.0 * vt {
        if vold > 0.0 {
            let arg = 1.0 + (vnew - vold) / vt;
            if arg > 0.0 {
                vold + vt * arg.ln()
            } else {
                vcrit
            }
        } else {
            vt * (vnew / vt).ln()
        }
    } else {
        vnew
    }
}

/// Critical voltage for [`pnjlim`]: the junction voltage at which the
/// exponential's curvature overtakes the linearization.
pub(crate) fn diode_vcrit(i_s: f64, n_ideality: f64) -> f64 {
    let vt = n_ideality * 0.02585;
    vt * (vt / (std::f64::consts::SQRT_2 * i_s)).ln()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct QuadraticFet;

    impl FetCurve for QuadraticFet {
        fn ids(&self, vgs: f64, vds: f64) -> f64 {
            // Simple saturating toy: k·(vgs)²·tanh(vds).
            1e-4 * vgs * vgs * vds.tanh()
        }
    }

    #[test]
    fn default_derivatives_match_analytic() {
        let m = QuadraticFet;
        let (vgs, vds) = (0.7, 0.4);
        let (gm, gds) = m.gm_gds(vgs, vds);
        let gm_exact = 2e-4 * vgs * vds.tanh();
        let gds_exact = 1e-4 * vgs * vgs / vds.cosh().powi(2);
        assert!((gm - gm_exact).abs() / gm_exact < 1e-5);
        assert!((gds - gds_exact).abs() / gds_exact < 1e-5);
    }

    #[test]
    fn arc_forwarding() {
        let m: Arc<dyn FetCurve> = Arc::new(QuadraticFet);
        assert_eq!(m.ids(1.0, 10.0), QuadraticFet.ids(1.0, 10.0));
        let (gm1, gd1) = m.gm_gds(0.5, 0.5);
        let (gm2, gd2) = QuadraticFet.gm_gds(0.5, 0.5);
        assert_eq!((gm1, gd1), (gm2, gd2));
    }

    #[test]
    fn ids_batch_empty_is_noop() {
        let m = QuadraticFet;
        let mut out: [f64; 0] = [];
        m.ids_batch(&[], &mut out);
    }

    #[test]
    #[should_panic(expected = "batch lane length mismatch: bias.len() = 2 but out.len() = 1")]
    fn ids_batch_length_mismatch_names_fields() {
        let m = QuadraticFet;
        let mut out = [0.0];
        m.ids_batch(&[(0.5, 0.5), (0.6, 0.6)], &mut out);
    }

    #[test]
    fn batch_lanes_match_accepts_equal_lanes() {
        assert!(batch_lanes_match(&[("a", 3), ("b", 3), ("c", 3)]));
        assert!(!batch_lanes_match(&[("a", 0), ("b", 0)]));
    }

    #[test]
    fn diode_forward_reverse() {
        let (i_fwd, g_fwd) = diode_iv(0.6, 1e-15, 1.0);
        assert!(i_fwd > 1e-6, "forward diode conducts");
        assert!(g_fwd > 0.0);
        let (i_rev, g_rev) = diode_iv(-5.0, 1e-15, 1.0);
        assert!((i_rev + 1e-15).abs() < 1e-16, "reverse saturation");
        assert!(g_rev > 0.0, "conductance stays positive for Newton");
    }

    #[test]
    fn diode_limits_overflow() {
        let (i, g) = diode_iv(100.0, 1e-15, 1.0);
        assert!(i.is_finite() && g.is_finite());
        let (i2, _) = diode_iv(200.0, 1e-15, 1.0);
        assert!(i2 > i, "still monotone past the knee");
    }

    #[test]
    fn diode_continuous_at_knee() {
        let vt = 0.02585;
        let v_knee = 80.0 * vt;
        let (below, _) = diode_iv(v_knee - 1e-9, 1e-15, 1.0);
        let (above, _) = diode_iv(v_knee + 1e-9, 1e-15, 1.0);
        assert!((above - below).abs() / above < 1e-6);
    }
}

//! Deck-level analysis cards and a batch runner: the layer that makes
//! the simulator usable as a standalone tool (`.op`, `.dc`, `.tran`,
//! `.ac`, `.print`) rather than only as a library.

use crate::error::SpiceError;
use crate::netlist::Circuit;
use crate::parser::{parse_card_into, parse_value};

/// One analysis request parsed from a control card.
#[derive(Debug, Clone, PartialEq)]
pub enum AnalysisCard {
    /// `.op` — DC operating point.
    Op,
    /// `.dc <source> <from> <to> <step>`.
    Dc {
        /// Swept source name.
        source: String,
        /// Sweep start, V or A.
        from: f64,
        /// Sweep end.
        to: f64,
        /// Sweep step (positive).
        step: f64,
    },
    /// `.tran <step> <stop>`.
    Tran {
        /// Time step, s.
        step: f64,
        /// Stop time, s.
        stop: f64,
    },
    /// `.ac <source> <f_start> <f_stop> <points>` (log-spaced).
    Ac {
        /// AC stimulus source name.
        source: String,
        /// Start frequency, Hz.
        f_start: f64,
        /// Stop frequency, Hz.
        f_stop: f64,
        /// Number of log-spaced points (≥ 2).
        points: usize,
    },
}

/// A parsed deck: the circuit, its analyses, and the nodes to print.
#[derive(Debug)]
pub struct Deck {
    /// The circuit.
    pub circuit: Circuit,
    /// Analyses in deck order.
    pub analyses: Vec<AnalysisCard>,
    /// Node names from `.print` cards (all nodes if empty).
    pub print_nodes: Vec<String>,
}

/// Parses a full deck including control cards.
///
/// # Errors
///
/// Returns [`SpiceError::InvalidValue`] with the line number for
/// malformed element or control cards.
///
/// # Examples
///
/// ```
/// use carbon_spice::runner::parse_full_deck;
///
/// # fn main() -> Result<(), carbon_spice::SpiceError> {
/// let deck = parse_full_deck(
///     "V1 in 0 1.0
///      R1 in out 1k
///      R2 out 0 1k
///      .op
///      .print out",
/// )?;
/// assert_eq!(deck.analyses.len(), 1);
/// let report = deck.run()?;
/// assert!(report.contains("out"));
/// # Ok(())
/// # }
/// ```
pub fn parse_full_deck(text: &str) -> Result<Deck, SpiceError> {
    let mut circuit = Circuit::new();
    let mut analyses = Vec::new();
    let mut print_nodes = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('*') || line.starts_with(';') {
            continue;
        }
        let lower = line.to_ascii_lowercase();
        if lower == ".end" {
            break;
        }
        if let Some(card) = lower.strip_prefix('.') {
            let tokens: Vec<&str> = card.split_whitespace().collect();
            let bad = |reason: String| SpiceError::InvalidValue {
                element: format!("line {}", lineno + 1),
                reason,
            };
            match tokens.first().copied() {
                Some("op") => analyses.push(AnalysisCard::Op),
                Some("dc") => {
                    if tokens.len() != 5 {
                        return Err(bad(".dc needs: source from to step".into()));
                    }
                    analyses.push(AnalysisCard::Dc {
                        source: tokens[1].to_owned(),
                        from: parse_value(tokens[2]).map_err(&bad)?,
                        to: parse_value(tokens[3]).map_err(&bad)?,
                        step: parse_value(tokens[4]).map_err(&bad)?,
                    });
                }
                Some("tran") => {
                    if tokens.len() != 3 {
                        return Err(bad(".tran needs: step stop".into()));
                    }
                    analyses.push(AnalysisCard::Tran {
                        step: parse_value(tokens[1]).map_err(&bad)?,
                        stop: parse_value(tokens[2]).map_err(&bad)?,
                    });
                }
                Some("ac") => {
                    if tokens.len() != 5 {
                        return Err(bad(".ac needs: source f_start f_stop points".into()));
                    }
                    let points = tokens[4]
                        .parse::<usize>()
                        .map_err(|_| bad(format!("bad point count '{}'", tokens[4])))?;
                    if points < 2 {
                        return Err(bad("ac sweep needs at least 2 points".into()));
                    }
                    analyses.push(AnalysisCard::Ac {
                        source: tokens[1].to_owned(),
                        f_start: parse_value(tokens[2]).map_err(&bad)?,
                        f_stop: parse_value(tokens[3]).map_err(&bad)?,
                        points,
                    });
                }
                Some("print") => {
                    print_nodes.extend(tokens[1..].iter().map(|s| (*s).to_owned()));
                }
                other => {
                    return Err(bad(format!(
                        "unsupported control card '.{}'",
                        other.unwrap_or("")
                    )));
                }
            }
            continue;
        }
        parse_card_into(&mut circuit, lineno, line)?;
    }
    Ok(Deck {
        circuit,
        analyses,
        print_nodes,
    })
}

impl Deck {
    /// Runs every analysis and renders a plain-text report.
    ///
    /// # Errors
    ///
    /// Propagates solver failures from any analysis.
    pub fn run(&self) -> Result<String, SpiceError> {
        use std::fmt::Write as _;
        let mut out = String::new();
        let nodes: Vec<String> = self.print_nodes.clone();
        for analysis in &self.analyses {
            match analysis {
                AnalysisCard::Op => {
                    let op = self.circuit.op()?;
                    let _ = writeln!(out, "* .op");
                    for node in &nodes {
                        let _ = writeln!(out, "V({node}) = {:.6e}", op.voltage(node)?);
                    }
                }
                AnalysisCard::Dc {
                    source,
                    from,
                    to,
                    step,
                } => {
                    let sweep = self.circuit.dc_sweep(source, *from, *to, *step)?;
                    let _ = writeln!(out, "* .dc {source} {from} {to} {step}");
                    let traces: Vec<(String, Vec<f64>)> = nodes
                        .iter()
                        .map(|n| Ok((n.clone(), sweep.voltages(n)?)))
                        .collect::<Result<_, SpiceError>>()?;
                    for (k, v) in sweep.sweep_values().iter().enumerate() {
                        let mut row = format!("{v:.6e}");
                        for (_, t) in &traces {
                            let _ = write!(row, "\t{:.6e}", t[k]);
                        }
                        let _ = writeln!(out, "{row}");
                    }
                }
                AnalysisCard::Tran { step, stop } => {
                    let tran = self.circuit.transient(*step, *stop)?;
                    let _ = writeln!(out, "* .tran {step} {stop}");
                    let traces: Vec<(String, Vec<f64>)> = nodes
                        .iter()
                        .map(|n| Ok((n.clone(), tran.voltages(n)?.to_vec())))
                        .collect::<Result<_, SpiceError>>()?;
                    for (k, t) in tran.times().iter().enumerate() {
                        let mut row = format!("{t:.6e}");
                        for (_, tr) in &traces {
                            let _ = write!(row, "\t{:.6e}", tr[k]);
                        }
                        let _ = writeln!(out, "{row}");
                    }
                }
                AnalysisCard::Ac {
                    source,
                    f_start,
                    f_stop,
                    points,
                } => {
                    let freqs: Vec<f64> = (0..*points)
                        .map(|k| {
                            f_start * (f_stop / f_start).powf(k as f64 / (*points as f64 - 1.0))
                        })
                        .collect();
                    let ac = self.circuit.ac_sweep(source, &freqs)?;
                    let _ = writeln!(out, "* .ac {source} {f_start} {f_stop} {points}");
                    let traces: Vec<(String, Vec<f64>)> = nodes
                        .iter()
                        .map(|n| Ok((n.clone(), ac.magnitude(n)?)))
                        .collect::<Result<_, SpiceError>>()?;
                    for (k, f) in freqs.iter().enumerate() {
                        let mut row = format!("{f:.6e}");
                        for (_, t) in &traces {
                            let _ = write!(row, "\t{:.6e}", t[k]);
                        }
                        let _ = writeln!(out, "{row}");
                    }
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_runs_all_card_kinds() {
        let deck = parse_full_deck(
            "V1 in 0 SIN(0 1 1meg)
             R1 in out 1k
             C1 out 0 1n
             .op
             .dc V1 0 1 0.5
             .tran 0.1u 2u
             .ac V1 1k 1g 7
             .print out in",
        )
        .unwrap();
        assert_eq!(deck.analyses.len(), 4);
        assert_eq!(deck.print_nodes, vec!["out", "in"]);
        let report = deck.run().unwrap();
        assert!(report.contains("* .op"));
        assert!(report.contains("* .dc"));
        assert!(report.contains("* .tran"));
        assert!(report.contains("* .ac"));
        // The .tran block has ~20 rows of 3 columns.
        let tran_rows = report
            .lines()
            .skip_while(|l| !l.starts_with("* .tran"))
            .skip(1)
            .take_while(|l| !l.starts_with('*'))
            .count();
        assert!(tran_rows >= 20, "rows {tran_rows}");
    }

    #[test]
    fn op_report_is_correct() {
        let deck = parse_full_deck(
            "V1 in 0 2
             R1 in out 1k
             R2 out 0 1k
             .op
             .print out",
        )
        .unwrap();
        let report = deck.run().unwrap();
        assert!(report.contains("V(out) = 1.0000"), "{report}");
    }

    #[test]
    fn control_card_errors_have_line_numbers() {
        let e = parse_full_deck("V1 a 0 1\n.dc V1 0 1").unwrap_err();
        assert!(e.to_string().contains("line 2"), "{e}");
        let e = parse_full_deck(".noise").unwrap_err();
        assert!(e.to_string().contains("unsupported control card"), "{e}");
        let e = parse_full_deck("V1 a 0 1\n.ac V1 1k 1g 1").unwrap_err();
        assert!(e.to_string().contains("at least 2"), "{e}");
    }

    #[test]
    fn end_card_still_terminates() {
        let deck = parse_full_deck("V1 a 0 1\nR1 a 0 1k\n.op\n.end\n.dc V1 0 1 0.1").unwrap();
        assert_eq!(deck.analyses.len(), 1);
    }
}

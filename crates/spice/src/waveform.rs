//! Time-dependent source waveforms for transient analysis.

/// Waveform of an independent source.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value (also the value used by DC analyses).
    Dc(f64),
    /// Trapezoidal pulse: `low` before `delay`, rising over `rise` to
    /// `high`, holding for `width`, falling over `fall`, repeating with
    /// `period` (0 disables repetition).
    Pulse {
        /// Initial/low level.
        low: f64,
        /// Pulsed/high level.
        high: f64,
        /// Time of the first rising edge start, s.
        delay: f64,
        /// Rise time, s (0 snaps).
        rise: f64,
        /// Fall time, s (0 snaps).
        fall: f64,
        /// High hold time, s.
        width: f64,
        /// Repetition period, s; `0.0` = single pulse.
        period: f64,
    },
    /// Piece-wise linear `(time, value)` corners; holds the first value
    /// before the first corner and the last value after the last corner.
    Pwl(Vec<(f64, f64)>),
    /// Sinusoid `offset + amplitude·sin(2π·freq·(t − delay))`, zero phase
    /// before `delay`.
    Sin {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        amplitude: f64,
        /// Frequency, Hz.
        freq: f64,
        /// Start delay, s.
        delay: f64,
    },
}

impl Waveform {
    /// Value of the waveform at time `t` (seconds). For [`Waveform::Dc`]
    /// this is time-independent.
    pub fn value_at(&self, t: f64) -> f64 {
        match *self {
            Self::Dc(v) => v,
            Self::Pulse {
                low,
                high,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < delay {
                    return low;
                }
                let mut tau = t - delay;
                if period > 0.0 {
                    tau %= period;
                }
                if tau < rise {
                    if rise == 0.0 {
                        high
                    } else {
                        low + (high - low) * tau / rise
                    }
                } else if tau < rise + width {
                    high
                } else if tau < rise + width + fall {
                    if fall == 0.0 {
                        low
                    } else {
                        high - (high - low) * (tau - rise - width) / fall
                    }
                } else {
                    low
                }
            }
            Self::Pwl(ref pts) => {
                if pts.is_empty() {
                    return 0.0;
                }
                if t <= pts[0].0 {
                    return pts[0].1;
                }
                for w in pts.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                pts.last().expect("non-empty").1
            }
            Self::Sin {
                offset,
                amplitude,
                freq,
                delay,
            } => {
                if t < delay {
                    offset
                } else {
                    offset + amplitude * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
        }
    }

    /// The DC (t → 0⁻) value used for operating-point analyses.
    pub fn dc_value(&self) -> f64 {
        match *self {
            Self::Dc(v) => v,
            Self::Pulse { low, .. } => low,
            Self::Pwl(ref pts) => pts.first().map(|p| p.1).unwrap_or(0.0),
            Self::Sin { offset, .. } => offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc(0.7);
        assert_eq!(w.value_at(0.0), 0.7);
        assert_eq!(w.value_at(1e-3), 0.7);
        assert_eq!(w.dc_value(), 0.7);
    }

    #[test]
    fn pulse_shape() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 1e-9,
            rise: 1e-10,
            fall: 1e-10,
            width: 5e-10,
            period: 0.0,
        };
        assert_eq!(w.value_at(0.0), 0.0);
        assert_eq!(w.value_at(0.9e-9), 0.0);
        assert!((w.value_at(1.05e-9) - 0.5).abs() < 1e-12, "mid-rise");
        assert_eq!(w.value_at(1.3e-9), 1.0);
        let mid_fall = w.value_at(1e-9 + 1e-10 + 5e-10 + 5e-11);
        assert!((mid_fall - 0.5).abs() < 1e-9);
        assert_eq!(w.value_at(5e-9), 0.0);
        assert_eq!(w.dc_value(), 0.0);
    }

    #[test]
    fn pulse_repeats_with_period() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: 1e-9,
            period: 2e-9,
        };
        assert_eq!(w.value_at(0.5e-9), 1.0);
        assert_eq!(w.value_at(1.5e-9), 0.0);
        assert_eq!(w.value_at(2.5e-9), 1.0);
        assert_eq!(w.value_at(3.5e-9), 0.0);
    }

    #[test]
    fn zero_rise_time_snaps() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: 1e-9,
            period: 0.0,
        };
        assert_eq!(w.value_at(0.0), 1.0);
        assert_eq!(w.value_at(2e-9), 0.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(1.0, 0.0), (2.0, 1.0), (4.0, -1.0)]);
        assert_eq!(w.value_at(0.0), 0.0);
        assert!((w.value_at(1.5) - 0.5).abs() < 1e-12);
        assert!((w.value_at(3.0) - 0.0).abs() < 1e-12);
        assert_eq!(w.value_at(9.0), -1.0);
        assert_eq!(w.dc_value(), 0.0);
    }

    #[test]
    fn empty_pwl_is_zero() {
        let w = Waveform::Pwl(vec![]);
        assert_eq!(w.value_at(1.0), 0.0);
        assert_eq!(w.dc_value(), 0.0);
    }

    #[test]
    fn sin_waveform() {
        let w = Waveform::Sin {
            offset: 0.5,
            amplitude: 0.2,
            freq: 1e9,
            delay: 0.0,
        };
        assert!((w.value_at(0.0) - 0.5).abs() < 1e-12);
        assert!(
            (w.value_at(0.25e-9) - 0.7).abs() < 1e-9,
            "peak at quarter period"
        );
        assert_eq!(w.dc_value(), 0.5);
    }
}

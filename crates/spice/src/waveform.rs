//! Time-dependent source waveforms for transient analysis.

/// Waveform of an independent source.
#[derive(Debug, Clone, PartialEq)]
pub enum Waveform {
    /// Constant value (also the value used by DC analyses).
    Dc(f64),
    /// Trapezoidal pulse: `low` before `delay`, rising over `rise` to
    /// `high`, holding for `width`, falling over `fall`, repeating with
    /// `period` (0 disables repetition).
    Pulse {
        /// Initial/low level.
        low: f64,
        /// Pulsed/high level.
        high: f64,
        /// Time of the first rising edge start, s.
        delay: f64,
        /// Rise time, s (0 snaps).
        rise: f64,
        /// Fall time, s (0 snaps).
        fall: f64,
        /// High hold time, s.
        width: f64,
        /// Repetition period, s; `0.0` = single pulse.
        period: f64,
    },
    /// Piece-wise linear `(time, value)` corners; holds the first value
    /// before the first corner and the last value after the last corner.
    Pwl(Vec<(f64, f64)>),
    /// Sinusoid `offset + amplitude·sin(2π·freq·(t − delay))`, zero phase
    /// before `delay`.
    Sin {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        amplitude: f64,
        /// Frequency, Hz.
        freq: f64,
        /// Start delay, s.
        delay: f64,
    },
}

impl Waveform {
    /// Value of the waveform at time `t` (seconds). For [`Waveform::Dc`]
    /// this is time-independent.
    pub fn value_at(&self, t: f64) -> f64 {
        match *self {
            Self::Dc(v) => v,
            Self::Pulse {
                low,
                high,
                delay,
                rise,
                fall,
                width,
                period,
            } => {
                if t < delay {
                    return low;
                }
                let mut tau = t - delay;
                if period > 0.0 {
                    tau %= period;
                }
                if tau < rise {
                    if rise == 0.0 {
                        high
                    } else {
                        low + (high - low) * tau / rise
                    }
                } else if tau < rise + width {
                    high
                } else if tau < rise + width + fall {
                    if fall == 0.0 {
                        low
                    } else {
                        high - (high - low) * (tau - rise - width) / fall
                    }
                } else {
                    low
                }
            }
            Self::Pwl(ref pts) => {
                if pts.is_empty() {
                    return 0.0;
                }
                if t <= pts[0].0 {
                    return pts[0].1;
                }
                for w in pts.windows(2) {
                    let (t0, v0) = w[0];
                    let (t1, v1) = w[1];
                    if t <= t1 {
                        if t1 == t0 {
                            return v1;
                        }
                        return v0 + (v1 - v0) * (t - t0) / (t1 - t0);
                    }
                }
                pts.last().expect("non-empty").1
            }
            Self::Sin {
                offset,
                amplitude,
                freq,
                delay,
            } => {
                if t < delay {
                    offset
                } else {
                    offset + amplitude * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
        }
    }

    /// Appends the waveform's breakpoints within `(0, tstop)` to `out`
    /// — the times where the source's value or slope is discontinuous,
    /// which an adaptive integrator must land on exactly rather than
    /// step across.
    ///
    /// Pulse waveforms contribute their four edge corners per period
    /// (capped at [`Waveform::MAX_BREAKPOINTS`] entries so a
    /// pathologically short period cannot explode the list — beyond
    /// the cap the step-size controller resolves the edges on its
    /// own); PWL waveforms contribute every corner; sinusoids their
    /// start delay; DC sources none.
    pub fn breakpoints(&self, tstop: f64, out: &mut Vec<f64>) {
        let mut push = |t: f64| {
            if t > 0.0 && t < tstop {
                out.push(t);
            }
        };
        match *self {
            Self::Dc(_) => {}
            Self::Pulse {
                delay,
                rise,
                fall,
                width,
                period,
                ..
            } => {
                let mut base = delay;
                let mut generated = 0usize;
                loop {
                    for corner in [
                        base,
                        base + rise,
                        base + rise + width,
                        base + rise + width + fall,
                    ] {
                        push(corner);
                    }
                    generated += 4;
                    if period <= 0.0 || base + period >= tstop || generated >= Self::MAX_BREAKPOINTS
                    {
                        break;
                    }
                    base += period;
                }
            }
            Self::Pwl(ref pts) => {
                for &(t, _) in pts {
                    push(t);
                }
            }
            Self::Sin { delay, .. } => push(delay),
        }
    }

    /// Upper bound on the breakpoints one periodic source contributes
    /// (see [`Waveform::breakpoints`]).
    pub const MAX_BREAKPOINTS: usize = 65536;

    /// The DC (t → 0⁻) value used for operating-point analyses.
    pub fn dc_value(&self) -> f64 {
        match *self {
            Self::Dc(v) => v,
            Self::Pulse { low, .. } => low,
            Self::Pwl(ref pts) => pts.first().map(|p| p.1).unwrap_or(0.0),
            Self::Sin { offset, .. } => offset,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dc_is_constant() {
        let w = Waveform::Dc(0.7);
        assert_eq!(w.value_at(0.0), 0.7);
        assert_eq!(w.value_at(1e-3), 0.7);
        assert_eq!(w.dc_value(), 0.7);
    }

    #[test]
    fn pulse_shape() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 1e-9,
            rise: 1e-10,
            fall: 1e-10,
            width: 5e-10,
            period: 0.0,
        };
        assert_eq!(w.value_at(0.0), 0.0);
        assert_eq!(w.value_at(0.9e-9), 0.0);
        assert!((w.value_at(1.05e-9) - 0.5).abs() < 1e-12, "mid-rise");
        assert_eq!(w.value_at(1.3e-9), 1.0);
        let mid_fall = w.value_at(1e-9 + 1e-10 + 5e-10 + 5e-11);
        assert!((mid_fall - 0.5).abs() < 1e-9);
        assert_eq!(w.value_at(5e-9), 0.0);
        assert_eq!(w.dc_value(), 0.0);
    }

    #[test]
    fn pulse_repeats_with_period() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: 1e-9,
            period: 2e-9,
        };
        assert_eq!(w.value_at(0.5e-9), 1.0);
        assert_eq!(w.value_at(1.5e-9), 0.0);
        assert_eq!(w.value_at(2.5e-9), 1.0);
        assert_eq!(w.value_at(3.5e-9), 0.0);
    }

    #[test]
    fn zero_rise_time_snaps() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: 1e-9,
            period: 0.0,
        };
        assert_eq!(w.value_at(0.0), 1.0);
        assert_eq!(w.value_at(2e-9), 0.0);
    }

    #[test]
    fn pwl_interpolates_and_clamps() {
        let w = Waveform::Pwl(vec![(1.0, 0.0), (2.0, 1.0), (4.0, -1.0)]);
        assert_eq!(w.value_at(0.0), 0.0);
        assert!((w.value_at(1.5) - 0.5).abs() < 1e-12);
        assert!((w.value_at(3.0) - 0.0).abs() < 1e-12);
        assert_eq!(w.value_at(9.0), -1.0);
        assert_eq!(w.dc_value(), 0.0);
    }

    #[test]
    fn empty_pwl_is_zero() {
        let w = Waveform::Pwl(vec![]);
        assert_eq!(w.value_at(1.0), 0.0);
        assert_eq!(w.dc_value(), 0.0);
    }

    #[test]
    fn breakpoints_cover_edges_within_the_horizon() {
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 1e-9,
            rise: 1e-10,
            fall: 2e-10,
            width: 5e-10,
            period: 0.0,
        };
        let mut bp = Vec::new();
        w.breakpoints(1e-6, &mut bp);
        let expect = [1e-9, 1.1e-9, 1.6e-9, 1.8e-9];
        assert_eq!(bp.len(), expect.len());
        for (got, want) in bp.iter().zip(expect) {
            assert!((got - want).abs() < 1e-15, "{got} vs {want}");
        }
        // Horizon clamps: corners at or past tstop are dropped.
        bp.clear();
        w.breakpoints(1.2e-9, &mut bp);
        assert_eq!(bp.len(), 2);
        // Periodic pulses repeat their corners but stay bounded.
        let w = Waveform::Pulse {
            low: 0.0,
            high: 1.0,
            delay: 0.0,
            rise: 0.0,
            fall: 0.0,
            width: 1e-9,
            period: 2e-9,
        };
        bp.clear();
        w.breakpoints(1.0, &mut bp);
        assert!(bp.len() <= Waveform::MAX_BREAKPOINTS + 4);
        // PWL corners and sine delays show up; DC contributes none.
        bp.clear();
        Waveform::Pwl(vec![(0.0, 0.0), (1.0, 1.0), (2.0, 0.5)]).breakpoints(1.5, &mut bp);
        assert_eq!(bp, vec![1.0]);
        bp.clear();
        Waveform::Dc(1.0).breakpoints(1.0, &mut bp);
        assert!(bp.is_empty());
    }

    #[test]
    fn sin_waveform() {
        let w = Waveform::Sin {
            offset: 0.5,
            amplitude: 0.2,
            freq: 1e9,
            delay: 0.0,
        };
        assert!((w.value_at(0.0) - 0.5).abs() < 1e-12);
        assert!(
            (w.value_at(0.25e-9) - 0.7).abs() < 1e-9,
            "peak at quarter period"
        );
        assert_eq!(w.dc_value(), 0.5);
    }
}

//! Dense linear algebra for the MNA system: an `n × n` matrix with LU
//! factorization and partial pivoting.
//!
//! The dense solver is the workhorse for small circuits (an inverter is
//! 4 unknowns) and the reference oracle for the sparse path in
//! [`sparse`](crate::sparse), which takes over for larger systems where
//! the O(n³) factorization dominates; the `solver` bench tracks both so
//! the crossover stays visible.
//!
//! Gaussian elimination is written index-based on purpose; the
//! iterator forms clippy suggests obscure the row/column structure.
#![allow(clippy::needless_range_loop)]

use crate::error::SpiceError;

/// The MNA *stamp* sink: anything element stamps can accumulate into.
///
/// Implemented by [`DenseMatrix`] and
/// [`SparseMatrix`](crate::sparse::SparseMatrix) so the element-stamping
/// code in the Newton engine is written once and works against either
/// backend.
pub trait Stamp {
    /// Adds `value` to entry `(row, col)`.
    fn add(&mut self, row: usize, col: usize, value: f64);
}

impl Stamp for DenseMatrix {
    #[inline]
    fn add(&mut self, row: usize, col: usize, value: f64) {
        DenseMatrix::add(self, row, col, value);
    }
}

/// A dense square matrix stored row-major.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zeroed `n × n` matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![0.0; n * n],
        }
    }

    /// Matrix dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Reads entry `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(
            row < self.n && col < self.n,
            "index ({row}, {col}) out of bounds"
        );
        self.data[row * self.n + col]
    }

    /// Adds `value` to entry `(row, col)` — the MNA *stamp* operation.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.n && col < self.n,
            "index ({row}, {col}) out of bounds"
        );
        self.data[row * self.n + col] += value;
    }

    /// Resets all entries to zero, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }

    /// Solves `A·x = b` in place by LU factorization with partial
    /// pivoting, destroying `self` and overwriting `b` with the solution.
    ///
    /// Rows are equilibrated (scaled to unit max-norm) first: MNA
    /// matrices legitimately span many decades between conductance and
    /// source rows, and equilibration keeps the singularity test
    /// meaningful.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when a pivot of the
    /// equilibrated matrix falls below `1e-13`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve_in_place(&mut self, b: &mut [f64]) -> Result<(), SpiceError> {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length must equal matrix dimension");
        if n == 0 {
            return Ok(());
        }
        // Row equilibration.
        for r in 0..n {
            let row_max = self.data[r * n..(r + 1) * n]
                .iter()
                .fold(0.0_f64, |m, &v| m.max(v.abs()));
            if row_max == 0.0 {
                return Err(SpiceError::SingularMatrix { row: r, pivot: 0.0 });
            }
            let inv = 1.0 / row_max;
            for v in &mut self.data[r * n..(r + 1) * n] {
                *v *= inv;
            }
            b[r] *= inv;
        }
        let tol = 1e-13;
        for k in 0..n {
            // Partial pivot: largest |entry| in column k at/below row k.
            let mut pivot_row = k;
            let mut pivot_val = self.data[k * n + k].abs();
            for r in (k + 1)..n {
                let v = self.data[r * n + k].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < tol {
                return Err(SpiceError::SingularMatrix {
                    row: k,
                    pivot: pivot_val,
                });
            }
            if pivot_row != k {
                for c in 0..n {
                    self.data.swap(k * n + c, pivot_row * n + c);
                }
                b.swap(k, pivot_row);
            }
            let pivot = self.data[k * n + k];
            for r in (k + 1)..n {
                let factor = self.data[r * n + k] / pivot;
                if factor == 0.0 {
                    continue;
                }
                self.data[r * n + k] = 0.0;
                for c in (k + 1)..n {
                    self.data[r * n + c] -= factor * self.data[k * n + c];
                }
                b[r] -= factor * b[k];
            }
        }
        // Back substitution.
        for k in (0..n).rev() {
            let mut sum = b[k];
            for c in (k + 1)..n {
                sum -= self.data[k * n + c] * b[c];
            }
            b[k] = sum / self.data[k * n + k];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_identity() {
        let mut a = DenseMatrix::zeros(3);
        for i in 0..3 {
            a.add(i, i, 1.0);
        }
        let mut b = vec![1.0, 2.0, 3.0];
        a.solve_in_place(&mut b).unwrap();
        assert_eq!(b, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solves_known_system() {
        // [2 1; 1 3]·x = [3; 5] → x = [4/5, 7/5].
        let mut a = DenseMatrix::zeros(2);
        a.add(0, 0, 2.0);
        a.add(0, 1, 1.0);
        a.add(1, 0, 1.0);
        a.add(1, 1, 3.0);
        let mut b = vec![3.0, 5.0];
        a.solve_in_place(&mut b).unwrap();
        assert!((b[0] - 0.8).abs() < 1e-12);
        assert!((b[1] - 1.4).abs() < 1e-12);
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0]·x = [2; 3] → x = [3, 2]; fails without pivoting.
        let mut a = DenseMatrix::zeros(2);
        a.add(0, 1, 1.0);
        a.add(1, 0, 1.0);
        let mut b = vec![2.0, 3.0];
        a.solve_in_place(&mut b).unwrap();
        assert!((b[0] - 3.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn detects_singularity() {
        let mut a = DenseMatrix::zeros(2);
        a.add(0, 0, 1.0);
        a.add(0, 1, 2.0);
        a.add(1, 0, 2.0);
        a.add(1, 1, 4.0);
        let mut b = vec![1.0, 2.0];
        assert!(matches!(
            a.solve_in_place(&mut b),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn singularity_error_reports_pivot_index_and_magnitude() {
        // Rank-1 matrix: elimination of row 0 leaves row 1 with no pivot.
        let mut a = DenseMatrix::zeros(2);
        a.add(0, 0, 1.0);
        a.add(0, 1, 2.0);
        a.add(1, 0, 2.0);
        a.add(1, 1, 4.0);
        let mut b = vec![1.0, 2.0];
        let err = a.solve_in_place(&mut b).unwrap_err();
        let SpiceError::SingularMatrix { row, pivot } = err else {
            panic!("expected SingularMatrix, got {err:?}");
        };
        assert_eq!(row, 1, "elimination fails at the second pivot");
        assert!(pivot < 1e-13, "pivot magnitude reported: {pivot}");
        let msg = SpiceError::SingularMatrix { row, pivot }.to_string();
        assert!(msg.contains("row 1"), "{msg}");
        assert!(msg.contains("pivot"), "{msg}");
    }

    #[test]
    fn empty_row_reports_zero_pivot() {
        let mut a = DenseMatrix::zeros(2);
        a.add(0, 0, 1.0);
        let mut b = vec![1.0, 1.0];
        let err = a.solve_in_place(&mut b).unwrap_err();
        assert_eq!(err, SpiceError::SingularMatrix { row: 1, pivot: 0.0 });
    }

    #[test]
    fn stamps_accumulate() {
        let mut a = DenseMatrix::zeros(1);
        a.add(0, 0, 1.0);
        a.add(0, 0, 2.5);
        assert_eq!(a.get(0, 0), 3.5);
        a.clear();
        assert_eq!(a.get(0, 0), 0.0);
    }

    #[test]
    fn empty_system_is_trivially_solved() {
        let mut a = DenseMatrix::zeros(0);
        let mut b: Vec<f64> = vec![];
        a.solve_in_place(&mut b).unwrap();
    }

    #[test]
    fn badly_scaled_but_regular_system_is_solved() {
        // Conductance stamps span many decades in real circuits.
        let mut a = DenseMatrix::zeros(2);
        a.add(0, 0, 1e9);
        a.add(0, 1, -1.0);
        a.add(1, 0, -1.0);
        a.add(1, 1, 1e-6);
        let x0 = 1.5e-9;
        let x1 = 2.5;
        let mut b = vec![1e9 * x0 - x1, -x0 + 1e-6 * x1];
        a.solve_in_place(&mut b).unwrap();
        assert!((b[0] - x0).abs() < 1e-15);
        assert!((b[1] - x1).abs() < 1e-6);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use carbon_runtime::prop::prelude::*;

    proptest! {
        /// Diagonally dominant random systems are well-posed; the solver
        /// must reproduce a planted solution.
        #[test]
        fn recovers_planted_solution(
            n in 1usize..12,
            seed in carbon_runtime::prop::vec(-1.0_f64..1.0, 144 + 12),
        ) {
            let mut a = DenseMatrix::zeros(n);
            for r in 0..n {
                let mut row_sum = 0.0;
                for c in 0..n {
                    let v = seed[r * 12 + c];
                    if r != c {
                        a.add(r, c, v);
                        row_sum += v.abs();
                    }
                }
                a.add(r, r, row_sum + 1.0);
            }
            let x: Vec<f64> = (0..n).map(|i| seed[144 + i]).collect();
            let mut b = vec![0.0; n];
            for r in 0..n {
                for c in 0..n {
                    b[r] += a.get(r, c) * x[c];
                }
            }
            a.solve_in_place(&mut b).unwrap();
            for i in 0..n {
                prop_assert!((b[i] - x[i]).abs() < 1e-8, "x[{}] = {} vs {}", i, b[i], x[i]);
            }
        }
    }
}

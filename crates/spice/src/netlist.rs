//! Netlist construction: nodes, elements, and the [`Circuit`] builder.

use std::collections::HashMap;
use std::sync::Arc;

use crate::analysis::SolverCache;
use crate::element::{Element, ElementKind, FetCurve};
use crate::error::SpiceError;
use crate::waveform::Waveform;

/// Identifier of a circuit node. [`NodeId::GROUND`] is the reference node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// The ground/reference node (named `"0"` or `"gnd"`).
    pub const GROUND: NodeId = NodeId(0);

    /// Index into the unknown vector, or `None` for ground.
    #[inline]
    pub(crate) fn unknown_index(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0 - 1)
        }
    }
}

/// A circuit under construction plus its node registry.
///
/// Node names are free-form strings; `"0"` and `"gnd"` (case-insensitive)
/// are the reference node. Element names must be unique.
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Default, Clone)]
pub struct Circuit {
    node_names: Vec<String>,
    node_index: HashMap<String, NodeId>,
    pub(crate) elements: Vec<Element>,
    element_index: HashMap<String, usize>,
    pub(crate) num_branches: usize,
    /// Cached solver workspace for this topology (cold in clones,
    /// invalidated whenever a node or element is added).
    pub(crate) solver_cache: SolverCache,
}

impl Circuit {
    /// Creates an empty circuit.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a node name, creating the node on first use.
    pub fn node(&mut self, name: &str) -> NodeId {
        let lower = name.to_ascii_lowercase();
        if lower == "0" || lower == "gnd" {
            return NodeId::GROUND;
        }
        if let Some(&id) = self.node_index.get(&lower) {
            return id;
        }
        let id = NodeId(self.node_names.len() + 1);
        self.node_names.push(lower.clone());
        self.node_index.insert(lower, id);
        self.solver_cache.invalidate();
        id
    }

    /// Looks up an existing node by name.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] if the node was never used.
    pub fn find_node(&self, name: &str) -> Result<NodeId, SpiceError> {
        let lower = name.to_ascii_lowercase();
        if lower == "0" || lower == "gnd" {
            return Ok(NodeId::GROUND);
        }
        self.node_index
            .get(&lower)
            .copied()
            .ok_or(SpiceError::UnknownNode {
                name: name.to_owned(),
            })
    }

    /// Number of node-voltage unknowns (excludes ground).
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Total unknowns: node voltages + source branch currents.
    pub(crate) fn num_unknowns(&self) -> usize {
        self.num_nodes() + self.num_branches
    }

    /// Name of a node-voltage unknown (for diagnostics).
    pub(crate) fn node_name(&self, id: NodeId) -> &str {
        if id.0 == 0 {
            "gnd"
        } else {
            &self.node_names[id.0 - 1]
        }
    }

    fn register(&mut self, name: &str, kind: ElementKind) -> Result<(), SpiceError> {
        // Element names are case-insensitive, as in classic SPICE.
        let name = name.to_ascii_lowercase();
        if self.element_index.contains_key(&name) {
            return Err(SpiceError::DuplicateElement { name });
        }
        self.element_index.insert(name.clone(), self.elements.len());
        self.elements.push(Element { name, kind });
        self.solver_cache.invalidate();
        Ok(())
    }

    /// Adds a resistor of `ohms` between `p` and `n`.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite resistance and duplicate names.
    pub fn resistor(&mut self, name: &str, p: &str, n: &str, ohms: f64) -> Result<(), SpiceError> {
        if !(ohms.is_finite() && ohms > 0.0) {
            return Err(SpiceError::InvalidValue {
                element: name.to_owned(),
                reason: format!("resistance must be positive and finite, got {ohms}"),
            });
        }
        let (p, n) = (self.node(p), self.node(n));
        self.register(
            name,
            ElementKind::Resistor {
                p,
                n,
                g: 1.0 / ohms,
            },
        )
    }

    /// Adds a capacitor of `farads` between `p` and `n`.
    ///
    /// # Errors
    ///
    /// Rejects negative or non-finite capacitance and duplicate names.
    pub fn capacitor(
        &mut self,
        name: &str,
        p: &str,
        n: &str,
        farads: f64,
    ) -> Result<(), SpiceError> {
        if !(farads.is_finite() && farads >= 0.0) {
            return Err(SpiceError::InvalidValue {
                element: name.to_owned(),
                reason: format!("capacitance must be non-negative and finite, got {farads}"),
            });
        }
        let (p, n) = (self.node(p), self.node(n));
        self.register(name, ElementKind::Capacitor { p, n, c: farads })
    }

    /// Adds an inductor of `henries` between `p` and `n`.
    ///
    /// # Errors
    ///
    /// Rejects non-positive or non-finite inductance and duplicate
    /// names.
    pub fn inductor(
        &mut self,
        name: &str,
        p: &str,
        n: &str,
        henries: f64,
    ) -> Result<(), SpiceError> {
        if !(henries.is_finite() && henries > 0.0) {
            return Err(SpiceError::InvalidValue {
                element: name.to_owned(),
                reason: format!("inductance must be positive and finite, got {henries}"),
            });
        }
        let (p, n) = (self.node(p), self.node(n));
        let branch = self.num_branches;
        self.num_branches += 1;
        self.register(
            name,
            ElementKind::Inductor {
                p,
                n,
                branch,
                l: henries,
            },
        )
    }

    /// Adds a DC voltage source of `volts` from `p` (+) to `n` (−).
    ///
    /// # Panics
    ///
    /// Panics if an element with the same name exists (use distinct
    /// names); sources are so central that the builder keeps this
    /// infallible for ergonomic examples.
    pub fn voltage_source(&mut self, name: &str, p: &str, n: &str, volts: f64) {
        self.voltage_source_wave(name, p, n, Waveform::Dc(volts))
            .expect("voltage source construction cannot fail for finite DC values");
    }

    /// Adds a voltage source with an arbitrary waveform.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and non-finite DC values.
    pub fn voltage_source_wave(
        &mut self,
        name: &str,
        p: &str,
        n: &str,
        wave: Waveform,
    ) -> Result<(), SpiceError> {
        if !wave.dc_value().is_finite() {
            return Err(SpiceError::InvalidValue {
                element: name.to_owned(),
                reason: "source value must be finite".to_owned(),
            });
        }
        let (p, n) = (self.node(p), self.node(n));
        let branch = self.num_branches;
        self.num_branches += 1;
        self.register(name, ElementKind::VoltageSource { p, n, branch, wave })
    }

    /// Adds a DC current source pushing `amps` from `n` into `p`
    /// (i.e. out of the `p` terminal into the circuit).
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and non-finite values.
    pub fn current_source(
        &mut self,
        name: &str,
        p: &str,
        n: &str,
        amps: f64,
    ) -> Result<(), SpiceError> {
        self.current_source_wave(name, p, n, Waveform::Dc(amps))
    }

    /// Adds a current source with an arbitrary waveform.
    ///
    /// # Errors
    ///
    /// Rejects duplicate names and non-finite DC values.
    pub fn current_source_wave(
        &mut self,
        name: &str,
        p: &str,
        n: &str,
        wave: Waveform,
    ) -> Result<(), SpiceError> {
        if !wave.dc_value().is_finite() {
            return Err(SpiceError::InvalidValue {
                element: name.to_owned(),
                reason: "source value must be finite".to_owned(),
            });
        }
        let (p, n) = (self.node(p), self.node(n));
        self.register(name, ElementKind::CurrentSource { p, n, wave })
    }

    /// Adds a Shockley diode `p → n`.
    ///
    /// # Errors
    ///
    /// Rejects non-positive saturation current or ideality factor.
    pub fn diode(
        &mut self,
        name: &str,
        p: &str,
        n: &str,
        i_s: f64,
        n_ideality: f64,
    ) -> Result<(), SpiceError> {
        if !(i_s.is_finite() && i_s > 0.0 && n_ideality.is_finite() && n_ideality > 0.0) {
            return Err(SpiceError::InvalidValue {
                element: name.to_owned(),
                reason: format!("diode needs i_s > 0 and n > 0, got i_s = {i_s}, n = {n_ideality}"),
            });
        }
        let (p, n) = (self.node(p), self.node(n));
        self.register(
            name,
            ElementKind::Diode {
                p,
                n,
                i_s,
                n_ideality,
            },
        )
    }

    /// Adds a voltage-controlled current source: `gm·(v(cp) − v(cn))`
    /// injected from `n` into `p`.
    ///
    /// # Errors
    ///
    /// Rejects non-finite transconductance.
    pub fn vccs(
        &mut self,
        name: &str,
        p: &str,
        n: &str,
        cp: &str,
        cn: &str,
        gm: f64,
    ) -> Result<(), SpiceError> {
        if !gm.is_finite() {
            return Err(SpiceError::InvalidValue {
                element: name.to_owned(),
                reason: format!("transconductance must be finite, got {gm}"),
            });
        }
        let (p, n) = (self.node(p), self.node(n));
        let (cp, cn) = (self.node(cp), self.node(cn));
        self.register(name, ElementKind::Vccs { p, n, cp, cn, gm })
    }

    /// Adds a three-terminal FET (drain, gate, source) driven by a
    /// compact model.
    ///
    /// # Errors
    ///
    /// Rejects duplicate element names.
    pub fn fet(
        &mut self,
        name: &str,
        drain: &str,
        gate: &str,
        source: &str,
        model: Arc<dyn FetCurve>,
    ) -> Result<(), SpiceError> {
        let (d, g, s) = (self.node(drain), self.node(gate), self.node(source));
        self.register(name, ElementKind::Fet { d, g, s, model })
    }

    /// Replaces the DC value of the named voltage or current source —
    /// the primitive DC sweeps are built on.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownSource`] if no source has that name.
    pub fn set_source_value(&mut self, name: &str, value: f64) -> Result<(), SpiceError> {
        let idx = *self
            .element_index
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| SpiceError::UnknownSource {
                name: name.to_owned(),
            })?;
        match &mut self.elements[idx].kind {
            ElementKind::VoltageSource { wave, .. } | ElementKind::CurrentSource { wave, .. } => {
                *wave = Waveform::Dc(value);
                Ok(())
            }
            _ => Err(SpiceError::UnknownSource {
                name: name.to_owned(),
            }),
        }
    }

    /// Number of elements in the circuit.
    pub fn num_elements(&self) -> usize {
        self.elements.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ground_aliases() {
        let mut c = Circuit::new();
        assert_eq!(c.node("0"), NodeId::GROUND);
        assert_eq!(c.node("gnd"), NodeId::GROUND);
        assert_eq!(c.node("GND"), NodeId::GROUND);
        assert_eq!(c.num_nodes(), 0);
    }

    #[test]
    fn node_interning_is_case_insensitive_and_stable() {
        let mut c = Circuit::new();
        let a = c.node("OUT");
        let b = c.node("out");
        assert_eq!(a, b);
        assert_eq!(c.num_nodes(), 1);
        assert_eq!(c.find_node("Out").unwrap(), a);
        assert!(c.find_node("nope").is_err());
    }

    #[test]
    fn duplicate_element_names_rejected() {
        let mut c = Circuit::new();
        c.resistor("r1", "a", "0", 1e3).unwrap();
        let err = c.resistor("r1", "b", "0", 2e3).unwrap_err();
        assert!(matches!(err, SpiceError::DuplicateElement { .. }));
    }

    #[test]
    fn invalid_values_rejected() {
        let mut c = Circuit::new();
        assert!(c.resistor("r", "a", "0", 0.0).is_err());
        assert!(c.resistor("r", "a", "0", -5.0).is_err());
        assert!(c.resistor("r", "a", "0", f64::NAN).is_err());
        assert!(c.capacitor("c", "a", "0", -1e-15).is_err());
        assert!(c.capacitor("c0", "a", "0", 0.0).is_ok(), "zero cap allowed");
        assert!(c.diode("d", "a", "0", 0.0, 1.0).is_err());
        assert!(c.diode("d", "a", "0", 1e-15, -1.0).is_err());
        assert!(c.vccs("g", "a", "0", "b", "0", f64::INFINITY).is_err());
    }

    #[test]
    fn branch_unknowns_counted() {
        let mut c = Circuit::new();
        c.voltage_source("v1", "a", "0", 1.0);
        c.voltage_source("v2", "b", "0", 2.0);
        c.resistor("r", "a", "b", 1e3).unwrap();
        assert_eq!(c.num_nodes(), 2);
        assert_eq!(c.num_unknowns(), 4);
        assert_eq!(c.num_elements(), 3);
    }

    #[test]
    fn set_source_value_only_touches_sources() {
        let mut c = Circuit::new();
        c.voltage_source("vdd", "a", "0", 1.0);
        c.resistor("r", "a", "0", 1e3).unwrap();
        c.set_source_value("vdd", 0.5).unwrap();
        assert!(c.set_source_value("r", 0.5).is_err());
        assert!(c.set_source_value("ghost", 0.5).is_err());
    }

    #[test]
    fn node_name_lookup() {
        let mut c = Circuit::new();
        let a = c.node("alpha");
        assert_eq!(c.node_name(a), "alpha");
        assert_eq!(c.node_name(NodeId::GROUND), "gnd");
    }
}

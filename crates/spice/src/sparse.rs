//! Sparse linear algebra for the MNA system: CSC storage with a fixed
//! sparsity pattern, a fill-reducing minimum-degree ordering, and a
//! left-looking (Gilbert–Peierls) LU factorization with partial
//! pivoting plus a pivot-reusing numeric *refactorization*.
//!
//! The factorization is generic over the [`Scalar`] of the system:
//! `f64` for the DC/transient Newton path and
//! [`Complex`](crate::complex::Complex) for the AC system
//! `(G + jωC)·x = b`, so one Gilbert–Peierls implementation serves
//! both. Pivot selection, singularity tests and the pivot-growth
//! staleness check all run on a cheap real magnitude proxy
//! ([`Scalar::mag`]: `|x|` for reals, `|re| + |im|` for phasors).
//!
//! Circuit matrices from ladder and inverter netlists are inherently
//! sparse and near-banded (a node couples only to its few neighbours),
//! so the dense O(n³) LU in [`linalg`](crate::linalg) is pure wasted
//! work past a few dozen unknowns. The design here follows the KLU /
//! CSparse line of circuit-simulation solvers:
//!
//! 1. **Symbolic, once per topology** — the stamp pattern of a circuit
//!    is fixed across Newton iterations *and* sweep points, so the CSC
//!    pattern, the per-row stamp slots, and the fill-reducing column
//!    ordering are computed a single time ([`SparseMatrix::from_entries`],
//!    [`SparseLu::new`]).
//! 2. **First numeric factorization** — Gilbert–Peierls with partial
//!    pivoting (deterministic tie-break on the smallest row index)
//!    discovers the L/U fill pattern and the pivot sequence
//!    ([`SparseLu::factor`]).
//! 3. **Refactorization** — subsequent Newton iterations reuse the
//!    cached L/U pattern and pivot order and only replay the numeric
//!    updates; a pivot-growth check falls back to a full pivoting
//!    factorization when the cached pivots go stale
//!    ([`SparseLu::refactor`]).
//!
//! Rows are equilibrated to unit max-norm on every (re)factorization,
//! mirroring the dense solver, so the singularity tolerance means the
//! same thing on both paths and the dense solver stays usable as a test
//! oracle.

use crate::error::SpiceError;
use crate::linalg::Stamp;

/// The scalar field a sparse system is solved over.
///
/// Implemented for `f64` (the DC/transient Newton path) and for
/// [`Complex`](crate::complex::Complex) (the AC system `G + jωC`). The
/// trait deliberately exposes only what Gilbert–Peierls needs: ring
/// arithmetic, a **real** magnitude proxy for pivot decisions, and
/// multiplication by a real equilibration scale.
pub trait Scalar:
    Copy
    + PartialEq
    + Default
    + std::fmt::Debug
    + std::ops::Add<Output = Self>
    + std::ops::Sub<Output = Self>
    + std::ops::Mul<Output = Self>
    + std::ops::Div<Output = Self>
    + std::ops::Neg<Output = Self>
    + std::ops::AddAssign
    + std::ops::SubAssign
    + Send
    + Sync
    + 'static
{
    /// The additive identity.
    const ZERO: Self;

    /// Cheap magnitude proxy used for pivot selection, the singularity
    /// tolerance, and the refactorization growth check: `|x|` for
    /// reals, the 1-norm `|re| + |im|` for complex values (within √2 of
    /// the modulus, and free of the `hypot` cost in the pivot loop).
    fn mag(self) -> f64;

    /// Multiplies by a real factor — row equilibration.
    #[must_use]
    fn scale(self, s: f64) -> Self;
}

impl Scalar for f64 {
    const ZERO: Self = 0.0;

    #[inline]
    fn mag(self) -> f64 {
        self.abs()
    }

    #[inline]
    fn scale(self, s: f64) -> Self {
        self * s
    }
}

/// Sentinel for "row not yet chosen as a pivot".
const EMPTY: u32 = u32::MAX;

/// Equilibrated-pivot magnitude below which the matrix is reported
/// singular — identical to the dense solver's tolerance.
const SINGULAR_TOL: f64 = 1e-13;

/// Refactorization stability threshold: if the cached pivot has decayed
/// below this fraction of the best available pivot in its column, the
/// cached pivot order is stale and a full pivoting factorization is
/// redone.
const REFACTOR_PIVOT_RATIO: f64 = 1e-3;

/// How [`SparseLu::refactor`] satisfied a request — the
/// replay-vs-full-factorization decision, surfaced so callers can count
/// staleness fallbacks in telemetry instead of guessing from timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Refactor {
    /// The cached L/U pattern and pivot order were numerically replayed.
    Replayed,
    /// The pivot-growth staleness check rejected the cached pivot order
    /// and a full pivoting factorization was redone.
    Repivoted,
}

/// A sparse square matrix in compressed-sparse-column (CSC) form with a
/// **fixed** sparsity pattern and O(row degree) stamping, generic over
/// the stored [`Scalar`] (defaults to `f64`; the AC path instantiates
/// it at [`Complex`](crate::complex::Complex)).
///
/// The pattern is declared up front from the set of `(row, col)`
/// positions a circuit can ever stamp; [`add`](Self::add) then
/// accumulates into pre-resolved slots, and [`clear`](Self::clear)
/// zeroes values while keeping the pattern and all allocations.
#[derive(Debug, Clone)]
pub struct SparseMatrix<T: Scalar = f64> {
    n: usize,
    /// CSC column pointers, `n + 1` entries.
    col_ptr: Vec<usize>,
    /// CSC row indices, one per stored entry, sorted within a column.
    row_ind: Vec<u32>,
    /// Stored values, parallel to `row_ind`.
    values: Vec<T>,
    /// Per-row `(col, value slot)` pairs, sorted by column: resolves a
    /// stamp at `(r, c)` with a short linear scan (MNA rows hold only a
    /// handful of entries).
    row_slots: Vec<Vec<(u32, u32)>>,
}

impl<T: Scalar> SparseMatrix<T> {
    /// Builds an `n × n` matrix whose pattern is the set of `entries`
    /// (duplicates welcome — they collapse to one slot).
    ///
    /// # Panics
    ///
    /// Panics if any entry index is out of bounds.
    pub fn from_entries(n: usize, entries: &[(usize, usize)]) -> Self {
        let mut uniq: Vec<(u32, u32)> = entries
            .iter()
            .map(|&(r, c)| {
                assert!(r < n && c < n, "entry ({r}, {c}) out of bounds for n = {n}");
                (c as u32, r as u32)
            })
            .collect();
        uniq.sort_unstable();
        uniq.dedup();
        let nnz = uniq.len();
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_ind = Vec::with_capacity(nnz);
        let mut row_slots: Vec<Vec<(u32, u32)>> = vec![Vec::new(); n];
        for (slot, &(c, r)) in uniq.iter().enumerate() {
            col_ptr[c as usize + 1] += 1;
            row_ind.push(r);
            row_slots[r as usize].push((c, slot as u32));
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        Self {
            n,
            col_ptr,
            row_ind,
            values: vec![T::ZERO; nnz],
            row_slots,
        }
    }

    /// Matrix dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.row_ind.len()
    }

    /// Resets all values to zero, keeping the pattern.
    pub fn clear(&mut self) {
        self.values.fill(T::ZERO);
    }

    /// Adds `value` at `(row, col)` — the MNA stamp operation.
    ///
    /// # Panics
    ///
    /// Panics if `(row, col)` is not part of the declared pattern.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: T) {
        let c = col as u32;
        for &(sc, slot) in &self.row_slots[row] {
            if sc == c {
                self.values[slot as usize] += value;
                return;
            }
        }
        panic!("stamp at ({row}, {col}) outside the declared sparsity pattern");
    }

    /// The stored values in pattern (CSC slot) order — pairs with
    /// [`set_values`](Self::set_values) so a caller can snapshot the
    /// frequency-independent part of a stamp and restore it per sweep
    /// point instead of restamping every element.
    #[inline]
    pub fn values(&self) -> &[T] {
        &self.values
    }

    /// Overwrites the stored values (pattern order), keeping the
    /// pattern — the restore half of [`values`](Self::values).
    ///
    /// # Panics
    ///
    /// Panics if `vals` does not have exactly [`nnz`](Self::nnz)
    /// entries.
    pub fn set_values(&mut self, vals: &[T]) {
        assert_eq!(
            vals.len(),
            self.values.len(),
            "value snapshot length must equal nnz"
        );
        self.values.copy_from_slice(vals);
    }

    /// Column `j` as parallel `(rows, values)` slices.
    #[inline]
    fn col(&self, j: usize) -> (&[u32], &[T]) {
        let span = self.col_ptr[j]..self.col_ptr[j + 1];
        (&self.row_ind[span.clone()], &self.values[span])
    }

    /// Per-row maximum magnitude (for equilibration); rows with no
    /// entries report 0.0.
    fn row_max_abs(&self, out: &mut [f64]) {
        out.fill(0.0);
        for (slot, &r) in self.row_ind.iter().enumerate() {
            let v = self.values[slot].mag();
            if v > out[r as usize] {
                out[r as usize] = v;
            }
        }
    }
}

impl Stamp for SparseMatrix<f64> {
    #[inline]
    fn add(&mut self, row: usize, col: usize, value: f64) {
        SparseMatrix::add(self, row, col, value);
    }
}

/// Deterministic minimum-degree ordering on the symmetrized pattern
/// `A + Aᵀ`.
///
/// This runs once per [`SparseLu::new`] but that is once per *analysis
/// workspace*, so it must stay cheap next to a handful of Newton
/// iterations: vertices are pulled from a lazily-repaired bucket queue
/// keyed by degree (stale entries are re-filed on pop), adjacency lives
/// in flat `Vec`s, and the elimination clique is formed with an
/// epoch-marked membership test instead of ordered sets. On the
/// near-banded MNA patterns this recovers a near-zero-fill order in
/// O(nnz) time.
fn min_degree_order(n: usize, entries: &[(usize, usize)]) -> Vec<u32> {
    // Symmetrized adjacency, deduplicated via an epoch mark.
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut mark = vec![0u32; n];
    let mut epoch = 0u32;
    {
        // Bucket entries by row first so dedup marking works per-vertex.
        let mut pairs: Vec<(u32, u32)> = Vec::with_capacity(2 * entries.len());
        for &(r, c) in entries {
            if r != c {
                pairs.push((r as u32, c as u32));
                pairs.push((c as u32, r as u32));
            }
        }
        pairs.sort_unstable();
        for &(v, w) in &pairs {
            let last_is_dup = adj[v as usize].last() == Some(&w);
            if !last_is_dup {
                adj[v as usize].push(w);
            }
        }
    }

    let mut degree: Vec<u32> = adj.iter().map(|a| a.len() as u32).collect();
    let mut eliminated = vec![false; n];
    // Bucket queue over degrees; entries go stale when a degree changes
    // and are re-filed when popped.
    let max_deg = degree.iter().copied().max().unwrap_or(0) as usize;
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); max_deg + 1];
    // Push in reverse so equal-degree vertices pop lowest-index first.
    for v in (0..n).rev() {
        buckets[degree[v] as usize].push(v as u32);
    }
    let mut cursor = 0usize;

    let mut order = Vec::with_capacity(n);
    let mut neigh: Vec<u32> = Vec::new();
    while order.len() < n {
        // Pop the lowest-degree live vertex, re-filing stale entries.
        while cursor < buckets.len() && buckets[cursor].is_empty() {
            cursor += 1;
        }
        let v = buckets[cursor].pop().expect("a live vertex remains") as usize;
        if eliminated[v] {
            continue;
        }
        if degree[v] as usize != cursor {
            // Degree changed since filing; re-file at the true degree
            // (grow the bucket array if a clique pushed it past max).
            let d = degree[v] as usize;
            if d >= buckets.len() {
                buckets.resize(d + 1, Vec::new());
            }
            buckets[d].push(v as u32);
            cursor = cursor.min(d);
            continue;
        }
        eliminated[v] = true;
        order.push(v as u32);

        // Live neighbours of v.
        neigh.clear();
        neigh.extend(adj[v].iter().copied().filter(|&a| !eliminated[a as usize]));
        // Drop v from each neighbour's list, then connect the clique.
        for &a in &neigh {
            let list = &mut adj[a as usize];
            if let Some(pos) = list.iter().position(|&w| w == v as u32) {
                list.swap_remove(pos);
            }
        }
        for &a in &neigh {
            epoch += 1;
            mark[a as usize] = epoch;
            for &w in &adj[a as usize] {
                mark[w as usize] = epoch;
            }
            for &b in &neigh {
                if mark[b as usize] != epoch {
                    adj[a as usize].push(b);
                    adj[b as usize].push(a);
                }
            }
            // Recompute a's live degree and re-file it.
            let d = adj[a as usize]
                .iter()
                .filter(|&&w| !eliminated[w as usize])
                .count() as u32;
            if d != degree[a as usize] {
                degree[a as usize] = d;
                let d = d as usize;
                if d >= buckets.len() {
                    buckets.resize(d + 1, Vec::new());
                }
                buckets[d].push(a);
                cursor = cursor.min(d);
            }
        }
    }
    order
}

/// Sparse LU factorization of a [`SparseMatrix`] with a symbolic/numeric
/// split: the column ordering is fixed at construction, the first
/// [`factor`](Self::factor) call discovers the fill pattern and pivot
/// sequence, and [`refactor`](Self::refactor) replays the numeric work
/// on fresh values.
#[derive(Debug, Clone)]
pub struct SparseLu<T: Scalar = f64> {
    n: usize,
    /// Fill-reducing column elimination order: step `k` eliminates
    /// original column `q[k]`.
    q: Vec<u32>,
    // L in CSC over elimination steps, unit diagonal implicit, row
    // indices are *original* rows, sorted ascending.
    lp: Vec<usize>,
    li: Vec<u32>,
    lx: Vec<T>,
    // U in CSC over elimination steps, diagonal stored separately, row
    // indices are *pivot-order* indices, sorted ascending.
    up: Vec<usize>,
    ui: Vec<u32>,
    ux: Vec<T>,
    udiag: Vec<T>,
    /// Original row → pivot order.
    pinv: Vec<u32>,
    /// Pivot order → original row.
    prow: Vec<u32>,
    /// Row equilibration scales of the last (re)factorization.
    rs: Vec<f64>,
    /// Whether `factor` has populated the L/U pattern.
    factored: bool,
    // Workspaces (kept across calls to avoid reallocation).
    xw: Vec<T>,
    visited: Vec<bool>,
    topo: Vec<u32>,
    dfs_stack: Vec<(u32, usize)>,
    ucol_scratch: Vec<(u32, T)>,
    lcol_scratch: Vec<(u32, T)>,
    y_scratch: Vec<T>,
}

impl<T: Scalar> SparseLu<T> {
    /// Prepares a solver for `a`'s pattern: computes the fill-reducing
    /// column ordering (the symbolic step shared by every subsequent
    /// factorization) and sizes the workspaces.
    pub fn new(a: &SparseMatrix<T>) -> Self {
        let n = a.dim();
        let mut entries = Vec::with_capacity(a.nnz());
        for j in 0..n {
            let (rows, _) = a.col(j);
            for &r in rows {
                entries.push((r as usize, j));
            }
        }
        let q = min_degree_order(n, &entries);
        Self {
            n,
            q,
            lp: Vec::new(),
            li: Vec::new(),
            lx: Vec::new(),
            up: Vec::new(),
            ui: Vec::new(),
            ux: Vec::new(),
            udiag: vec![T::ZERO; n],
            pinv: vec![EMPTY; n],
            prow: vec![EMPTY; n],
            rs: vec![1.0; n],
            factored: false,
            xw: vec![T::ZERO; n],
            visited: vec![false; n],
            topo: Vec::with_capacity(n),
            dfs_stack: Vec::with_capacity(n),
            ucol_scratch: Vec::new(),
            lcol_scratch: Vec::new(),
            y_scratch: vec![T::ZERO; n],
        }
    }

    /// Whether a numeric factorization (and its cached pivot order) is
    /// available for [`refactor`](Self::refactor) / [`solve`](Self::solve).
    pub fn is_factored(&self) -> bool {
        self.factored
    }

    /// Recomputes the row-equilibration scales from `a`.
    fn equilibrate(&mut self, a: &SparseMatrix<T>) -> Result<(), SpiceError> {
        a.row_max_abs(&mut self.rs);
        for (r, s) in self.rs.iter_mut().enumerate() {
            if *s == 0.0 {
                return Err(SpiceError::SingularMatrix { row: r, pivot: 0.0 });
            }
            *s = 1.0 / *s;
        }
        Ok(())
    }

    /// Full numeric factorization with partial pivoting: discovers the
    /// L/U fill pattern and pivot sequence for `a`'s current values.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when a column offers no
    /// pivot above the equilibrated tolerance; the reported `row` is the
    /// original unknown index of the failing column.
    ///
    /// # Panics
    ///
    /// Panics if `a`'s dimension differs from the one this solver was
    /// built for.
    pub fn factor(&mut self, a: &SparseMatrix<T>) -> Result<(), SpiceError> {
        assert_eq!(a.dim(), self.n, "matrix dimension changed");
        // The scatter workspace must be all-zero; an earlier replay (or
        // aborted factorization) may have left column values behind, so
        // re-zero it wholesale — O(n), invisible next to the numeric
        // work.
        self.xw.fill(T::ZERO);
        let n = self.n;
        self.equilibrate(a)?;
        self.factored = false;
        self.lp.clear();
        self.li.clear();
        self.lx.clear();
        self.up.clear();
        self.ui.clear();
        self.ux.clear();
        self.lp.push(0);
        self.up.push(0);
        self.pinv.fill(EMPTY);
        self.prow.fill(EMPTY);

        for k in 0..n {
            let j = self.q[k] as usize;
            // Symbolic: rows reachable from A(:, j) through the columns
            // of L factored so far, in topological order.
            self.reach(a, j);
            // Numeric: x = L \ (Dr · A(:, j)) on the reach set.
            let (arows, avals) = a.col(j);
            for (&r, &v) in arows.iter().zip(avals) {
                self.xw[r as usize] = v.scale(self.rs[r as usize]);
            }
            for t in (0..self.topo.len()).rev() {
                let i = self.topo[t] as usize;
                let pk = self.pinv[i];
                if pk == EMPTY {
                    continue;
                }
                let xi = self.xw[i];
                if xi != T::ZERO {
                    let span = self.lp[pk as usize]..self.lp[pk as usize + 1];
                    for s in span {
                        self.xw[self.li[s] as usize] -= self.lx[s] * xi;
                    }
                }
            }
            // Partial pivot over the not-yet-pivoted reach rows,
            // deterministic tie-break on the smallest row index.
            let mut pivot_row = EMPTY;
            let mut pivot_val = 0.0_f64;
            for &i in &self.topo {
                let i = i as usize;
                if self.pinv[i] == EMPTY {
                    let v = self.xw[i].mag();
                    if v > pivot_val || (v == pivot_val && (i as u32) < pivot_row) {
                        pivot_val = v;
                        pivot_row = i as u32;
                    }
                }
            }
            if pivot_row == EMPTY || pivot_val < SINGULAR_TOL {
                self.cleanup_column();
                return Err(SpiceError::SingularMatrix {
                    row: j,
                    pivot: pivot_val,
                });
            }
            let piv = self.xw[pivot_row as usize];
            self.pinv[pivot_row as usize] = k as u32;
            self.prow[k] = pivot_row;
            self.udiag[k] = piv;
            // Scatter the column into U (pivoted rows) and L (the rest),
            // each sorted ascending for deterministic, cache-friendly
            // replay in `refactor`.
            let mut ucol = std::mem::take(&mut self.ucol_scratch);
            let mut lcol = std::mem::take(&mut self.lcol_scratch);
            ucol.clear();
            lcol.clear();
            for &i in &self.topo {
                let i = i as usize;
                let pk = self.pinv[i];
                if i as u32 == pivot_row {
                    continue;
                }
                if pk != EMPTY && (pk as usize) < k {
                    ucol.push((pk, self.xw[i]));
                } else if pk == EMPTY {
                    lcol.push((i as u32, self.xw[i] / piv));
                }
            }
            ucol.sort_unstable_by_key(|&(r, _)| r);
            lcol.sort_unstable_by_key(|&(r, _)| r);
            for &(r, v) in &ucol {
                self.ui.push(r);
                self.ux.push(v);
            }
            for &(r, v) in &lcol {
                self.li.push(r);
                self.lx.push(v);
            }
            self.ucol_scratch = ucol;
            self.lcol_scratch = lcol;
            self.up.push(self.ui.len());
            self.lp.push(self.li.len());
            self.cleanup_column();
        }
        self.factored = true;
        Ok(())
    }

    /// Zeroes the workspace entries touched by the current column.
    fn cleanup_column(&mut self) {
        for t in 0..self.topo.len() {
            let i = self.topo[t] as usize;
            self.xw[i] = T::ZERO;
            self.visited[i] = false;
        }
        self.topo.clear();
    }

    /// Depth-first search from the rows of `A(:, j)` through factored L
    /// columns; leaves `self.topo` holding the reach in reverse
    /// topological order (process back-to-front).
    fn reach(&mut self, a: &SparseMatrix<T>, j: usize) {
        let (arows, _) = a.col(j);
        for &r in arows {
            if self.visited[r as usize] {
                continue;
            }
            // Iterative DFS with an explicit (node, next child) stack.
            self.dfs_stack.push((r, 0));
            self.visited[r as usize] = true;
            while let Some(&mut (node, ref mut child)) = self.dfs_stack.last_mut() {
                let pk = self.pinv[node as usize];
                let span = if pk == EMPTY {
                    0..0
                } else {
                    self.lp[pk as usize]..self.lp[pk as usize + 1]
                };
                let mut descended = false;
                while span.start + *child < span.end {
                    let next = self.li[span.start + *child];
                    *child += 1;
                    if !self.visited[next as usize] {
                        self.visited[next as usize] = true;
                        self.dfs_stack.push((next, 0));
                        descended = true;
                        break;
                    }
                }
                if !descended {
                    self.dfs_stack.pop();
                    self.topo.push(node);
                }
            }
        }
    }

    /// Numeric refactorization on fresh values in `a`, reusing the L/U
    /// pattern and pivot sequence cached by the last
    /// [`factor`](Self::factor). Falls back to a full pivoting
    /// factorization when a cached pivot has decayed relative to its
    /// column, so stability matches the full path; the returned
    /// [`Refactor`] says which of the two happened.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] as [`factor`](Self::factor)
    /// does.
    pub fn refactor(&mut self, a: &SparseMatrix<T>) -> Result<Refactor, SpiceError> {
        if !self.factored {
            self.factor(a)?;
            return Ok(Refactor::Repivoted);
        }
        assert_eq!(a.dim(), self.n, "matrix dimension changed");
        self.equilibrate(a)?;
        if self.replay(a) {
            // A cached pivot went stale (or collapsed outright): redo a
            // full pivoting factorization, which re-zeroes the scatter
            // workspace the aborted replay dirtied and re-derives
            // singularity reports.
            self.factor(a)?;
            return Ok(Refactor::Repivoted);
        }
        Ok(Refactor::Replayed)
    }

    /// Replays the cached numeric updates on `a`'s fresh values.
    /// Returns `true` when a cached pivot fails the growth (or
    /// singularity) check, i.e. a full re-pivoting pass is needed.
    fn replay(&mut self, a: &SparseMatrix<T>) -> bool {
        let n = self.n;
        let SparseLu {
            q,
            lp,
            li,
            lx,
            up,
            ui,
            ux,
            udiag,
            prow,
            rs,
            xw,
            ..
        } = self;
        for k in 0..n {
            let j = q[k] as usize;
            // Scatter Dr·A(:, j) over the cached column pattern.
            let lspan = lp[k]..lp[k + 1];
            let uspan = up[k]..up[k + 1];
            for &i in &li[lspan.clone()] {
                xw[i as usize] = T::ZERO;
            }
            for &t in &ui[uspan.clone()] {
                xw[prow[t as usize] as usize] = T::ZERO;
            }
            xw[prow[k] as usize] = T::ZERO;
            let (arows, avals) = a.col(j);
            for (&r, &v) in arows.iter().zip(avals) {
                xw[r as usize] = v.scale(rs[r as usize]);
            }
            // Apply earlier columns in ascending pivot order (a valid
            // elimination order because U is upper triangular in pivot
            // coordinates).
            for (&t, u_val) in ui[uspan.clone()].iter().zip(&mut ux[uspan.clone()]) {
                let t = t as usize;
                let xi = xw[prow[t] as usize];
                *u_val = xi;
                if xi != T::ZERO {
                    let span = lp[t]..lp[t + 1];
                    for (&i, &l) in li[span.clone()].iter().zip(&lx[span]) {
                        xw[i as usize] -= l * xi;
                    }
                }
            }
            let piv = xw[prow[k] as usize];
            // Pivot-growth check against the best alternative in this
            // column; stale pivots trigger a full re-pivot.
            let mut col_max = piv.mag();
            for &i in &li[lspan.clone()] {
                col_max = col_max.max(xw[i as usize].mag());
            }
            if piv.mag() < SINGULAR_TOL || piv.mag() < REFACTOR_PIVOT_RATIO * col_max {
                return true;
            }
            udiag[k] = piv;
            for (&i, l) in li[lspan.clone()].iter().zip(&mut lx[lspan]) {
                *l = xw[i as usize] / piv;
            }
        }
        false
    }

    /// Solves `A·x = b` using the current factors, overwriting `b` with
    /// the solution.
    ///
    /// # Panics
    ///
    /// Panics if no factorization is available or `b` has the wrong
    /// length.
    pub fn solve(&mut self, b: &mut [T]) {
        assert!(self.factored, "solve called before factor");
        assert_eq!(b.len(), self.n, "rhs length must equal matrix dimension");
        let n = self.n;
        // y in pivot order, starting from the equilibrated RHS.
        let mut y = std::mem::take(&mut self.y_scratch);
        for (yk, &pr) in y.iter_mut().zip(self.prow.iter()).take(n) {
            let r = pr as usize;
            *yk = b[r].scale(self.rs[r]);
        }
        // Forward: L is unit lower triangular in pivot order; column k
        // only touches rows pivoted later.
        for k in 0..n {
            let yk = y[k];
            if yk != T::ZERO {
                let span = self.lp[k]..self.lp[k + 1];
                for (&i, &l) in self.li[span.clone()].iter().zip(&self.lx[span]) {
                    y[self.pinv[i as usize] as usize] -= l * yk;
                }
            }
        }
        // Backward: U in pivot coordinates, diagonal stored separately.
        for k in (0..n).rev() {
            let zk = y[k] / self.udiag[k];
            y[k] = zk;
            if zk != T::ZERO {
                let span = self.up[k]..self.up[k + 1];
                for (&i, &u) in self.ui[span.clone()].iter().zip(&self.ux[span]) {
                    y[i as usize] -= u * zk;
                }
            }
        }
        // Undo the column permutation.
        for k in 0..n {
            b[self.q[k] as usize] = y[k];
        }
        self.y_scratch = y;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg::DenseMatrix;

    fn dense_from(n: usize, entries: &[(usize, usize, f64)]) -> DenseMatrix {
        let mut a = DenseMatrix::zeros(n);
        for &(r, c, v) in entries {
            a.add(r, c, v);
        }
        a
    }

    fn sparse_from(n: usize, entries: &[(usize, usize, f64)]) -> SparseMatrix {
        let pat: Vec<(usize, usize)> = entries.iter().map(|&(r, c, _)| (r, c)).collect();
        let mut a = SparseMatrix::from_entries(n, &pat);
        for &(r, c, v) in entries {
            a.add(r, c, v);
        }
        a
    }

    #[test]
    fn solves_identity() {
        let entries = [(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)];
        let a = sparse_from(3, &entries);
        let mut lu = SparseLu::new(&a);
        lu.factor(&a).unwrap();
        let mut b = vec![1.0, 2.0, 3.0];
        lu.solve(&mut b);
        assert_eq!(b, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn matches_dense_on_small_system() {
        let entries = [
            (0, 0, 2.0),
            (0, 1, 1.0),
            (1, 0, 1.0),
            (1, 1, 3.0),
            (1, 2, -1.0),
            (2, 1, -1.0),
            (2, 2, 4.0),
        ];
        let a = sparse_from(3, &entries);
        let mut lu = SparseLu::new(&a);
        lu.factor(&a).unwrap();
        let mut xs = vec![1.0, -2.0, 0.5];
        lu.solve(&mut xs);
        let mut d = dense_from(3, &entries);
        let mut xd = vec![1.0, -2.0, 0.5];
        d.solve_in_place(&mut xd).unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-12, "{xs:?} vs {xd:?}");
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        // [0 1; 1 0] — fails without row pivoting.
        let entries = [(0, 1, 1.0), (1, 0, 1.0)];
        let a = sparse_from(2, &entries);
        let mut lu = SparseLu::new(&a);
        lu.factor(&a).unwrap();
        let mut b = vec![2.0, 3.0];
        lu.solve(&mut b);
        assert!((b[0] - 3.0).abs() < 1e-12);
        assert!((b[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mna_shaped_source_row_is_handled() {
        // Voltage source + two resistors: the branch row/column has a
        // structurally zero diagonal, the classic MNA hazard.
        // Unknowns: v0, v1, i_src.  v0 = 1 V via the source row.
        let g = 1e-3;
        let entries = [
            (0, 0, g),
            (0, 1, -g),
            (1, 0, -g),
            (1, 1, 2.0 * g),
            (0, 2, 1.0),
            (2, 0, 1.0),
        ];
        let a = sparse_from(3, &entries);
        let mut lu = SparseLu::new(&a);
        lu.factor(&a).unwrap();
        let mut b = vec![0.0, 0.0, 1.0];
        lu.solve(&mut b);
        assert!((b[0] - 1.0).abs() < 1e-12, "v0 pinned by source: {b:?}");
        assert!((b[1] - 0.5).abs() < 1e-12, "divider midpoint: {b:?}");
    }

    #[test]
    fn refactor_tracks_new_values() {
        let pat = [(0, 0), (0, 1), (1, 0), (1, 1), (1, 2), (2, 1), (2, 2)];
        let mut a = SparseMatrix::from_entries(3, &pat);
        let fill = |a: &mut SparseMatrix, scale: f64| {
            a.clear();
            a.add(0, 0, 4.0 * scale);
            a.add(0, 1, 1.0);
            a.add(1, 0, 1.0);
            a.add(1, 1, 5.0 * scale);
            a.add(1, 2, -2.0);
            a.add(2, 1, -2.0);
            a.add(2, 2, 6.0 * scale);
        };
        fill(&mut a, 1.0);
        let mut lu = SparseLu::new(&a);
        lu.factor(&a).unwrap();
        for scale in [2.0, 0.5, 10.0] {
            fill(&mut a, scale);
            assert_eq!(lu.refactor(&a).unwrap(), Refactor::Replayed);
            let mut x = vec![1.0, 2.0, 3.0];
            lu.solve(&mut x);
            let mut d = DenseMatrix::zeros(3);
            d.add(0, 0, 4.0 * scale);
            d.add(0, 1, 1.0);
            d.add(1, 0, 1.0);
            d.add(1, 1, 5.0 * scale);
            d.add(1, 2, -2.0);
            d.add(2, 1, -2.0);
            d.add(2, 2, 6.0 * scale);
            let mut xd = vec![1.0, 2.0, 3.0];
            d.solve_in_place(&mut xd).unwrap();
            for (s, dd) in x.iter().zip(&xd) {
                assert!((s - dd).abs() < 1e-12, "scale {scale}: {x:?} vs {xd:?}");
            }
        }
    }

    #[test]
    fn refactor_survives_pivot_order_going_stale() {
        // First factorization pivots on the large diagonal; the new
        // values invert the dominance so the cached pivots are stale and
        // the growth check must re-pivot instead of losing accuracy.
        let pat = [(0, 0), (0, 1), (1, 0), (1, 1)];
        let mut a = SparseMatrix::from_entries(2, &pat);
        a.add(0, 0, 1e6);
        a.add(0, 1, 1.0);
        a.add(1, 0, 1.0);
        a.add(1, 1, 1e6);
        let mut lu = SparseLu::new(&a);
        lu.factor(&a).unwrap();
        a.clear();
        a.add(0, 0, 1e-9);
        a.add(0, 1, 1.0);
        a.add(1, 0, 1.0);
        a.add(1, 1, 1e-9);
        assert_eq!(lu.refactor(&a).unwrap(), Refactor::Repivoted);
        // x solves [1e-9 1; 1 1e-9]·x = [1; 2] → x ≈ [2, 1].
        let mut b = vec![1.0, 2.0];
        lu.solve(&mut b);
        assert!((b[0] - 2.0).abs() < 1e-6, "{b:?}");
        assert!((b[1] - 1.0).abs() < 1e-6, "{b:?}");
    }

    #[test]
    fn detects_singularity_with_pivot_report() {
        let entries = [(0, 0, 1.0), (0, 1, 2.0), (1, 0, 2.0), (1, 1, 4.0)];
        let a = sparse_from(2, &entries);
        let mut lu = SparseLu::new(&a);
        let err = lu.factor(&a).unwrap_err();
        assert!(
            matches!(err, SpiceError::SingularMatrix { pivot, .. } if pivot < 1e-13),
            "{err:?}"
        );
    }

    #[test]
    fn empty_row_is_singular() {
        let entries = [(0, 0, 1.0)];
        let a = sparse_from(2, &entries);
        let mut lu = SparseLu::new(&a);
        assert_eq!(
            lu.factor(&a).unwrap_err(),
            SpiceError::SingularMatrix { row: 1, pivot: 0.0 }
        );
    }

    #[test]
    fn stamps_accumulate_and_clear() {
        let mut a = SparseMatrix::from_entries(2, &[(0, 0), (1, 1), (0, 0)]);
        assert_eq!(a.nnz(), 2, "duplicate pattern entries collapse");
        a.add(0, 0, 1.0);
        a.add(0, 0, 2.5);
        let (_, vals) = a.col(0);
        assert_eq!(vals[0], 3.5);
        a.clear();
        let (_, vals) = a.col(0);
        assert_eq!(vals[0], 0.0);
    }

    #[test]
    #[should_panic(expected = "outside the declared sparsity pattern")]
    fn stamping_off_pattern_panics() {
        let mut a = SparseMatrix::from_entries(2, &[(0, 0)]);
        a.add(1, 0, 1.0);
    }

    #[test]
    fn min_degree_orders_a_star_center_last() {
        // Star graph: the hub has degree 4, the leaves 1 — min-degree
        // must not pick the hub while real leaves remain (eliminating
        // it first would form a clique on all leaves).
        let entries: Vec<(usize, usize)> = (1..5).flat_map(|k| [(0, k), (k, 0)]).collect();
        let order = min_degree_order(5, &entries);
        assert!(
            !order[..3].contains(&0),
            "hub eliminated too early: {order:?}"
        );
    }

    #[test]
    fn tridiagonal_ladder_has_no_fill() {
        // A 1D chain in natural order: min-degree keeps it banded and
        // GP produces exactly two entries per L/U column.
        let n = 50;
        let mut entries = Vec::new();
        for i in 0..n {
            entries.push((i, i, 4.0));
            if i + 1 < n {
                entries.push((i, i + 1, -1.0));
                entries.push((i + 1, i, -1.0));
            }
        }
        let a = sparse_from(n, &entries);
        let mut lu = SparseLu::new(&a);
        lu.factor(&a).unwrap();
        assert!(
            lu.lx.len() <= n && lu.ux.len() <= n,
            "fill-free: |L| = {}, |U| = {}",
            lu.lx.len(),
            lu.ux.len()
        );
        // And it solves correctly: plant x = 1..n.
        let x_true: Vec<f64> = (0..n).map(|i| (i + 1) as f64).collect();
        let mut b = vec![0.0; n];
        for &(r, c, v) in &entries {
            b[r] += v * x_true[c];
        }
        lu.solve(&mut b);
        for (got, want) in b.iter().zip(&x_true) {
            assert!((got - want).abs() < 1e-10);
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use crate::linalg::DenseMatrix;
    use carbon_runtime::prop::prelude::*;

    proptest! {
        /// Sparse and dense solvers agree to 1e-12 on random diagonally
        /// dominant systems with random sparsity.
        #[test]
        fn sparse_agrees_with_dense(
            n in 2usize..16,
            seed in carbon_runtime::prop::vec(-1.0_f64..1.0, 16 * 16 + 16),
            keep in carbon_runtime::prop::vec(0.0_f64..1.0, 16 * 16),
        ) {
            let mut entries: Vec<(usize, usize, f64)> = Vec::new();
            let mut row_sum = vec![0.0; n];
            for (r, rs) in row_sum.iter_mut().enumerate() {
                for c in 0..n {
                    if r != c && keep[r * 16 + c] < 0.4 {
                        let v = seed[r * 16 + c];
                        entries.push((r, c, v));
                        *rs += v.abs();
                    }
                }
            }
            for (r, &rs) in row_sum.iter().enumerate() {
                entries.push((r, r, rs + 1.0));
            }
            let mut dense = DenseMatrix::zeros(n);
            let pat: Vec<(usize, usize)> = entries.iter().map(|&(r, c, _)| (r, c)).collect();
            let mut sparse = SparseMatrix::from_entries(n, &pat);
            for &(r, c, v) in &entries {
                dense.add(r, c, v);
                sparse.add(r, c, v);
            }
            let b: Vec<f64> = (0..n).map(|i| seed[16 * 16 + i]).collect();
            let mut xd = b.clone();
            dense.solve_in_place(&mut xd).unwrap();
            let mut lu = SparseLu::new(&sparse);
            lu.factor(&sparse).unwrap();
            let mut xs = b;
            lu.solve(&mut xs);
            for i in 0..n {
                prop_assert!(
                    (xs[i] - xd[i]).abs() < 1e-12,
                    "x[{}]: sparse {} vs dense {}", i, xs[i], xd[i]
                );
            }
        }

        /// Refactorization after a value change matches a from-scratch
        /// dense solve to 1e-12.
        #[test]
        fn refactor_agrees_with_dense(
            n in 2usize..12,
            seed in carbon_runtime::prop::vec(-1.0_f64..1.0, 3 * 12),
            scale in 0.1_f64..10.0,
        ) {
            // Tridiagonal, diagonally dominant pattern; off-diagonals
            // stay fixed while the diagonal is rescaled between
            // factor() and refactor().
            let mut pat: Vec<(usize, usize)> = Vec::new();
            for r in 0..n {
                pat.push((r, r));
                if r + 1 < n {
                    pat.push((r, r + 1));
                    pat.push((r + 1, r));
                }
            }
            let value = |r: usize, c: usize, s: f64| -> f64 {
                if r == c { 3.0 * s } else { seed[(r + 2 * c) % seed.len()] }
            };
            let mut sparse = SparseMatrix::from_entries(n, &pat);
            for &(r, c) in &pat {
                sparse.add(r, c, value(r, c, 1.0));
            }
            let mut lu = SparseLu::new(&sparse);
            lu.factor(&sparse).unwrap();
            // Change values, refactor, compare against dense.
            sparse.clear();
            let mut dense = DenseMatrix::zeros(n);
            for &(r, c) in &pat {
                sparse.add(r, c, value(r, c, scale));
                dense.add(r, c, value(r, c, scale));
            }
            lu.refactor(&sparse).unwrap();
            let b: Vec<f64> = (0..n).map(|i| 1.0 + i as f64).collect();
            let mut xd = b.clone();
            dense.solve_in_place(&mut xd).unwrap();
            let mut xs = b;
            lu.solve(&mut xs);
            for i in 0..n {
                prop_assert!(
                    (xs[i] - xd[i]).abs() < 1e-12,
                    "x[{}]: sparse {} vs dense {}", i, xs[i], xd[i]
                );
            }
        }
    }
}

//! Error type shared by netlist construction and the analyses.

/// Errors reported by the circuit simulator.
#[derive(Debug, Clone, PartialEq)]
pub enum SpiceError {
    /// An element value was rejected (zero resistance, negative
    /// capacitance, NaN source value, ...).
    InvalidValue {
        /// Element name as given to the netlist builder.
        element: String,
        /// Human-readable reason.
        reason: String,
    },
    /// Two elements were registered under the same name.
    DuplicateElement {
        /// The colliding name.
        name: String,
    },
    /// A requested node does not exist in the circuit.
    UnknownNode {
        /// The unknown node name.
        name: String,
    },
    /// A requested element (e.g. the source of a DC sweep) does not exist
    /// or is not of the expected kind.
    UnknownSource {
        /// The unknown source name.
        name: String,
    },
    /// The requested AC stimulus does not name an independent source —
    /// reported with the valid choices so a typo is a one-glance fix.
    UnknownAcSource {
        /// The requested stimulus name.
        name: String,
        /// Names of the circuit's independent voltage/current sources,
        /// in netlist order — the valid stimulus choices.
        available: Vec<String>,
    },
    /// The MNA matrix is singular: the circuit is under-constrained
    /// (floating node, voltage-source loop, ...).
    SingularMatrix {
        /// Row index at which elimination failed — usually maps to the
        /// offending node.
        row: usize,
        /// Magnitude of the offending pivot on the row-equilibrated
        /// matrix (0.0 for a structurally empty row).
        pivot: f64,
    },
    /// Newton iteration failed to converge even with gmin and source
    /// stepping.
    NonConvergence {
        /// Which analysis was running.
        analysis: &'static str,
        /// Iterations performed in the last attempt.
        iterations: usize,
        /// Largest solution update at abort, V.
        residual: f64,
    },
    /// A DC sweep's step-halving continuation ran out of halvings
    /// without converging — reported with the failing sweep value and
    /// the last Newton residual so the offending bias region is
    /// identifiable without re-running under a debugger.
    ContinuationExhausted {
        /// Source value (V or A) of the bias point that refused to
        /// converge, after all step halvings.
        sweep_value: f64,
        /// Iterations performed in the last Newton attempt.
        iterations: usize,
        /// Largest node-voltage update when that attempt aborted, V.
        residual: f64,
    },
    /// A transient time point refused to converge even after the
    /// damped retry — reported with the failing time (a dedicated
    /// field, not smuggled through the residual) and the last Newton
    /// attempt's true iteration count and residual, matching the
    /// `dc_sweep` continuation-exhaustion style.
    TransientNonConvergence {
        /// Simulation time (s) of the point that refused to converge.
        time: f64,
        /// Iterations performed in the last Newton attempt.
        iterations: usize,
        /// Largest node-voltage update when that attempt aborted, V.
        residual: f64,
    },
    /// Adaptive transient step control halved the step below its floor
    /// without the local-truncation estimate ever accepting a step —
    /// the time-domain analogue of continuation exhaustion.
    TimestepCollapsed {
        /// Simulation time (s) the integrator was stuck at.
        time: f64,
        /// The rejected step size, s.
        step: f64,
        /// The configured minimum step, s.
        min_step: f64,
    },
    /// A sweep or transient was asked for with a non-positive step, or
    /// bounds in the wrong order.
    InvalidSweep {
        /// Human-readable reason.
        reason: String,
    },
    /// The analysis observed a cooperative-cancellation request (an
    /// explicit cancel or an expired deadline on the installed
    /// [`carbon_runtime::cancel::CancelToken`]) at one of its
    /// checkpoints and stopped early. The partial state is discarded.
    Cancelled {
        /// Which analysis was running when the checkpoint fired.
        analysis: &'static str,
    },
}

impl std::fmt::Display for SpiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::InvalidValue { element, reason } => {
                write!(f, "invalid value for element '{element}': {reason}")
            }
            Self::DuplicateElement { name } => {
                write!(f, "element '{name}' is already defined")
            }
            Self::UnknownNode { name } => write!(f, "unknown node '{name}'"),
            Self::UnknownSource { name } => write!(f, "unknown source '{name}'"),
            Self::UnknownAcSource { name, available } => {
                if available.is_empty() {
                    write!(
                        f,
                        "unknown AC stimulus '{name}': the circuit has no independent sources"
                    )
                } else {
                    write!(
                        f,
                        "unknown AC stimulus '{name}': available AC sources are {}",
                        available.join(", ")
                    )
                }
            }
            Self::SingularMatrix { row, pivot } => write!(
                f,
                "singular MNA matrix at row {row}: equilibrated pivot |{pivot:.3e}| below \
                 tolerance (floating node or source loop)"
            ),
            Self::NonConvergence {
                analysis,
                iterations,
                residual,
            } => write!(
                f,
                "{analysis} failed to converge after {iterations} iterations (last update {residual:.3e} V)"
            ),
            Self::ContinuationExhausted {
                sweep_value,
                iterations,
                residual,
            } => write!(
                f,
                "dc sweep failed to converge at sweep value {sweep_value:.6} (step-halving \
                 continuation exhausted): last Newton attempt left residual {residual:.3e} V \
                 after {iterations} iterations"
            ),
            Self::TransientNonConvergence {
                time,
                iterations,
                residual,
            } => write!(
                f,
                "transient failed to converge at t = {time:.6e} s: last Newton attempt left \
                 residual {residual:.3e} V after {iterations} iterations"
            ),
            Self::TimestepCollapsed {
                time,
                step,
                min_step,
            } => write!(
                f,
                "adaptive transient step collapsed at t = {time:.6e} s: step {step:.3e} s fell \
                 below the minimum {min_step:.3e} s without an accepted step"
            ),
            Self::InvalidSweep { reason } => write!(f, "invalid sweep: {reason}"),
            Self::Cancelled { analysis } => {
                write!(f, "{analysis} cancelled (deadline exceeded or job cancelled)")
            }
        }
    }
}

impl std::error::Error for SpiceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = SpiceError::NonConvergence {
            analysis: "dc operating point",
            iterations: 100,
            residual: 3.2e-2,
        };
        let s = e.to_string();
        assert!(s.contains("dc operating point") && s.contains("100"));
        assert!(SpiceError::UnknownNode { name: "out".into() }
            .to_string()
            .contains("out"));
        let singular = SpiceError::SingularMatrix {
            row: 3,
            pivot: 4.5e-16,
        }
        .to_string();
        assert!(singular.contains("row 3"), "{singular}");
        assert!(singular.contains("4.500e-16"), "{singular}");
        let exhausted = SpiceError::ContinuationExhausted {
            sweep_value: 0.8125,
            iterations: 150,
            residual: 4.2e-1,
        }
        .to_string();
        assert!(exhausted.contains("0.8125"), "{exhausted}");
        assert!(exhausted.contains("4.200e-1"), "{exhausted}");
        assert!(exhausted.contains("150"), "{exhausted}");
        // The transient failure names the time in its own field and
        // keeps the residual a residual.
        let tran = SpiceError::TransientNonConvergence {
            time: 2.5e-7,
            iterations: 600,
            residual: 1.7e-2,
        }
        .to_string();
        assert!(tran.contains("2.500000e-7"), "{tran}");
        assert!(tran.contains("600"), "{tran}");
        assert!(tran.contains("1.700e-2"), "{tran}");
        let collapsed = SpiceError::TimestepCollapsed {
            time: 1e-9,
            step: 1e-21,
            min_step: 1e-18,
        }
        .to_string();
        assert!(collapsed.contains("1.000e-21"), "{collapsed}");
        assert!(collapsed.contains("1.000e-18"), "{collapsed}");
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_traits<T: Send + Sync + std::error::Error>() {}
        assert_traits::<SpiceError>();
    }
}

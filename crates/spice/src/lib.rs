//! A from-scratch nonlinear circuit simulator.
//!
//! The paper's Fig. 2 is "a spice simulation" of inverter voltage-transfer
//! curves. This crate is the substrate that makes that reproducible
//! without a commercial simulator: a modified-nodal-analysis (MNA)
//! engine with
//!
//! * dense LU factorization with partial pivoting ([`linalg`]) plus a
//!   sparse LU path with cached symbolic analysis and numeric
//!   refactorization that takes over for larger systems ([`sparse`]),
//! * Newton–Raphson iteration with voltage-step damping, gmin stepping
//!   and source stepping for hard operating points, warm-started across
//!   sweep points with step-halving source continuation ([`analysis`]),
//! * DC operating point, DC sweeps, and transient analysis
//!   (backward-Euler start-up, trapezoidal integration thereafter),
//! * element stamps for resistors, capacitors, independent sources
//!   (DC/pulse/PWL/sine), diodes, controlled sources, and an arbitrary
//!   three-terminal FET driven by any [`FetCurve`] compact model
//!   ([`element`]).
//!
//! The compact models in `carbon-devices` implement [`FetCurve`], so the
//! same model evaluated in Fig. 1's device sweeps is what the inverter of
//! Fig. 2 is built from.
//!
//! # Examples
//!
//! A resistive divider:
//!
//! ```
//! use carbon_spice::Circuit;
//!
//! # fn main() -> Result<(), carbon_spice::SpiceError> {
//! let mut ckt = Circuit::new();
//! ckt.voltage_source("vin", "in", "0", 1.0);
//! ckt.resistor("r1", "in", "mid", 1e3)?;
//! ckt.resistor("r2", "mid", "0", 3e3)?;
//! let op = ckt.op()?;
//! assert!((op.voltage("mid")? - 0.75).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![deny(missing_docs)]

pub mod analysis;
pub mod complex;
pub mod element;
pub mod error;
pub mod linalg;
pub mod netlist;
pub mod parser;
pub mod runner;
pub mod sparse;
pub mod waveform;

pub use analysis::ac::{AcMethod, AcResult};
pub use analysis::{OpResult, SweepOptions, SweepResult, TranMethod, TranOptions, TranResult};
pub use complex::Complex;
pub use element::{batch_lanes_match, FetCurve};
pub use error::SpiceError;
pub use netlist::{Circuit, NodeId};
pub use waveform::Waveform;

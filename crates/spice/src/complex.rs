//! Minimal complex arithmetic and a complex dense solver for AC
//! small-signal analysis.
//!
//! Kept in-tree (like [`linalg`](crate::linalg)) rather than pulling a
//! numerics crate: AC analysis needs exactly one operation — solving the
//! complex MNA system `(G + jωC)·x = b` — and the phasor type below is
//! sufficient for it.
//!
//! Gaussian elimination is written index-based on purpose; the
//! iterator forms clippy suggests obscure the row/column structure.
#![allow(clippy::needless_range_loop)]

use crate::error::SpiceError;

/// A complex number (phasor) with `f64` parts.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// The additive identity.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates `re + j·im`.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        Self { re, im }
    }

    /// A purely imaginary value `j·im`.
    #[inline]
    pub const fn imag(im: f64) -> Self {
        Self { re: 0.0, im }
    }

    /// Magnitude `|z|`.
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase in radians.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Cheap magnitude proxy `|re| + |im|` used for pivoting.
    #[inline]
    pub(crate) fn norm1(self) -> f64 {
        self.re.abs() + self.im.abs()
    }
}

/// [`Scalar`](crate::sparse::Scalar) instance so the sparse
/// Gilbert–Peierls solver works over complex MNA systems. Pivot
/// magnitudes use the same `norm1` proxy as the dense complex
/// elimination, keeping the two paths' pivot choices comparable.
impl crate::sparse::Scalar for Complex {
    const ZERO: Self = Complex::ZERO;

    #[inline]
    fn mag(self) -> f64 {
        self.norm1()
    }

    #[inline]
    fn scale(self, s: f64) -> Self {
        Complex::new(self.re * s, self.im * s)
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    #[inline]
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Sub for Complex {
    type Output = Complex;
    #[inline]
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl std::ops::Mul for Complex {
    type Output = Complex;
    #[inline]
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl std::ops::Div for Complex {
    type Output = Complex;
    #[inline]
    fn div(self, rhs: Complex) -> Complex {
        let d = rhs.re * rhs.re + rhs.im * rhs.im;
        Complex::new(
            (self.re * rhs.re + self.im * rhs.im) / d,
            (self.im * rhs.re - self.re * rhs.im) / d,
        )
    }
}

impl std::ops::Neg for Complex {
    type Output = Complex;
    #[inline]
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

impl std::ops::AddAssign for Complex {
    #[inline]
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl std::ops::SubAssign for Complex {
    #[inline]
    fn sub_assign(&mut self, rhs: Complex) {
        self.re -= rhs.re;
        self.im -= rhs.im;
    }
}

impl From<f64> for Complex {
    fn from(re: f64) -> Self {
        Self::new(re, 0.0)
    }
}

/// A dense complex matrix with LU solve (partial pivoting, row
/// equilibration), mirroring [`DenseMatrix`](crate::linalg::DenseMatrix).
#[derive(Debug, Clone, PartialEq)]
pub struct ComplexMatrix {
    n: usize,
    data: Vec<Complex>,
}

impl ComplexMatrix {
    /// Creates a zeroed `n × n` matrix.
    pub fn zeros(n: usize) -> Self {
        Self {
            n,
            data: vec![Complex::ZERO; n * n],
        }
    }

    /// Adds `value` at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics on out-of-bounds indices.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, value: Complex) {
        assert!(row < self.n && col < self.n, "index out of bounds");
        self.data[row * self.n + col] += value;
    }

    /// Solves `A·x = b` in place, overwriting `b` with the solution.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] when the (equilibrated)
    /// pivot magnitude falls below `1e-13`.
    ///
    /// # Panics
    ///
    /// Panics if `b.len()` differs from the matrix dimension.
    pub fn solve_in_place(&mut self, b: &mut [Complex]) -> Result<(), SpiceError> {
        let n = self.n;
        assert_eq!(b.len(), n, "rhs length must equal matrix dimension");
        if n == 0 {
            return Ok(());
        }
        for r in 0..n {
            let row_max = self.data[r * n..(r + 1) * n]
                .iter()
                .fold(0.0_f64, |m, v| m.max(v.norm1()));
            if row_max == 0.0 {
                return Err(SpiceError::SingularMatrix { row: r, pivot: 0.0 });
            }
            let inv = Complex::new(1.0 / row_max, 0.0);
            for v in &mut self.data[r * n..(r + 1) * n] {
                *v = *v * inv;
            }
            b[r] = b[r] * inv;
        }
        for k in 0..n {
            let mut pivot_row = k;
            let mut pivot_val = self.data[k * n + k].norm1();
            for r in (k + 1)..n {
                let v = self.data[r * n + k].norm1();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < 1e-13 {
                return Err(SpiceError::SingularMatrix {
                    row: k,
                    pivot: pivot_val,
                });
            }
            if pivot_row != k {
                for c in 0..n {
                    self.data.swap(k * n + c, pivot_row * n + c);
                }
                b.swap(k, pivot_row);
            }
            let pivot = self.data[k * n + k];
            for r in (k + 1)..n {
                let factor = self.data[r * n + k] / pivot;
                if factor == Complex::ZERO {
                    continue;
                }
                self.data[r * n + k] = Complex::ZERO;
                for c in (k + 1)..n {
                    let sub = factor * self.data[k * n + c];
                    self.data[r * n + c] -= sub;
                }
                let sub = factor * b[k];
                b[r] -= sub;
            }
        }
        for k in (0..n).rev() {
            let mut sum = b[k];
            for c in (k + 1)..n {
                let sub = self.data[k * n + c] * b[c];
                sum -= sub;
            }
            b[k] = sum / self.data[k * n + k];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complex_arithmetic() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        let q = a / b;
        let back = q * b;
        assert!((back.re - a.re).abs() < 1e-12 && (back.im - a.im).abs() < 1e-12);
        assert!((Complex::imag(1.0) * Complex::imag(1.0) + Complex::ONE).abs() < 1e-15);
        assert!((a.abs() - 5.0_f64.sqrt()).abs() < 1e-12);
        assert!((Complex::imag(1.0).arg() - std::f64::consts::FRAC_PI_2).abs() < 1e-12);
    }

    #[test]
    fn solves_complex_system() {
        // (1 + j)x = 2 → x = 1 − j.
        let mut a = ComplexMatrix::zeros(1);
        a.add(0, 0, Complex::new(1.0, 1.0));
        let mut b = vec![Complex::new(2.0, 0.0)];
        a.solve_in_place(&mut b).unwrap();
        assert!((b[0].re - 1.0).abs() < 1e-12 && (b[0].im + 1.0).abs() < 1e-12);
    }

    #[test]
    fn solves_rc_divider_phasor() {
        // Series R with shunt C at ω = 1/RC: v_out = 1/(1 + j).
        let (r, c, w) = (1e3, 1e-9, 1e6);
        let mut a = ComplexMatrix::zeros(1);
        a.add(0, 0, Complex::new(1.0 / r, w * c));
        let mut b = vec![Complex::new(1.0 / r, 0.0)];
        a.solve_in_place(&mut b).unwrap();
        assert!((b[0].abs() - 1.0 / 2.0_f64.sqrt()).abs() < 1e-9);
        assert!((b[0].arg() + std::f64::consts::FRAC_PI_4).abs() < 1e-9);
    }

    #[test]
    fn detects_singular() {
        let mut a = ComplexMatrix::zeros(2);
        a.add(0, 0, Complex::ONE);
        a.add(0, 1, Complex::ONE);
        a.add(1, 0, Complex::new(2.0, 0.0));
        a.add(1, 1, Complex::new(2.0, 0.0));
        let mut b = vec![Complex::ONE, Complex::ONE];
        assert!(matches!(
            a.solve_in_place(&mut b),
            Err(SpiceError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn pivoting_on_zero_diagonal() {
        let mut a = ComplexMatrix::zeros(2);
        a.add(0, 1, Complex::ONE);
        a.add(1, 0, Complex::ONE);
        let mut b = vec![Complex::new(2.0, 0.0), Complex::new(3.0, 0.0)];
        a.solve_in_place(&mut b).unwrap();
        assert!((b[0].re - 3.0).abs() < 1e-12);
        assert!((b[1].re - 2.0).abs() < 1e-12);
    }
}

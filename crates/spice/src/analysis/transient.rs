//! Transient analysis: fixed-step and adaptive implicit integration.
//!
//! Two methods share one Newton/MNA core ([`super::engine`]) and one
//! per-topology workspace, so the sparse symbolic analysis and
//! fill-reducing ordering are discovered **once per deck** and every
//! Newton iteration at every time point runs a numeric
//! [`replay`](crate::sparse::SparseLu::refactor) against the cached
//! pattern (with the usual pivot-growth staleness fallback) — the same
//! treatment PR 4 gave the AC sweep's `G + jωC` systems.
//!
//! * [`TranMethod::FixedStep`] — the PR 1 integrator, kept numerically
//!   bit-for-bit as the oracle: backward Euler for the start-up step,
//!   trapezoidal thereafter, on the uniform grid `k·tstep` with the
//!   final sample landing **exactly** on `tstop`.
//! * [`TranMethod::Adaptive`] — LTE-based step-size control. Each
//!   candidate step is integrated twice, backward Euler then
//!   trapezoidal; the pair's difference estimates the local truncation
//!   error (`x_TR − x_BE ≈ (h²/2)·x″`, the BE error to leading order),
//!   normalized against `lte_abstol + lte_reltol·|x|` per unknown.
//!   Steps whose estimate exceeds 1 are rejected and halved; accepted
//!   steps grow by a bounded factor chosen from the estimate alone.
//!   The accept/reject/grow/shrink sequence is a **pure function of
//!   the deck** — never of timing, tracing, or thread count — so the
//!   adaptive step sequence is byte-identical across runs. Source
//!   breakpoints (pulse edges, PWL corners, sine start delays) are
//!   landed on exactly, and integration restarts with a backward-Euler
//!   step after each one, exactly as it starts from the DC initial
//!   condition.
//!
//! Cancellation checkpoints sit at every accept/reject boundary (and
//! inside every Newton iteration), so a serve job whose deadline
//! expires mid-horizon stops at the next step boundary with a clean
//! [`SpiceError::Cancelled`].

use std::sync::Arc;

use super::{newton_solve, CapCompanion, IndCompanion, MnaWorkspace, NameTable, NewtonOptions};
use crate::element::ElementKind;
use crate::error::SpiceError;
use crate::netlist::Circuit;
use carbon_trace::{counter, instant, span};

/// Which time-stepping scheme [`Circuit::transient_with`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TranMethod {
    /// Uniform grid `k·tstep` (final sample exactly at `tstop`),
    /// backward-Euler start-up then trapezoidal — the bit-identity
    /// oracle the adaptive path is tested against.
    #[default]
    FixedStep,
    /// LTE-controlled variable steps: `tstep` is the *initial* step,
    /// the controller grows and shrinks it deterministically between
    /// `min_step` and `max_step`.
    Adaptive,
}

impl TranMethod {
    /// The method's trace label.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::FixedStep => "fixed",
            Self::Adaptive => "adaptive",
        }
    }
}

/// Tuning knobs for [`Circuit::transient_with`].
///
/// The defaults select [`TranMethod::FixedStep`], which preserves the
/// historical `transient()` behaviour byte for byte; the LTE fields
/// only apply to the adaptive method.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TranOptions {
    /// Stepping scheme.
    pub method: TranMethod,
    /// Relative weight of an unknown's magnitude in the LTE acceptance
    /// tolerance.
    pub lte_reltol: f64,
    /// Absolute floor of the LTE acceptance tolerance, V (node
    /// unknowns; branch currents use a fixed 1 nA floor).
    pub lte_abstol: f64,
    /// Largest step the controller may grow to, s. `None` → a tenth of
    /// the horizon, so even a fully settled circuit keeps at least ten
    /// samples.
    pub max_step: Option<f64>,
    /// Smallest step the controller may halve to before reporting
    /// [`SpiceError::TimestepCollapsed`], s. `None` → `tstop · 1e-12`.
    pub min_step: Option<f64>,
}

impl Default for TranOptions {
    fn default() -> Self {
        Self {
            method: TranMethod::FixedStep,
            lte_reltol: 1e-3,
            lte_abstol: 1e-6,
            max_step: None,
            min_step: None,
        }
    }
}

impl TranOptions {
    /// [`TranMethod::Adaptive`] with the default LTE tolerances.
    pub fn adaptive() -> Self {
        Self {
            method: TranMethod::Adaptive,
            ..Self::default()
        }
    }
}

/// Result of a transient analysis: time points and node-voltage traces
/// in **netlist node order** — no hash-map iteration anywhere, so two
/// identical analyses render identically down to the last bit.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    /// Unknown-name tables shared with the solver workspace.
    names: Arc<NameTable>,
    /// One voltage trace per node, aligned with `names.node_names`.
    traces: Vec<Vec<f64>>,
    accepted: usize,
    rejected: usize,
}

impl TranResult {
    /// The time grid, s. Uniform for [`TranMethod::FixedStep`]; the
    /// accepted (variable) step sequence for [`TranMethod::Adaptive`].
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Node names in netlist order — the trace order of this result.
    pub fn node_names(&self) -> &[String] {
        &self.names.node_names
    }

    /// Accepted time steps (excluding the `t = 0` initial condition).
    pub fn accepted_steps(&self) -> usize {
        self.accepted
    }

    /// Steps rejected by the LTE controller (always 0 for fixed-step).
    pub fn rejected_steps(&self) -> usize {
        self.rejected
    }

    /// Voltage trace of a node over time.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for unknown names.
    pub fn voltages(&self, node: &str) -> Result<&[f64], SpiceError> {
        let lower = node.to_ascii_lowercase();
        self.names
            .node_names
            .iter()
            .position(|n| *n == lower)
            .map(|i| self.traces[i].as_slice())
            .ok_or(SpiceError::UnknownNode {
                name: node.to_owned(),
            })
    }

    /// Voltage of a node at time `t`, linearly interpolated between the
    /// two bracketing samples (clamped to the first/last sample outside
    /// the horizon) — the comparison primitive for adaptive-vs-fixed
    /// agreement checks, where the two grids do not share points.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for unknown names.
    pub fn sample_at(&self, node: &str, t: f64) -> Result<f64, SpiceError> {
        let v = self.voltages(node)?;
        if self.times.is_empty() {
            return Ok(0.0);
        }
        if t <= self.times[0] {
            return Ok(v[0]);
        }
        if t >= *self.times.last().expect("non-empty") {
            return Ok(*v.last().expect("non-empty"));
        }
        // Binary search for the bracketing interval.
        let k = self.times.partition_point(|&tk| tk < t);
        let (t0, t1) = (self.times[k - 1], self.times[k]);
        if t1 == t0 {
            return Ok(v[k]);
        }
        Ok(v[k - 1] + (v[k] - v[k - 1]) * (t - t0) / (t1 - t0))
    }
}

/// Reactive-element companion state for one transient run.
struct Companions {
    caps: Vec<CapCompanion>,
    inds: Vec<IndCompanion>,
    n_nodes: usize,
}

impl Companions {
    fn from_dc(circuit: &Circuit, x: &[f64]) -> Self {
        let n_nodes = circuit.num_nodes();
        let caps = circuit
            .elements
            .iter()
            .enumerate()
            .filter_map(|(idx, e)| match e.kind {
                ElementKind::Capacitor { p, n, c } => Some(CapCompanion::at_rest(idx, p, n, c, x)),
                _ => None,
            })
            .collect();
        let inds = circuit
            .elements
            .iter()
            .enumerate()
            .filter_map(|(idx, e)| match e.kind {
                ElementKind::Inductor { p, n, branch, l } => {
                    Some(IndCompanion::at_rest(idx, p, n, branch, l, x, n_nodes))
                }
                _ => None,
            })
            .collect();
        Self {
            caps,
            inds,
            n_nodes,
        }
    }

    fn prepare(&mut self, h: f64, trapezoidal: bool) {
        for cap in &mut self.caps {
            cap.prepare(h, trapezoidal);
        }
        for ind in &mut self.inds {
            ind.prepare(h, trapezoidal);
        }
    }

    fn commit(&mut self, x: &[f64]) {
        for cap in &mut self.caps {
            cap.commit(x);
        }
        for ind in &mut self.inds {
            ind.commit(x, self.n_nodes);
        }
    }

    fn as_refs(&self) -> (&[CapCompanion], &[IndCompanion]) {
        (&self.caps, &self.inds)
    }
}

/// Relative slack allowed between `tstop / tstep` and the nearest
/// integer before a fixed-step horizon is rejected: a few-ulp rounding
/// residue (`1e-6/1e-9 = 999.9999…`) is resolved by snapping, while a
/// genuinely fractional horizon (`1e-6/3e-9 = 333.33`) would silently
/// drop a third of a step and is reported instead.
const STEP_COUNT_SLACK: f64 = 1e-6;

/// Validates a fixed-step horizon and returns the step count whose
/// final sample lands exactly on `tstop`.
fn fixed_step_count(tstep: f64, tstop: f64) -> Result<usize, SpiceError> {
    let steps_f = tstop / tstep;
    let steps = steps_f.round();
    if (steps_f - steps).abs() > STEP_COUNT_SLACK * steps_f.max(1.0) {
        return Err(SpiceError::InvalidSweep {
            reason: format!(
                "transient horizon is not a whole number of steps: tstop = {tstop} / tstep = \
                 {tstep} gives {steps_f} steps; rounding to {steps} would silently move the \
                 final sample off tstop — adjust tstep or tstop, or use the adaptive method"
            ),
        });
    }
    Ok(steps as usize)
}

impl Circuit {
    /// Transient analysis from `t = 0` to `tstop` with the default
    /// options — fixed-step integration (backward-Euler start-up step,
    /// trapezoidal thereafter) on the uniform grid `k·tstep`, with the
    /// final sample exactly at `tstop`. The initial condition is the DC
    /// operating point with all sources at their `t = 0` values.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidSweep`] for non-positive steps or
    /// horizons (naming the field) and for horizons that are not a
    /// whole number of steps, [`SpiceError::TransientNonConvergence`]
    /// for time points that refuse to converge, and solver errors from
    /// the initial operating point.
    pub fn transient(&self, tstep: f64, tstop: f64) -> Result<TranResult, SpiceError> {
        self.transient_with(tstep, tstop, TranOptions::default())
    }

    /// [`transient`](Self::transient) with LTE-controlled adaptive
    /// stepping at the default tolerances; `tstep` becomes the initial
    /// step size.
    ///
    /// # Errors
    ///
    /// As [`transient_with`](Self::transient_with).
    pub fn transient_adaptive(&self, tstep: f64, tstop: f64) -> Result<TranResult, SpiceError> {
        self.transient_with(tstep, tstop, TranOptions::adaptive())
    }

    /// Transient analysis with explicit [`TranOptions`].
    ///
    /// # Errors
    ///
    /// As [`transient`](Self::transient); the adaptive method
    /// additionally reports [`SpiceError::TimestepCollapsed`] when the
    /// step controller halves below `min_step` without an accepted
    /// step, and [`SpiceError::InvalidSweep`] for non-finite or
    /// non-positive LTE tolerances and step bounds.
    pub fn transient_with(
        &self,
        tstep: f64,
        tstop: f64,
        opts: TranOptions,
    ) -> Result<TranResult, SpiceError> {
        // Field-by-field validation, matching the AC sweep's style: the
        // offending parameter is named so a bad caller-side formula is a
        // one-glance fix.
        for (field, value) in [("tstep", tstep), ("tstop", tstop)] {
            if !value.is_finite() {
                return Err(SpiceError::InvalidSweep {
                    reason: format!("transient {field} = {value} must be finite"),
                });
            }
            if value <= 0.0 {
                return Err(SpiceError::InvalidSweep {
                    reason: format!("transient {field} = {value} must be positive"),
                });
            }
        }
        if tstep > tstop {
            return Err(SpiceError::InvalidSweep {
                reason: format!(
                    "transient tstep = {tstep} exceeds tstop = {tstop}: the horizon must cover \
                     at least one step"
                ),
            });
        }
        if opts.method == TranMethod::Adaptive {
            for (field, value) in [
                ("lte_reltol", Some(opts.lte_reltol)),
                ("lte_abstol", Some(opts.lte_abstol)),
                ("max_step", opts.max_step),
                ("min_step", opts.min_step),
            ] {
                if let Some(v) = value {
                    if !(v.is_finite() && v > 0.0) {
                        return Err(SpiceError::InvalidSweep {
                            reason: format!("transient {field} = {v} must be positive and finite"),
                        });
                    }
                }
            }
        }
        // Fixed-step horizons must be a whole number of steps — checked
        // before any solving so the error arrives instantly.
        let fixed_steps = match opts.method {
            TranMethod::FixedStep => Some(fixed_step_count(tstep, tstop)?),
            TranMethod::Adaptive => None,
        };

        let mut tran_span = span!("spice.transient");
        if tran_span.is_live() {
            tran_span.record("method", opts.method.as_str());
            tran_span.record("n", self.num_unknowns());
            tran_span.record("tstop", tstop);
        }

        let nopts = NewtonOptions::default();
        let mut cache = self.solver_cache.lock();
        let ws = cache
            .dc
            .get_or_insert_with(|| MnaWorkspace::for_circuit(self));
        // DC initial condition with sources evaluated at t = 0.
        let mut x = vec![0.0; self.num_unknowns()];
        newton_solve(self, ws, &mut x, Some(0.0), None, 1.0, nopts.gmin, &nopts).or_else(|_| {
            // Fall back to the robust op ladder, then refine at t = 0.
            x.fill(0.0);
            self.op_from(&mut x, ws)?;
            newton_solve(self, ws, &mut x, Some(0.0), None, 1.0, nopts.gmin, &nopts)
        })?;
        let mut companions = Companions::from_dc(self, &x);

        let mut times = Vec::new();
        let mut samples: Vec<Vec<f64>> = Vec::new();
        times.push(0.0);
        samples.push(x.clone());

        let (accepted, rejected) = match opts.method {
            TranMethod::FixedStep => {
                let steps = fixed_steps.expect("computed for fixed-step");
                fixed_loop(
                    self,
                    ws,
                    &mut companions,
                    &mut x,
                    tstep,
                    tstop,
                    steps,
                    &nopts,
                    &mut times,
                    &mut samples,
                )?
            }
            TranMethod::Adaptive => adaptive_loop(
                self,
                ws,
                &mut companions,
                &mut x,
                tstep,
                tstop,
                &opts,
                &nopts,
                &mut times,
                &mut samples,
            )?,
        };

        if tran_span.is_live() {
            tran_span.record("points", times.len());
            tran_span.record("steps", accepted);
            tran_span.record("rejects", rejected);
        }

        let n_nodes = self.num_nodes();
        let traces = (0..n_nodes)
            .map(|i| samples.iter().map(|s| s[i]).collect())
            .collect();
        Ok(TranResult {
            times,
            names: ws.names.clone(),
            traces,
            accepted,
            rejected,
        })
    }
}

/// The fixed-step integrator: `steps` uniform steps of `tstep`,
/// backward Euler first then trapezoidal, final sample exactly at
/// `tstop`. Numerically identical to the pre-refactor `transient()`
/// except that the last time point is `tstop` itself rather than
/// `steps · tstep` (the two differ by at most one rounding ulp, and
/// only for horizons where the product rounds away from `tstop`).
#[allow(clippy::too_many_arguments)]
fn fixed_loop(
    circuit: &Circuit,
    ws: &mut MnaWorkspace,
    companions: &mut Companions,
    x: &mut [f64],
    tstep: f64,
    tstop: f64,
    steps: usize,
    nopts: &NewtonOptions,
    times: &mut Vec<f64>,
    samples: &mut Vec<Vec<f64>>,
) -> Result<(usize, usize), SpiceError> {
    times.reserve(steps);
    samples.reserve(steps);
    for k in 1..=steps {
        // Checkpoint between time steps: a deadline that expires
        // mid-transient stops before the next integration step (the
        // Newton loop below has its own per-iteration checkpoint).
        if carbon_runtime::cancel::cancelled() {
            return Err(SpiceError::Cancelled {
                analysis: "transient",
            });
        }
        let t = if k == steps { tstop } else { k as f64 * tstep };
        let trapezoidal = k > 1;
        companions.prepare(tstep, trapezoidal);
        if newton_solve(
            circuit,
            ws,
            x,
            Some(t),
            Some(companions.as_refs()),
            1.0,
            nopts.gmin,
            nopts,
        )
        .is_err()
        {
            // Retry with heavy damping: piecewise-linear device models
            // (table models) can make full Newton steps cycle between
            // interpolation cells.
            let damped = NewtonOptions {
                max_iter: 600,
                vstep_limit: 0.02,
                ..*nopts
            };
            newton_solve(
                circuit,
                ws,
                x,
                Some(t),
                Some(companions.as_refs()),
                1.0,
                nopts.gmin,
                &damped,
            )
            .map_err(|e| match e {
                SpiceError::SingularMatrix { .. } | SpiceError::Cancelled { .. } => e,
                // Surface the failing time in its own field and keep
                // the damped attempt's true residual — previously the
                // time was smuggled through the residual field.
                SpiceError::NonConvergence {
                    iterations,
                    residual,
                    ..
                } => SpiceError::TransientNonConvergence {
                    time: t,
                    iterations,
                    residual,
                },
                other => other,
            })?;
        }
        companions.commit(x);
        counter!("spice.tran.step");
        carbon_metrics::global_counter!("spice.tran.steps").incr();
        times.push(t);
        samples.push(x.to_vec());
    }
    Ok((steps, 0))
}

/// The adaptive integrator: per candidate step, a backward-Euler solve
/// then a trapezoidal solve over the same interval; their difference
/// is the LTE estimate that accepts/rejects the step and sizes the
/// next one. Every quantity in the control law derives from the deck
/// and the options alone, so the accepted step sequence is
/// byte-identical across runs, thread counts, and tracing.
#[allow(clippy::too_many_arguments)]
fn adaptive_loop(
    circuit: &Circuit,
    ws: &mut MnaWorkspace,
    companions: &mut Companions,
    x: &mut [f64],
    tstep: f64,
    tstop: f64,
    opts: &TranOptions,
    nopts: &NewtonOptions,
    times: &mut Vec<f64>,
    samples: &mut Vec<Vec<f64>>,
) -> Result<(usize, usize), SpiceError> {
    let hmax = opts.max_step.unwrap_or(tstop / 10.0).min(tstop);
    let hmin = opts.min_step.unwrap_or(tstop * 1e-12).min(hmax);
    let n_nodes = circuit.num_nodes();
    let n_unknowns = circuit.num_unknowns();

    // Source breakpoints, sorted and deduplicated; the horizon end is
    // the final mandatory stop.
    let mut breakpoints: Vec<f64> = Vec::new();
    for e in &circuit.elements {
        match &e.kind {
            ElementKind::VoltageSource { wave, .. } | ElementKind::CurrentSource { wave, .. } => {
                wave.breakpoints(tstop, &mut breakpoints);
            }
            _ => {}
        }
    }
    breakpoints.sort_by(|a, b| a.partial_cmp(b).expect("finite breakpoints"));
    breakpoints.dedup();
    breakpoints.push(tstop);
    let mut next_bp = 0usize;

    let mut t = 0.0_f64;
    let mut h = tstep.min(hmax).max(hmin);
    // The step after the DC initial condition — and after every
    // breakpoint landing — integrates with backward Euler: the
    // companion history holds no trustworthy current/voltage slope
    // across a discontinuity, and trapezoidal integration would ring.
    let mut startup = true;
    let mut x_be = vec![0.0; n_unknowns];
    let mut x_tr = vec![0.0; n_unknowns];
    let mut accepted = 0usize;
    let mut rejected = 0usize;
    // Diagnostics of the last Newton failure, for the collapse report.
    let mut last_failure: Option<(f64, usize, f64)> = None;

    while t < tstop {
        // Accept/reject boundary checkpoint: a deadline that expires
        // mid-horizon stops here with a clean cancellation (the Newton
        // loop has its own per-iteration checkpoint).
        if carbon_runtime::cancel::cancelled() {
            return Err(SpiceError::Cancelled {
                analysis: "transient",
            });
        }
        while breakpoints[next_bp] <= t {
            next_bp += 1;
        }
        let stop = breakpoints[next_bp];
        let remaining = stop - t;
        let (h_step, lands) = if h >= remaining {
            (remaining, true)
        } else {
            (h, false)
        };
        let t_new = if lands { stop } else { t + h_step };

        // Backward-Euler predictor, warm-started from the accepted
        // state; trapezoidal corrector, warm-started from the
        // predictor (it converges in a couple of iterations).
        companions.prepare(h_step, false);
        x_be.copy_from_slice(x);
        let solved = newton_solve(
            circuit,
            ws,
            &mut x_be,
            Some(t_new),
            Some(companions.as_refs()),
            1.0,
            nopts.gmin,
            nopts,
        )
        .and_then(|_| {
            companions.prepare(h_step, true);
            x_tr.copy_from_slice(&x_be);
            newton_solve(
                circuit,
                ws,
                &mut x_tr,
                Some(t_new),
                Some(companions.as_refs()),
                1.0,
                nopts.gmin,
                nopts,
            )
        });

        let err_norm = match solved {
            Ok(_) => {
                let mut err = 0.0_f64;
                for i in 0..n_unknowns {
                    let mag = x_tr[i].abs().max(x_be[i].abs());
                    let tol = if i < n_nodes {
                        opts.lte_abstol + opts.lte_reltol * mag
                    } else {
                        1e-9 + opts.lte_reltol * mag
                    };
                    let ratio = (x_tr[i] - x_be[i]).abs() / tol;
                    if !ratio.is_finite() {
                        err = f64::INFINITY;
                        break;
                    }
                    err = err.max(ratio);
                }
                err
            }
            Err(e @ (SpiceError::SingularMatrix { .. } | SpiceError::Cancelled { .. })) => {
                return Err(e);
            }
            Err(SpiceError::NonConvergence {
                iterations,
                residual,
                ..
            }) => {
                // A non-convergent Newton attempt is treated exactly
                // like an over-large LTE: halve and retry.
                last_failure = Some((t_new, iterations, residual));
                f64::INFINITY
            }
            Err(other) => return Err(other),
        };

        if err_norm <= 1.0 {
            // Accept. Start-up steps keep the backward-Euler solution
            // (and its companion coefficients); steady stepping keeps
            // the trapezoidal one.
            if startup {
                companions.prepare(h_step, false);
                x.copy_from_slice(&x_be);
            } else {
                x.copy_from_slice(&x_tr);
            }
            companions.commit(x);
            t = t_new;
            times.push(t);
            samples.push(x.to_vec());
            accepted += 1;
            counter!("spice.tran.step");
            carbon_metrics::global_counter!("spice.tran.steps").incr();
            last_failure = None;
            if lands && t < tstop {
                // Breakpoint landed: restart like a fresh horizon —
                // backward-Euler step at the initial step size.
                startup = true;
                h = tstep.min(hmax).max(hmin);
            } else {
                startup = false;
                // Bounded deterministic growth from the estimate alone.
                let growth = if err_norm < 0.1 {
                    2.0
                } else if err_norm < 0.5 {
                    1.25
                } else {
                    1.0
                };
                h = (h_step * growth).min(hmax);
            }
        } else {
            rejected += 1;
            counter!("spice.tran.reject");
            carbon_metrics::global_counter!("spice.tran.rejects").incr();
            instant!("spice.tran.reject", "t" = t, "h" = h_step, "err" = err_norm);
            h = h_step * 0.5;
            if h < hmin {
                return Err(match last_failure {
                    Some((tf, iterations, residual)) => SpiceError::TransientNonConvergence {
                        time: tf,
                        iterations,
                        residual,
                    },
                    None => SpiceError::TimestepCollapsed {
                        time: t,
                        step: h,
                        min_step: hmin,
                    },
                });
            }
        }
    }
    Ok((accepted, rejected))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_step_count_snaps_rounding_residue_and_rejects_fractions() {
        // 1e-6 / 1e-9 = 999.9999999999999 in f64: a rounding residue,
        // resolved to 1000 steps.
        assert_eq!(fixed_step_count(1e-9, 1e-6).unwrap(), 1000);
        assert_eq!(fixed_step_count(2e-5, 4e-3).unwrap(), 200);
        assert_eq!(fixed_step_count(1.0, 1.0).unwrap(), 1);
        // A genuinely fractional horizon is rejected, naming both
        // fields and the implied count.
        let err = fixed_step_count(3e-9, 1e-6).unwrap_err();
        let SpiceError::InvalidSweep { reason } = err else {
            panic!("expected InvalidSweep");
        };
        assert!(reason.contains("tstep"), "{reason}");
        assert!(reason.contains("tstop"), "{reason}");
        assert!(reason.contains("333"), "{reason}");
    }

    #[test]
    fn final_fixed_sample_lands_exactly_on_tstop() {
        let mut ckt = Circuit::new();
        ckt.voltage_source("v", "in", "0", 1.0);
        ckt.resistor("r", "in", "out", 1e3).unwrap();
        ckt.capacitor("c", "out", "0", 1e-9).unwrap();
        // 1000 · 1e-9 rounds one ulp away from 1e-6; the grid must end
        // on tstop itself regardless.
        let tran = ckt.transient(1e-9, 1e-6).unwrap();
        assert_eq!(
            tran.times().last().copied().unwrap().to_bits(),
            1e-6_f64.to_bits()
        );
        assert_eq!(tran.times().len(), 1001);
    }

    #[test]
    fn adaptive_options_are_validated_by_name() {
        let mut ckt = Circuit::new();
        ckt.voltage_source("v", "in", "0", 1.0);
        ckt.resistor("r", "in", "0", 1e3).unwrap();
        for (field, opts) in [
            (
                "lte_reltol",
                TranOptions {
                    lte_reltol: 0.0,
                    ..TranOptions::adaptive()
                },
            ),
            (
                "lte_abstol",
                TranOptions {
                    lte_abstol: f64::NAN,
                    ..TranOptions::adaptive()
                },
            ),
            (
                "max_step",
                TranOptions {
                    max_step: Some(-1.0),
                    ..TranOptions::adaptive()
                },
            ),
            (
                "min_step",
                TranOptions {
                    min_step: Some(0.0),
                    ..TranOptions::adaptive()
                },
            ),
        ] {
            match ckt.transient_with(1e-9, 1e-6, opts) {
                Err(SpiceError::InvalidSweep { reason }) => {
                    assert!(reason.contains(field), "{reason}");
                }
                other => panic!("expected InvalidSweep for {field}, got {other:?}"),
            }
        }
    }

    #[test]
    fn adaptive_grid_is_monotonic_and_ends_on_tstop() {
        let mut ckt = Circuit::new();
        ckt.voltage_source("v", "in", "0", 1.0);
        ckt.resistor("r", "in", "out", 1e3).unwrap();
        ckt.capacitor("c", "out", "0", 1e-9).unwrap();
        let tran = ckt.transient_adaptive(1e-9, 1e-5).unwrap();
        let t = tran.times();
        assert_eq!(t[0], 0.0);
        assert_eq!(t.last().copied().unwrap().to_bits(), 1e-5_f64.to_bits());
        assert!(t.windows(2).all(|w| w[0] < w[1]), "strictly increasing");
        // The settled RC charges in ~5 τ = 5 µs; the controller must
        // take far fewer steps than the 10 000 fixed steps would.
        assert!(
            tran.accepted_steps() < 1000,
            "adaptive took {} steps",
            tran.accepted_steps()
        );
    }

    #[test]
    fn sample_at_interpolates_and_clamps() {
        let mut ckt = Circuit::new();
        ckt.voltage_source("v", "in", "0", 1.0);
        ckt.resistor("r1", "in", "mid", 1e3).unwrap();
        ckt.resistor("r2", "mid", "0", 1e3).unwrap();
        let tran = ckt.transient(1e-7, 1e-6).unwrap();
        // Constant 0.5 everywhere (to within the solver's gmin leak):
        // interpolation and clamping reproduce it at any t.
        assert!((tran.sample_at("mid", 3.3e-7).unwrap() - 0.5).abs() < 1e-9);
        assert!((tran.sample_at("mid", -1.0).unwrap() - 0.5).abs() < 1e-9);
        assert!((tran.sample_at("mid", 2.0).unwrap() - 0.5).abs() < 1e-9);
        assert!(tran.sample_at("ghost", 0.0).is_err());
    }
}

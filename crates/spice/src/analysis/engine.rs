//! The Newton–Raphson MNA core shared by all analyses.

use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::element::{diode_iv, diode_vcrit, pnjlim, ElementKind, FetCurve};
use crate::error::SpiceError;
use crate::linalg::{DenseMatrix, Stamp};
use crate::netlist::{Circuit, NodeId};
use crate::sparse::{Refactor, SparseLu, SparseMatrix};
use carbon_trace::{counter, instant, span};

/// Unknown count below which the dense solver is used: at inverter-scale
/// systems the dense factorization fits in cache and beats the sparse
/// path's indirection, and keeping small circuits on the PR 1 dense code
/// preserves their results bit-for-bit.
pub(crate) const SPARSE_THRESHOLD: usize = 16;

/// Reusable MNA solve state for one circuit topology: the system matrix
/// (dense or sparse by size), the RHS/trial buffers, and — on the sparse
/// path — the cached symbolic analysis and pivot order that later Newton
/// iterations refactor against.
///
/// Building one workspace per analysis (not per Newton iteration) is
/// what turns the sparse symbolic work into a one-time cost across a
/// whole sweep.
pub(crate) struct MnaWorkspace {
    matrix: MnaMatrix,
    /// RHS vector, rebuilt every iteration.
    z: Vec<f64>,
    /// Trial solution buffer.
    x_new: Vec<f64>,
    /// Unknown-name table shared (by `Arc`) with every `OpResult` this
    /// workspace produces, so sweeps don't re-allocate the same strings
    /// at every bias point.
    pub names: Arc<NameTable>,
    /// Per-element junction voltage loaded at the previous Newton
    /// iteration (diode slots only) — the `vold` of SPICE's
    /// [`pnjlim`] limiting, re-seeded from the iterate at the start of
    /// every [`newton_solve`] call.
    junction_v: Vec<f64>,
    /// Per-element critical junction voltage (diode slots only),
    /// precomputed so the stamp loop doesn't re-derive the logarithm.
    vcrit: Vec<f64>,
}

/// Names of the node-voltage and branch-current unknowns, in unknown
/// order — the lookup tables behind `OpResult::voltage` and
/// `OpResult::source_current`.
#[derive(Debug)]
pub(crate) struct NameTable {
    pub node_names: Vec<String>,
    pub branch_names: Vec<String>,
}

impl NameTable {
    fn for_circuit(circuit: &Circuit) -> Self {
        let node_names = (1..=circuit.num_nodes())
            .map(|i| circuit.node_name(NodeId(i)).to_owned())
            .collect();
        let mut branch_names = vec![String::new(); circuit.num_branches];
        for e in &circuit.elements {
            match e.kind {
                ElementKind::VoltageSource { branch, .. }
                | ElementKind::Inductor { branch, .. } => {
                    branch_names[branch] = e.name.clone();
                }
                _ => {}
            }
        }
        Self {
            node_names,
            branch_names,
        }
    }
}

enum MnaMatrix {
    Dense(DenseMatrix),
    Sparse { a: SparseMatrix, lu: Box<SparseLu> },
}

/// The per-topology workspaces an analysis can cache on a circuit:
/// the DC/transient Newton workspace and the sparse AC sweep
/// workspace. Both hang off the circuit's one [`SolverCache`] lock
/// and are dropped together on topology changes.
#[derive(Default)]
pub(crate) struct Workspaces {
    /// Newton MNA state for `op()`/`transient()`.
    pub dc: Option<MnaWorkspace>,
    /// Complex pattern + LU for `ac_sweep()`.
    pub ac: Option<super::ac::AcWorkspace>,
}

/// Interior-mutable, per-[`Circuit`] cache of the solver workspaces, so
/// repeated `op()`/`transient()`/`ac_sweep()` calls on one circuit pay
/// the sparse symbolic analysis (pattern + ordering + first-factor fill
/// discovery) once instead of per call. The netlist builder invalidates
/// it on any topology change (new node, new element); value-only edits
/// such as [`Circuit::set_source_value`] keep it valid.
pub(crate) struct SolverCache(Mutex<Workspaces>);

impl SolverCache {
    /// Empties the cache — called by the builder on topology changes.
    pub fn invalidate(&mut self) {
        *self.0.get_mut().unwrap_or_else(PoisonError::into_inner) = Workspaces::default();
    }

    /// Locks the cache for an analysis. A poisoned lock (a stamp panic
    /// in another thread) is recovered by discarding the possibly
    /// half-updated workspaces.
    pub fn lock(&self) -> MutexGuard<'_, Workspaces> {
        self.0.lock().unwrap_or_else(|poison| {
            let mut guard = poison.into_inner();
            *guard = Workspaces::default();
            guard
        })
    }
}

impl Default for SolverCache {
    fn default() -> Self {
        Self(Mutex::new(Workspaces::default()))
    }
}

impl Clone for SolverCache {
    /// Cloned circuits start cold: a workspace is cheap to rebuild next
    /// to sharing a lock between independent clones (the parallel sweep
    /// clones circuits precisely to keep solver state private).
    fn clone(&self) -> Self {
        Self::default()
    }
}

impl std::fmt::Debug for SolverCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("SolverCache")
    }
}

impl MnaWorkspace {
    /// Builds the workspace for a circuit: dense below
    /// [`SPARSE_THRESHOLD`] unknowns, otherwise sparse with the stamp
    /// pattern and fill-reducing ordering computed once here.
    pub fn for_circuit(circuit: &Circuit) -> Self {
        let n = circuit.num_unknowns();
        let matrix = if n < SPARSE_THRESHOLD {
            MnaMatrix::Dense(DenseMatrix::zeros(n))
        } else {
            let a = SparseMatrix::from_entries(n, &collect_pattern(circuit));
            let lu = Box::new(SparseLu::new(&a));
            MnaMatrix::Sparse { a, lu }
        };
        let mut vcrit = vec![0.0; circuit.elements.len()];
        for (idx, e) in circuit.elements.iter().enumerate() {
            if let ElementKind::Diode {
                i_s, n_ideality, ..
            } = e.kind
            {
                vcrit[idx] = diode_vcrit(i_s, n_ideality);
            }
        }
        Self {
            matrix,
            z: vec![0.0; n],
            x_new: vec![0.0; n],
            names: Arc::new(NameTable::for_circuit(circuit)),
            junction_v: vec![0.0; circuit.elements.len()],
            vcrit,
        }
    }
}

/// Every `(row, col)` position the circuit's elements can ever stamp,
/// across DC *and* transient (companion) forms, plus the gmin node
/// diagonals — the fixed sparsity pattern of the MNA system.
///
/// The AC system `G + jωC` stamps the same positions (capacitor
/// susceptances land on the capacitor-conductance pattern, inductor
/// reactances on the branch diagonal the companions use), so the AC
/// workspace reuses this pattern verbatim.
pub(crate) fn collect_pattern(circuit: &Circuit) -> Vec<(usize, usize)> {
    let n_nodes = circuit.num_nodes();
    let mut pat: Vec<(usize, usize)> = Vec::new();
    // gmin anchors every node diagonal.
    for i in 0..n_nodes {
        pat.push((i, i));
    }
    let conductance = |p: NodeId, n: NodeId, pat: &mut Vec<(usize, usize)>| {
        if let Some(i) = p.unknown_index() {
            pat.push((i, i));
            if let Some(j) = n.unknown_index() {
                pat.push((i, j));
                pat.push((j, i));
            }
        }
        if let Some(j) = n.unknown_index() {
            pat.push((j, j));
        }
    };
    let incidence = |p: NodeId, n: NodeId, bi: usize, pat: &mut Vec<(usize, usize)>| {
        if let Some(i) = p.unknown_index() {
            pat.push((i, bi));
            pat.push((bi, i));
        }
        if let Some(j) = n.unknown_index() {
            pat.push((j, bi));
            pat.push((bi, j));
        }
    };
    for e in &circuit.elements {
        match &e.kind {
            ElementKind::Resistor { p, n, .. } | ElementKind::Capacitor { p, n, .. } => {
                conductance(*p, *n, &mut pat);
            }
            ElementKind::Inductor { p, n, branch, .. } => {
                let bi = n_nodes + branch;
                incidence(*p, *n, bi, &mut pat);
                // Transient companion stamps −r_eq on the branch diagonal.
                pat.push((bi, bi));
            }
            ElementKind::VoltageSource { p, n, branch, .. } => {
                incidence(*p, *n, n_nodes + branch, &mut pat);
            }
            ElementKind::CurrentSource { .. } => {}
            ElementKind::Diode { p, n, .. } => conductance(*p, *n, &mut pat),
            ElementKind::Vccs { p, n, cp, cn, .. } => {
                for r in [p.unknown_index(), n.unknown_index()] {
                    for c in [cp.unknown_index(), cn.unknown_index()] {
                        if let (Some(r), Some(c)) = (r, c) {
                            pat.push((r, c));
                        }
                    }
                }
            }
            ElementKind::Fet { d, g, s, .. } => {
                let (di, gi, si) = (d.unknown_index(), g.unknown_index(), s.unknown_index());
                for (r, c) in [(di, gi), (di, di), (di, si), (si, gi), (si, di), (si, si)] {
                    if let (Some(r), Some(c)) = (r, c) {
                        pat.push((r, c));
                    }
                }
            }
        }
    }
    pat
}

/// Newton solver tuning knobs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NewtonOptions {
    pub max_iter: usize,
    /// Absolute voltage tolerance, V.
    pub abstol_v: f64,
    /// Relative tolerance on all unknowns.
    pub reltol: f64,
    /// Conductance from every node to ground, S.
    pub gmin: f64,
    /// Largest node-voltage update applied per iteration, V.
    pub vstep_limit: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            max_iter: 150,
            abstol_v: 1e-9,
            reltol: 1e-6,
            gmin: 1e-12,
            // Unlimited by default: junction voltages are limited
            // individually by `pnjlim`, which converges exponential
            // ladders in a fraction of the iterations a global
            // node-voltage clamp needs. Fallback strategies (transient
            // retry, continuation) drop this to damp cycling models.
            vstep_limit: f64::INFINITY,
        }
    }
}

/// Companion model of one capacitor for the implicit integrators.
#[derive(Debug, Clone)]
pub(crate) struct CapCompanion {
    pub element_index: usize,
    p: NodeId,
    n: NodeId,
    c: f64,
    /// Voltage across the cap at the previous accepted time point.
    v_prev: f64,
    /// Current through the cap at the previous accepted time point.
    i_prev: f64,
    /// Equivalent conductance for the current step.
    geq: f64,
    /// Constant term of the companion current for the current step:
    /// `i = geq·v + ieq`.
    ieq: f64,
}

impl CapCompanion {
    /// Builds the companion from the DC initial condition (zero current).
    pub fn at_rest(element_index: usize, p: NodeId, n: NodeId, c: f64, x: &[f64]) -> Self {
        let v = node_v(p, x) - node_v(n, x);
        Self {
            element_index,
            p,
            n,
            c,
            v_prev: v,
            i_prev: 0.0,
            geq: 0.0,
            ieq: 0.0,
        }
    }

    /// Computes `geq`/`ieq` for a step of size `h`; trapezoidal when
    /// `trapezoidal` is set, backward Euler otherwise.
    pub fn prepare(&mut self, h: f64, trapezoidal: bool) {
        if trapezoidal {
            self.geq = 2.0 * self.c / h;
            self.ieq = -(self.geq * self.v_prev + self.i_prev);
        } else {
            self.geq = self.c / h;
            self.ieq = -self.geq * self.v_prev;
        }
    }

    /// Accepts the time point: records the new voltage and branch current.
    pub fn commit(&mut self, x: &[f64]) {
        let v = node_v(self.p, x) - node_v(self.n, x);
        self.i_prev = self.geq * v + self.ieq;
        self.v_prev = v;
    }
}

/// Companion model of one inductor for the implicit integrators: the
/// branch equation becomes `v − R_eq·i = E_eq`.
#[derive(Debug, Clone)]
pub(crate) struct IndCompanion {
    pub element_index: usize,
    p: NodeId,
    n: NodeId,
    branch: usize,
    l: f64,
    /// Branch current at the previous accepted time point.
    i_prev: f64,
    /// Voltage across the inductor at the previous accepted point.
    v_prev: f64,
    /// Equivalent series resistance for the current step.
    r_eq: f64,
    /// Equivalent EMF for the current step.
    e_eq: f64,
}

impl IndCompanion {
    /// Builds the companion from the DC initial condition (the DC
    /// solution's branch current, zero voltage).
    pub fn at_rest(
        element_index: usize,
        p: NodeId,
        n: NodeId,
        branch: usize,
        l: f64,
        x: &[f64],
        n_nodes: usize,
    ) -> Self {
        Self {
            element_index,
            p,
            n,
            branch,
            l,
            i_prev: x[n_nodes + branch],
            v_prev: 0.0,
            r_eq: 0.0,
            e_eq: 0.0,
        }
    }

    /// Computes `r_eq`/`e_eq` for a step of size `h`.
    pub fn prepare(&mut self, h: f64, trapezoidal: bool) {
        if trapezoidal {
            self.r_eq = 2.0 * self.l / h;
            self.e_eq = -self.v_prev - self.r_eq * self.i_prev;
        } else {
            self.r_eq = self.l / h;
            self.e_eq = -self.r_eq * self.i_prev;
        }
    }

    /// Accepts the time point.
    pub fn commit(&mut self, x: &[f64], n_nodes: usize) {
        self.i_prev = x[n_nodes + self.branch];
        self.v_prev = node_v(self.p, x) - node_v(self.n, x);
    }
}

#[inline]
fn node_v(id: NodeId, x: &[f64]) -> f64 {
    match id.unknown_index() {
        Some(i) => x[i],
        None => 0.0,
    }
}

/// Runs Newton iteration on the MNA system at a fixed time point.
///
/// * `ws` is the per-topology solve state from
///   [`MnaWorkspace::for_circuit`] (matrix, factors, buffers), reused
///   across iterations, bias points, and time steps;
/// * `time = None` → DC (capacitors open);
/// * `caps = Some(..)` → transient companions (must cover every
///   capacitor, prepared for the current step);
/// * `source_scale` multiplies all independent sources (source stepping);
/// * `gmin` is the node-to-ground leak used on this attempt.
///
/// On success `x` holds the converged solution and the iteration count
/// is returned.
#[allow(clippy::too_many_arguments)]
pub(crate) fn newton_solve(
    circuit: &Circuit,
    ws: &mut MnaWorkspace,
    x: &mut [f64],
    time: Option<f64>,
    caps: Option<(&[CapCompanion], &[IndCompanion])>,
    source_scale: f64,
    gmin: f64,
    opts: &NewtonOptions,
) -> Result<usize, SpiceError> {
    let n_unknowns = circuit.num_unknowns();
    debug_assert_eq!(x.len(), n_unknowns);
    let n_nodes = circuit.num_nodes();

    // Per-solve telemetry: iteration count, convergence verdict, final
    // residual (largest node-voltage update), and the replay-vs-full
    // refactorization decisions taken on the sparse path. Inert — a
    // thread-local flag check — unless a subscriber is installed.
    // Always-on aggregates: per-analysis solve and iteration totals in
    // the process-global metrics registry. Observation only — nothing
    // downstream reads these, so results stay bit-identical.
    let record_newton = |iters: usize| {
        if time.is_some() {
            carbon_metrics::global_counter!("spice.newton.solves.tran").incr();
            carbon_metrics::global_counter!("spice.newton.iterations.tran").add(iters as u64);
        } else {
            carbon_metrics::global_counter!("spice.newton.solves.dc").incr();
            carbon_metrics::global_counter!("spice.newton.iterations.dc").add(iters as u64);
        }
    };

    let mut solve_span = span!("spice.newton_solve");
    if solve_span.is_live() {
        solve_span.record("n", n_unknowns);
        solve_span.record(
            "matrix",
            match &ws.matrix {
                MnaMatrix::Dense(_) => "dense",
                MnaMatrix::Sparse { .. } => "sparse",
            },
        );
        solve_span.record("transient", time.is_some());
    }
    let mut repivots = 0u64;
    let mut last_dv = f64::NAN;

    // Seed the junction-limiting state from the incoming iterate so a
    // warm start passes through pnjlim untouched on its first iteration.
    for (jv, e) in ws.junction_v.iter_mut().zip(&circuit.elements) {
        if let ElementKind::Diode { p, n, .. } = e.kind {
            *jv = node_v(p, x) - node_v(n, x);
        }
    }
    // With no seed at all (`x` identically zero), a junction's zero-bias
    // conductance is below `gmin` and the first linear solve tells Newton
    // nothing about the diodes. SPICE's junction initialization: evaluate
    // every junction at its critical voltage on the first iteration so
    // the exponentials enter the Jacobian from the start.
    let init_junctions = x.iter().all(|&v| v == 0.0);

    for iter in 0..opts.max_iter {
        // Cooperative-cancellation checkpoint: a serve job whose
        // deadline passed stops between Newton iterations, never
        // mid-factorization. Costs one thread-local read when no token
        // is installed.
        if carbon_runtime::cancel::cancelled() {
            if solve_span.is_live() {
                solve_span.record("iters", iter);
                solve_span.record("converged", false);
                solve_span.record("cancelled", true);
            }
            record_newton(iter);
            return Err(SpiceError::Cancelled {
                analysis: if time.is_some() {
                    "transient newton solve"
                } else {
                    "dc newton solve"
                },
            });
        }
        let z = &mut ws.z;
        let x_new = &mut ws.x_new;
        let junction_v = &mut ws.junction_v;
        let vcrit = &ws.vcrit;
        let init = iter == 0 && init_junctions;
        z.fill(0.0);
        match &mut ws.matrix {
            MnaMatrix::Dense(a) => {
                a.clear();
                stamp_all(
                    circuit,
                    x,
                    time,
                    caps,
                    source_scale,
                    a,
                    z,
                    junction_v,
                    vcrit,
                    init,
                );
                for i in 0..n_nodes {
                    a.add(i, i, gmin);
                }
                x_new.copy_from_slice(z);
                a.solve_in_place(x_new)?;
            }
            MnaMatrix::Sparse { a, lu } => {
                a.clear();
                stamp_all(
                    circuit,
                    x,
                    time,
                    caps,
                    source_scale,
                    a,
                    z,
                    junction_v,
                    vcrit,
                    init,
                );
                for i in 0..n_nodes {
                    a.add(i, i, gmin);
                }
                if lu.is_factored() {
                    match lu.refactor(a)? {
                        Refactor::Replayed => {
                            counter!("spice.sparse.replay");
                            carbon_metrics::global_counter!("spice.sparse.replay").incr();
                        }
                        Refactor::Repivoted => {
                            // The pivot-growth staleness check rejected
                            // the cached pivot order — the event sweeps
                            // and campaigns watch for fallback-rate
                            // spikes.
                            counter!("spice.sparse.repivot");
                            carbon_metrics::global_counter!("spice.sparse.repivot").incr();
                            instant!("spice.sparse.stale_pivot", "iter" = iter, "n" = n_unknowns);
                            repivots += 1;
                        }
                    }
                } else {
                    lu.factor(a)?;
                    counter!("spice.sparse.factor");
                    carbon_metrics::global_counter!("spice.sparse.factor").incr();
                }
                x_new.copy_from_slice(z);
                lu.solve(x_new);
            }
        }

        // Largest update; voltage damping applies to node unknowns only.
        let mut dv_max = 0.0_f64;
        for i in 0..n_nodes {
            dv_max = dv_max.max((x_new[i] - x[i]).abs());
        }
        last_dv = dv_max;
        let mut converged = true;
        for i in 0..n_unknowns {
            let tol = if i < n_nodes {
                opts.abstol_v + opts.reltol * x_new[i].abs()
            } else {
                1e-12 + opts.reltol * x_new[i].abs()
            };
            if (x_new[i] - x[i]).abs() > tol {
                converged = false;
                break;
            }
        }
        if converged {
            x.copy_from_slice(x_new);
            if solve_span.is_live() {
                solve_span.record("iters", iter + 1);
                solve_span.record("converged", true);
                solve_span.record("residual", dv_max);
                solve_span.record("repivots", repivots);
            }
            record_newton(iter + 1);
            return Ok(iter + 1);
        }
        if dv_max > opts.vstep_limit {
            // Damp per component: each node voltage moves at most
            // `vstep_limit` towards its Newton target, but nodes with
            // small updates move in full. A single far-from-converged
            // node (e.g. a supply ramping from the zero seed) therefore
            // doesn't stall the rest of the circuit, which roughly
            // halves the iteration count on supply-fed ladders compared
            // to scaling the whole update vector. Branch currents
            // follow the voltages and are not clamped.
            for i in 0..n_nodes {
                let dv = x_new[i] - x[i];
                x[i] += dv.clamp(-opts.vstep_limit, opts.vstep_limit);
            }
            x[n_nodes..n_unknowns].copy_from_slice(&x_new[n_nodes..n_unknowns]);
        } else {
            x.copy_from_slice(x_new);
        }
    }
    if solve_span.is_live() {
        solve_span.record("iters", opts.max_iter);
        solve_span.record("converged", false);
        solve_span.record("residual", last_dv);
        solve_span.record("repivots", repivots);
    }
    record_newton(opts.max_iter);
    Err(SpiceError::NonConvergence {
        analysis: if time.is_some() {
            "transient point"
        } else {
            "dc operating point"
        },
        iterations: opts.max_iter,
        residual: last_dv,
    })
}

/// Stamps every element into `(a, z)` linearized at the iterate `x`.
///
/// Generic over the [`Stamp`] sink so the same element code fills the
/// dense and the sparse matrix.
#[allow(clippy::too_many_arguments)]
fn stamp_all<S: Stamp>(
    circuit: &Circuit,
    x: &[f64],
    time: Option<f64>,
    caps: Option<(&[CapCompanion], &[IndCompanion])>,
    source_scale: f64,
    a: &mut S,
    z: &mut [f64],
    junction_v: &mut [f64],
    vcrit: &[f64],
    init_junctions: bool,
) {
    let n_nodes = circuit.num_nodes();
    // Conductance stamp between two nodes.
    let stamp_g = |a: &mut S, p: NodeId, n: NodeId, g: f64| {
        if let Some(i) = p.unknown_index() {
            a.add(i, i, g);
            if let Some(j) = n.unknown_index() {
                a.add(i, j, -g);
                a.add(j, i, -g);
            }
        }
        if let Some(j) = n.unknown_index() {
            a.add(j, j, g);
        }
    };
    // Current `i_const` flowing from p to n through the element (added to
    // the RHS with the proper signs).
    let stamp_i = |z: &mut [f64], p: NodeId, n: NodeId, i_const: f64| {
        if let Some(i) = p.unknown_index() {
            z[i] -= i_const;
        }
        if let Some(j) = n.unknown_index() {
            z[j] += i_const;
        }
    };

    for (idx, e) in circuit.elements.iter().enumerate() {
        match &e.kind {
            ElementKind::Resistor { p, n, g } => stamp_g(a, *p, *n, *g),
            ElementKind::Capacitor { .. } => {
                if let Some((caps, _)) = caps {
                    let cap = caps
                        .iter()
                        .find(|c| c.element_index == idx)
                        .expect("companion exists for every capacitor");
                    stamp_g(a, cap.p, cap.n, cap.geq);
                    stamp_i(z, cap.p, cap.n, cap.ieq);
                }
                // DC: open circuit — no stamp (gmin keeps nodes anchored).
            }
            ElementKind::Inductor { p, n, branch, .. } => {
                let bi = n_nodes + branch;
                if let Some(i) = p.unknown_index() {
                    a.add(i, bi, 1.0);
                    a.add(bi, i, 1.0);
                }
                if let Some(j) = n.unknown_index() {
                    a.add(j, bi, -1.0);
                    a.add(bi, j, -1.0);
                }
                if let Some((_, inds)) = caps {
                    let ind = inds
                        .iter()
                        .find(|c| c.element_index == idx)
                        .expect("companion exists for every inductor");
                    a.add(bi, bi, -ind.r_eq);
                    z[bi] += ind.e_eq;
                }
                // DC: v_p − v_n = 0 (a short), which is the bare stamp.
            }
            ElementKind::VoltageSource { p, n, branch, wave } => {
                let bi = n_nodes + branch;
                let v = source_scale
                    * match time {
                        Some(t) => wave.value_at(t),
                        None => wave.dc_value(),
                    };
                if let Some(i) = p.unknown_index() {
                    a.add(i, bi, 1.0);
                    a.add(bi, i, 1.0);
                }
                if let Some(j) = n.unknown_index() {
                    a.add(j, bi, -1.0);
                    a.add(bi, j, -1.0);
                }
                z[bi] += v;
            }
            ElementKind::CurrentSource { p, n, wave } => {
                let i = source_scale
                    * match time {
                        Some(t) => wave.value_at(t),
                        None => wave.dc_value(),
                    };
                // Injects from n into p: equivalent to current −i flowing
                // p → n through the element.
                stamp_i(z, *p, *n, -i);
            }
            ElementKind::Diode {
                p,
                n,
                i_s,
                n_ideality,
            } => {
                // pnjlim: load the exponential at a limited junction
                // voltage so the chain turns on in logarithmic steps
                // instead of one junction per iteration. The limiter is
                // a no-op within 2·vt of the previous loaded voltage, so
                // converged solutions are exactly the unlimited ones.
                let v_iter = if init_junctions {
                    vcrit[idx]
                } else {
                    node_v(*p, x) - node_v(*n, x)
                };
                let vt = n_ideality * 0.02585;
                let v = pnjlim(v_iter, junction_v[idx], vt, vcrit[idx]);
                junction_v[idx] = v;
                let (i_d, g_d) = diode_iv(v, *i_s, *n_ideality);
                stamp_g(a, *p, *n, g_d);
                stamp_i(z, *p, *n, i_d - g_d * v);
            }
            ElementKind::Vccs { p, n, cp, cn, gm } => {
                // Current gm·(v(cp) − v(cn)) enters p, leaves n: current
                // flowing p → n through the element is −gm·vc.
                let mut add = |row: Option<usize>, col: Option<usize>, v: f64| {
                    if let (Some(r), Some(c)) = (row, col) {
                        a.add(r, c, v);
                    }
                };
                let (pi, ni) = (p.unknown_index(), n.unknown_index());
                let (cpi, cni) = (cp.unknown_index(), cn.unknown_index());
                add(pi, cpi, -gm);
                add(pi, cni, *gm);
                add(ni, cpi, *gm);
                add(ni, cni, -gm);
            }
            ElementKind::Fet { d, g, s, model } => {
                let vgs = node_v(*g, x) - node_v(*s, x);
                let vds = node_v(*d, x) - node_v(*s, x);
                // One combined-eval dispatch: table models batch the
                // value and its finite-difference stencil.
                let (id, gm, gds) = model.eval(vgs, vds);
                // Guard against pathological derivative signs breaking
                // the Jacobian: clamp to a tiny positive floor.
                let gds = gds.max(1e-12);
                let ieq = id - gm * vgs - gds * vds;
                let (di, gi, si) = (d.unknown_index(), g.unknown_index(), s.unknown_index());
                let mut add = |row: Option<usize>, col: Option<usize>, v: f64| {
                    if let (Some(r), Some(c)) = (row, col) {
                        a.add(r, c, v);
                    }
                };
                // Current id flows d → s through the channel.
                add(di, gi, gm);
                add(di, di, gds);
                add(di, si, -(gm + gds));
                add(si, gi, -gm);
                add(si, di, -gds);
                add(si, si, gm + gds);
                if let Some(i) = di {
                    z[i] -= ieq;
                }
                if let Some(i) = si {
                    z[i] += ieq;
                }
            }
        }
    }
}

//! The Newton–Raphson MNA core shared by all analyses.

use crate::element::{diode_iv, ElementKind};
use crate::error::SpiceError;
use crate::linalg::DenseMatrix;
use crate::netlist::{Circuit, NodeId};

/// Newton solver tuning knobs.
#[derive(Debug, Clone, Copy)]
pub(crate) struct NewtonOptions {
    pub max_iter: usize,
    /// Absolute voltage tolerance, V.
    pub abstol_v: f64,
    /// Relative tolerance on all unknowns.
    pub reltol: f64,
    /// Conductance from every node to ground, S.
    pub gmin: f64,
    /// Largest node-voltage update applied per iteration, V.
    pub vstep_limit: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        Self {
            max_iter: 150,
            abstol_v: 1e-9,
            reltol: 1e-6,
            gmin: 1e-12,
            vstep_limit: 0.5,
        }
    }
}

/// Companion model of one capacitor for the implicit integrators.
#[derive(Debug, Clone)]
pub(crate) struct CapCompanion {
    pub element_index: usize,
    p: NodeId,
    n: NodeId,
    c: f64,
    /// Voltage across the cap at the previous accepted time point.
    v_prev: f64,
    /// Current through the cap at the previous accepted time point.
    i_prev: f64,
    /// Equivalent conductance for the current step.
    geq: f64,
    /// Constant term of the companion current for the current step:
    /// `i = geq·v + ieq`.
    ieq: f64,
}

impl CapCompanion {
    /// Builds the companion from the DC initial condition (zero current).
    pub fn at_rest(element_index: usize, p: NodeId, n: NodeId, c: f64, x: &[f64]) -> Self {
        let v = node_v(p, x) - node_v(n, x);
        Self {
            element_index,
            p,
            n,
            c,
            v_prev: v,
            i_prev: 0.0,
            geq: 0.0,
            ieq: 0.0,
        }
    }

    /// Computes `geq`/`ieq` for a step of size `h`; trapezoidal when
    /// `trapezoidal` is set, backward Euler otherwise.
    pub fn prepare(&mut self, h: f64, trapezoidal: bool) {
        if trapezoidal {
            self.geq = 2.0 * self.c / h;
            self.ieq = -(self.geq * self.v_prev + self.i_prev);
        } else {
            self.geq = self.c / h;
            self.ieq = -self.geq * self.v_prev;
        }
    }

    /// Accepts the time point: records the new voltage and branch current.
    pub fn commit(&mut self, x: &[f64]) {
        let v = node_v(self.p, x) - node_v(self.n, x);
        self.i_prev = self.geq * v + self.ieq;
        self.v_prev = v;
    }
}

/// Companion model of one inductor for the implicit integrators: the
/// branch equation becomes `v − R_eq·i = E_eq`.
#[derive(Debug, Clone)]
pub(crate) struct IndCompanion {
    pub element_index: usize,
    p: NodeId,
    n: NodeId,
    branch: usize,
    l: f64,
    /// Branch current at the previous accepted time point.
    i_prev: f64,
    /// Voltage across the inductor at the previous accepted point.
    v_prev: f64,
    /// Equivalent series resistance for the current step.
    r_eq: f64,
    /// Equivalent EMF for the current step.
    e_eq: f64,
}

impl IndCompanion {
    /// Builds the companion from the DC initial condition (the DC
    /// solution's branch current, zero voltage).
    pub fn at_rest(
        element_index: usize,
        p: NodeId,
        n: NodeId,
        branch: usize,
        l: f64,
        x: &[f64],
        n_nodes: usize,
    ) -> Self {
        Self {
            element_index,
            p,
            n,
            branch,
            l,
            i_prev: x[n_nodes + branch],
            v_prev: 0.0,
            r_eq: 0.0,
            e_eq: 0.0,
        }
    }

    /// Computes `r_eq`/`e_eq` for a step of size `h`.
    pub fn prepare(&mut self, h: f64, trapezoidal: bool) {
        if trapezoidal {
            self.r_eq = 2.0 * self.l / h;
            self.e_eq = -self.v_prev - self.r_eq * self.i_prev;
        } else {
            self.r_eq = self.l / h;
            self.e_eq = -self.r_eq * self.i_prev;
        }
    }

    /// Accepts the time point.
    pub fn commit(&mut self, x: &[f64], n_nodes: usize) {
        self.i_prev = x[n_nodes + self.branch];
        self.v_prev = node_v(self.p, x) - node_v(self.n, x);
    }
}

#[inline]
fn node_v(id: NodeId, x: &[f64]) -> f64 {
    match id.unknown_index() {
        Some(i) => x[i],
        None => 0.0,
    }
}

/// Runs Newton iteration on the MNA system at a fixed time point.
///
/// * `time = None` → DC (capacitors open);
/// * `caps = Some(..)` → transient companions (must cover every
///   capacitor, prepared for the current step);
/// * `source_scale` multiplies all independent sources (source stepping);
/// * `gmin` is the node-to-ground leak used on this attempt.
///
/// On success `x` holds the converged solution.
pub(crate) fn newton_solve(
    circuit: &Circuit,
    x: &mut [f64],
    time: Option<f64>,
    caps: Option<(&[CapCompanion], &[IndCompanion])>,
    source_scale: f64,
    gmin: f64,
    opts: &NewtonOptions,
) -> Result<usize, SpiceError> {
    let n_unknowns = circuit.num_unknowns();
    debug_assert_eq!(x.len(), n_unknowns);
    let n_nodes = circuit.num_nodes();
    let mut a = DenseMatrix::zeros(n_unknowns);
    let mut z = vec![0.0; n_unknowns];

    for iter in 0..opts.max_iter {
        a.clear();
        z.fill(0.0);
        stamp_all(circuit, x, time, caps, source_scale, &mut a, &mut z);
        for i in 0..n_nodes {
            a.add(i, i, gmin);
        }
        let mut x_new = z.clone();
        a.solve_in_place(&mut x_new)?;

        // Largest update; voltage damping applies to node unknowns only.
        let mut dv_max = 0.0_f64;
        for i in 0..n_nodes {
            dv_max = dv_max.max((x_new[i] - x[i]).abs());
        }
        let mut converged = true;
        for i in 0..n_unknowns {
            let tol = if i < n_nodes {
                opts.abstol_v + opts.reltol * x_new[i].abs()
            } else {
                1e-12 + opts.reltol * x_new[i].abs()
            };
            if (x_new[i] - x[i]).abs() > tol {
                converged = false;
                break;
            }
        }
        if converged {
            x.copy_from_slice(&x_new);
            return Ok(iter + 1);
        }
        if dv_max > opts.vstep_limit {
            let scale = opts.vstep_limit / dv_max;
            for i in 0..n_unknowns {
                x[i] += scale * (x_new[i] - x[i]);
            }
        } else {
            x.copy_from_slice(&x_new);
        }
    }
    Err(SpiceError::NonConvergence {
        analysis: if time.is_some() {
            "transient point"
        } else {
            "dc operating point"
        },
        iterations: opts.max_iter,
        residual: f64::NAN,
    })
}

/// Stamps every element into `(a, z)` linearized at the iterate `x`.
fn stamp_all(
    circuit: &Circuit,
    x: &[f64],
    time: Option<f64>,
    caps: Option<(&[CapCompanion], &[IndCompanion])>,
    source_scale: f64,
    a: &mut DenseMatrix,
    z: &mut [f64],
) {
    let n_nodes = circuit.num_nodes();
    // Conductance stamp between two nodes.
    let stamp_g = |a: &mut DenseMatrix, p: NodeId, n: NodeId, g: f64| {
        if let Some(i) = p.unknown_index() {
            a.add(i, i, g);
            if let Some(j) = n.unknown_index() {
                a.add(i, j, -g);
                a.add(j, i, -g);
            }
        }
        if let Some(j) = n.unknown_index() {
            a.add(j, j, g);
        }
    };
    // Current `i_const` flowing from p to n through the element (added to
    // the RHS with the proper signs).
    let stamp_i = |z: &mut [f64], p: NodeId, n: NodeId, i_const: f64| {
        if let Some(i) = p.unknown_index() {
            z[i] -= i_const;
        }
        if let Some(j) = n.unknown_index() {
            z[j] += i_const;
        }
    };

    for (idx, e) in circuit.elements.iter().enumerate() {
        match &e.kind {
            ElementKind::Resistor { p, n, g } => stamp_g(a, *p, *n, *g),
            ElementKind::Capacitor { .. } => {
                if let Some((caps, _)) = caps {
                    let cap = caps
                        .iter()
                        .find(|c| c.element_index == idx)
                        .expect("companion exists for every capacitor");
                    stamp_g(a, cap.p, cap.n, cap.geq);
                    stamp_i(z, cap.p, cap.n, cap.ieq);
                }
                // DC: open circuit — no stamp (gmin keeps nodes anchored).
            }
            ElementKind::Inductor { p, n, branch, .. } => {
                let bi = n_nodes + branch;
                if let Some(i) = p.unknown_index() {
                    a.add(i, bi, 1.0);
                    a.add(bi, i, 1.0);
                }
                if let Some(j) = n.unknown_index() {
                    a.add(j, bi, -1.0);
                    a.add(bi, j, -1.0);
                }
                if let Some((_, inds)) = caps {
                    let ind = inds
                        .iter()
                        .find(|c| c.element_index == idx)
                        .expect("companion exists for every inductor");
                    a.add(bi, bi, -ind.r_eq);
                    z[bi] += ind.e_eq;
                }
                // DC: v_p − v_n = 0 (a short), which is the bare stamp.
            }
            ElementKind::VoltageSource { p, n, branch, wave } => {
                let bi = n_nodes + branch;
                let v = source_scale
                    * match time {
                        Some(t) => wave.value_at(t),
                        None => wave.dc_value(),
                    };
                if let Some(i) = p.unknown_index() {
                    a.add(i, bi, 1.0);
                    a.add(bi, i, 1.0);
                }
                if let Some(j) = n.unknown_index() {
                    a.add(j, bi, -1.0);
                    a.add(bi, j, -1.0);
                }
                z[bi] += v;
            }
            ElementKind::CurrentSource { p, n, wave } => {
                let i = source_scale
                    * match time {
                        Some(t) => wave.value_at(t),
                        None => wave.dc_value(),
                    };
                // Injects from n into p: equivalent to current −i flowing
                // p → n through the element.
                stamp_i(z, *p, *n, -i);
            }
            ElementKind::Diode {
                p,
                n,
                i_s,
                n_ideality,
            } => {
                let v = node_v(*p, x) - node_v(*n, x);
                let (i_d, g_d) = diode_iv(v, *i_s, *n_ideality);
                stamp_g(a, *p, *n, g_d);
                stamp_i(z, *p, *n, i_d - g_d * v);
            }
            ElementKind::Vccs { p, n, cp, cn, gm } => {
                // Current gm·(v(cp) − v(cn)) enters p, leaves n: current
                // flowing p → n through the element is −gm·vc.
                let mut add = |row: Option<usize>, col: Option<usize>, v: f64| {
                    if let (Some(r), Some(c)) = (row, col) {
                        a.add(r, c, v);
                    }
                };
                let (pi, ni) = (p.unknown_index(), n.unknown_index());
                let (cpi, cni) = (cp.unknown_index(), cn.unknown_index());
                add(pi, cpi, -gm);
                add(pi, cni, *gm);
                add(ni, cpi, *gm);
                add(ni, cni, -gm);
            }
            ElementKind::Fet { d, g, s, model } => {
                let vgs = node_v(*g, x) - node_v(*s, x);
                let vds = node_v(*d, x) - node_v(*s, x);
                let id = model.ids(vgs, vds);
                let (gm, gds) = model.gm_gds(vgs, vds);
                // Guard against pathological derivative signs breaking
                // the Jacobian: clamp to a tiny positive floor.
                let gds = gds.max(1e-12);
                let ieq = id - gm * vgs - gds * vds;
                let (di, gi, si) = (d.unknown_index(), g.unknown_index(), s.unknown_index());
                let mut add = |row: Option<usize>, col: Option<usize>, v: f64| {
                    if let (Some(r), Some(c)) = (row, col) {
                        a.add(r, c, v);
                    }
                };
                // Current id flows d → s through the channel.
                add(di, gi, gm);
                add(di, di, gds);
                add(di, si, -(gm + gds));
                add(si, gi, -gm);
                add(si, di, -gds);
                add(si, si, gm + gds);
                if let Some(i) = di {
                    z[i] -= ieq;
                }
                if let Some(i) = si {
                    z[i] += ieq;
                }
            }
        }
    }
}

//! AC small-signal analysis: linearize at the DC operating point and
//! solve the complex MNA system `(G + jωC)·x = b` per frequency.
//!
//! This is the analysis behind the paper's §II RF argument (via
//! Schwierz): a FET without current saturation has a large output
//! conductance, hence no voltage gain, hence a negligible maximum
//! oscillation frequency — "this only enables very low values of
//! f_max".

use crate::complex::{Complex, ComplexMatrix};
use crate::element::{diode_iv, ElementKind};
use crate::error::SpiceError;
use crate::netlist::{Circuit, NodeId};

/// Result of an AC sweep: node-voltage phasors per frequency.
#[derive(Debug, Clone)]
pub struct AcResult {
    freqs: Vec<f64>,
    node_names: Vec<String>,
    /// One phasor vector (nodes then branches) per frequency.
    solutions: Vec<Vec<Complex>>,
}

impl AcResult {
    /// The swept frequencies, Hz.
    pub fn frequencies(&self) -> &[f64] {
        &self.freqs
    }

    /// The phasor of a node across the sweep.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for unknown names.
    pub fn phasors(&self, node: &str) -> Result<Vec<Complex>, SpiceError> {
        let lower = node.to_ascii_lowercase();
        if lower == "0" || lower == "gnd" {
            return Ok(vec![Complex::ZERO; self.freqs.len()]);
        }
        let idx =
            self.node_names
                .iter()
                .position(|n| *n == lower)
                .ok_or(SpiceError::UnknownNode {
                    name: node.to_owned(),
                })?;
        Ok(self.solutions.iter().map(|s| s[idx]).collect())
    }

    /// Voltage magnitude of a node across the sweep.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for unknown names.
    pub fn magnitude(&self, node: &str) -> Result<Vec<f64>, SpiceError> {
        Ok(self.phasors(node)?.into_iter().map(Complex::abs).collect())
    }

    /// Phase (radians) of a node across the sweep.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for unknown names.
    pub fn phase(&self, node: &str) -> Result<Vec<f64>, SpiceError> {
        Ok(self.phasors(node)?.into_iter().map(Complex::arg).collect())
    }

    /// The −3 dB frequency of a node's response relative to its
    /// lowest-frequency magnitude, if the response crosses it.
    pub fn corner_frequency(&self, node: &str) -> Result<Option<f64>, SpiceError> {
        let mag = self.magnitude(node)?;
        let Some(&m0) = mag.first() else {
            return Ok(None);
        };
        let target = m0 / 2.0_f64.sqrt();
        for k in 1..mag.len() {
            if (mag[k - 1] >= target) != (mag[k] >= target) {
                // Log-interpolate the crossing.
                let (f0, f1) = (self.freqs[k - 1], self.freqs[k]);
                let (g0, g1) = (mag[k - 1], mag[k]);
                if g0 == g1 {
                    return Ok(Some(f0));
                }
                let t = (target - g0) / (g1 - g0);
                return Ok(Some(f0 * (f1 / f0).powf(t)));
            }
        }
        Ok(None)
    }
}

impl Circuit {
    /// AC sweep: the named voltage or current source becomes the unit
    /// AC stimulus; all other independent sources are AC-quiet (but set
    /// the DC operating point).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownSource`] if `source` does not name a
    /// source, [`SpiceError::InvalidSweep`] for an empty or non-positive
    /// frequency list, and solver errors from the operating point or any
    /// frequency point.
    pub fn ac_sweep(&self, source: &str, freqs: &[f64]) -> Result<AcResult, SpiceError> {
        if freqs.is_empty() || freqs.iter().any(|&f| !(f.is_finite() && f > 0.0)) {
            return Err(SpiceError::InvalidSweep {
                reason: "frequency list must be non-empty and positive".to_owned(),
            });
        }
        let source = source.to_ascii_lowercase();
        let has_source = self.elements.iter().any(|e| {
            e.name == source
                && matches!(
                    e.kind,
                    ElementKind::VoltageSource { .. } | ElementKind::CurrentSource { .. }
                )
        });
        if !has_source {
            return Err(SpiceError::UnknownSource {
                name: source.to_owned(),
            });
        }
        let op = self.op()?;
        let op_v = |id: NodeId| -> f64 {
            match id.unknown_index() {
                Some(i) => op_voltage_by_index(&op, i),
                None => 0.0,
            }
        };
        let n_nodes = self.num_nodes();
        let n_unknowns = self.num_unknowns();
        let mut solutions = Vec::with_capacity(freqs.len());
        for &f in freqs {
            let omega = 2.0 * std::f64::consts::PI * f;
            let mut a = ComplexMatrix::zeros(n_unknowns);
            let mut b = vec![Complex::ZERO; n_unknowns];
            for e in &self.elements {
                stamp_ac(e, self, &source, omega, &op_v, &mut a, &mut b);
            }
            for i in 0..n_nodes {
                a.add(i, i, Complex::new(1e-12, 0.0));
            }
            a.solve_in_place(&mut b)?;
            solutions.push(b);
        }
        let node_names = (1..=n_nodes)
            .map(|i| self.node_name(NodeId(i)).to_owned())
            .collect();
        Ok(AcResult {
            freqs: freqs.to_vec(),
            node_names,
            solutions,
        })
    }
}

/// Reads the op-point voltage of unknown `i` (node index, 0-based).
fn op_voltage_by_index(op: &super::OpResult, i: usize) -> f64 {
    op.node_voltage_by_index(i)
}

#[allow(clippy::too_many_arguments)]
fn stamp_ac<F: Fn(NodeId) -> f64>(
    e: &crate::element::Element,
    circuit: &Circuit,
    stimulus: &str,
    omega: f64,
    op_v: &F,
    a: &mut ComplexMatrix,
    b: &mut [Complex],
) {
    let n_nodes = circuit.num_nodes();
    let stamp_y = |a: &mut ComplexMatrix, p: NodeId, n: NodeId, y: Complex| {
        if let Some(i) = p.unknown_index() {
            a.add(i, i, y);
            if let Some(j) = n.unknown_index() {
                a.add(i, j, -y);
                a.add(j, i, -y);
            }
        }
        if let Some(j) = n.unknown_index() {
            a.add(j, j, y);
        }
    };
    match &e.kind {
        ElementKind::Resistor { p, n, g } => stamp_y(a, *p, *n, Complex::new(*g, 0.0)),
        ElementKind::Capacitor { p, n, c } => stamp_y(a, *p, *n, Complex::imag(omega * c)),
        ElementKind::VoltageSource { p, n, branch, .. } => {
            let bi = n_nodes + branch;
            if let Some(i) = p.unknown_index() {
                a.add(i, bi, Complex::ONE);
                a.add(bi, i, Complex::ONE);
            }
            if let Some(j) = n.unknown_index() {
                a.add(j, bi, -Complex::ONE);
                a.add(bi, j, -Complex::ONE);
            }
            if e.name == stimulus {
                b[bi] += Complex::ONE;
            }
        }
        ElementKind::Inductor { p, n, branch, l } => {
            let bi = n_nodes + branch;
            if let Some(i) = p.unknown_index() {
                a.add(i, bi, Complex::ONE);
                a.add(bi, i, Complex::ONE);
            }
            if let Some(j) = n.unknown_index() {
                a.add(j, bi, -Complex::ONE);
                a.add(bi, j, -Complex::ONE);
            }
            a.add(bi, bi, -Complex::imag(omega * l));
        }
        ElementKind::CurrentSource { p, n, .. } => {
            if e.name == stimulus {
                // Unit AC current from n into p.
                if let Some(i) = p.unknown_index() {
                    b[i] += Complex::ONE;
                }
                if let Some(j) = n.unknown_index() {
                    b[j] -= Complex::ONE;
                }
            }
        }
        ElementKind::Diode {
            p,
            n,
            i_s,
            n_ideality,
        } => {
            let v = op_v(*p) - op_v(*n);
            let (_i, g) = diode_iv(v, *i_s, *n_ideality);
            stamp_y(a, *p, *n, Complex::new(g, 0.0));
        }
        ElementKind::Vccs { p, n, cp, cn, gm } => {
            let mut add = |row: Option<usize>, col: Option<usize>, v: f64| {
                if let (Some(r), Some(c)) = (row, col) {
                    a.add(r, c, Complex::new(v, 0.0));
                }
            };
            let (pi, ni) = (p.unknown_index(), n.unknown_index());
            let (cpi, cni) = (cp.unknown_index(), cn.unknown_index());
            add(pi, cpi, -gm);
            add(pi, cni, *gm);
            add(ni, cpi, *gm);
            add(ni, cni, -gm);
        }
        ElementKind::Fet { d, g, s, model } => {
            let vgs = op_v(*g) - op_v(*s);
            let vds = op_v(*d) - op_v(*s);
            let (gm, gds) = model.gm_gds(vgs, vds);
            let gds = gds.max(1e-12);
            let mut add = |row: Option<usize>, col: Option<usize>, v: f64| {
                if let (Some(r), Some(c)) = (row, col) {
                    a.add(r, c, Complex::new(v, 0.0));
                }
            };
            let (di, gi, si) = (d.unknown_index(), g.unknown_index(), s.unknown_index());
            add(di, gi, gm);
            add(di, di, gds);
            add(di, si, -(gm + gds));
            add(si, gi, -gm);
            add(si, di, -gds);
            add(si, si, gm + gds);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_lowpass_corner() {
        // R = 1 kΩ, C = 1 nF: f_c = 1/(2πRC) ≈ 159 kHz.
        let mut ckt = Circuit::new();
        ckt.voltage_source("vin", "in", "0", 0.0);
        ckt.resistor("r", "in", "out", 1e3).unwrap();
        ckt.capacitor("c", "out", "0", 1e-9).unwrap();
        let freqs: Vec<f64> = (0..60).map(|k| 1e3 * 10f64.powf(k as f64 / 10.0)).collect();
        let ac = ckt.ac_sweep("vin", &freqs).unwrap();
        let mag = ac.magnitude("out").unwrap();
        assert!((mag[0] - 1.0).abs() < 1e-3, "passband gain 1");
        assert!(*mag.last().unwrap() < 0.01, "stopband rolls off");
        let fc = ac.corner_frequency("out").unwrap().expect("crosses −3 dB");
        assert!((fc - 159.2e3).abs() / 159.2e3 < 0.05, "f_c = {fc:.3e}");
        // Phase approaches −90°.
        let ph = ac.phase("out").unwrap();
        assert!(ph.last().unwrap() < &-1.4);
    }

    #[test]
    fn ac_gain_of_vccs_amplifier() {
        // gm = 2 mS into 10 kΩ: |Av| = 20, flat (no caps).
        let mut ckt = Circuit::new();
        ckt.voltage_source("vin", "in", "0", 0.0);
        ckt.vccs("g1", "0", "out", "in", "0", 2e-3).unwrap();
        ckt.resistor("rl", "out", "0", 10e3).unwrap();
        let ac = ckt.ac_sweep("vin", &[1e3, 1e6, 1e9]).unwrap();
        let mag = ac.magnitude("out").unwrap();
        for m in mag {
            assert!((m - 20.0).abs() < 0.1, "|Av| = {m}");
        }
    }

    #[test]
    fn fet_common_source_ac_gain_matches_gm_over_gds() {
        #[derive(Debug)]
        struct LinearFet;
        impl crate::element::FetCurve for LinearFet {
            fn ids(&self, vgs: f64, vds: f64) -> f64 {
                1e-3 * vgs + 1e-5 * vds
            }
        }
        let mut ckt = Circuit::new();
        ckt.voltage_source("vdd", "vdd", "0", 1.0);
        ckt.voltage_source("vin", "g", "0", 0.5);
        ckt.resistor("rl", "vdd", "d", 1e5).unwrap();
        ckt.fet("m1", "d", "g", "0", std::sync::Arc::new(LinearFet))
            .unwrap();
        let ac = ckt.ac_sweep("vin", &[1e6]).unwrap();
        let gain = ac.magnitude("d").unwrap()[0];
        // |Av| = gm·(R_L ∥ 1/gds) = 1e-3·(1e5 ∥ 1e5) = 50.
        assert!((gain - 50.0).abs() < 1.0, "|Av| = {gain}");
    }

    #[test]
    fn stimulus_validation() {
        let mut ckt = Circuit::new();
        ckt.voltage_source("vin", "in", "0", 0.0);
        ckt.resistor("r", "in", "0", 1e3).unwrap();
        assert!(matches!(
            ckt.ac_sweep("nope", &[1e3]),
            Err(SpiceError::UnknownSource { .. })
        ));
        assert!(matches!(
            ckt.ac_sweep("vin", &[]),
            Err(SpiceError::InvalidSweep { .. })
        ));
        assert!(matches!(
            ckt.ac_sweep("vin", &[-1.0]),
            Err(SpiceError::InvalidSweep { .. })
        ));
        assert!(matches!(
            ckt.ac_sweep("r", &[1e3]),
            Err(SpiceError::UnknownSource { .. })
        ));
    }

    #[test]
    fn ground_phasor_is_zero() {
        let mut ckt = Circuit::new();
        ckt.voltage_source("vin", "in", "0", 0.0);
        ckt.resistor("r", "in", "0", 1e3).unwrap();
        let ac = ckt.ac_sweep("vin", &[1e3]).unwrap();
        assert_eq!(ac.magnitude("0").unwrap(), vec![0.0]);
        assert!(ac.magnitude("ghost").is_err());
    }
}

//! AC small-signal analysis: linearize at the DC operating point and
//! solve the complex MNA system `(G + jωC)·x = b` per frequency.
//!
//! This is the analysis behind the paper's §II RF argument (via
//! Schwierz): a FET without current saturation has a large output
//! conductance, hence no voltage gain, hence a negligible maximum
//! oscillation frequency — "this only enables very low values of
//! f_max".
//!
//! # Solver selection
//!
//! Small systems use dense complex Gaussian elimination
//! ([`ComplexMatrix`]); at and above the sparse threshold the sweep
//! switches to the scalar-generic sparse LU
//! ([`SparseLu<Complex>`](crate::sparse::SparseLu)). The `G + jωC`
//! sparsity pattern is frequency-independent — it is the union of the
//! conductance and susceptance patterns, which
//! [`collect_pattern`](super::engine::collect_pattern) already
//! produces for the transient companions — so the symbolic analysis
//! and fill-reducing ordering are computed once per circuit, the
//! ω-independent stamps are snapshotted once per sweep, and each
//! frequency point only restamps `jωC` and runs a numeric
//! [`replay`](crate::sparse::SparseLu::refactor) with the same
//! pivot-growth staleness fallback as the DC path.
//!
//! [`Circuit::ac_sweep_par`] fans the frequency grid out over the
//! deterministic executor in fixed-size chunks; each chunk factors at
//! its head frequency and replays the rest, so the result is
//! **byte-identical at every `CARBON_THREADS`** and — because the
//! serial sparse sweep follows the same factor-then-replay schedule —
//! byte-identical to [`Circuit::ac_sweep`] when `chunk` covers the
//! whole grid.

use super::engine::{collect_pattern, SPARSE_THRESHOLD};
use crate::complex::{Complex, ComplexMatrix};
use crate::element::{diode_iv, ElementKind};
use crate::error::SpiceError;
use crate::netlist::{Circuit, NodeId};
use crate::sparse::{Refactor, SparseLu, SparseMatrix};
use carbon_runtime::executor::Executor;
use carbon_trace::{counter, instant, span};

/// Node-to-ground leak stamped on every node diagonal, matching the
/// DC solver's default gmin so floating nodes stay anchored.
const AC_GMIN: f64 = 1e-12;

/// Which complex linear solver an AC sweep uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AcMethod {
    /// Dense below the sparse threshold (16 unknowns), sparse pattern
    /// reuse at and above it.
    #[default]
    Auto,
    /// Force dense complex elimination — the oracle the property tests
    /// compare the sparse path against.
    Dense,
    /// Force the sparse symbolic-once / replay-per-frequency path.
    Sparse,
}

impl AcMethod {
    /// Whether a sweep over `n` unknowns takes the sparse path.
    fn sparse_for(self, n: usize) -> bool {
        match self {
            Self::Auto => n >= SPARSE_THRESHOLD,
            Self::Dense => false,
            Self::Sparse => true,
        }
    }
}

/// Cached sparse AC solve state for one circuit topology: the
/// `G + jωC` matrix with its fixed pattern and the complex LU with its
/// fill-reducing ordering. Rebuilding one is cheap (the ordering is
/// O(nnz)), but caching it lets repeated sweeps on one circuit skip
/// the symbolic setup and reuse the factor allocations.
pub(crate) struct AcWorkspace {
    a: SparseMatrix<Complex>,
    lu: Box<SparseLu<Complex>>,
}

impl AcWorkspace {
    /// Builds the workspace from the circuit's full stamp pattern —
    /// the union of the conductance and susceptance patterns.
    fn for_circuit(circuit: &Circuit) -> Self {
        let n = circuit.num_unknowns();
        let a = SparseMatrix::from_entries(n, &collect_pattern(circuit));
        let lu = Box::new(SparseLu::new(&a));
        Self { a, lu }
    }
}

/// Result of an AC sweep: node-voltage phasors per frequency.
#[derive(Debug, Clone)]
pub struct AcResult {
    freqs: Vec<f64>,
    node_names: Vec<String>,
    /// One phasor vector (nodes then branches) per frequency.
    solutions: Vec<Vec<Complex>>,
}

impl AcResult {
    /// The swept frequencies, Hz.
    pub fn frequencies(&self) -> &[f64] {
        &self.freqs
    }

    /// The raw solution vectors — node-voltage phasors then branch
    /// currents — one per frequency, in sweep order. Exposed so the
    /// determinism tests can compare solver paths bit for bit.
    pub fn solutions(&self) -> &[Vec<Complex>] {
        &self.solutions
    }

    /// The phasor of a node across the sweep.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for unknown names.
    pub fn phasors(&self, node: &str) -> Result<Vec<Complex>, SpiceError> {
        let lower = node.to_ascii_lowercase();
        if lower == "0" || lower == "gnd" {
            return Ok(vec![Complex::ZERO; self.freqs.len()]);
        }
        let idx =
            self.node_names
                .iter()
                .position(|n| *n == lower)
                .ok_or(SpiceError::UnknownNode {
                    name: node.to_owned(),
                })?;
        Ok(self.solutions.iter().map(|s| s[idx]).collect())
    }

    /// Voltage magnitude of a node across the sweep.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for unknown names.
    pub fn magnitude(&self, node: &str) -> Result<Vec<f64>, SpiceError> {
        Ok(self.phasors(node)?.into_iter().map(Complex::abs).collect())
    }

    /// Phase (radians) of a node across the sweep.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for unknown names.
    pub fn phase(&self, node: &str) -> Result<Vec<f64>, SpiceError> {
        Ok(self.phasors(node)?.into_iter().map(Complex::arg).collect())
    }

    /// The −3 dB frequency of a node's response relative to its
    /// lowest-frequency magnitude, if the response crosses it.
    pub fn corner_frequency(&self, node: &str) -> Result<Option<f64>, SpiceError> {
        let mag = self.magnitude(node)?;
        let Some(&m0) = mag.first() else {
            return Ok(None);
        };
        let target = m0 / 2.0_f64.sqrt();
        for k in 1..mag.len() {
            if (mag[k - 1] >= target) != (mag[k] >= target) {
                // Log-interpolate the crossing.
                let (f0, f1) = (self.freqs[k - 1], self.freqs[k]);
                let (g0, g1) = (mag[k - 1], mag[k]);
                if g0 == g1 {
                    return Ok(Some(f0));
                }
                let t = (target - g0) / (g1 - g0);
                return Ok(Some(f0 * (f1 / f0).powf(t)));
            }
        }
        Ok(None)
    }
}

impl Circuit {
    /// AC sweep: the named voltage or current source becomes the unit
    /// AC stimulus; all other independent sources are AC-quiet (but set
    /// the DC operating point). Solver choice is [`AcMethod::Auto`].
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownAcSource`] if `source` does not name
    /// an independent source (the message lists the valid choices),
    /// [`SpiceError::InvalidSweep`] for an empty frequency list or any
    /// non-finite / non-positive frequency (rejected up front, naming
    /// the offending entry), and solver errors from the operating point
    /// or any frequency point.
    pub fn ac_sweep(&self, source: &str, freqs: &[f64]) -> Result<AcResult, SpiceError> {
        self.ac_sweep_with(source, freqs, AcMethod::default())
    }

    /// [`ac_sweep`](Self::ac_sweep) with an explicit [`AcMethod`] —
    /// chiefly so tests can pin the dense oracle against the sparse
    /// path on the same circuit.
    ///
    /// # Errors
    ///
    /// As [`ac_sweep`](Self::ac_sweep).
    pub fn ac_sweep_with(
        &self,
        source: &str,
        freqs: &[f64],
        method: AcMethod,
    ) -> Result<AcResult, SpiceError> {
        let stimulus = self.validate_ac(source, freqs)?;
        // Linearization point first: op() takes the same solver-cache
        // lock the sparse AC workspace lives behind.
        let op = self.op()?;
        let n = self.num_unknowns();
        let sparse = method.sparse_for(n);
        let mut sweep_span = span!("spice.ac_sweep");
        if sweep_span.is_live() {
            sweep_span.record("source", stimulus.as_str());
            sweep_span.record("n", n);
            sweep_span.record("points", freqs.len());
            sweep_span.record("method", if sparse { "sparse" } else { "dense" });
        }
        let solutions = if sparse {
            let mut cache = self.solver_cache.lock();
            let ws = cache
                .ac
                .get_or_insert_with(|| AcWorkspace::for_circuit(self));
            sparse_sweep_points(self, &stimulus, freqs, &op, ws)?
        } else {
            dense_sweep_points(self, &stimulus, freqs, &op)?
        };
        Ok(self.ac_result(freqs, solutions))
    }

    /// [`ac_sweep`](Self::ac_sweep) fanned out over the deterministic
    /// executor: the frequency grid is cut into chunks of `chunk`
    /// points and each chunk factors once at its head frequency, then
    /// replays the rest — exactly the serial schedule, restarted per
    /// chunk.
    ///
    /// The chunking depends only on `chunk` (never on the thread
    /// count), and frequency points are independent solves, so the
    /// result is **byte-identical at every `CARBON_THREADS`**, and
    /// byte-identical to the serial sweep when `chunk ≥ freqs.len()`.
    ///
    /// # Errors
    ///
    /// As [`ac_sweep`](Self::ac_sweep); with several failing chunks the
    /// error of the lowest-indexed one is reported.
    pub fn ac_sweep_par(
        &self,
        source: &str,
        freqs: &[f64],
        chunk: usize,
    ) -> Result<AcResult, SpiceError> {
        self.ac_sweep_par_on(&Executor::new(), source, freqs, chunk)
    }

    /// [`ac_sweep_par`](Self::ac_sweep_par) on an explicit [`Executor`]
    /// — so tests can pin the worker count without racing on the
    /// `CARBON_THREADS` environment variable.
    ///
    /// # Errors
    ///
    /// As [`ac_sweep_par`](Self::ac_sweep_par).
    pub fn ac_sweep_par_on(
        &self,
        executor: &Executor,
        source: &str,
        freqs: &[f64],
        chunk: usize,
    ) -> Result<AcResult, SpiceError> {
        let stimulus = self.validate_ac(source, freqs)?;
        let op = self.op()?;
        let n = self.num_unknowns();
        let sparse = AcMethod::Auto.sparse_for(n);
        let chunk = chunk.max(1);
        let n_chunks = freqs.len().div_ceil(chunk);
        let mut sweep_span = span!("spice.ac_sweep_par");
        if sweep_span.is_live() {
            sweep_span.record("source", stimulus.as_str());
            sweep_span.record("n", n);
            sweep_span.record("points", freqs.len());
            sweep_span.record("chunk", chunk);
            sweep_span.record("n_chunks", n_chunks);
            sweep_span.record("method", if sparse { "sparse" } else { "dense" });
        }
        type ChunkResult = Result<Vec<Vec<Complex>>, SpiceError>;
        let chunks: Vec<ChunkResult> = executor.par_map(n_chunks, |c| -> ChunkResult {
            let lo = c * chunk;
            let hi = (lo + chunk).min(freqs.len());
            let mut chunk_span = span!("spice.ac_chunk");
            if chunk_span.is_live() {
                chunk_span.record("chunk", c);
                chunk_span.record("points", hi - lo);
            }
            if sparse {
                // A private workspace per chunk: no shared factor state,
                // so scheduling cannot influence any bit of the result.
                let mut ws = AcWorkspace::for_circuit(self);
                sparse_sweep_points(self, &stimulus, &freqs[lo..hi], &op, &mut ws)
            } else {
                dense_sweep_points(self, &stimulus, &freqs[lo..hi], &op)
            }
        });
        let mut solutions = Vec::with_capacity(freqs.len());
        for chunk_result in chunks {
            solutions.extend(chunk_result?);
        }
        Ok(self.ac_result(freqs, solutions))
    }

    /// Validates the stimulus name and frequency grid, returning the
    /// lower-cased stimulus name.
    fn validate_ac(&self, source: &str, freqs: &[f64]) -> Result<String, SpiceError> {
        if freqs.is_empty() {
            return Err(SpiceError::InvalidSweep {
                reason: "AC sweep needs at least one frequency point".to_owned(),
            });
        }
        for (i, &f) in freqs.iter().enumerate() {
            if !(f.is_finite() && f > 0.0) {
                return Err(SpiceError::InvalidSweep {
                    reason: format!("AC frequency f[{i}] = {f} must be finite and positive"),
                });
            }
        }
        let stimulus = source.to_ascii_lowercase();
        let mut available: Vec<String> = Vec::new();
        let mut found = false;
        for e in &self.elements {
            if matches!(
                e.kind,
                ElementKind::VoltageSource { .. } | ElementKind::CurrentSource { .. }
            ) {
                found |= e.name == stimulus;
                available.push(e.name.clone());
            }
        }
        if !found {
            return Err(SpiceError::UnknownAcSource {
                name: source.to_owned(),
                available,
            });
        }
        Ok(stimulus)
    }

    /// Packs per-frequency solutions into an [`AcResult`].
    fn ac_result(&self, freqs: &[f64], solutions: Vec<Vec<Complex>>) -> AcResult {
        let node_names = (1..=self.num_nodes())
            .map(|i| self.node_name(NodeId(i)).to_owned())
            .collect();
        AcResult {
            freqs: freqs.to_vec(),
            node_names,
            solutions,
        }
    }
}

/// Dense sweep: per frequency, stamp the full `G + jωC` system and run
/// complex Gaussian elimination — the PR 1 path, kept bit-for-bit as
/// the oracle for small circuits and property tests.
fn dense_sweep_points(
    circuit: &Circuit,
    stimulus: &str,
    freqs: &[f64],
    op: &super::OpResult,
) -> Result<Vec<Vec<Complex>>, SpiceError> {
    let op_v = |id: NodeId| -> f64 {
        match id.unknown_index() {
            Some(i) => op.node_voltage_by_index(i),
            None => 0.0,
        }
    };
    let n_nodes = circuit.num_nodes();
    let n_unknowns = circuit.num_unknowns();
    let mut solutions = Vec::with_capacity(freqs.len());
    for &f in freqs {
        if carbon_runtime::cancel::cancelled() {
            return Err(SpiceError::Cancelled {
                analysis: "ac sweep",
            });
        }
        let omega = 2.0 * std::f64::consts::PI * f;
        let mut a = ComplexMatrix::zeros(n_unknowns);
        let mut b = vec![Complex::ZERO; n_unknowns];
        for e in &circuit.elements {
            stamp_ac(e, circuit, stimulus, omega, &op_v, &mut a, &mut b);
        }
        for i in 0..n_nodes {
            a.add(i, i, Complex::new(AC_GMIN, 0.0));
        }
        a.solve_in_place(&mut b)?;
        solutions.push(b);
    }
    Ok(solutions)
}

/// Sparse sweep: stamp the ω-independent part once, snapshot its
/// values, and per frequency restamp only `jωC` (capacitor
/// susceptances and inductor branch reactances) before a numeric
/// replay. The first frequency always takes a full pivoting
/// factorization, so the factor schedule — and hence every bit of the
/// output — is independent of whatever a cached workspace solved
/// before.
fn sparse_sweep_points(
    circuit: &Circuit,
    stimulus: &str,
    freqs: &[f64],
    op: &super::OpResult,
    ws: &mut AcWorkspace,
) -> Result<Vec<Vec<Complex>>, SpiceError> {
    let op_v = |id: NodeId| -> f64 {
        match id.unknown_index() {
            Some(i) => op.node_voltage_by_index(i),
            None => 0.0,
        }
    };
    let n_nodes = circuit.num_nodes();
    let n_unknowns = circuit.num_unknowns();
    ws.a.clear();
    let mut b0 = vec![Complex::ZERO; n_unknowns];
    let mut dynamic: Vec<(usize, usize, f64)> = Vec::new();
    for e in &circuit.elements {
        stamp_ac_static(
            e,
            circuit,
            stimulus,
            &op_v,
            &mut ws.a,
            &mut b0,
            &mut dynamic,
        );
    }
    for i in 0..n_nodes {
        ws.a.add(i, i, Complex::new(AC_GMIN, 0.0));
    }
    // The static stamps are shared by every frequency point: snapshot
    // them so each point restarts from `G` with one memcpy instead of a
    // full restamp.
    let static_vals = ws.a.values().to_vec();
    let mut solutions = Vec::with_capacity(freqs.len());
    for (k, &f) in freqs.iter().enumerate() {
        if carbon_runtime::cancel::cancelled() {
            return Err(SpiceError::Cancelled {
                analysis: "ac sweep",
            });
        }
        let omega = 2.0 * std::f64::consts::PI * f;
        ws.a.set_values(&static_vals);
        for &(r, c, coeff) in &dynamic {
            ws.a.add(r, c, Complex::imag(omega * coeff));
        }
        if k == 0 {
            ws.lu.factor(&ws.a)?;
            counter!("spice.sparse.ac_factor");
            carbon_metrics::global_counter!("spice.sparse.ac_factor").incr();
        } else {
            match ws.lu.refactor(&ws.a)? {
                Refactor::Replayed => {
                    counter!("spice.sparse.ac_replay");
                    carbon_metrics::global_counter!("spice.sparse.ac_replay").incr();
                }
                Refactor::Repivoted => {
                    // The pivot order chosen at the head frequency went
                    // stale as ω moved the susceptances — rare, but
                    // campaigns watch the fallback rate.
                    counter!("spice.sparse.ac_repivot");
                    carbon_metrics::global_counter!("spice.sparse.ac_repivot").incr();
                    instant!("spice.sparse.ac_stale_pivot", "freq" = f, "n" = n_unknowns);
                }
            }
        }
        let mut x = b0.clone();
        ws.lu.solve(&mut x);
        solutions.push(x);
    }
    Ok(solutions)
}

/// Stamps the ω-independent part of one element into `(a, b)`:
/// conductances linearized at the operating point, source incidences,
/// and the unit stimulus. Frequency-dependent stamps are *described*
/// instead of stamped: `dynamic` collects `(row, col, coeff)` triples
/// meaning "add `j·ω·coeff` here per frequency" — `+c` patterns for
/// capacitor susceptances, `−l` on inductor branch diagonals.
fn stamp_ac_static<F: Fn(NodeId) -> f64>(
    e: &crate::element::Element,
    circuit: &Circuit,
    stimulus: &str,
    op_v: &F,
    a: &mut SparseMatrix<Complex>,
    b: &mut [Complex],
    dynamic: &mut Vec<(usize, usize, f64)>,
) {
    let n_nodes = circuit.num_nodes();
    let stamp_g = |a: &mut SparseMatrix<Complex>, p: NodeId, n: NodeId, g: f64| {
        let y = Complex::new(g, 0.0);
        if let Some(i) = p.unknown_index() {
            a.add(i, i, y);
            if let Some(j) = n.unknown_index() {
                a.add(i, j, -y);
                a.add(j, i, -y);
            }
        }
        if let Some(j) = n.unknown_index() {
            a.add(j, j, y);
        }
    };
    let incidence = |a: &mut SparseMatrix<Complex>, p: NodeId, n: NodeId, bi: usize| {
        if let Some(i) = p.unknown_index() {
            a.add(i, bi, Complex::ONE);
            a.add(bi, i, Complex::ONE);
        }
        if let Some(j) = n.unknown_index() {
            a.add(j, bi, -Complex::ONE);
            a.add(bi, j, -Complex::ONE);
        }
    };
    match &e.kind {
        ElementKind::Resistor { p, n, g } => stamp_g(a, *p, *n, *g),
        ElementKind::Capacitor { p, n, c } => {
            // jωC conductance pattern, deferred to the per-frequency
            // restamp.
            if let Some(i) = p.unknown_index() {
                dynamic.push((i, i, *c));
                if let Some(j) = n.unknown_index() {
                    dynamic.push((i, j, -*c));
                    dynamic.push((j, i, -*c));
                }
            }
            if let Some(j) = n.unknown_index() {
                dynamic.push((j, j, *c));
            }
        }
        ElementKind::VoltageSource { p, n, branch, .. } => {
            let bi = n_nodes + branch;
            incidence(a, *p, *n, bi);
            if e.name == stimulus {
                b[bi] += Complex::ONE;
            }
        }
        ElementKind::Inductor { p, n, branch, l } => {
            let bi = n_nodes + branch;
            incidence(a, *p, *n, bi);
            // −jωL on the branch diagonal, deferred.
            dynamic.push((bi, bi, -*l));
        }
        ElementKind::CurrentSource { p, n, .. } => {
            if e.name == stimulus {
                // Unit AC current from n into p.
                if let Some(i) = p.unknown_index() {
                    b[i] += Complex::ONE;
                }
                if let Some(j) = n.unknown_index() {
                    b[j] -= Complex::ONE;
                }
            }
        }
        ElementKind::Diode {
            p,
            n,
            i_s,
            n_ideality,
        } => {
            let v = op_v(*p) - op_v(*n);
            let (_i, g) = diode_iv(v, *i_s, *n_ideality);
            stamp_g(a, *p, *n, g);
        }
        ElementKind::Vccs { p, n, cp, cn, gm } => {
            let mut add = |row: Option<usize>, col: Option<usize>, v: f64| {
                if let (Some(r), Some(c)) = (row, col) {
                    a.add(r, c, Complex::new(v, 0.0));
                }
            };
            let (pi, ni) = (p.unknown_index(), n.unknown_index());
            let (cpi, cni) = (cp.unknown_index(), cn.unknown_index());
            add(pi, cpi, -gm);
            add(pi, cni, *gm);
            add(ni, cpi, *gm);
            add(ni, cni, -gm);
        }
        ElementKind::Fet { d, g, s, model } => {
            let vgs = op_v(*g) - op_v(*s);
            let vds = op_v(*d) - op_v(*s);
            let (gm, gds) = model.gm_gds(vgs, vds);
            let gds = gds.max(1e-12);
            let mut add = |row: Option<usize>, col: Option<usize>, v: f64| {
                if let (Some(r), Some(c)) = (row, col) {
                    a.add(r, c, Complex::new(v, 0.0));
                }
            };
            let (di, gi, si) = (d.unknown_index(), g.unknown_index(), s.unknown_index());
            add(di, gi, gm);
            add(di, di, gds);
            add(di, si, -(gm + gds));
            add(si, gi, -gm);
            add(si, di, -gds);
            add(si, si, gm + gds);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn stamp_ac<F: Fn(NodeId) -> f64>(
    e: &crate::element::Element,
    circuit: &Circuit,
    stimulus: &str,
    omega: f64,
    op_v: &F,
    a: &mut ComplexMatrix,
    b: &mut [Complex],
) {
    let n_nodes = circuit.num_nodes();
    let stamp_y = |a: &mut ComplexMatrix, p: NodeId, n: NodeId, y: Complex| {
        if let Some(i) = p.unknown_index() {
            a.add(i, i, y);
            if let Some(j) = n.unknown_index() {
                a.add(i, j, -y);
                a.add(j, i, -y);
            }
        }
        if let Some(j) = n.unknown_index() {
            a.add(j, j, y);
        }
    };
    match &e.kind {
        ElementKind::Resistor { p, n, g } => stamp_y(a, *p, *n, Complex::new(*g, 0.0)),
        ElementKind::Capacitor { p, n, c } => stamp_y(a, *p, *n, Complex::imag(omega * c)),
        ElementKind::VoltageSource { p, n, branch, .. } => {
            let bi = n_nodes + branch;
            if let Some(i) = p.unknown_index() {
                a.add(i, bi, Complex::ONE);
                a.add(bi, i, Complex::ONE);
            }
            if let Some(j) = n.unknown_index() {
                a.add(j, bi, -Complex::ONE);
                a.add(bi, j, -Complex::ONE);
            }
            if e.name == stimulus {
                b[bi] += Complex::ONE;
            }
        }
        ElementKind::Inductor { p, n, branch, l } => {
            let bi = n_nodes + branch;
            if let Some(i) = p.unknown_index() {
                a.add(i, bi, Complex::ONE);
                a.add(bi, i, Complex::ONE);
            }
            if let Some(j) = n.unknown_index() {
                a.add(j, bi, -Complex::ONE);
                a.add(bi, j, -Complex::ONE);
            }
            a.add(bi, bi, -Complex::imag(omega * l));
        }
        ElementKind::CurrentSource { p, n, .. } => {
            if e.name == stimulus {
                // Unit AC current from n into p.
                if let Some(i) = p.unknown_index() {
                    b[i] += Complex::ONE;
                }
                if let Some(j) = n.unknown_index() {
                    b[j] -= Complex::ONE;
                }
            }
        }
        ElementKind::Diode {
            p,
            n,
            i_s,
            n_ideality,
        } => {
            let v = op_v(*p) - op_v(*n);
            let (_i, g) = diode_iv(v, *i_s, *n_ideality);
            stamp_y(a, *p, *n, Complex::new(g, 0.0));
        }
        ElementKind::Vccs { p, n, cp, cn, gm } => {
            let mut add = |row: Option<usize>, col: Option<usize>, v: f64| {
                if let (Some(r), Some(c)) = (row, col) {
                    a.add(r, c, Complex::new(v, 0.0));
                }
            };
            let (pi, ni) = (p.unknown_index(), n.unknown_index());
            let (cpi, cni) = (cp.unknown_index(), cn.unknown_index());
            add(pi, cpi, -gm);
            add(pi, cni, *gm);
            add(ni, cpi, *gm);
            add(ni, cni, -gm);
        }
        ElementKind::Fet { d, g, s, model } => {
            let vgs = op_v(*g) - op_v(*s);
            let vds = op_v(*d) - op_v(*s);
            let (gm, gds) = model.gm_gds(vgs, vds);
            let gds = gds.max(1e-12);
            let mut add = |row: Option<usize>, col: Option<usize>, v: f64| {
                if let (Some(r), Some(c)) = (row, col) {
                    a.add(r, c, Complex::new(v, 0.0));
                }
            };
            let (di, gi, si) = (d.unknown_index(), g.unknown_index(), s.unknown_index());
            add(di, gi, gm);
            add(di, di, gds);
            add(di, si, -(gm + gds));
            add(si, gi, -gm);
            add(si, di, -gds);
            add(si, si, gm + gds);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rc_lowpass_corner() {
        // R = 1 kΩ, C = 1 nF: f_c = 1/(2πRC) ≈ 159 kHz.
        let mut ckt = Circuit::new();
        ckt.voltage_source("vin", "in", "0", 0.0);
        ckt.resistor("r", "in", "out", 1e3).unwrap();
        ckt.capacitor("c", "out", "0", 1e-9).unwrap();
        let freqs: Vec<f64> = (0..60).map(|k| 1e3 * 10f64.powf(k as f64 / 10.0)).collect();
        let ac = ckt.ac_sweep("vin", &freqs).unwrap();
        let mag = ac.magnitude("out").unwrap();
        assert!((mag[0] - 1.0).abs() < 1e-3, "passband gain 1");
        assert!(*mag.last().unwrap() < 0.01, "stopband rolls off");
        let fc = ac.corner_frequency("out").unwrap().expect("crosses −3 dB");
        assert!((fc - 159.2e3).abs() / 159.2e3 < 0.05, "f_c = {fc:.3e}");
        // Phase approaches −90°.
        let ph = ac.phase("out").unwrap();
        assert!(ph.last().unwrap() < &-1.4);
    }

    #[test]
    fn ac_gain_of_vccs_amplifier() {
        // gm = 2 mS into 10 kΩ: |Av| = 20, flat (no caps).
        let mut ckt = Circuit::new();
        ckt.voltage_source("vin", "in", "0", 0.0);
        ckt.vccs("g1", "0", "out", "in", "0", 2e-3).unwrap();
        ckt.resistor("rl", "out", "0", 10e3).unwrap();
        let ac = ckt.ac_sweep("vin", &[1e3, 1e6, 1e9]).unwrap();
        let mag = ac.magnitude("out").unwrap();
        for m in mag {
            assert!((m - 20.0).abs() < 0.1, "|Av| = {m}");
        }
    }

    #[test]
    fn fet_common_source_ac_gain_matches_gm_over_gds() {
        #[derive(Debug)]
        struct LinearFet;
        impl crate::element::FetCurve for LinearFet {
            fn ids(&self, vgs: f64, vds: f64) -> f64 {
                1e-3 * vgs + 1e-5 * vds
            }
        }
        let mut ckt = Circuit::new();
        ckt.voltage_source("vdd", "vdd", "0", 1.0);
        ckt.voltage_source("vin", "g", "0", 0.5);
        ckt.resistor("rl", "vdd", "d", 1e5).unwrap();
        ckt.fet("m1", "d", "g", "0", std::sync::Arc::new(LinearFet))
            .unwrap();
        let ac = ckt.ac_sweep("vin", &[1e6]).unwrap();
        let gain = ac.magnitude("d").unwrap()[0];
        // |Av| = gm·(R_L ∥ 1/gds) = 1e-3·(1e5 ∥ 1e5) = 50.
        assert!((gain - 50.0).abs() < 1.0, "|Av| = {gain}");
    }

    #[test]
    fn stimulus_validation() {
        let mut ckt = Circuit::new();
        ckt.voltage_source("vin", "in", "0", 0.0);
        ckt.resistor("r", "in", "0", 1e3).unwrap();
        // Unknown stimulus names the request and lists the candidates.
        match ckt.ac_sweep("nope", &[1e3]) {
            Err(SpiceError::UnknownAcSource { name, available }) => {
                assert_eq!(name, "nope");
                assert_eq!(available, vec!["vin".to_owned()]);
            }
            other => panic!("expected UnknownAcSource, got {other:?}"),
        }
        // An element that exists but is not a source is rejected the
        // same way.
        match ckt.ac_sweep("r", &[1e3]) {
            Err(SpiceError::UnknownAcSource { name, .. }) => assert_eq!(name, "r"),
            other => panic!("expected UnknownAcSource, got {other:?}"),
        }
        assert!(matches!(
            ckt.ac_sweep("vin", &[]),
            Err(SpiceError::InvalidSweep { .. })
        ));
        // Bad frequencies are rejected up front, naming the entry.
        for bad in [-1.0, 0.0, f64::NAN, f64::INFINITY] {
            match ckt.ac_sweep("vin", &[1e3, bad]) {
                Err(SpiceError::InvalidSweep { reason }) => {
                    assert!(reason.contains("f[1]"), "{reason}");
                }
                other => panic!("expected InvalidSweep for {bad}, got {other:?}"),
            }
        }
    }

    #[test]
    fn unknown_ac_source_message_lists_candidates() {
        let mut ckt = Circuit::new();
        ckt.voltage_source("vin", "in", "0", 0.0);
        ckt.current_source("ibias", "in", "0", 1e-6).unwrap();
        ckt.resistor("r", "in", "0", 1e3).unwrap();
        let msg = ckt.ac_sweep("vx", &[1e3]).unwrap_err().to_string();
        assert!(msg.contains("'vx'"), "{msg}");
        assert!(msg.contains("vin") && msg.contains("ibias"), "{msg}");
        // No sources at all: the message says so instead of listing an
        // empty set.
        let mut bare = Circuit::new();
        bare.resistor("r", "a", "0", 1e3).unwrap();
        let msg = bare.ac_sweep("vin", &[1e3]).unwrap_err().to_string();
        assert!(msg.contains("no independent sources"), "{msg}");
    }

    #[test]
    fn ground_phasor_is_zero() {
        let mut ckt = Circuit::new();
        ckt.voltage_source("vin", "in", "0", 0.0);
        ckt.resistor("r", "in", "0", 1e3).unwrap();
        let ac = ckt.ac_sweep("vin", &[1e3]).unwrap();
        assert_eq!(ac.magnitude("0").unwrap(), vec![0.0]);
        assert!(ac.magnitude("ghost").is_err());
    }

    /// Series R / shunt C ladder with `n` stages — at least 17 unknowns
    /// from n = 16, forcing the sparse path under [`AcMethod::Auto`].
    fn rc_ladder(n: usize) -> Circuit {
        let mut ckt = Circuit::new();
        ckt.voltage_source("vin", "n0", "0", 0.0);
        for k in 0..n {
            ckt.resistor(
                &format!("r{k}"),
                &format!("n{k}"),
                &format!("n{}", k + 1),
                1e3,
            )
            .unwrap();
            ckt.capacitor(&format!("c{k}"), &format!("n{}", k + 1), "0", 1e-12)
                .unwrap();
        }
        ckt
    }

    #[test]
    fn sparse_path_matches_dense_oracle_on_ladder() {
        let ckt = rc_ladder(24);
        let freqs: Vec<f64> = (0..20).map(|k| 1e4 * 10f64.powf(k as f64 / 4.0)).collect();
        let dense = ckt.ac_sweep_with("vin", &freqs, AcMethod::Dense).unwrap();
        let sparse = ckt.ac_sweep_with("vin", &freqs, AcMethod::Sparse).unwrap();
        for (d, s) in dense.solutions.iter().zip(&sparse.solutions) {
            for (dv, sv) in d.iter().zip(s) {
                let err = (*dv - *sv).abs();
                let scale = dv.abs().max(1.0);
                assert!(err / scale < 1e-9, "dense {dv:?} vs sparse {sv:?}");
            }
        }
    }

    #[test]
    fn repeated_sweeps_reuse_the_cached_workspace_bit_for_bit() {
        let ckt = rc_ladder(20);
        let freqs: Vec<f64> = (0..10).map(|k| 1e5 * 10f64.powf(k as f64 / 3.0)).collect();
        let first = ckt.ac_sweep("vin", &freqs).unwrap();
        let second = ckt.ac_sweep("vin", &freqs).unwrap();
        assert_eq!(first.solutions, second.solutions);
    }
}

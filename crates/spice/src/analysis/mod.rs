//! Analyses: DC operating point, DC sweep, transient — plus their result
//! types.
//!
//! All are methods on [`Circuit`]:
//!
//! * [`Circuit::op`] — Newton solve of the nonlinear DC system, with gmin
//!   stepping and source stepping as fallbacks,
//! * [`Circuit::dc_sweep`] — repeated operating points with warm-started
//!   continuation (each point starts from the previous solution, with
//!   step-halving source continuation when a point refuses to
//!   converge), the analysis behind every I-V curve and
//!   voltage-transfer curve in the paper,
//! * [`Circuit::dc_sweep_par`] — the same sweep fanned out over the
//!   deterministic executor: a coarse serial pre-solve seeds each
//!   parallel chunk, and the result is bit-identical to the serial
//!   sweep at every `CARBON_THREADS`,
//! * [`Circuit::transient`] — time-domain integration (fixed-step or
//!   LTE-adaptive, see [`transient`]), used for ring oscillators and
//!   the inverter's dynamic behaviour with its 10 fF load.
//!
//! All of them share one [`MnaWorkspace`] per analysis, so the sparse
//! symbolic analysis and pivot order are discovered once and re-used by
//! every Newton iteration at every bias point.

pub mod ac;
mod engine;
pub mod transient;

use std::sync::Arc;

use crate::error::SpiceError;
use crate::netlist::Circuit;
use carbon_trace::{counter, instant, span};

pub(crate) use engine::{
    newton_solve, CapCompanion, IndCompanion, MnaWorkspace, NameTable, NewtonOptions, SolverCache,
};
pub use transient::{TranMethod, TranOptions, TranResult};

/// Solution of a DC operating point.
#[derive(Debug, Clone)]
pub struct OpResult {
    /// Unknown-name tables, shared across the points of a sweep.
    names: Arc<NameTable>,
    x: Vec<f64>,
}

impl OpResult {
    /// Node voltage by unknown index (AC linearization helper).
    pub(crate) fn node_voltage_by_index(&self, i: usize) -> f64 {
        self.x[i]
    }

    pub(crate) fn new(names: Arc<NameTable>, x: Vec<f64>) -> Self {
        Self { names, x }
    }

    /// Voltage of a named node, V.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for unknown names.
    pub fn voltage(&self, node: &str) -> Result<f64, SpiceError> {
        let lower = node.to_ascii_lowercase();
        if lower == "0" || lower == "gnd" {
            return Ok(0.0);
        }
        self.names
            .node_names
            .iter()
            .position(|n| *n == lower)
            .map(|i| self.x[i])
            .ok_or(SpiceError::UnknownNode {
                name: node.to_owned(),
            })
    }

    /// Current through a named voltage source, A (positive flowing into
    /// its `p` terminal and out of `n`).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownSource`] if no voltage source has
    /// that name.
    pub fn source_current(&self, source: &str) -> Result<f64, SpiceError> {
        let source_lower = source.to_ascii_lowercase();
        self.names
            .branch_names
            .iter()
            .position(|n| *n == source_lower)
            .map(|i| self.x[self.names.node_names.len() + i])
            .ok_or(SpiceError::UnknownSource {
                name: source.to_owned(),
            })
    }
}

/// Tuning knobs for [`Circuit::dc_sweep_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepOptions {
    /// Seed each bias point's Newton iteration from the previous
    /// converged solution instead of zero. On by default: adjacent bias
    /// points have nearby solutions, so warm starts cut iteration counts
    /// sharply (and [`SweepResult::total_newton_iterations`] makes the
    /// saving auditable).
    pub warm_start: bool,
    /// How many times the source step may be halved (recursively) when a
    /// warm-started point fails to converge, before the failure is
    /// reported. `0` disables the continuation.
    pub max_step_halvings: u32,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            warm_start: true,
            max_step_halvings: 6,
        }
    }
}

/// Result of a DC sweep: the swept values and one solution per point.
#[derive(Debug, Clone)]
pub struct SweepResult {
    sweep: Vec<f64>,
    points: Vec<OpResult>,
    /// Newton iterations spent on each point (failed strategy attempts
    /// included, counted at their full `max_iter` cost).
    newton_iterations: Vec<usize>,
}

impl SweepResult {
    /// The swept source values.
    pub fn sweep_values(&self) -> &[f64] {
        &self.sweep
    }

    /// Total Newton iterations spent across the whole sweep — the
    /// figure of merit for warm-start continuation.
    pub fn total_newton_iterations(&self) -> usize {
        self.newton_iterations.iter().sum()
    }

    /// Voltage trace of a node across the sweep.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for unknown names.
    pub fn voltages(&self, node: &str) -> Result<Vec<f64>, SpiceError> {
        self.points.iter().map(|p| p.voltage(node)).collect()
    }

    /// Current trace through a voltage source across the sweep.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownSource`] for unknown names.
    pub fn currents(&self, source: &str) -> Result<Vec<f64>, SpiceError> {
        self.points
            .iter()
            .map(|p| p.source_current(source))
            .collect()
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.sweep.len()
    }

    /// `true` if the sweep has no points.
    pub fn is_empty(&self) -> bool {
        self.sweep.is_empty()
    }

    /// The operating point at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn point(&self, i: usize) -> &OpResult {
        &self.points[i]
    }
}

/// Validates sweep bounds and materializes the inclusive value grid.
fn sweep_grid(from: f64, to: f64, step: f64) -> Result<Vec<f64>, SpiceError> {
    if !(step.is_finite() && step > 0.0) {
        return Err(SpiceError::InvalidSweep {
            reason: format!("step must be positive and finite, got {step}"),
        });
    }
    let n = ((to - from).abs() / step).round() as usize + 1;
    let dir = if to >= from { 1.0 } else { -1.0 };
    Ok((0..n)
        .map(|i| {
            let v = from + dir * step * i as f64;
            if dir > 0.0 {
                v.min(to)
            } else {
                v.max(to)
            }
        })
        .collect())
}

impl Circuit {
    /// Solves the DC operating point.
    ///
    /// The solver first attempts a plain Newton iteration from zero,
    /// then gmin stepping, then source stepping.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] for ill-posed circuits and
    /// [`SpiceError::NonConvergence`] when all strategies fail.
    pub fn op(&self) -> Result<OpResult, SpiceError> {
        let mut x = vec![0.0; self.num_unknowns()];
        // Reuse (or build) this topology's cached workspace, so a
        // second op() pays no symbolic analysis and refactors against
        // the already-discovered fill pattern.
        let mut cache = self.solver_cache.lock();
        let ws = cache
            .dc
            .get_or_insert_with(|| MnaWorkspace::for_circuit(self));
        self.op_from(&mut x, ws)?;
        Ok(OpResult::new(ws.names.clone(), x))
    }

    /// Operating point starting from the guess in `x`, reusing the
    /// workspace's matrix and factors; used by sweeps for continuation.
    ///
    /// On success `x` holds the solution and the Newton iteration count
    /// is returned (failed strategy attempts counted at full
    /// `max_iter`); on failure `x` is left exactly as passed in, so a
    /// caller can retry from the same seed with a smaller source step.
    fn op_from(&self, x: &mut [f64], ws: &mut MnaWorkspace) -> Result<usize, SpiceError> {
        let opts = NewtonOptions::default();
        let mut spent = 0usize;
        // Strategy 1: plain Newton from the caller's seed.
        let mut trial = x.to_vec();
        match newton_solve(self, ws, &mut trial, None, None, 1.0, opts.gmin, &opts) {
            Ok(iters) => {
                x.copy_from_slice(&trial);
                return Ok(iters);
            }
            Err(_) => spent += opts.max_iter,
        }
        counter!("spice.op.gmin_step_fallback");
        // Strategy 2: gmin stepping from zero.
        let mut xg = vec![0.0; self.num_unknowns()];
        let mut ok = true;
        for exp in [-2.0_f64, -4.0, -6.0, -8.0, -10.0, -12.0] {
            match newton_solve(self, ws, &mut xg, None, None, 1.0, 10f64.powf(exp), &opts) {
                Ok(iters) => spent += iters,
                Err(_) => {
                    spent += opts.max_iter;
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            match newton_solve(self, ws, &mut xg, None, None, 1.0, opts.gmin, &opts) {
                Ok(iters) => {
                    x.copy_from_slice(&xg);
                    return Ok(spent + iters);
                }
                Err(_) => spent += opts.max_iter,
            }
        }
        // Strategy 3: source stepping from zero.
        counter!("spice.op.source_step_fallback");
        let mut xs = vec![0.0; self.num_unknowns()];
        for k in 1..=20 {
            let scale = k as f64 / 20.0;
            match newton_solve(self, ws, &mut xs, None, None, scale, opts.gmin, &opts) {
                Ok(iters) => spent += iters,
                Err(e) => {
                    return Err(match e {
                        SpiceError::SingularMatrix { .. } => e,
                        // Keep the failed attempt's true iteration count
                        // and last update so the caller's diagnostics
                        // (ContinuationExhausted) stay meaningful.
                        SpiceError::NonConvergence {
                            iterations,
                            residual,
                            ..
                        } => SpiceError::NonConvergence {
                            analysis: "dc operating point",
                            iterations,
                            residual,
                        },
                        other => other,
                    });
                }
            }
        }
        x.copy_from_slice(&xs);
        Ok(spent)
    }

    /// Solves the point at `v_to` seeded from the solution in `x`
    /// (converged at `v_from`), bisecting the source step up to `depth`
    /// times when the jump is too large for Newton to follow.
    fn op_with_continuation(
        &mut self,
        source: &str,
        x: &mut [f64],
        ws: &mut MnaWorkspace,
        v_from: f64,
        v_to: f64,
        depth: u32,
    ) -> Result<usize, SpiceError> {
        self.set_source_value(source, v_to)?;
        match self.op_from(x, ws) {
            Ok(iters) => Ok(iters),
            // Structural failures and cancellations are not convergence
            // problems: halving the source step cannot fix them.
            Err(e @ (SpiceError::SingularMatrix { .. } | SpiceError::Cancelled { .. })) => Err(e),
            Err(e) if depth == 0 => {
                // Continuation exhausted: surface the failing sweep
                // value and the last Newton residual instead of the
                // inner attempt's generic non-convergence report.
                instant!("spice.continuation_exhausted", "v" = v_to);
                Err(match e {
                    SpiceError::NonConvergence {
                        iterations,
                        residual,
                        ..
                    } => SpiceError::ContinuationExhausted {
                        sweep_value: v_to,
                        iterations,
                        residual,
                    },
                    other => other,
                })
            }
            Err(_) => {
                counter!("spice.continuation_halvings");
                instant!(
                    "spice.continuation_halve",
                    "v_from" = v_from,
                    "v_to" = v_to,
                    "depth" = depth,
                );
                let mid = 0.5 * (v_from + v_to);
                let a = self.op_with_continuation(source, x, ws, v_from, mid, depth - 1)?;
                let b = self.op_with_continuation(source, x, ws, mid, v_to, depth - 1)?;
                Ok(a + b)
            }
        }
    }

    /// Sweeps the DC value of a named source from `from` to `to`
    /// (inclusive, step `step > 0`; the sweep may run downward if
    /// `to < from`), with warm-started continuation
    /// ([`SweepOptions::default`]).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownSource`] for unknown sources,
    /// [`SpiceError::InvalidSweep`] for non-positive steps, and any
    /// solver error from the underlying operating points.
    pub fn dc_sweep(
        &self,
        source: &str,
        from: f64,
        to: f64,
        step: f64,
    ) -> Result<SweepResult, SpiceError> {
        self.dc_sweep_with(source, from, to, step, SweepOptions::default())
    }

    /// [`dc_sweep`](Self::dc_sweep) with explicit [`SweepOptions`] —
    /// chiefly so warm-start continuation can be disabled for A/B
    /// iteration-count comparisons.
    ///
    /// # Errors
    ///
    /// As [`dc_sweep`](Self::dc_sweep).
    pub fn dc_sweep_with(
        &self,
        source: &str,
        from: f64,
        to: f64,
        step: f64,
        sweep_opts: SweepOptions,
    ) -> Result<SweepResult, SpiceError> {
        let grid = sweep_grid(from, to, step)?;
        let mut sweep_span = span!("spice.dc_sweep");
        if sweep_span.is_live() {
            sweep_span.record("source", source);
            sweep_span.record("points", grid.len());
            sweep_span.record("warm_start", sweep_opts.warm_start);
        }
        let mut work = self.clone();
        let mut ws = MnaWorkspace::for_circuit(&work);
        let mut points = Vec::with_capacity(grid.len());
        let mut newton_iterations = Vec::with_capacity(grid.len());
        let mut x = vec![0.0; self.num_unknowns()];
        let mut prev_v: Option<f64> = None;
        for &v in &grid {
            if !sweep_opts.warm_start {
                x.fill(0.0);
            }
            let iters = match prev_v {
                Some(pv) if sweep_opts.warm_start => work.op_with_continuation(
                    source,
                    &mut x,
                    &mut ws,
                    pv,
                    v,
                    sweep_opts.max_step_halvings,
                )?,
                _ => {
                    work.set_source_value(source, v)?;
                    work.op_from(&mut x, &mut ws)?
                }
            };
            prev_v = Some(v);
            points.push(OpResult::new(ws.names.clone(), x.clone()));
            newton_iterations.push(iters);
        }
        if sweep_span.is_live() {
            sweep_span.record("total_iters", newton_iterations.iter().sum::<usize>());
        }
        Ok(SweepResult {
            sweep: grid,
            points,
            newton_iterations,
        })
    }

    /// [`dc_sweep`](Self::dc_sweep) fanned out over the deterministic
    /// executor: the grid is cut into chunks of `chunk` points, a coarse
    /// serial pre-solve (itself warm-chained) solves each chunk's first
    /// point, and the chunks then run in parallel, each warm-started
    /// from its pre-solved seed.
    ///
    /// Results are **bit-identical at every `CARBON_THREADS`** — each
    /// point's solution depends only on its chunk seed, which the serial
    /// pre-solve fixed — but may differ in the last bits from the serial
    /// [`dc_sweep`](Self::dc_sweep), whose warm-start chain threads
    /// through every intermediate point.
    ///
    /// # Errors
    ///
    /// As [`dc_sweep`](Self::dc_sweep); with several failing points the
    /// error of the lowest-indexed chunk is reported.
    pub fn dc_sweep_par(
        &self,
        source: &str,
        from: f64,
        to: f64,
        step: f64,
        chunk: usize,
    ) -> Result<SweepResult, SpiceError> {
        let grid = sweep_grid(from, to, step)?;
        let chunk = chunk.max(1);
        let n_chunks = grid.len().div_ceil(chunk);
        let sweep_opts = SweepOptions::default();
        let mut sweep_span = span!("spice.dc_sweep_par");
        if sweep_span.is_live() {
            sweep_span.record("source", source);
            sweep_span.record("points", grid.len());
            sweep_span.record("chunk", chunk);
            sweep_span.record("n_chunks", n_chunks);
        }

        // Coarse serial pre-solve: solve the first point of every chunk,
        // warm-chaining from one chunk head to the next.
        let mut seeds: Vec<Vec<f64>> = Vec::with_capacity(n_chunks);
        {
            let mut work = self.clone();
            let mut ws = MnaWorkspace::for_circuit(&work);
            let mut x = vec![0.0; self.num_unknowns()];
            let mut prev_v: Option<f64> = None;
            for c in 0..n_chunks {
                let v = grid[c * chunk];
                match prev_v {
                    Some(pv) => {
                        work.op_with_continuation(
                            source,
                            &mut x,
                            &mut ws,
                            pv,
                            v,
                            sweep_opts.max_step_halvings,
                        )?;
                    }
                    None => {
                        work.set_source_value(source, v)?;
                        work.op_from(&mut x, &mut ws)?;
                    }
                }
                prev_v = Some(v);
                seeds.push(x.clone());
            }
        }

        // Parallel phase: each chunk sweeps its own points from its
        // pre-solved seed with a private circuit clone and workspace.
        type ChunkResult = Result<(Vec<OpResult>, Vec<usize>), SpiceError>;
        let chunks: Vec<ChunkResult> =
            carbon_runtime::executor::par_map(n_chunks, |c| -> ChunkResult {
                let lo = c * chunk;
                let hi = (lo + chunk).min(grid.len());
                let mut chunk_span = span!("spice.sweep_chunk");
                if chunk_span.is_live() {
                    chunk_span.record("chunk", c);
                    chunk_span.record("points", hi - lo);
                }
                let mut work = self.clone();
                let mut ws = MnaWorkspace::for_circuit(&work);
                let mut x = seeds[c].clone();
                let mut points = Vec::with_capacity(hi - lo);
                let mut iters = Vec::with_capacity(hi - lo);
                let mut prev_v = grid[lo];
                for (k, &v) in grid[lo..hi].iter().enumerate() {
                    let it = if k == 0 {
                        // The chunk head was solved by the pre-solve;
                        // re-running Newton from its own solution
                        // converges immediately and records the true
                        // residual iteration count.
                        work.set_source_value(source, v)?;
                        work.op_from(&mut x, &mut ws)?
                    } else {
                        work.op_with_continuation(
                            source,
                            &mut x,
                            &mut ws,
                            prev_v,
                            v,
                            sweep_opts.max_step_halvings,
                        )?
                    };
                    prev_v = v;
                    points.push(OpResult::new(ws.names.clone(), x.clone()));
                    iters.push(it);
                }
                if chunk_span.is_live() {
                    chunk_span.record("iters", iters.iter().sum::<usize>());
                }
                Ok((points, iters))
            });

        let mut points = Vec::with_capacity(grid.len());
        let mut newton_iterations = Vec::with_capacity(grid.len());
        for chunk_result in chunks {
            let (p, it) = chunk_result?;
            points.extend(p);
            newton_iterations.extend(it);
        }
        if sweep_span.is_live() {
            sweep_span.record("total_iters", newton_iterations.iter().sum::<usize>());
        }
        Ok(SweepResult {
            sweep: grid,
            points,
            newton_iterations,
        })
    }
}

//! Analyses: DC operating point, DC sweep, transient — plus their result
//! types.
//!
//! All three are methods on [`Circuit`]:
//!
//! * [`Circuit::op`] — Newton solve of the nonlinear DC system, with gmin
//!   stepping and source stepping as fallbacks,
//! * [`Circuit::dc_sweep`] — repeated operating points with continuation
//!   (each point starts from the previous solution), the analysis behind
//!   every I-V curve and voltage-transfer curve in the paper,
//! * [`Circuit::transient`] — fixed-step integration (backward-Euler
//!   start-up step, trapezoidal thereafter), used for ring oscillators
//!   and the inverter's dynamic behaviour with its 10 fF load.

pub mod ac;
mod engine;

use std::collections::HashMap;

use crate::element::ElementKind;
use crate::error::SpiceError;
use crate::netlist::Circuit;

pub(crate) use engine::{newton_solve, CapCompanion, IndCompanion, NewtonOptions};

/// Solution of a DC operating point.
#[derive(Debug, Clone)]
pub struct OpResult {
    node_names: Vec<String>,
    branch_names: Vec<String>,
    x: Vec<f64>,
}

impl OpResult {
    /// Node voltage by unknown index (AC linearization helper).
    pub(crate) fn node_voltage_by_index(&self, i: usize) -> f64 {
        self.x[i]
    }

    pub(crate) fn new(circuit: &Circuit, x: Vec<f64>) -> Self {
        let node_names = (1..=circuit.num_nodes())
            .map(|i| circuit.node_name(crate::netlist::NodeId(i)).to_owned())
            .collect();
        let mut branch_names = vec![String::new(); circuit.num_branches];
        for e in &circuit.elements {
            match e.kind {
                ElementKind::VoltageSource { branch, .. }
                | ElementKind::Inductor { branch, .. } => {
                    branch_names[branch] = e.name.clone();
                }
                _ => {}
            }
        }
        Self {
            node_names,
            branch_names,
            x,
        }
    }

    /// Voltage of a named node, V.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for unknown names.
    pub fn voltage(&self, node: &str) -> Result<f64, SpiceError> {
        let lower = node.to_ascii_lowercase();
        if lower == "0" || lower == "gnd" {
            return Ok(0.0);
        }
        self.node_names
            .iter()
            .position(|n| *n == lower)
            .map(|i| self.x[i])
            .ok_or(SpiceError::UnknownNode {
                name: node.to_owned(),
            })
    }

    /// Current through a named voltage source, A (positive flowing into
    /// its `p` terminal and out of `n`).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownSource`] if no voltage source has
    /// that name.
    pub fn source_current(&self, source: &str) -> Result<f64, SpiceError> {
        let source_lower = source.to_ascii_lowercase();
        self.branch_names
            .iter()
            .position(|n| *n == source_lower)
            .map(|i| self.x[self.node_names.len() + i])
            .ok_or(SpiceError::UnknownSource {
                name: source.to_owned(),
            })
    }
}

/// Result of a DC sweep: the swept values and one solution per point.
#[derive(Debug, Clone)]
pub struct SweepResult {
    sweep: Vec<f64>,
    points: Vec<OpResult>,
}

impl SweepResult {
    /// The swept source values.
    pub fn sweep_values(&self) -> &[f64] {
        &self.sweep
    }

    /// Voltage trace of a node across the sweep.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for unknown names.
    pub fn voltages(&self, node: &str) -> Result<Vec<f64>, SpiceError> {
        self.points.iter().map(|p| p.voltage(node)).collect()
    }

    /// Current trace through a voltage source across the sweep.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownSource`] for unknown names.
    pub fn currents(&self, source: &str) -> Result<Vec<f64>, SpiceError> {
        self.points
            .iter()
            .map(|p| p.source_current(source))
            .collect()
    }

    /// Number of sweep points.
    pub fn len(&self) -> usize {
        self.sweep.len()
    }

    /// `true` if the sweep has no points.
    pub fn is_empty(&self) -> bool {
        self.sweep.is_empty()
    }

    /// The operating point at index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn point(&self, i: usize) -> &OpResult {
        &self.points[i]
    }
}

/// Result of a transient analysis: time points and node-voltage traces.
#[derive(Debug, Clone)]
pub struct TranResult {
    times: Vec<f64>,
    traces: HashMap<String, Vec<f64>>,
}

impl TranResult {
    /// The time grid, s.
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Voltage trace of a node over time.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownNode`] for unknown names.
    pub fn voltages(&self, node: &str) -> Result<&[f64], SpiceError> {
        let lower = node.to_ascii_lowercase();
        self.traces
            .get(&lower)
            .map(|v| v.as_slice())
            .ok_or(SpiceError::UnknownNode {
                name: node.to_owned(),
            })
    }
}

impl Circuit {
    /// Solves the DC operating point.
    ///
    /// The solver first attempts a plain Newton iteration from zero,
    /// then gmin stepping, then source stepping.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::SingularMatrix`] for ill-posed circuits and
    /// [`SpiceError::NonConvergence`] when all strategies fail.
    pub fn op(&self) -> Result<OpResult, SpiceError> {
        let x = self.op_from(vec![0.0; self.num_unknowns()])?;
        Ok(OpResult::new(self, x))
    }

    /// Operating point starting from a given initial guess; used
    /// internally by sweeps for continuation.
    fn op_from(&self, mut x: Vec<f64>) -> Result<Vec<f64>, SpiceError> {
        let opts = NewtonOptions::default();
        // Strategy 1: plain Newton.
        if newton_solve(self, &mut x, None, None, 1.0, opts.gmin, &opts).is_ok() {
            return Ok(x);
        }
        // Strategy 2: gmin stepping.
        let mut xg = vec![0.0; self.num_unknowns()];
        let mut ok = true;
        for exp in [-2.0_f64, -4.0, -6.0, -8.0, -10.0, -12.0] {
            if newton_solve(self, &mut xg, None, None, 1.0, 10f64.powf(exp), &opts).is_err() {
                ok = false;
                break;
            }
        }
        if ok && newton_solve(self, &mut xg, None, None, 1.0, opts.gmin, &opts).is_ok() {
            return Ok(xg);
        }
        // Strategy 3: source stepping.
        let mut xs = vec![0.0; self.num_unknowns()];
        for k in 1..=20 {
            let scale = k as f64 / 20.0;
            newton_solve(self, &mut xs, None, None, scale, opts.gmin, &opts).map_err(
                |e| match e {
                    SpiceError::SingularMatrix { .. } => e,
                    _ => SpiceError::NonConvergence {
                        analysis: "dc operating point",
                        iterations: opts.max_iter,
                        residual: f64::NAN,
                    },
                },
            )?;
        }
        Ok(xs)
    }

    /// Sweeps the DC value of a named source from `from` to `to`
    /// (inclusive, step `step > 0`; the sweep may run downward if
    /// `to < from`).
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::UnknownSource`] for unknown sources,
    /// [`SpiceError::InvalidSweep`] for non-positive steps, and any
    /// solver error from the underlying operating points.
    pub fn dc_sweep(
        &self,
        source: &str,
        from: f64,
        to: f64,
        step: f64,
    ) -> Result<SweepResult, SpiceError> {
        if !(step.is_finite() && step > 0.0) {
            return Err(SpiceError::InvalidSweep {
                reason: format!("step must be positive and finite, got {step}"),
            });
        }
        let n = ((to - from).abs() / step).round() as usize + 1;
        let dir = if to >= from { 1.0 } else { -1.0 };
        let mut work = self.clone();
        let mut sweep = Vec::with_capacity(n);
        let mut points = Vec::with_capacity(n);
        let mut x = vec![0.0; self.num_unknowns()];
        for i in 0..n {
            let v = from + dir * step * i as f64;
            let v = if dir > 0.0 { v.min(to) } else { v.max(to) };
            work.set_source_value(source, v)?;
            x = work.op_from(x)?;
            sweep.push(v);
            points.push(OpResult::new(&work, x.clone()));
        }
        Ok(SweepResult { sweep, points })
    }

    /// Fixed-step transient analysis from `t = 0` to `tstop` with step
    /// `tstep`. The initial condition is the DC operating point with all
    /// sources at their `t = 0` values.
    ///
    /// Integration is backward Euler for the first step and trapezoidal
    /// afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`SpiceError::InvalidSweep`] for non-positive steps or
    /// horizons and solver errors from individual time points.
    pub fn transient(&self, tstep: f64, tstop: f64) -> Result<TranResult, SpiceError> {
        if !(tstep.is_finite() && tstep > 0.0 && tstop.is_finite() && tstop > 0.0) {
            return Err(SpiceError::InvalidSweep {
                reason: format!("transient needs tstep > 0 and tstop > 0, got {tstep}, {tstop}"),
            });
        }
        if tstop < tstep {
            return Err(SpiceError::InvalidSweep {
                reason: "tstop must be at least one step".to_owned(),
            });
        }
        let opts = NewtonOptions::default();
        // DC initial condition with sources evaluated at t = 0.
        let mut x = vec![0.0; self.num_unknowns()];
        newton_solve(self, &mut x, Some(0.0), None, 1.0, opts.gmin, &opts).or_else(|_| {
            // Fall back to the robust op ladder, then refine at t = 0.
            x = self.op_from(vec![0.0; self.num_unknowns()])?;
            newton_solve(self, &mut x, Some(0.0), None, 1.0, opts.gmin, &opts)
        })?;

        // Initialize reactive-element states from the operating point.
        let n_nodes = self.num_nodes();
        let mut caps: Vec<CapCompanion> = self
            .elements
            .iter()
            .enumerate()
            .filter_map(|(idx, e)| match e.kind {
                ElementKind::Capacitor { p, n, c } => Some(CapCompanion::at_rest(idx, p, n, c, &x)),
                _ => None,
            })
            .collect();
        let mut inds: Vec<IndCompanion> = self
            .elements
            .iter()
            .enumerate()
            .filter_map(|(idx, e)| match e.kind {
                ElementKind::Inductor { p, n, branch, l } => {
                    Some(IndCompanion::at_rest(idx, p, n, branch, l, &x, n_nodes))
                }
                _ => None,
            })
            .collect();

        let steps = (tstop / tstep).round() as usize;
        let mut times = Vec::with_capacity(steps + 1);
        let mut samples: Vec<Vec<f64>> = Vec::with_capacity(steps + 1);
        times.push(0.0);
        samples.push(x.clone());

        for k in 1..=steps {
            let t = k as f64 * tstep;
            let trapezoidal = k > 1;
            for cap in &mut caps {
                cap.prepare(tstep, trapezoidal);
            }
            for ind in &mut inds {
                ind.prepare(tstep, trapezoidal);
            }
            if newton_solve(
                self,
                &mut x,
                Some(t),
                Some((&caps, &inds)),
                1.0,
                opts.gmin,
                &opts,
            )
            .is_err()
            {
                // Retry with heavy damping: piecewise-linear device
                // models (table models) can make full Newton steps
                // cycle between interpolation cells.
                let damped = NewtonOptions {
                    max_iter: 600,
                    vstep_limit: 0.02,
                    ..opts
                };
                newton_solve(
                    self,
                    &mut x,
                    Some(t),
                    Some((&caps, &inds)),
                    1.0,
                    opts.gmin,
                    &damped,
                )
                .map_err(|e| match e {
                    SpiceError::SingularMatrix { .. } => e,
                    _ => SpiceError::NonConvergence {
                        analysis: "transient",
                        iterations: damped.max_iter,
                        residual: t,
                    },
                })?;
            }
            for cap in &mut caps {
                cap.commit(&x);
            }
            for ind in &mut inds {
                ind.commit(&x, n_nodes);
            }
            times.push(t);
            samples.push(x.clone());
        }

        let mut traces = HashMap::new();
        for i in 1..=self.num_nodes() {
            let name = self.node_name(crate::netlist::NodeId(i)).to_owned();
            let trace = samples.iter().map(|s| s[i - 1]).collect();
            traces.insert(name, trace);
        }
        Ok(TranResult { times, traces })
    }
}

//! Statistical distributions over the workspace PRNG.
//!
//! The fab/core Monte-Carlos need exactly five shapes: uniform and
//! Bernoulli draws (site screening, VMR survival), normal threshold and
//! alignment dispersion, log-normal on-currents, and Poisson site
//! occupancy. Each distribution validates its parameters at construction
//! ([`DistError`]) so sampling itself is infallible, and sampling is
//! *stateless*: a distribution plus a generator state fully determines
//! the draw, which keeps chunked parallel campaigns bit-reproducible.

use crate::rng::Rng;

/// Error constructing a distribution from non-physical parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct DistError(String);

impl DistError {
    fn new(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl std::fmt::Display for DistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid distribution: {}", self.0)
    }
}

impl std::error::Error for DistError {}

/// A sampleable distribution producing values of type `T`.
pub trait Distribution<T> {
    /// Draws one value.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    lo: f64,
    width: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] unless `lo < hi` and both are finite.
    pub fn new(lo: f64, hi: f64) -> Result<Self, DistError> {
        if !(lo.is_finite() && hi.is_finite() && lo < hi) {
            return Err(DistError::new(format!(
                "uniform needs lo < hi, got [{lo}, {hi})"
            )));
        }
        Ok(Self { lo, width: hi - lo })
    }
}

impl Distribution<f64> for Uniform {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.lo + self.width * rng.next_f64()
    }
}

/// Bernoulli distribution: `true` with probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bernoulli {
    p: f64,
}

impl Bernoulli {
    /// Creates a Bernoulli distribution.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] unless `p ∈ [0, 1]`.
    pub fn new(p: f64) -> Result<Self, DistError> {
        if !(0.0..=1.0).contains(&p) {
            return Err(DistError::new(format!(
                "probability must be in [0, 1], got {p}"
            )));
        }
        Ok(Self { p })
    }
}

impl Distribution<bool> for Bernoulli {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> bool {
        rng.next_f64() < self.p
    }
}

/// Normal (Gaussian) distribution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Creates a normal distribution with the given mean and standard
    /// deviation.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] unless both are finite and `std_dev ≥ 0`.
    pub fn new(mean: f64, std_dev: f64) -> Result<Self, DistError> {
        if !(mean.is_finite() && std_dev.is_finite() && std_dev >= 0.0) {
            return Err(DistError::new(format!(
                "normal needs finite mean and σ ≥ 0, got N({mean}, {std_dev})"
            )));
        }
        Ok(Self { mean, std_dev })
    }

    /// One standard normal variate via the Box–Muller transform.
    ///
    /// Stateless by design: the second Box–Muller variate is discarded
    /// so a draw consumes a fixed number of generator words, keeping
    /// chunk boundaries reproducible.
    fn standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // u1 ∈ (0, 1] keeps the log finite.
        let u1 = 1.0 - rng.next_f64();
        let u2 = rng.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }
}

impl Distribution<f64> for Normal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.mean + self.std_dev * Self::standard(rng)
    }
}

/// Log-normal distribution: `exp(N(µ, σ))`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    norm: Normal,
}

impl LogNormal {
    /// Creates a log-normal distribution with the given location `mu`
    /// and scale `sigma` *of the underlying normal*.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] unless both are finite and `sigma ≥ 0`.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, DistError> {
        Ok(Self {
            norm: Normal::new(mu, sigma)?,
        })
    }
}

impl Distribution<f64> for LogNormal {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.norm.sample(rng).exp()
    }
}

/// Poisson distribution with rate `λ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
    /// `e^{−λ}` cached for the small-λ inversion loop.
    exp_neg_lambda: f64,
}

/// Above this rate the multiplication method underflows and a rounded
/// normal approximation (error `O(1/√λ)`) takes over — far beyond any
/// site-occupancy λ the fab models use.
const POISSON_NORMAL_CUTOVER: f64 = 64.0;

impl Poisson {
    /// Creates a Poisson distribution.
    ///
    /// # Errors
    ///
    /// Returns [`DistError`] unless `λ` is finite and positive.
    pub fn new(lambda: f64) -> Result<Self, DistError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(DistError::new(format!(
                "Poisson rate must be positive, got {lambda}"
            )));
        }
        Ok(Self {
            lambda,
            exp_neg_lambda: (-lambda).exp(),
        })
    }
}

impl Distribution<f64> for Poisson {
    /// Returns the count as `f64` (mirroring the former `rand_distr`
    /// interface the fab models were written against).
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if self.lambda >= POISSON_NORMAL_CUTOVER {
            let n = Normal::new(self.lambda, self.lambda.sqrt()).expect("valid by construction");
            return n.sample(rng).round().max(0.0);
        }
        // Knuth's multiplication method: count uniforms until the
        // running product drops below e^{−λ}.
        let mut k = 0u64;
        let mut prod = rng.next_f64();
        while prod > self.exp_neg_lambda {
            k += 1;
            prod *= rng.next_f64();
        }
        k as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256pp;

    fn moments(draws: &[f64]) -> (f64, f64) {
        let n = draws.len() as f64;
        let mean = draws.iter().sum::<f64>() / n;
        let var = draws.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        (mean, var)
    }

    #[test]
    fn normal_moments_within_tolerance() {
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let d = Normal::new(0.35, 0.07).unwrap();
        let draws: Vec<f64> = (0..40_000).map(|_| d.sample(&mut rng)).collect();
        let (mean, var) = moments(&draws);
        assert!((mean - 0.35).abs() < 2e-3, "mean {mean}");
        assert!((var.sqrt() - 0.07).abs() < 2e-3, "σ {}", var.sqrt());
    }

    #[test]
    fn uniform_covers_its_interval() {
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let d = Uniform::new(-1.0, 3.0).unwrap();
        let draws: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        assert!(draws.iter().all(|&x| (-1.0..3.0).contains(&x)));
        let (mean, var) = moments(&draws);
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Var of U(−1, 3) is 4²/12.
        assert!((var - 16.0 / 12.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn bernoulli_frequency_tracks_p() {
        let mut rng = Xoshiro256pp::seed_from_u64(6);
        let d = Bernoulli::new(0.3).unwrap();
        let hits = (0..50_000).filter(|_| d.sample(&mut rng)).count();
        let f = hits as f64 / 50_000.0;
        assert!((f - 0.3).abs() < 0.01, "frequency {f}");
    }

    #[test]
    fn lognormal_median_is_exp_mu() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let d = LogNormal::new((10e-6f64).ln(), 0.4).unwrap();
        let mut draws: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        draws.sort_by(f64::total_cmp);
        let median = draws[draws.len() / 2];
        assert!((median / 10e-6 - 1.0).abs() < 0.03, "median {median:e}");
        assert!(draws.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn poisson_mean_equals_lambda_small_and_large() {
        let mut rng = Xoshiro256pp::seed_from_u64(8);
        for lambda in [0.2, 2.3, 10.0, 100.0] {
            let d = Poisson::new(lambda).unwrap();
            let draws: Vec<f64> = (0..30_000).map(|_| d.sample(&mut rng)).collect();
            let (mean, var) = moments(&draws);
            assert!(
                (mean - lambda).abs() < 0.05 * lambda + 0.02,
                "λ = {lambda}: mean {mean}"
            );
            // Poisson variance equals the rate.
            assert!(
                (var - lambda).abs() < 0.1 * lambda + 0.05,
                "λ = {lambda}: var {var}"
            );
            assert!(draws.iter().all(|&k| k >= 0.0 && k.fract() == 0.0));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let d = Normal::new(1.0, 2.0).unwrap();
        let a: Vec<f64> = {
            let mut rng = Xoshiro256pp::seed_from_u64(1);
            (0..64).map(|_| d.sample(&mut rng)).collect()
        };
        let b: Vec<f64> = {
            let mut rng = Xoshiro256pp::seed_from_u64(1);
            (0..64).map(|_| d.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn validation() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(0.0, f64::INFINITY).is_err());
        assert!(Bernoulli::new(1.5).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(LogNormal::new(0.0, -0.1).is_err());
        assert!(Poisson::new(0.0).is_err());
        assert!(Poisson::new(f64::NAN).is_err());
    }
}

//! A lightweight benchmark harness.
//!
//! Replaces the external `criterion` dependency for the workspace's
//! `harness = false` bench targets. The model is deliberately small:
//! each benchmark is a closure, timed as median-of-[`SAMPLES`] where
//! each sample runs enough iterations to exceed a minimum measurable
//! window. Results print as a console table and are appended as
//! line-delimited JSON under `target/carbon-bench/` for diffing across
//! runs.
//!
//! `cargo test` executes `harness = false` binaries with a `--test`
//! flag; the harness detects it (and `--list`) and runs every closure
//! exactly once as a smoke test, so bench targets stay part of the
//! tier-1 suite without paying measurement cost.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Samples per benchmark; the reported time is their median.
pub const SAMPLES: usize = 11;

/// Minimum wall-clock per sample; iteration count is calibrated up
/// until one sample takes at least this long.
const MIN_SAMPLE_TIME: Duration = Duration::from_millis(20);

/// One measured benchmark result.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark id, e.g. `"fig7/park_campaign"`.
    pub id: String,
    /// Median time per iteration.
    pub median: Duration,
    /// Fastest sample (per iteration).
    pub min: Duration,
    /// Slowest sample (per iteration).
    pub max: Duration,
    /// Iterations per sample after calibration.
    pub iters: u64,
}

/// A named group of benchmarks, mirroring the former criterion group
/// structure so bench ids (`group/param`) are unchanged.
pub struct Harness {
    group: String,
    smoke: bool,
    results: Vec<Measurement>,
}

impl Harness {
    /// Creates a harness for one bench group, inspecting CLI args to
    /// decide between measurement and smoke-test mode.
    pub fn group(name: &str) -> Self {
        let smoke = std::env::args()
            .skip(1)
            .any(|a| a == "--test" || a == "--list");
        if std::env::args().skip(1).any(|a| a == "--list") {
            // `cargo test -- --list` expects test enumeration output;
            // an empty listing keeps it happy.
            println!("0 tests, 0 benchmarks");
        }
        Self {
            group: name.to_string(),
            smoke,
            results: Vec::new(),
        }
    }

    /// Whether the harness is in run-once smoke mode (`--test`).
    pub fn is_smoke(&self) -> bool {
        self.smoke
    }

    /// Times `f`, reporting it as `group/id`.
    ///
    /// Wrap inputs and outputs in [`black_box`] inside the closure to
    /// keep the optimizer honest.
    pub fn bench<F: FnMut()>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.group, id);
        if self.smoke {
            f();
            println!("smoke {full}: ok");
            return self;
        }

        // Calibrate: grow the iteration count until one sample clears
        // the minimum window.
        let mut iters: u64 = 1;
        loop {
            let t = Self::sample(&mut f, iters);
            if t >= MIN_SAMPLE_TIME || iters >= 1 << 24 {
                break;
            }
            // Aim 2× past the target to converge in few rounds.
            let scale = (MIN_SAMPLE_TIME.as_secs_f64() / t.as_secs_f64().max(1e-9)) * 2.0;
            iters = (iters as f64 * scale.clamp(2.0, 100.0)) as u64;
        }

        let mut per_iter: Vec<Duration> = (0..SAMPLES)
            .map(|_| Self::sample(&mut f, iters) / iters as u32)
            .collect();
        per_iter.sort();
        let m = Measurement {
            id: full,
            median: per_iter[SAMPLES / 2],
            min: per_iter[0],
            max: per_iter[SAMPLES - 1],
            iters,
        };
        println!(
            "{:<40} median {:>12?}  (min {:?}, max {:?}, {} iters/sample)",
            m.id, m.median, m.min, m.max, m.iters
        );
        self.results.push(m);
        self
    }

    fn sample<F: FnMut()>(f: &mut F, iters: u64) -> Duration {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        start.elapsed()
    }

    /// Writes collected results as JSON lines to
    /// `target/carbon-bench/<group>.jsonl` (measurement mode only).
    pub fn finish(&self) {
        use std::fmt::Write as _;
        if self.smoke || self.results.is_empty() {
            return;
        }
        let dir = output_dir();
        if std::fs::create_dir_all(&dir).is_err() {
            return;
        }
        let mut out = String::new();
        for m in &self.results {
            let _ = writeln!(
                out,
                "{{\"id\":\"{}\",\"median_ns\":{},\"min_ns\":{},\"max_ns\":{},\"iters\":{}}}",
                json_escape(&m.id),
                m.median.as_nanos(),
                m.min.as_nanos(),
                m.max.as_nanos(),
                m.iters
            );
        }
        let path = dir.join(format!("{}.jsonl", self.group.replace('/', "_")));
        if std::fs::write(&path, out).is_ok() {
            println!("bench results written to {}", path.display());
        }
    }
}

/// Resolves the JSONL output directory. Cargo runs bench executables
/// with the *package* root as working directory, so a bare relative
/// `target/` would scatter results across member crates; prefer
/// `CARGO_TARGET_DIR`, then the workspace target dir (the nearest
/// ancestor holding a `Cargo.lock`).
fn output_dir() -> std::path::PathBuf {
    if let Some(dir) = std::env::var_os("CARGO_TARGET_DIR") {
        return std::path::PathBuf::from(dir).join("carbon-bench");
    }
    if let Ok(mut cwd) = std::env::current_dir() {
        loop {
            if cwd.join("Cargo.lock").exists() {
                return cwd.join("target").join("carbon-bench");
            }
            if !cwd.pop() {
                break;
            }
        }
    }
    std::path::Path::new("target").join("carbon-bench")
}

/// Escapes a string for embedding in a JSON literal.
fn json_escape(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_produces_ordered_stats() {
        // Note: unit tests don't see the bench binary's `--test` flag,
        // so force measurement mode with a cheap closure.
        let mut h = Harness {
            group: "unit".into(),
            smoke: false,
            results: Vec::new(),
        };
        let mut acc = 0u64;
        h.bench("spin", || {
            acc = black_box(acc.wrapping_add(1));
        });
        let m = &h.results[0];
        assert_eq!(m.id, "unit/spin");
        assert!(m.min <= m.median && m.median <= m.max);
        assert!(m.iters >= 1);
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut h = Harness {
            group: "unit".into(),
            smoke: true,
            results: Vec::new(),
        };
        let mut runs = 0;
        h.bench("once", || runs += 1);
        assert_eq!(runs, 1);
        assert!(h.results.is_empty());
        h.finish();
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain/id"), "plain/id");
    }
}

//! Deterministic parallel execution of Monte-Carlo campaigns and bias
//! sweeps.
//!
//! The workspace's hottest loops share one shape: `N` independent
//! evaluations (a sampled device, a solved bias point, a swept gate
//! length) folded into a result vector. [`Executor`] runs that shape
//! across `std::thread::scope` workers with a **determinism contract**:
//!
//! > The output of [`Executor::par_map`] and [`Executor::par_mc`] is
//! > bit-identical at every thread count, including 1.
//!
//! For pure functions ([`par_map`](Executor::par_map)) this is free —
//! results are written back by item index. For stochastic work
//! ([`par_mc`](Executor::par_mc)) the items are partitioned into
//! *fixed-size* chunks (independent of thread count) and chunk `k`
//! draws from [`Xoshiro256pp::from_seed_and_stream`]`(seed, k)`, so the
//! random sequence an item sees depends only on the seed and its index,
//! never on scheduling.
//!
//! Workers pull chunks from an atomic cursor (no work-stealing state to
//! seed), and nested calls run inline on the calling worker so a
//! parallel sweep over devices whose model itself parallelizes cannot
//! oversubscribe the machine.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use carbon_metrics::{global_gauge, global_histogram};
use carbon_trace::{gauge, span};

use crate::rng::Xoshiro256pp;

/// Items per RNG stream in [`Executor::par_mc`]. Fixed (never derived
/// from the thread count) — this constant *is* the determinism contract
/// for stochastic work, so changing it changes every campaign's draws.
pub const MC_CHUNK: usize = 1024;

thread_local! {
    /// Set while the current thread is an executor worker; nested
    /// executor calls then run inline instead of spawning again.
    static IN_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// A scoped-thread pool descriptor with deterministic scheduling
/// semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Executor {
    threads: usize,
}

impl Default for Executor {
    fn default() -> Self {
        Self::new()
    }
}

impl Executor {
    /// Creates an executor sized for the machine: the `CARBON_THREADS`
    /// environment variable if set, otherwise `available_parallelism`.
    pub fn new() -> Self {
        let threads = std::env::var("CARBON_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
            .unwrap_or_else(|| {
                std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
            });
        Self::with_threads(threads)
    }

    /// Creates an executor with an explicit worker count (≥ 1).
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// Worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Maps `f` over `0..n`, returning results in index order.
    ///
    /// `f` must be pure for the determinism contract to mean anything;
    /// the executor guarantees only that result `i` lands at index `i`.
    pub fn par_map<T, F>(&self, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize) -> T + Sync,
    {
        // One item per chunk keeps long-tailed sweeps (e.g. the Fig. 5
        // gate-length ladder, where 3 µm devices cost far more than
        // 9 nm ones) balanced.
        self.run_chunked(n, 1, |chunk_start, _chunk_index, out| {
            out.push(f(chunk_start));
        })
    }

    /// Runs `n` stochastic evaluations seeded from `seed`, returning
    /// results in index order.
    ///
    /// Item `i` draws from the chunk generator of chunk `i / MC_CHUNK`,
    /// which is `Xoshiro256pp::from_seed_and_stream(seed, i / MC_CHUNK)`
    /// advanced by the items before it in the chunk. The schedule —
    /// which worker runs which chunk, and in what order — cannot affect
    /// any draw.
    pub fn par_mc<T, F>(&self, seed: u64, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut Xoshiro256pp) -> T + Sync,
    {
        self.par_mc_extend(seed, 0, n, f)
    }

    /// Extends a [`par_mc`](Self::par_mc) campaign: evaluates items
    /// `start..end` of the run seeded from `seed`, returning their
    /// results in index order.
    ///
    /// `start` must be chunk-aligned (a multiple of [`MC_CHUNK`]).
    /// Because chunk `k` always draws from
    /// `Xoshiro256pp::from_seed_and_stream(seed, k)` regardless of how
    /// many chunks ran before it, the concatenation of aligned extend
    /// calls is **bit-identical** to one `par_mc(seed, end, f)` of the
    /// full length — at any thread count. This is what adaptive
    /// campaign sizing grows on: each round appends chunks without
    /// re-drawing (or perturbing) a single earlier sample.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a multiple of [`MC_CHUNK`] or
    /// `start > end`.
    pub fn par_mc_extend<T, F>(&self, seed: u64, start: usize, end: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut Xoshiro256pp) -> T + Sync,
    {
        assert!(
            start.is_multiple_of(MC_CHUNK),
            "par_mc_extend start = {start} must be a multiple of MC_CHUNK = {MC_CHUNK}"
        );
        assert!(start <= end, "par_mc_extend start = {start} > end = {end}");
        let base_chunk = start / MC_CHUNK;
        self.run_chunked(end - start, MC_CHUNK, |chunk_start, chunk_index, out| {
            let global_chunk = (base_chunk + chunk_index) as u64;
            let mut rng = Xoshiro256pp::from_seed_and_stream(seed, global_chunk);
            let i0 = start + chunk_start;
            let i1 = (i0 + MC_CHUNK).min(end);
            for i in i0..i1 {
                out.push(f(i, &mut rng));
            }
        })
    }

    /// Runs `n` *expensive* stochastic evaluations seeded from `seed`,
    /// returning results in index order.
    ///
    /// Unlike [`par_mc`](Self::par_mc), every item gets its own RNG
    /// stream (`Xoshiro256pp::from_seed_and_stream(seed, i)`) and its
    /// own schedule slot. Stream setup costs a few dozen nanoseconds
    /// per item, so use this when each evaluation is heavy — a Newton
    /// solve, a VTC sweep — and [`par_mc`](Self::par_mc) when it is a
    /// handful of draws. Equally deterministic: item `i`'s draws depend
    /// only on `(seed, i)`.
    pub fn par_mc_fine<T, F>(&self, seed: u64, n: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(usize, &mut Xoshiro256pp) -> T + Sync,
    {
        self.run_chunked(n, 1, |i, _chunk_index, out| {
            let mut rng = Xoshiro256pp::from_seed_and_stream(seed, i as u64);
            out.push(f(i, &mut rng));
        })
    }

    /// Shared chunk-pulling driver: splits `0..n` into fixed-size
    /// chunks, hands each to `work` exactly once, and reassembles the
    /// per-chunk outputs in chunk order.
    fn run_chunked<T, W>(&self, n: usize, chunk_size: usize, work: W) -> Vec<T>
    where
        T: Send,
        W: Fn(usize, usize, &mut Vec<T>) + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        // Always-on metrics: cached handles into the process-global
        // registry (one OnceLock load after the first call).
        let chunk_hist = global_histogram!("runtime.chunk_ns");
        let inflight = global_gauge!("runtime.inflight_chunks");
        let n_chunks = n.div_ceil(chunk_size);
        let workers = self.threads.min(n_chunks);
        let inline = workers == 1 || IN_WORKER.with(Cell::get);
        let mut run_span = span!("runtime.run_chunked");
        if run_span.is_live() {
            run_span.record("items", n);
            run_span.record("chunk_size", chunk_size);
            run_span.record("n_chunks", n_chunks);
            run_span.record("workers", if inline { 1 } else { workers });
            run_span.record("inline", inline);
        }
        if inline {
            let mut out = Vec::with_capacity(n);
            for c in 0..n_chunks {
                let mut chunk_span = span!("runtime.chunk");
                if chunk_span.is_live() {
                    chunk_span.record("chunk", c);
                    chunk_span.record("items", (n - c * chunk_size).min(chunk_size));
                    chunk_span.record("queue", n_chunks - c - 1);
                }
                gauge!("runtime.queue", n_chunks - c - 1);
                inflight.add(1);
                let started = std::time::Instant::now();
                work(c * chunk_size, c, &mut out);
                chunk_hist.record(started.elapsed().as_nanos() as u64);
                inflight.sub(1);
            }
            return out;
        }

        let cursor = AtomicUsize::new(0);
        let slots: Vec<Mutex<Vec<T>>> = (0..n_chunks).map(|_| Mutex::new(Vec::new())).collect();
        // Workers inherit the caller's cancellation token (if any), so
        // a deadline installed around a parallel sweep reaches the
        // checkpoints inside every chunk.
        let token = crate::cancel::current();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| {
                    IN_WORKER.with(|w| w.set(true));
                    let _inherit = crate::cancel::inherit(token.clone());
                    loop {
                        let c = cursor.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        let mut chunk_span = span!("runtime.chunk");
                        if chunk_span.is_live() {
                            chunk_span.record("chunk", c);
                            chunk_span.record("items", (n - c * chunk_size).min(chunk_size));
                            // Chunks still waiting in the queue when this
                            // one was pulled — a live occupancy gauge.
                            chunk_span.record("queue", n_chunks.saturating_sub(c + 1));
                        }
                        gauge!("runtime.queue", n_chunks.saturating_sub(c + 1));
                        inflight.add(1);
                        let started = std::time::Instant::now();
                        let mut local = Vec::with_capacity(chunk_size);
                        work(c * chunk_size, c, &mut local);
                        chunk_hist.record(started.elapsed().as_nanos() as u64);
                        inflight.sub(1);
                        *slots[c].lock().expect("chunk slot poisoned") = local;
                    }
                });
            }
        });
        let mut out = Vec::with_capacity(n);
        for slot in slots {
            out.extend(slot.into_inner().expect("chunk slot poisoned"));
        }
        out
    }
}

/// Maps `f` over `0..n` on the default executor.
pub fn par_map<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    Executor::new().par_map(n, f)
}

/// Runs `n` seeded stochastic evaluations on the default executor.
pub fn par_mc<T, F>(seed: u64, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Xoshiro256pp) -> T + Sync,
{
    Executor::new().par_mc(seed, n, f)
}

/// Runs `n` seeded *expensive* stochastic evaluations (one RNG stream
/// per item) on the default executor.
pub fn par_mc_fine<T, F>(seed: u64, n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &mut Xoshiro256pp) -> T + Sync,
{
    Executor::new().par_mc_fine(seed, n, f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, RngCore};

    #[test]
    fn par_map_preserves_order() {
        for threads in [1, 2, 5, 16] {
            let ex = Executor::with_threads(threads);
            let out = ex.par_map(1000, |i| i * i);
            assert_eq!(out.len(), 1000);
            assert!(out.iter().enumerate().all(|(i, &v)| v == i * i));
        }
    }

    #[test]
    fn par_mc_is_thread_count_invariant() {
        let reference = Executor::with_threads(1).par_mc(2014, 10_000, |_, rng| rng.next_f64());
        for threads in [2, 3, 8] {
            let out = Executor::with_threads(threads).par_mc(2014, 10_000, |_, rng| rng.next_f64());
            assert_eq!(out, reference, "divergence at {threads} threads");
        }
    }

    #[test]
    fn par_mc_fine_is_thread_count_invariant_and_per_item_stable() {
        let reference = Executor::with_threads(1).par_mc_fine(9, 64, |i, rng| (i, rng.next_u64()));
        for threads in [2, 7] {
            let out =
                Executor::with_threads(threads).par_mc_fine(9, 64, |i, rng| (i, rng.next_u64()));
            assert_eq!(out, reference, "divergence at {threads} threads");
        }
        // Item i's stream is independent of n.
        let longer = par_mc_fine(9, 128, |i, rng| (i, rng.next_u64()));
        assert_eq!(longer[..64], reference[..]);
    }

    #[test]
    fn par_mc_extend_matches_the_tail_of_one_full_run() {
        let n = 3 * MC_CHUNK + 17;
        let full = par_mc(2014, n, |i, rng| (i, rng.next_u64()));
        for threads in [1, 2, 4, 8] {
            let ex = Executor::with_threads(threads);
            // Grown in rounds of one chunk, the concatenation must be
            // bit-identical to the single full run.
            let mut grown = Vec::new();
            let mut start = 0;
            while start < n {
                let end = (start + MC_CHUNK).min(n);
                grown.extend(ex.par_mc_extend(2014, start, end, |i, rng| (i, rng.next_u64())));
                start = end;
            }
            assert_eq!(grown, full, "divergence at {threads} threads");
            // And a single mid-campaign extension matches the tail.
            let tail = ex.par_mc_extend(2014, MC_CHUNK, n, |i, rng| (i, rng.next_u64()));
            assert_eq!(
                tail[..],
                full[MC_CHUNK..],
                "tail divergence at {threads} threads"
            );
        }
    }

    #[test]
    #[should_panic(expected = "must be a multiple of MC_CHUNK")]
    fn par_mc_extend_rejects_misaligned_start() {
        Executor::new().par_mc_extend(1, 7, MC_CHUNK, |_, rng| rng.next_u64());
    }

    #[test]
    fn par_mc_depends_on_seed() {
        let a = par_mc(1, 100, |_, rng| rng.next_f64());
        let b = par_mc(2, 100, |_, rng| rng.next_f64());
        assert_ne!(a, b);
    }

    #[test]
    fn chunk_boundaries_are_stable_across_n() {
        // Item i's draws must not depend on how many items follow it.
        let short = par_mc(7, MC_CHUNK + 10, |_, rng| rng.next_u64());
        let long = par_mc(7, 3 * MC_CHUNK, |_, rng| rng.next_u64());
        assert_eq!(short[..], long[..MC_CHUNK + 10]);
    }

    #[test]
    fn nested_calls_run_inline_and_stay_deterministic() {
        let ex = Executor::with_threads(4);
        let nested = ex.par_map(8, |i| {
            // A model that itself parallelizes: must not deadlock or
            // oversubscribe, and must stay deterministic.
            Executor::with_threads(4)
                .par_mc(i as u64, 100, |_, rng| rng.next_f64())
                .iter()
                .sum::<f64>()
        });
        let flat: Vec<f64> = (0..8)
            .map(|i| {
                Executor::with_threads(1)
                    .par_mc(i as u64, 100, |_, rng| rng.next_f64())
                    .iter()
                    .sum::<f64>()
            })
            .collect();
        assert_eq!(nested, flat);
    }

    #[test]
    fn empty_and_single_item() {
        let ex = Executor::with_threads(4);
        assert!(ex.par_map(0, |i| i).is_empty());
        assert_eq!(ex.par_mc(0, 1, |i, _| i), vec![0]);
    }

    #[test]
    fn executor_sizing() {
        assert_eq!(Executor::with_threads(0).threads(), 1);
        assert!(Executor::new().threads() >= 1);
    }

    #[test]
    fn inline_execution_emits_chunk_spans_with_queue_occupancy() {
        use carbon_trace::collect::Collector;
        use carbon_trace::Value;

        let collector = Collector::new();
        let out = carbon_trace::with_subscriber(collector.clone(), || {
            // threads = 1 runs inline, so every span lands on this
            // thread's subscriber.
            Executor::with_threads(1).par_mc(42, 2 * MC_CHUNK + 5, |_, rng| rng.next_f64())
        });
        assert_eq!(out.len(), 2 * MC_CHUNK + 5);

        let runs = collector.spans("runtime.run_chunked");
        assert_eq!(runs.len(), 1);
        assert_eq!(
            collector.span_field("runtime.run_chunked", "n_chunks"),
            vec![Value::U64(3)]
        );
        let chunks = collector.spans("runtime.chunk");
        assert_eq!(chunks.len(), 3, "one span per chunk");
        // Chunk spans nest under the run span.
        let run_id = match &runs[0] {
            carbon_trace::Event::Span { id, .. } => *id,
            _ => unreachable!(),
        };
        for ev in &chunks {
            if let carbon_trace::Event::Span { parent, .. } = ev {
                assert_eq!(*parent, Some(run_id));
            }
        }
        // Queue occupancy counts down as chunks drain: 2, 1, 0.
        assert_eq!(
            collector.span_field("runtime.chunk", "queue"),
            vec![Value::U64(2), Value::U64(1), Value::U64(0)]
        );
        // The short tail chunk reports its true item count.
        assert_eq!(
            collector.span_field("runtime.chunk", "items"),
            vec![
                Value::U64(MC_CHUNK as u64),
                Value::U64(MC_CHUNK as u64),
                Value::U64(5)
            ]
        );
    }

    #[test]
    fn chunk_metrics_land_in_the_global_registry() {
        // Counters and histogram counts are monotonic, so deltas are
        // robust to other tests sharing the global registry.
        let before = carbon_metrics::global()
            .histogram("runtime.chunk_ns")
            .snapshot()
            .count();
        for threads in [1, 4] {
            Executor::with_threads(threads).par_mc(11, 3 * MC_CHUNK, |_, rng| rng.next_f64());
        }
        let after = carbon_metrics::global()
            .histogram("runtime.chunk_ns")
            .snapshot()
            .count();
        assert!(after >= before + 6, "before {before}, after {after}");
        // In-flight gauge returns to zero once every chunk completed.
        assert_eq!(
            carbon_metrics::global()
                .gauge("runtime.inflight_chunks")
                .get(),
            0
        );
    }

    #[test]
    fn inline_execution_emits_queue_gauge_events() {
        use carbon_trace::collect::Collector;

        let collector = Collector::new();
        carbon_trace::with_subscriber(collector.clone(), || {
            Executor::with_threads(1).par_mc(42, 3 * MC_CHUNK, |_, rng| rng.next_f64())
        });
        // The queue gauge counts down as chunks drain: 2, 1, 0.
        assert_eq!(collector.gauge_values("runtime.queue"), vec![2, 1, 0]);
        assert_eq!(collector.gauge_minmax("runtime.queue"), Some((0, 2)));
    }

    #[test]
    fn tracing_does_not_perturb_results() {
        use carbon_trace::collect::Collector;

        let plain = Executor::with_threads(1).par_mc(7, 3000, |_, rng| rng.next_f64());
        let traced = carbon_trace::with_subscriber(Collector::new(), || {
            Executor::with_threads(1).par_mc(7, 3000, |_, rng| rng.next_f64())
        });
        assert_eq!(plain, traced);
    }
}

//! Hermetic runtime substrate for the carbon-electronics workspace.
//!
//! Every crate in the workspace that previously reached for external
//! registry dependencies — `rand`/`rand_distr` for Monte-Carlo
//! sampling, `proptest` for property tests, `criterion` for benches —
//! now builds on this zero-dependency crate instead, which makes
//! `cargo build --offline` work from a bare checkout. Four modules:
//!
//! * [`rng`] — xoshiro256++ with `SplitMix64` seeding and splittable
//!   per-task streams;
//! * [`dist`] — the five distributions the fab/core experiments use
//!   (uniform, Bernoulli, normal, log-normal, Poisson), stateless and
//!   validated at construction;
//! * [`executor`] — deterministic parallel execution of Monte-Carlo
//!   campaigns and bias sweeps: bit-identical results at any thread
//!   count;
//! * [`prop`] — a `proptest`-shaped property-test macro and harness;
//! * [`bench`] — a median-of-N timing harness with JSON output for
//!   `harness = false` bench targets.
//!
//! # Determinism contract
//!
//! Everything here is reproducible from explicit `u64` seeds: the same
//! seed gives the same draws, the same campaign gives the same results
//! at 1 or N threads, and the same property test draws the same cases
//! on every run and platform. No entropy source is ever consulted.

#![deny(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::must_use_candidate,
    clippy::return_self_not_must_use,
    clippy::missing_panics_doc
)]

pub mod bench;
pub mod cancel;
pub mod dist;
pub mod executor;
pub mod prop;
pub mod rng;

pub use cancel::CancelToken;
pub use dist::{Bernoulli, DistError, Distribution, LogNormal, Normal, Poisson, Uniform};
pub use executor::{par_map, par_mc, par_mc_fine, Executor, MC_CHUNK};
pub use rng::{Rng, RngCore, SplitMix64, Xoshiro256pp};

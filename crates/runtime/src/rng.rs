//! Deterministic pseudo-random number generation.
//!
//! The workspace's statistical experiments (the §V Park campaign, the
//! sorting/placement/VMR Monte-Carlos, the property-test suites) must be
//! reproducible from a single `u64` seed, with *splittable* streams so
//! that parallel workers draw independent, thread-count-invariant
//! sequences. Two pieces provide that:
//!
//! * [`SplitMix64`] — a tiny one-word mixer, used only to expand seeds
//!   into generator state and to derive per-stream sub-seeds;
//! * [`Xoshiro256pp`] — xoshiro256++ (Blackman & Vigna), the workhorse
//!   generator: 256-bit state, period `2²⁵⁶ − 1`, passes `BigCrush`, and
//!   is a handful of shifts/rotates per draw.
//!
//! Stream derivation ([`Xoshiro256pp::from_seed_and_stream`]) mixes the
//! `(seed, stream)` pair through `SplitMix64` so that chunk `k` of a
//! parallel campaign gets the same sequence no matter which worker runs
//! it — the foundation of the executor's determinism contract.

/// `SplitMix64`: Sebastiano Vigna's 64-bit state mixer.
///
/// Used for seed expansion and sub-stream derivation, not as a
/// general-purpose generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a mixer from a raw seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next mixed 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ — the workspace's standard generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Seeds the generator by expanding `seed` through [`SplitMix64`]
    /// (the construction recommended by the xoshiro authors).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let mut s = [0u64; 4];
        for w in &mut s {
            *w = sm.next_u64();
        }
        // The all-zero state is the one fixed point; splitmix cannot
        // produce four zero outputs in a row, but guard anyway.
        if s == [0, 0, 0, 0] {
            s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
        }
        Self { s }
    }

    /// Seeds stream `stream` of the family rooted at `seed`: the same
    /// `(seed, stream)` pair always yields the same sequence, and
    /// distinct streams are statistically independent. This is how the
    /// executor gives every Monte-Carlo chunk its own generator without
    /// any cross-thread coordination.
    pub fn from_seed_and_stream(seed: u64, stream: u64) -> Self {
        // Decorrelate the pair with one splitmix round over the stream
        // index before folding it into the seed.
        let mut sm = SplitMix64::new(stream.wrapping_mul(0xA076_1D64_78BD_642F));
        Self::seed_from_u64(seed ^ sm.next_u64())
    }

    /// Splits off an independent child generator, advancing `self`.
    ///
    /// The child is seeded from fresh draws of the parent, so repeated
    /// splits yield pairwise-independent streams — per-task seeding for
    /// work whose count is not known up front.
    pub fn split(&mut self) -> Self {
        let a = self.next_u64();
        let b = self.next_u64();
        let mut sm = SplitMix64::new(a);
        Self::seed_from_u64(b ^ sm.next_u64())
    }
}

impl RngCore for Xoshiro256pp {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Raw 64-bit generator interface.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;
}

impl<T: RngCore + ?Sized> RngCore for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        // Top 53 bits → the dyadic rationals k · 2⁻⁵³.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics unless `lo < hi` and both are finite.
    fn gen_range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo < hi,
            "invalid range [{lo}, {hi})"
        );
        lo + (hi - lo) * self.next_f64()
    }

    /// Uniform `u64` in `[0, n)` via Lemire's unbiased multiply-shift
    /// rejection.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    fn gen_below_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Lemire 2018: accept when the 128-bit product's low word clears
        // the bias threshold.
        let mut x = self.next_u64();
        let mut m = u128::from(x) * u128::from(n);
        let mut lo = m as u64;
        if lo < n {
            let threshold = n.wrapping_neg() % n;
            while lo < threshold {
                x = self.next_u64();
                m = u128::from(x) * u128::from(n);
                lo = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `usize` in `[range.start, range.end)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range {range:?}");
        range.start + self.gen_below_u64((range.end - range.start) as u64) as usize
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xoshiro_matches_reference_vectors() {
        // Reference sequence for xoshiro256++ from state [1, 2, 3, 4]
        // (first values of the C reference implementation).
        let mut g = Xoshiro256pp { s: [1, 2, 3, 4] };
        let expect: [u64; 6] = [
            41_943_041,
            58_720_359,
            3_588_806_011_781_223,
            3_591_011_842_654_386,
            9_228_616_714_210_784_205,
            9_973_669_472_204_895_162,
        ];
        for e in expect {
            assert_eq!(g.next_u64(), e);
        }
    }

    #[test]
    fn seeding_is_deterministic() {
        let mut a = Xoshiro256pp::seed_from_u64(42);
        let mut b = Xoshiro256pp::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Xoshiro256pp::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn streams_are_deterministic_and_distinct() {
        let mut a = Xoshiro256pp::from_seed_and_stream(7, 0);
        let mut b = Xoshiro256pp::from_seed_and_stream(7, 0);
        let mut c = Xoshiro256pp::from_seed_and_stream(7, 1);
        assert_eq!(a.next_u64(), b.next_u64());
        // Distinct streams diverge immediately with overwhelming
        // probability.
        let same = (0..16).filter(|_| a.next_u64() == c.next_u64()).count();
        assert!(same <= 1, "{same} collisions in 16 draws");
    }

    #[test]
    fn next_f64_is_in_unit_interval_and_fills_it() {
        let mut g = Xoshiro256pp::seed_from_u64(1);
        let draws: Vec<f64> = (0..10_000).map(|_| g.next_f64()).collect();
        assert!(draws.iter().all(|&x| (0.0..1.0).contains(&x)));
        let mean = draws.iter().sum::<f64>() / draws.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
        assert!(draws.iter().any(|&x| x < 0.01));
        assert!(draws.iter().any(|&x| x > 0.99));
    }

    #[test]
    fn gen_below_is_unbiased_over_small_modulus() {
        let mut g = Xoshiro256pp::seed_from_u64(9);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[g.gen_below_u64(5) as usize] += 1;
        }
        for &c in &counts {
            let f = c as f64 / 50_000.0;
            assert!((f - 0.2).abs() < 0.01, "bucket fraction {f}");
        }
    }

    #[test]
    fn split_streams_do_not_correlate() {
        let mut parent = Xoshiro256pp::seed_from_u64(2014);
        let mut a = parent.split();
        let mut b = parent.split();
        let n = 4096_usize;
        // Crude independence smoke test: the lag-0 cross-correlation of
        // centred uniform draws from two split streams is ~N(0, 1/12n).
        let mut acc = 0.0;
        for _ in 0..n {
            acc += (a.next_f64() - 0.5) * (b.next_f64() - 0.5);
        }
        let corr = acc / n as f64;
        assert!(corr.abs() < 5.0 / (12.0 * (n as f64).sqrt()), "corr {corr}");
    }

    #[test]
    fn gen_range_endpoints() {
        let mut g = Xoshiro256pp::seed_from_u64(3);
        for _ in 0..1000 {
            let x = g.gen_range_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
            let k = g.gen_range_usize(4..7);
            assert!((4..7).contains(&k));
        }
    }
}

//! Cooperative cancellation: deadline-carrying tokens that long-running
//! work polls between natural checkpoints.
//!
//! The simulation stack's units of work — a Newton solve, a sweep
//! chunk, an AC frequency point — are short individually but unbounded
//! in aggregate, and `carbon-serve` promises every job a deadline. A
//! [`CancelToken`] is how that promise reaches the inner loops without
//! threading a parameter through every API: the serving layer installs
//! a token for the dynamic extent of a job ([`scope`]), and solver
//! loops poll [`cancelled`] between iterations. With no token installed
//! the poll is one thread-local read that returns `false`, so library
//! users who never cancel pay nothing.
//!
//! The [`Executor`](crate::executor::Executor) propagates the calling
//! thread's token into its scoped workers, so a cancellation covers a
//! parallel sweep's chunks too.
//!
//! Cancellation is **observational, never participatory**: a token can
//! only make work stop early with an error, not change any value a
//! completed computation produces. Results that are produced remain
//! bit-identical with or without a token installed.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shareable cancellation handle: an explicit flag plus an optional
/// deadline. Cheap to clone (one `Arc`).
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

impl CancelToken {
    /// A token that only cancels when [`cancel`](Self::cancel) is
    /// called.
    pub fn new() -> Self {
        Self::build(None)
    }

    /// A token that additionally reports cancelled once `deadline`
    /// passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        Self::build(Some(deadline))
    }

    /// A token whose deadline is `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        Self::build(Some(Instant::now() + timeout))
    }

    fn build(deadline: Option<Instant>) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline,
            }),
        }
    }

    /// Requests cancellation explicitly (idempotent, thread-safe).
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Whether the token has been cancelled or its deadline has passed.
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
            || self
                .inner
                .deadline
                .is_some_and(|deadline| Instant::now() >= deadline)
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

thread_local! {
    static CURRENT: RefCell<Option<CancelToken>> = const { RefCell::new(None) };
}

/// Runs `f` with `token` installed as the calling thread's cancellation
/// token, restoring the previous token (if any) afterwards. Executor
/// workers spawned inside `f` inherit the token.
pub fn scope<R>(token: &CancelToken, f: impl FnOnce() -> R) -> R {
    struct Restore {
        prev: Option<CancelToken>,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
        }
    }
    let _restore = Restore {
        prev: CURRENT.with(|c| c.borrow_mut().replace(token.clone())),
    };
    f()
}

/// The calling thread's installed token, if any — what the executor
/// forwards into its workers.
pub fn current() -> Option<CancelToken> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Installs an inherited token for the lifetime of the returned guard
/// (the executor's worker-thread entry point).
pub(crate) fn inherit(token: Option<CancelToken>) -> impl Drop {
    struct Restore {
        prev: Option<CancelToken>,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
        }
    }
    Restore {
        prev: CURRENT.with(|c| {
            let mut slot = c.borrow_mut();
            let prev = slot.take();
            *slot = token;
            prev
        }),
    }
}

/// Whether the calling thread's work has been asked to stop — the
/// checkpoint solver loops poll between iterations. `false` (one
/// thread-local read) when no token is installed.
#[inline]
pub fn cancelled() -> bool {
    CURRENT.with(|c| c.borrow().as_ref().is_some_and(CancelToken::is_cancelled))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_token_means_never_cancelled() {
        assert!(!cancelled());
    }

    #[test]
    fn explicit_cancel_is_visible_in_scope() {
        let token = CancelToken::new();
        scope(&token, || {
            assert!(!cancelled());
            token.cancel();
            assert!(cancelled());
        });
        assert!(!cancelled(), "scope restored the empty state");
    }

    #[test]
    fn deadline_tokens_expire() {
        let token = CancelToken::with_timeout(Duration::ZERO);
        assert!(
            token.is_cancelled(),
            "expired deadline is already cancelled"
        );
        let later = CancelToken::with_timeout(Duration::from_hours(1));
        assert!(!later.is_cancelled());
    }

    #[test]
    fn scopes_nest_and_restore() {
        let outer = CancelToken::new();
        let inner = CancelToken::new();
        scope(&outer, || {
            outer.cancel();
            assert!(cancelled());
            scope(&inner, || assert!(!cancelled(), "inner token shadows"));
            assert!(cancelled(), "outer token restored");
        });
    }

    #[test]
    fn tokens_cross_threads() {
        let token = CancelToken::new();
        token.cancel();
        let seen = std::thread::spawn({
            let token = token.clone();
            move || scope(&token, cancelled)
        })
        .join()
        .unwrap();
        assert!(seen);
    }

    #[test]
    fn executor_workers_inherit_the_token() {
        use crate::executor::Executor;
        let token = CancelToken::new();
        token.cancel();
        let flags = scope(&token, || {
            Executor::with_threads(4).par_map(16, |_| cancelled())
        });
        assert!(
            flags.iter().all(|&f| f),
            "every worker observed the caller's cancellation"
        );
        // And without a scope, workers see no token.
        let flags = Executor::with_threads(4).par_map(16, |_| cancelled());
        assert!(flags.iter().all(|&f| !f));
    }
}

//! A minimal property-based testing harness.
//!
//! Drop-in replacement for the subset of `proptest` the workspace used:
//! the [`proptest!`](crate::proptest) macro over range/vec/string
//! strategies, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`, and
//! [`ProptestConfig::with_cases`]. No shrinking — on failure the
//! harness prints the generated inputs, the case's seed/stream pair,
//! and how to replay it (`CARBON_PROP_SEED`), which the deterministic
//! PRNG makes exact.
//!
//! Each test case draws from its own
//! [`Xoshiro256pp::from_seed_and_stream`] stream (seed from the test
//! name, stream = case index), so adding draws to one case never
//! perturbs the next and any single case can be replayed in isolation.

use crate::rng::Xoshiro256pp;

/// Per-block configuration, mirroring the `proptest` type of the same
/// name so existing `#![proptest_config(...)]` lines keep working.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProptestConfig {
    /// Number of accepted cases each property must pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self {
            cases: cases.max(1),
        }
    }
}

impl Default for ProptestConfig {
    /// 256 cases, overridable globally with `CARBON_PROP_CASES`.
    fn default() -> Self {
        let cases = std::env::var("CARBON_PROP_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Self::with_cases(cases)
    }
}

/// Why a single test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property was violated.
    Fail(String),
    /// A `prop_assume!` precondition rejected the inputs; the case is
    /// discarded and re-drawn.
    Reject,
}

impl TestCaseError {
    /// A failure with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self::Fail(msg.into())
    }
}

/// Result of one property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// FNV-1a over the test name: a stable per-property base seed.
fn fnv1a(name: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Drives one property: draws cases until `cfg.cases` are accepted,
/// panicking with full reproduction info on the first failure.
///
/// `case` receives the case generator and returns the body's outcome
/// plus a rendering of the generated inputs.
///
/// # Panics
///
/// Panics when the property fails, or when more than `16 × cases`
/// consecutive rejects suggest an unsatisfiable `prop_assume!`.
pub fn run_prop_test<F>(cfg: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut Xoshiro256pp) -> (TestCaseResult, String),
{
    let seed = std::env::var("CARBON_PROP_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| fnv1a(name));
    let mut accepted = 0u32;
    let mut stream = 0u64;
    let reject_budget = u64::from(cfg.cases) * 16;
    while accepted < cfg.cases {
        assert!(
            stream < u64::from(cfg.cases) + reject_budget,
            "property '{name}': too many rejected cases \
             ({accepted}/{} accepted after {stream} draws) — \
             prop_assume! condition is too narrow",
            cfg.cases
        );
        let mut rng = Xoshiro256pp::from_seed_and_stream(seed, stream);
        let (outcome, inputs) = case(&mut rng);
        stream += 1;
        match outcome {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject) => {}
            Err(TestCaseError::Fail(msg)) => panic!(
                "property '{name}' falsified (case {accepted}, seed {seed}, stream {})\n\
                 inputs: {inputs}\n{msg}\n\
                 replay with CARBON_PROP_SEED={seed}",
                stream - 1
            ),
        }
    }
}

/// A value generator for property tests.
pub trait Strategy {
    /// The generated type.
    type Value: std::fmt::Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value;
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Xoshiro256pp) -> $t {
                use crate::rng::Rng;
                assert!(self.start < self.end, "empty strategy range {self:?}");
                let span = self.end.abs_diff(self.start);
                self.start.wrapping_add(rng.gen_below_u64(u64::from(span)) as $t)
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut Xoshiro256pp) -> $t {
                use crate::rng::Rng;
                assert!(self.start() <= self.end(), "empty strategy range {self:?}");
                let span = self.end().abs_diff(*self.start());
                self.start()
                    .wrapping_add(rng.gen_below_u64(u64::from(span).saturating_add(1)) as $t)
            }
        }
    )*};
}

impl_int_range_strategy!(u8, u16, u32, i8, i16, i32);

macro_rules! impl_wide_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            #[allow(clippy::cast_possible_wrap)]
            fn generate(&self, rng: &mut Xoshiro256pp) -> $t {
                use crate::rng::Rng;
                assert!(self.start < self.end, "empty strategy range {self:?}");
                let span = self.end.abs_diff(self.start) as u64;
                self.start.wrapping_add(rng.gen_below_u64(span) as $t)
            }
        }
    )*};
}

impl_wide_int_range_strategy!(u64, usize, i64, isize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut Xoshiro256pp) -> f64 {
        use crate::rng::Rng;
        rng.gen_range_f64(self.start, self.end)
    }
}

/// Size specification for collection strategies: an exact length or a
/// half-open range of lengths.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SizeRange {
    min: usize,
    max_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            min: n,
            max_exclusive: n + 1,
        }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range {r:?}");
        Self {
            min: r.start,
            max_exclusive: r.end,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range {r:?}");
        Self {
            min: *r.start(),
            max_exclusive: r.end() + 1,
        }
    }
}

impl SizeRange {
    fn draw(&self, rng: &mut Xoshiro256pp) -> usize {
        use crate::rng::Rng;
        if self.min + 1 == self.max_exclusive {
            self.min
        } else {
            rng.gen_range_usize(self.min..self.max_exclusive)
        }
    }
}

/// Strategy producing `Vec`s of values drawn from an element strategy.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    elem: S,
    size: SizeRange,
}

/// Builds a `Vec` strategy: `size` is an exact length (`usize`) or a
/// length range.
pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        elem,
        size: size.into(),
    }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut Xoshiro256pp) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.elem.generate(rng)).collect()
    }
}

/// Strategy producing strings over an explicit character alphabet.
#[derive(Debug, Clone)]
pub struct StringStrategy {
    alphabet: Vec<char>,
    size: SizeRange,
}

/// Strings of printable ASCII (`' '..='~'`) plus `'\n'` — the fuzz
/// alphabet for text-format parsers (e.g. SPICE decks).
pub fn printable_ascii(size: impl Into<SizeRange>) -> StringStrategy {
    let mut alphabet: Vec<char> = (b' '..=b'~').map(char::from).collect();
    alphabet.push('\n');
    StringStrategy {
        alphabet,
        size: size.into(),
    }
}

impl Strategy for StringStrategy {
    type Value = String;
    fn generate(&self, rng: &mut Xoshiro256pp) -> String {
        use crate::rng::Rng;
        let n = self.size.draw(rng);
        (0..n)
            .map(|_| self.alphabet[rng.gen_range_usize(0..self.alphabet.len())])
            .collect()
    }
}

/// The property-test prelude: everything a `proptest!` block needs.
pub mod prelude {
    pub use super::{ProptestConfig, Strategy, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

/// Defines property tests.
///
/// Mirrors the `proptest!` surface the workspace used: an optional
/// `#![proptest_config(...)]` header, then `#[test]` functions whose
/// arguments are drawn from strategies:
///
/// ```
/// use carbon_runtime::prop::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     // In a test module this would carry `#[test]`.
///     fn addition_commutes(a in -1.0e6_f64..1.0e6, b in -1.0e6_f64..1.0e6) {
///         prop_assert!((a + b - (b + a)).abs() == 0.0);
///     }
/// }
/// addition_commutes();
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { (<$crate::prop::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    { ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block )* } => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::prop::run_prop_test($cfg, stringify!($name), |__rng| {
                    $(let $arg = $crate::prop::Strategy::generate(&($strat), __rng);)*
                    let __inputs = ::std::format!(
                        concat!($(stringify!($arg), " = {:?}; "),*),
                        $(&$arg),*
                    );
                    let __outcome = (move || -> $crate::prop::TestCaseResult {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    (__outcome, __inputs)
                });
            }
        )*
    };
}

/// Fails the current property-test case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::prop::TestCaseError::fail(
                ::std::concat!("assertion failed: ", ::std::stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::prop::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current property-test case unless both sides are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::prop::TestCaseError::fail(::std::format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                ::std::stringify!($left),
                ::std::stringify!($right),
                __l,
                __r
            )));
        }
    }};
}

/// Discards the current case (re-drawing fresh inputs) unless the
/// precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::prop::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 10u32..20, y in -3i32..=3, z in 0.5_f64..2.5) {
            prop_assert!((10..20).contains(&x));
            prop_assert!((-3..=3).contains(&y));
            prop_assert!((0.5..2.5).contains(&z));
        }

        #[test]
        fn assume_filters_inputs(n in 0u32..100, m in 0u32..100) {
            prop_assume!(m <= n);
            prop_assert!(n - m <= n);
        }

        #[test]
        fn vectors_obey_size_spec(v in super::vec(0.0_f64..1.0, 2..8), w in super::vec(0u32..5, 3usize)) {
            prop_assert!((2..8).contains(&v.len()));
            prop_assert_eq!(w.len(), 3);
            prop_assert!(v.iter().all(|&x| (0.0..1.0).contains(&x)));
        }

        #[test]
        fn strings_use_the_alphabet(s in super::printable_ascii(0..40)) {
            prop_assert!(s.len() < 40);
            prop_assert!(s.chars().all(|c| c == '\n' || (' '..='~').contains(&c)));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn config_header_is_accepted(x in 0u32..10) {
            prop_assert!(x < 10);
        }
    }

    #[test]
    #[should_panic(expected = "falsified")]
    fn failures_panic_with_inputs() {
        super::run_prop_test(ProptestConfig::with_cases(64), "doomed", |rng| {
            let x = super::Strategy::generate(&(0u32..100), rng);
            let outcome = if x < 1000 {
                Err(TestCaseError::fail("always fails"))
            } else {
                Ok(())
            };
            (outcome, format!("x = {x}"))
        });
    }

    #[test]
    #[should_panic(expected = "too many rejected")]
    fn unsatisfiable_assume_is_reported() {
        super::run_prop_test(ProptestConfig::with_cases(4), "starved", |_| {
            (Err(TestCaseError::Reject), String::new())
        });
    }

    #[test]
    fn same_name_same_draws() {
        let mut a = Vec::new();
        super::run_prop_test(ProptestConfig::with_cases(16), "stable", |rng| {
            a.push(super::Strategy::generate(&(0u64..1_000_000), rng));
            (Ok(()), String::new())
        });
        let mut b = Vec::new();
        super::run_prop_test(ProptestConfig::with_cases(16), "stable", |rng| {
            b.push(super::Strategy::generate(&(0u64..1_000_000), rng));
            (Ok(()), String::new())
        });
        assert_eq!(a, b);
    }
}

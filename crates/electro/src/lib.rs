//! Short-channel MOS electrostatics.
//!
//! The paper's Sections I and III argue two electrostatic points:
//!
//! 1. **Scale-length / geometry** — the tighter the gate wraps the
//!    channel, the shorter the characteristic length λ over which the
//!    drain potential intrudes, and hence the better the subthreshold
//!    swing (SS) and drain-induced barrier lowering (DIBL) at a given gate
//!    length. The gate-all-around (GAA) CNT-FET of Fig. 3 is the limit of
//!    that progression. Implemented in [`scale_length`].
//! 2. **Dark space (Skotnicki & Boeuf)** — high-mobility, low-DOS
//!    channels (III-V) push the inversion charge centroid away from the
//!    oxide interface and add a quantum-capacitance deficit, inflating the
//!    *effective* gate dielectric thickness in inversion no matter how
//!    high the gate k-value is. A CNT conducts in a single atomic layer
//!    and has essentially no dark space (paper §III.C). Implemented in
//!    [`darkspace`].
//!
//! Both closures feed the compact FET models in `carbon-devices` and the
//! Fig. 3/Fig. 5 experiments in `carbon-core`.

#![deny(missing_docs)]

pub mod darkspace;
pub mod fringe;
pub mod scale_length;

pub use darkspace::{ChannelMaterial, DarkSpaceModel};
pub use fringe::FringeModel;
pub use scale_length::{GateGeometry, Mosfet2dModel};

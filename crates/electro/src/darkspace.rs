//! The Skotnicki–Boeuf "dark space" model: effective gate dielectric
//! thickness in inversion for different channel materials.
//!
//! High-mobility channels have a low density of states and a large
//! dielectric constant. Both effects push the gate's grip away from the
//! channel:
//!
//! * the inversion charge centroid sits a distance `z_c` (the *dark
//!   space*) below the dielectric interface, adding a series capacitance
//!   `ε_ch/z_c`,
//! * the low DOS adds a quantum-capacitance deficit `C_q = q²·DOS`.
//!
//! In capacitance-equivalent-thickness (CET) terms:
//!
//! ```text
//! CET_inv = EOT + (ε_SiO₂/ε_ch)·z_dark + ε_SiO₂·q²⁻¹·C_q⁻¹·ε₀
//! ```
//!
//! so a III-V device can have a *worse* CET than silicon with the same
//! physical high-k stack — "which in essence means that silicon would do
//! even better" (paper §I). A CNT conducts in one atomic layer: its dark
//! space is essentially zero (paper §III.C), which this module encodes.

use carbon_units::consts::{EPS_0, EPS_R_SIO2, K_B, M_0, Q_E, ROOM_TEMPERATURE};
use carbon_units::Length;

/// A channel material with the parameters the dark-space model needs.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelMaterial {
    name: &'static str,
    eps_r: f64,
    /// DOS effective mass (in units of m₀) of the lowest conduction valley.
    m_dos: f64,
    /// Charge-centroid depth below the dielectric interface, m.
    dark_space: Length,
}

impl ChannelMaterial {
    /// Silicon (100), the reference: m* ≈ 0.26 m₀, centroid ≈ 0.7 nm
    /// (the value the paper quotes: "a dark space in the order of
    /// 0.7 nm like in silicon").
    pub fn silicon() -> Self {
        Self {
            name: "Si",
            eps_r: 11.7,
            m_dos: 0.26,
            dark_space: Length::from_nanometers(0.7),
        }
    }

    /// In₀.₅₃Ga₀.₄₇As: very light Γ-valley electrons (m* ≈ 0.041 m₀),
    /// deeper centroid (~1.5 nm).
    pub fn ingaas() -> Self {
        Self {
            name: "InGaAs",
            eps_r: 13.9,
            m_dos: 0.041,
            dark_space: Length::from_nanometers(1.5),
        }
    }

    /// InAs: the lightest common III-V channel (m* ≈ 0.023 m₀),
    /// centroid ~2 nm.
    pub fn inas() -> Self {
        Self {
            name: "InAs",
            eps_r: 15.15,
            m_dos: 0.023,
            dark_space: Length::from_nanometers(2.0),
        }
    }

    /// Germanium pFET-oriented channel (m* ≈ 0.22 m₀ L-valley DOS mass
    /// proxy), centroid ~1 nm.
    pub fn germanium() -> Self {
        Self {
            name: "Ge",
            eps_r: 16.0,
            m_dos: 0.22,
            dark_space: Length::from_nanometers(1.0),
        }
    }

    /// A carbon nanotube treated as a planar-equivalent channel: current
    /// flows in a single atomic layer, so the centroid offset is the
    /// electronic thickness of that layer (~0.05 nm) — "there cannot be a
    /// dark space in the order of 0.7 nm like in silicon, because this
    /// would already be out of the material" (§III.C). The DOS mass is a
    /// planar-equivalent proxy: the van Hove edge enhancement plus the
    /// 4-fold spin×valley degeneracy give a near-edge DOS comparable to a
    /// heavy 2-D band (≈ 0.4 m₀ equivalent), not the light mass its high
    /// velocity would suggest.
    pub fn cnt() -> Self {
        Self {
            name: "CNT",
            eps_r: 3.0,
            m_dos: 0.4,
            dark_space: Length::from_nanometers(0.05),
        }
    }

    /// Material name for tables.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Relative permittivity of the channel.
    pub fn eps_r(&self) -> f64 {
        self.eps_r
    }

    /// Charge-centroid depth.
    pub fn dark_space(&self) -> Length {
        self.dark_space
    }

    /// 2-D density of states `m*/(πħ²)` of one valley, 1/(J·m²).
    pub fn dos_2d(&self) -> f64 {
        let hbar = carbon_units::consts::HBAR;
        self.m_dos * M_0 / (std::f64::consts::PI * hbar * hbar)
    }

    /// Quantum capacitance per area in the degenerate limit,
    /// `C_q = q²·DOS₂D`, F/m².
    pub fn quantum_capacitance(&self) -> f64 {
        Q_E * Q_E * self.dos_2d()
    }
}

/// The Skotnicki–Boeuf CET-in-inversion closure.
#[derive(Debug, Clone, PartialEq)]
pub struct DarkSpaceModel {
    material: ChannelMaterial,
}

impl DarkSpaceModel {
    /// Wraps a channel material.
    pub fn new(material: ChannelMaterial) -> Self {
        Self { material }
    }

    /// The material under analysis.
    pub fn material(&self) -> &ChannelMaterial {
        &self.material
    }

    /// Dark-space contribution to CET: the centroid depth re-expressed as
    /// equivalent SiO₂ thickness, `(ε_SiO₂/ε_ch)·z_dark`.
    pub fn darkspace_cet(&self) -> Length {
        Length::from_meters(EPS_R_SIO2 / self.material.eps_r * self.material.dark_space.meters())
    }

    /// Quantum-capacitance contribution to CET:
    /// `ε_SiO₂·ε₀ / C_q` expressed as equivalent SiO₂ thickness.
    pub fn quantum_cet(&self) -> Length {
        Length::from_meters(EPS_R_SIO2 * EPS_0 / self.material.quantum_capacitance())
    }

    /// Total capacitance-equivalent thickness in inversion for a gate
    /// stack with the given EOT.
    ///
    /// This is the quantity Skotnicki & Boeuf show cannot be scaled away
    /// by higher-k dielectrics: only the `eot` term responds to the
    /// dielectric; the material terms are a floor.
    pub fn cet_inversion(&self, eot: Length) -> Length {
        Length::from_meters(
            eot.meters() + self.darkspace_cet().meters() + self.quantum_cet().meters(),
        )
    }

    /// The gate-efficiency penalty relative to an ideal stack: ratio of
    /// ideal gate capacitance to actual inversion capacitance,
    /// `CET_inv / EOT ≥ 1`. Larger is worse; it multiplies SS and DIBL
    /// degradation in scaled devices.
    pub fn gate_efficiency_penalty(&self, eot: Length) -> f64 {
        self.cet_inversion(eot).meters() / eot.meters()
    }

    /// Thermal-limit sanity value exposed for tables: kT/q·ln10 at 300 K
    /// in mV/dec multiplied by the penalty — the *effective* best swing a
    /// long-channel device on this material can reach with this EOT if
    /// the body factor is dominated by the CET ratio.
    pub fn effective_swing_floor(&self, eot: Length) -> f64 {
        let kt_ln10 = K_B * ROOM_TEMPERATURE / Q_E * std::f64::consts::LN_10 * 1e3;
        kt_ln10 * self.gate_efficiency_penalty(eot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iii_v_has_larger_cet_than_silicon_at_same_eot() {
        // The Skotnicki–Boeuf headline: at equal EOT the III-V stack is
        // electrostatically thicker.
        let eot = Length::from_nanometers(0.7);
        let si = DarkSpaceModel::new(ChannelMaterial::silicon()).cet_inversion(eot);
        let inas = DarkSpaceModel::new(ChannelMaterial::inas()).cet_inversion(eot);
        let ingaas = DarkSpaceModel::new(ChannelMaterial::ingaas()).cet_inversion(eot);
        assert!(
            inas > si,
            "InAs CET {} < Si {}",
            inas.nanometers(),
            si.nanometers()
        );
        assert!(ingaas > si);
    }

    #[test]
    fn cnt_beats_silicon() {
        let eot = Length::from_nanometers(0.7);
        let si = DarkSpaceModel::new(ChannelMaterial::silicon()).cet_inversion(eot);
        let cnt = DarkSpaceModel::new(ChannelMaterial::cnt()).cet_inversion(eot);
        assert!(
            cnt < si,
            "CNT CET {} ≥ Si {}",
            cnt.nanometers(),
            si.nanometers()
        );
    }

    #[test]
    fn quantum_cet_grows_as_mass_falls() {
        let si = DarkSpaceModel::new(ChannelMaterial::silicon()).quantum_cet();
        let ingaas = DarkSpaceModel::new(ChannelMaterial::ingaas()).quantum_cet();
        let inas = DarkSpaceModel::new(ChannelMaterial::inas()).quantum_cet();
        assert!(si < ingaas && ingaas < inas);
    }

    #[test]
    fn silicon_darkspace_cet_is_qualitatively_small() {
        // 0.7 nm centroid in Si (ε 11.7) ≈ 0.23 nm of SiO₂-equivalent.
        let d = DarkSpaceModel::new(ChannelMaterial::silicon()).darkspace_cet();
        assert!((d.nanometers() - 0.233).abs() < 0.01);
    }

    #[test]
    fn penalty_is_floor_bounded() {
        let eot = Length::from_nanometers(0.5);
        for m in [
            ChannelMaterial::silicon(),
            ChannelMaterial::ingaas(),
            ChannelMaterial::inas(),
            ChannelMaterial::germanium(),
            ChannelMaterial::cnt(),
        ] {
            let p = DarkSpaceModel::new(m.clone()).gate_efficiency_penalty(eot);
            assert!(p >= 1.0, "{}: penalty {p}", m.name());
        }
    }

    #[test]
    fn penalty_does_not_scale_away_with_thinner_eot() {
        // Halving EOT *increases* the relative penalty — the model's
        // point: the material floor does not scale.
        let m = DarkSpaceModel::new(ChannelMaterial::inas());
        let p_thick = m.gate_efficiency_penalty(Length::from_nanometers(1.0));
        let p_thin = m.gate_efficiency_penalty(Length::from_nanometers(0.5));
        assert!(p_thin > p_thick);
    }

    #[test]
    fn effective_swing_ordering() {
        let eot = Length::from_nanometers(0.7);
        let ss_si = DarkSpaceModel::new(ChannelMaterial::silicon()).effective_swing_floor(eot);
        let ss_inas = DarkSpaceModel::new(ChannelMaterial::inas()).effective_swing_floor(eot);
        let ss_cnt = DarkSpaceModel::new(ChannelMaterial::cnt()).effective_swing_floor(eot);
        assert!(ss_cnt < ss_si && ss_si < ss_inas);
        assert!(ss_si > 59.0);
    }

    #[test]
    fn material_accessors() {
        let m = ChannelMaterial::ingaas();
        assert_eq!(m.name(), "InGaAs");
        assert!(m.eps_r() > 13.0);
        assert!(m.dos_2d() > 0.0);
    }
}

//! Parasitic fringe-capacitance estimates for scaled FET layouts.
//!
//! Section III.A/III.B of the paper argues that bulky raised source/drain
//! contacts — needed in silicon to keep access resistance down — pay for
//! themselves in gate-to-contact fringe capacitance, while a CNT-FET with
//! small metallic contacts offset from the gate avoids it. This module
//! provides the parallel-plate + fringing closure used to quantify that
//! trade in the Fig. 3 experiment.

use carbon_units::consts::EPS_0;
use carbon_units::{Capacitance, Length};

/// Fringe/overlap capacitance model between a gate edge and a
/// source/drain contact facing it across a spacer.
#[derive(Debug, Clone, PartialEq)]
pub struct FringeModel {
    gate_height: Length,
    contact_height: Length,
    spacer_thickness: Length,
    spacer_eps_r: f64,
}

/// Error constructing a [`FringeModel`] with non-physical dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidFringeError(String);

impl std::fmt::Display for InvalidFringeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid fringe geometry: {}", self.0)
    }
}

impl std::error::Error for InvalidFringeError {}

impl FringeModel {
    /// Builds a model from gate/contact facing heights, spacer thickness
    /// and spacer permittivity.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidFringeError`] for non-positive dimensions or
    /// permittivity below 1.
    pub fn new(
        gate_height: Length,
        contact_height: Length,
        spacer_thickness: Length,
        spacer_eps_r: f64,
    ) -> Result<Self, InvalidFringeError> {
        for (name, v) in [
            ("gate height", gate_height),
            ("contact height", contact_height),
            ("spacer thickness", spacer_thickness),
        ] {
            if v.meters() <= 0.0 {
                return Err(InvalidFringeError(format!("{name} must be positive")));
            }
        }
        if spacer_eps_r < 1.0 {
            return Err(InvalidFringeError(format!(
                "spacer permittivity {spacer_eps_r} must be ≥ 1"
            )));
        }
        Ok(Self {
            gate_height,
            contact_height,
            spacer_thickness,
            spacer_eps_r,
        })
    }

    /// Capacitance per unit device width (F/m) between gate sidewall and
    /// contact: parallel-plate over the facing height plus a 2/π·ln(1+h/t)
    /// outer-fringe term (standard conformal-mapping closure).
    pub fn per_width(&self) -> f64 {
        let facing = self.gate_height.meters().min(self.contact_height.meters());
        let t = self.spacer_thickness.meters();
        let plate = self.spacer_eps_r * EPS_0 * facing / t;
        let taller = self.gate_height.meters().max(self.contact_height.meters());
        let fringe = self.spacer_eps_r * EPS_0 * 2.0 / std::f64::consts::PI
            * (1.0 + (taller - facing) / t).ln();
        plate + fringe
    }

    /// Total fringe capacitance for a device of the given width (both
    /// source and drain edges).
    pub fn total(&self, width: Length) -> Capacitance {
        Capacitance::from_farads(2.0 * self.per_width() * width.meters())
    }

    /// Relative reduction in per-width fringe capacitance from lowering
    /// the contact height to `new_height` (the paper's "offset contacts"
    /// benefit), as a fraction in `[0, 1)`.
    pub fn reduction_from_contact_lowering(&self, new_height: Length) -> f64 {
        let lowered = Self {
            contact_height: new_height,
            ..self.clone()
        };
        1.0 - lowered.per_width() / self.per_width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bulky() -> FringeModel {
        // Raised S/D silicon contact: 30 nm facing a 30 nm gate across a
        // 6 nm nitride spacer.
        FringeModel::new(
            Length::from_nanometers(30.0),
            Length::from_nanometers(30.0),
            Length::from_nanometers(6.0),
            7.0,
        )
        .unwrap()
    }

    #[test]
    fn bulky_contact_dominates_lean_contact() {
        let lean = FringeModel::new(
            Length::from_nanometers(30.0),
            Length::from_nanometers(5.0),
            Length::from_nanometers(6.0),
            7.0,
        )
        .unwrap();
        assert!(bulky().per_width() > 2.5 * lean.per_width());
    }

    #[test]
    fn magnitude_is_sub_ff_per_micron_scale() {
        // Typical parasitic ~0.1–1 fF/µm per edge.
        let c = bulky().per_width(); // F/m
        let ff_per_um = c * 1e15 * 1e-6;
        assert!((0.05..2.0).contains(&ff_per_um), "{ff_per_um} fF/µm");
    }

    #[test]
    fn total_counts_both_edges() {
        let m = bulky();
        let w = Length::from_micrometers(1.0);
        let t = m.total(w).farads();
        assert!((t - 2.0 * m.per_width() * 1e-6).abs() < 1e-21);
    }

    #[test]
    fn lowering_contacts_reduces_capacitance() {
        let r = bulky().reduction_from_contact_lowering(Length::from_nanometers(5.0));
        assert!(r > 0.5 && r < 1.0, "reduction {r}");
    }

    #[test]
    fn thicker_spacer_reduces_capacitance() {
        let thin = bulky();
        let thick = FringeModel::new(
            Length::from_nanometers(30.0),
            Length::from_nanometers(30.0),
            Length::from_nanometers(12.0),
            7.0,
        )
        .unwrap();
        assert!(thick.per_width() < thin.per_width());
    }

    #[test]
    fn low_k_spacer_reduces_capacitance() {
        let lowk = FringeModel::new(
            Length::from_nanometers(30.0),
            Length::from_nanometers(30.0),
            Length::from_nanometers(6.0),
            3.9,
        )
        .unwrap();
        assert!(lowk.per_width() < bulky().per_width());
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(FringeModel::new(
            Length::from_nanometers(0.0),
            Length::from_nanometers(5.0),
            Length::from_nanometers(6.0),
            7.0
        )
        .is_err());
        assert!(FringeModel::new(
            Length::from_nanometers(30.0),
            Length::from_nanometers(5.0),
            Length::from_nanometers(6.0),
            0.2
        )
        .is_err());
    }
}

//! Scale-length theory: subthreshold swing and DIBL versus gate length
//! for planar, double-gate, and gate-all-around geometries.
//!
//! The potential barrier under a MOS gate relaxes toward the drain over a
//! characteristic *scale length* λ set by geometry and dielectrics
//! (Yan–Lee–Taur). Short-channel degradation closes over `exp(−L/2λ)`:
//!
//! ```text
//! SS(L)   = SS₀ / (1 − 2·e^(−L/2λ))      [mV/dec]
//! DIBL(L) = η₀ · e^(−L/2λ)·ΔV_DS          [mV/V]
//! ```
//!
//! A gate that wraps the channel more tightly shrinks λ: for the same
//! body and oxide thickness, λ(GAA) < λ(double-gate) < λ(planar), which is
//! the quantitative content of the paper's Fig. 3 argument for the
//! gate-all-around CNT-FET.

use carbon_units::consts::SS_THERMAL_LIMIT_MV_PER_DEC;
use carbon_units::Length;

/// Gate geometry, ordered from weakest to strongest channel control.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GateGeometry {
    /// Single gate above a bulk/SOI channel.
    Planar,
    /// Gates above and below the body (fin-like control).
    DoubleGate,
    /// Gate wrapped fully around the body — the Fig. 3 CNT-FET structure.
    GateAllAround,
}

impl GateGeometry {
    /// Geometry factor dividing the planar scale length: 1 (planar),
    /// 2 (double gate), 4 (GAA nanowire, Yan-style closure).
    fn control_factor(self) -> f64 {
        match self {
            Self::Planar => 1.0,
            Self::DoubleGate => 2.0,
            Self::GateAllAround => 4.0,
        }
    }
}

/// Error constructing a [`Mosfet2dModel`] from non-physical dimensions.
#[derive(Debug, Clone, PartialEq)]
pub struct InvalidGeometryError(String);

impl std::fmt::Display for InvalidGeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid electrostatic geometry: {}", self.0)
    }
}

impl std::error::Error for InvalidGeometryError {}

/// Analytic short-channel electrostatics for one gate stack.
///
/// # Examples
///
/// ```
/// use carbon_electro::{GateGeometry, Mosfet2dModel};
/// use carbon_units::Length;
///
/// let gaa = Mosfet2dModel::new(
///     GateGeometry::GateAllAround,
///     Length::from_nanometers(1.2), // body (CNT diameter)
///     Length::from_nanometers(3.0), // oxide
///     11.7,                         // body permittivity
///     16.0,                         // high-k oxide
/// )?;
/// let ss = gaa.subthreshold_swing(Length::from_nanometers(9.0));
/// assert!(ss < 100.0, "9 nm GAA stays a transistor: SS = {ss} mV/dec");
/// # Ok::<(), carbon_electro::scale_length::InvalidGeometryError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Mosfet2dModel {
    geometry: GateGeometry,
    body_thickness: Length,
    oxide_thickness: Length,
    eps_body: f64,
    eps_oxide: f64,
}

impl Mosfet2dModel {
    /// Builds a model from body/oxide thickness and permittivities.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGeometryError`] for non-positive thicknesses or
    /// permittivities below 1.
    pub fn new(
        geometry: GateGeometry,
        body_thickness: Length,
        oxide_thickness: Length,
        eps_body: f64,
        eps_oxide: f64,
    ) -> Result<Self, InvalidGeometryError> {
        if body_thickness.meters() <= 0.0 {
            return Err(InvalidGeometryError(format!(
                "body thickness {} m must be positive",
                body_thickness.meters()
            )));
        }
        if oxide_thickness.meters() <= 0.0 {
            return Err(InvalidGeometryError(format!(
                "oxide thickness {} m must be positive",
                oxide_thickness.meters()
            )));
        }
        if eps_body < 1.0 || eps_oxide < 1.0 {
            return Err(InvalidGeometryError(format!(
                "relative permittivities must be ≥ 1 (body {eps_body}, oxide {eps_oxide})"
            )));
        }
        Ok(Self {
            geometry,
            body_thickness,
            oxide_thickness,
            eps_body,
            eps_oxide,
        })
    }

    /// The natural (scale) length λ of this stack.
    ///
    /// Planar closure (Yan–Lee–Taur):
    /// `λ = √(ε_body/ε_ox · t_body · t_ox)`; divided by the geometry
    /// control factor for double-gate (÷2) and GAA (÷4).
    pub fn scale_length(&self) -> Length {
        let lambda_planar = (self.eps_body / self.eps_oxide
            * self.body_thickness.meters()
            * self.oxide_thickness.meters())
        .sqrt();
        Length::from_meters(lambda_planar / self.geometry.control_factor())
    }

    /// Subthreshold swing at gate length `l`, mV/decade.
    ///
    /// Returns infinity once the gate has lost the channel
    /// (`L ≤ 2λ·ln 2`, where the closure's denominator crosses zero) —
    /// the device no longer turns off.
    pub fn subthreshold_swing(&self, l: Length) -> f64 {
        let lambda = self.scale_length().meters();
        let denom = 1.0 - 2.0 * (-l.meters() / (2.0 * lambda)).exp();
        if denom <= 0.0 {
            f64::INFINITY
        } else {
            SS_THERMAL_LIMIT_MV_PER_DEC / denom
        }
    }

    /// Drain-induced barrier lowering at gate length `l`, mV/V.
    ///
    /// `DIBL = η₀·e^(−L/2λ)` with η₀ = 800 mV/V, a standard calibration
    /// that puts a well-tempered device (L ≈ 6λ) near 40 mV/V.
    pub fn dibl(&self, l: Length) -> f64 {
        let lambda = self.scale_length().meters();
        800.0 * (-l.meters() / (2.0 * lambda)).exp()
    }

    /// The shortest gate length at which SS stays below `ss_limit`
    /// mV/dec — the scaling limit of this stack.
    ///
    /// # Panics
    ///
    /// Panics if `ss_limit` is at or below the thermal limit (no finite
    /// gate length achieves it).
    pub fn minimum_gate_length(&self, ss_limit: f64) -> Length {
        assert!(
            ss_limit > SS_THERMAL_LIMIT_MV_PER_DEC,
            "SS limit {ss_limit} mV/dec is at or below the thermal limit"
        );
        // Invert SS(L) = SS0 / (1 − 2e^{−L/2λ}).
        let lambda = self.scale_length().meters();
        let x = (1.0 - SS_THERMAL_LIMIT_MV_PER_DEC / ss_limit) / 2.0;
        Length::from_meters(-2.0 * lambda * x.ln())
    }

    /// The gate geometry of this stack.
    pub fn geometry(&self) -> GateGeometry {
        self.geometry
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack(g: GateGeometry) -> Mosfet2dModel {
        Mosfet2dModel::new(
            g,
            Length::from_nanometers(5.0),
            Length::from_nanometers(1.0),
            11.7,
            3.9,
        )
        .unwrap()
    }

    #[test]
    fn geometry_ordering_of_scale_length() {
        let p = stack(GateGeometry::Planar).scale_length();
        let d = stack(GateGeometry::DoubleGate).scale_length();
        let g = stack(GateGeometry::GateAllAround).scale_length();
        assert!(g < d && d < p);
        assert!((p.meters() / g.meters() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn planar_scale_length_magnitude() {
        // √(11.7/3.9 · 5 nm · 1 nm) = √(3·5) ≈ 3.87 nm.
        let p = stack(GateGeometry::Planar).scale_length();
        assert!((p.nanometers() - 3.873).abs() < 0.01);
    }

    #[test]
    fn long_channel_ss_approaches_thermal_limit() {
        let m = stack(GateGeometry::Planar);
        let ss = m.subthreshold_swing(Length::from_nanometers(1000.0));
        assert!((ss - SS_THERMAL_LIMIT_MV_PER_DEC).abs() < 0.01);
    }

    #[test]
    fn ss_degrades_then_diverges_at_short_length() {
        let m = stack(GateGeometry::Planar);
        let ss20 = m.subthreshold_swing(Length::from_nanometers(20.0));
        let ss10 = m.subthreshold_swing(Length::from_nanometers(10.0));
        assert!(ss20 > SS_THERMAL_LIMIT_MV_PER_DEC);
        assert!(ss10 > ss20);
        let ss_dead = m.subthreshold_swing(Length::from_nanometers(2.0));
        assert!(ss_dead.is_infinite(), "gate lost the channel");
    }

    #[test]
    fn gaa_scales_further_than_planar() {
        let p = stack(GateGeometry::Planar).minimum_gate_length(80.0);
        let g = stack(GateGeometry::GateAllAround).minimum_gate_length(80.0);
        assert!(g < p);
        assert!((p.meters() / g.meters() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn nine_nm_cnt_gaa_device_is_well_behaved() {
        // Fig. 3 argument + §III.C: a GAA stack on a ~1 nm tube keeps a
        // useful swing at the 9 nm gate length of the record device [6].
        let m = Mosfet2dModel::new(
            GateGeometry::GateAllAround,
            Length::from_nanometers(1.2),
            Length::from_nanometers(3.0),
            11.7,
            16.0,
        )
        .unwrap();
        let ss = m.subthreshold_swing(Length::from_nanometers(9.0));
        assert!(ss < 100.0, "SS = {ss} mV/dec");
        assert!(m.dibl(Length::from_nanometers(9.0)) < 200.0);
    }

    #[test]
    fn dibl_decays_exponentially() {
        let m = stack(GateGeometry::DoubleGate);
        let d1 = m.dibl(Length::from_nanometers(10.0));
        let d2 = m.dibl(Length::from_nanometers(20.0));
        let d3 = m.dibl(Length::from_nanometers(30.0));
        assert!(
            (d1 / d2 - d2 / d3).abs() / (d1 / d2) < 1e-9,
            "log-linear decay"
        );
        assert!(d1 > d2 && d2 > d3);
    }

    #[test]
    fn rejects_bad_geometry() {
        assert!(Mosfet2dModel::new(
            GateGeometry::Planar,
            Length::from_nanometers(0.0),
            Length::from_nanometers(1.0),
            11.7,
            3.9
        )
        .is_err());
        assert!(Mosfet2dModel::new(
            GateGeometry::Planar,
            Length::from_nanometers(5.0),
            Length::from_nanometers(1.0),
            0.5,
            3.9
        )
        .is_err());
    }

    #[test]
    #[should_panic(expected = "thermal limit")]
    fn minimum_gate_length_rejects_sub_thermal_target() {
        let _ = stack(GateGeometry::Planar).minimum_gate_length(50.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use carbon_runtime::prop::prelude::*;

    proptest! {
        #[test]
        fn ss_is_monotone_decreasing_in_gate_length(
            tb in 1.0_f64..10.0,
            tox in 0.5_f64..3.0,
            l1 in 5.0_f64..100.0,
            dl in 1.0_f64..50.0,
        ) {
            let m = Mosfet2dModel::new(
                GateGeometry::DoubleGate,
                Length::from_nanometers(tb),
                Length::from_nanometers(tox),
                11.7,
                3.9,
            ).unwrap();
            let s1 = m.subthreshold_swing(Length::from_nanometers(l1));
            let s2 = m.subthreshold_swing(Length::from_nanometers(l1 + dl));
            prop_assert!(s2 <= s1 || (s1.is_infinite() && !s2.is_infinite()) || s1.is_infinite());
            prop_assert!(s2 >= carbon_units::consts::SS_THERMAL_LIMIT_MV_PER_DEC - 1e-9);
        }

        #[test]
        fn tighter_gate_never_hurts(
            tb in 1.0_f64..10.0,
            tox in 0.5_f64..3.0,
            l in 5.0_f64..100.0,
        ) {
            let mk = |g| Mosfet2dModel::new(
                g,
                Length::from_nanometers(tb),
                Length::from_nanometers(tox),
                11.7,
                3.9,
            ).unwrap();
            let lg = Length::from_nanometers(l);
            let ss_p = mk(GateGeometry::Planar).subthreshold_swing(lg);
            let ss_d = mk(GateGeometry::DoubleGate).subthreshold_swing(lg);
            let ss_g = mk(GateGeometry::GateAllAround).subthreshold_swing(lg);
            prop_assert!(ss_g <= ss_d);
            prop_assert!(ss_d <= ss_p);
        }
    }
}

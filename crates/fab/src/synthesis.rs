//! Chirality ensembles produced by CNT synthesis.
//!
//! "CNTs can come in different flavors and can be semiconducting,
//! metallic, semi-metallic and it is currently unproven whether pure
//! batches of one sort could be achieved" (§V). A CVD recipe controls
//! the *diameter* distribution reasonably well, but the chiral angle —
//! and with it the `(n − m) mod 3` metallicity lottery — is essentially
//! random: about one third of as-grown tubes are metallic.

use carbon_band::chirality::Chirality;
use carbon_runtime::{Distribution, Normal, Rng};
use carbon_units::Length;

/// A growth recipe characterized by its diameter distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthesisRecipe {
    d_mean: Length,
    d_sigma: Length,
}

/// Error building a [`SynthesisRecipe`] from non-physical parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildRecipeError(String);

impl std::fmt::Display for BuildRecipeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid synthesis recipe: {}", self.0)
    }
}

impl std::error::Error for BuildRecipeError {}

impl SynthesisRecipe {
    /// Creates a recipe with the given mean diameter and spread.
    ///
    /// # Errors
    ///
    /// Returns [`BuildRecipeError`] unless `0.5 nm ≤ d_mean ≤ 4 nm` and
    /// `d_sigma ≥ 0`.
    pub fn new(d_mean: Length, d_sigma: Length) -> Result<Self, BuildRecipeError> {
        let dm = d_mean.nanometers();
        if !(0.5..=4.0).contains(&dm) {
            return Err(BuildRecipeError(format!(
                "mean diameter {dm} nm outside the synthesizable 0.5–4 nm window"
            )));
        }
        if d_sigma.nanometers() < 0.0 {
            return Err(BuildRecipeError("diameter spread must be ≥ 0".into()));
        }
        Ok(Self { d_mean, d_sigma })
    }

    /// A CoMoCAT-like narrow recipe centred on 0.8 nm.
    pub fn comocat() -> Self {
        Self::new(Length::from_nanometers(0.8), Length::from_nanometers(0.1))
            .expect("preset is valid")
    }

    /// An arc-discharge-like recipe centred on 1.4 nm (the Fig. 1
    /// bandgap neighbourhood).
    pub fn arc_discharge() -> Self {
        Self::new(Length::from_nanometers(1.4), Length::from_nanometers(0.15))
            .expect("preset is valid")
    }

    /// Mean diameter of the recipe.
    pub fn d_mean(&self) -> Length {
        self.d_mean
    }

    /// Samples one chirality: a diameter from the recipe's normal
    /// distribution, then a uniformly random chirality among those
    /// within half a lattice constant of that diameter.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Chirality {
        let normal = Normal::new(
            self.d_mean.nanometers(),
            self.d_sigma.nanometers().max(1e-6),
        )
        .expect("validated parameters");
        for _ in 0..64 {
            let d = normal.sample(rng).clamp(0.4, 4.5);
            let lo = Length::from_nanometers((d - 0.08).max(0.3));
            let hi = Length::from_nanometers(d + 0.08);
            let candidates = Chirality::in_diameter_range(lo, hi);
            if !candidates.is_empty() {
                let k = rng.gen_range_usize(0..candidates.len());
                return candidates[k];
            }
        }
        // The 0.4–4.5 nm window always contains chiralities; this path
        // is unreachable but keeps the function total.
        Chirality::new(13, 0).expect("fallback chirality is valid")
    }

    /// Samples `n` chiralities.
    pub fn sample_batch<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Chirality> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Fraction of semiconducting tubes in a batch.
    pub fn semiconducting_fraction(batch: &[Chirality]) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        batch.iter().filter(|c| c.is_semiconducting()).count() as f64 / batch.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_runtime::Xoshiro256pp;

    #[test]
    fn recipe_validation() {
        assert!(
            SynthesisRecipe::new(Length::from_nanometers(0.2), Length::from_nanometers(0.1))
                .is_err()
        );
        assert!(
            SynthesisRecipe::new(Length::from_nanometers(1.0), Length::from_nanometers(-0.1))
                .is_err()
        );
        assert!(
            SynthesisRecipe::new(Length::from_nanometers(1.0), Length::from_nanometers(0.0))
                .is_ok()
        );
    }

    #[test]
    fn sampled_diameters_track_the_recipe() {
        let mut rng = Xoshiro256pp::seed_from_u64(7);
        let recipe = SynthesisRecipe::arc_discharge();
        let batch = recipe.sample_batch(&mut rng, 2000);
        let mean_d =
            batch.iter().map(|c| c.diameter().nanometers()).sum::<f64>() / batch.len() as f64;
        assert!((mean_d - 1.4).abs() < 0.1, "mean d = {mean_d} nm");
    }

    #[test]
    fn one_third_of_as_grown_tubes_are_metallic() {
        let mut rng = Xoshiro256pp::seed_from_u64(42);
        let recipe = SynthesisRecipe::arc_discharge();
        let batch = recipe.sample_batch(&mut rng, 4000);
        let frac = SynthesisRecipe::semiconducting_fraction(&batch);
        assert!(
            (0.60..0.73).contains(&frac),
            "semiconducting fraction {frac} (expected ≈ 2/3)"
        );
    }

    #[test]
    fn sampling_is_seed_deterministic() {
        let recipe = SynthesisRecipe::comocat();
        let a = recipe.sample_batch(&mut Xoshiro256pp::seed_from_u64(1), 50);
        let b = recipe.sample_batch(&mut Xoshiro256pp::seed_from_u64(1), 50);
        assert_eq!(a, b);
    }

    #[test]
    fn narrow_recipe_gives_narrow_bandgap_spread() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let narrow =
            SynthesisRecipe::new(Length::from_nanometers(1.4), Length::from_nanometers(0.05))
                .unwrap();
        let wide = SynthesisRecipe::new(Length::from_nanometers(1.4), Length::from_nanometers(0.4))
            .unwrap();
        let spread = |r: &SynthesisRecipe, rng: &mut Xoshiro256pp| {
            let gaps: Vec<f64> = r
                .sample_batch(rng, 1500)
                .into_iter()
                .filter(|c| c.is_semiconducting())
                .map(|c| c.bandgap().electron_volts())
                .collect();
            crate::stats::std_dev(&gaps)
        };
        let s_narrow = spread(&narrow, &mut rng);
        let s_wide = spread(&wide, &mut rng);
        assert!(s_narrow < s_wide, "narrow {s_narrow} vs wide {s_wide}");
    }
}

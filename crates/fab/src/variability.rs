//! Device-population Monte-Carlo: the Park et al. experiment in silico.
//!
//! §V highlights that self-assembly placement made possible "for the
//! first time a statistical analysis of more than 10,000 CNTFETs that
//! have been measured". [`VariabilityModel`] reproduces that pipeline:
//! every site of an array receives tubes from a placement model, each
//! tube draws a chirality from the (sorted) ensemble, and the resulting
//! device is classified:
//!
//! * **empty** — no tube landed: an open;
//! * **metallic short** — at least one metallic tube bridges the
//!   contacts: the gate cannot turn the device off;
//! * **functional** — only semiconducting tubes: threshold voltage and
//!   on-current are drawn with process dispersion.

use carbon_runtime::{Distribution, Executor, LogNormal, Normal, Rng, MC_CHUNK};

use crate::placement::SelfAssembly;
use crate::stats;

/// Electrical outcome of one fabricated device site.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DeviceOutcome {
    /// No tube in the channel.
    Empty,
    /// At least one metallic tube shorts the channel.
    MetallicShort,
    /// A working FET with its sampled parameters.
    Functional {
        /// Threshold voltage, V.
        vt: f64,
        /// On-current at the benchmark bias, A.
        ion: f64,
        /// On/off current ratio.
        on_off: f64,
    },
}

/// The variability model: placement × purity × parameter dispersion.
#[derive(Debug, Clone, PartialEq)]
pub struct VariabilityModel {
    assembly: SelfAssembly,
    /// Semiconducting purity of the sorted ink.
    purity: f64,
    /// Mean and sigma of the threshold voltage, V.
    vt_mean: f64,
    vt_sigma: f64,
    /// Median on-current per tube, A, with log-normal dispersion.
    ion_median: f64,
    ion_sigma_ln: f64,
}

/// Error building a [`VariabilityModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct BuildVariabilityError(String);

impl std::fmt::Display for BuildVariabilityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid variability model: {}", self.0)
    }
}

impl std::error::Error for BuildVariabilityError {}

impl VariabilityModel {
    /// Creates a model.
    ///
    /// # Errors
    ///
    /// Returns [`BuildVariabilityError`] for purity outside `[0, 1]` or
    /// non-positive dispersion scales.
    pub fn new(
        assembly: SelfAssembly,
        purity: f64,
        vt_mean: f64,
        vt_sigma: f64,
        ion_median: f64,
        ion_sigma_ln: f64,
    ) -> Result<Self, BuildVariabilityError> {
        if !(0.0..=1.0).contains(&purity) {
            return Err(BuildVariabilityError(format!(
                "purity must be in [0, 1], got {purity}"
            )));
        }
        if vt_sigma < 0.0 || ion_sigma_ln < 0.0 {
            return Err(BuildVariabilityError("dispersions must be ≥ 0".into()));
        }
        if ion_median <= 0.0 {
            return Err(BuildVariabilityError(format!(
                "median on-current must be positive, got {ion_median}"
            )));
        }
        Ok(Self {
            assembly,
            purity,
            vt_mean,
            vt_sigma,
            ion_median,
            ion_sigma_ln,
        })
    }

    /// The Park et al. style array: high site occupancy, 99.9 %-pure
    /// ink, ±70 mV threshold dispersion, ~10 µA median on-current with
    /// 40 % log-normal spread.
    pub fn park_experiment() -> Self {
        Self::new(
            SelfAssembly::park_high_density(),
            0.999,
            0.35,
            0.07,
            10e-6,
            0.4,
        )
        .expect("preset is valid")
    }

    /// Samples one device site.
    pub fn sample_device<R: Rng + ?Sized>(&self, rng: &mut R) -> DeviceOutcome {
        let tubes = self.assembly.sample_site(rng);
        if tubes == 0 {
            return DeviceOutcome::Empty;
        }
        let metallic = (0..tubes).any(|_| rng.next_f64() > self.purity);
        if metallic {
            return DeviceOutcome::MetallicShort;
        }
        let vt = Normal::new(self.vt_mean, self.vt_sigma.max(1e-12))
            .expect("validated")
            .sample(rng);
        let per_tube =
            LogNormal::new(self.ion_median.ln(), self.ion_sigma_ln.max(1e-12)).expect("validated");
        let ion: f64 = (0..tubes).map(|_| per_tube.sample(rng)).sum();
        // On/off set by how far Vt sits above the off bias, ~1 decade
        // per 90 mV of margin plus device-to-device scatter.
        let decades = (vt / 0.090) + Normal::new(0.0, 0.5).expect("const").sample(rng);
        let on_off = 10f64.powf(decades.clamp(0.5, 8.0));
        DeviceOutcome::Functional { vt, ion, on_off }
    }

    /// Samples a whole array.
    pub fn sample_population<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> DevicePopulation {
        DevicePopulation {
            outcomes: (0..n).map(|_| self.sample_device(rng)).collect(),
        }
    }

    /// Samples a whole array in parallel from a seed.
    ///
    /// Runs on the runtime executor's deterministic chunked schedule:
    /// the result is bit-identical to itself at every thread count
    /// (though not to the sequential [`sample_population`] draw order,
    /// since each chunk owns an independent RNG stream).
    ///
    /// [`sample_population`]: Self::sample_population
    pub fn sample_population_par(&self, seed: u64, n: usize) -> DevicePopulation {
        self.sample_population_with(&Executor::new(), seed, n)
    }

    /// Samples a whole array on an explicit executor (for pinning the
    /// thread count, e.g. in determinism tests).
    pub fn sample_population_with(&self, ex: &Executor, seed: u64, n: usize) -> DevicePopulation {
        DevicePopulation {
            outcomes: ex.par_mc(seed, n, |_, rng| self.sample_device(rng)),
        }
    }

    /// Grows a campaign adaptively until the 95 % confidence interval
    /// on the functional yield is tighter than `target_ci` (half-width)
    /// or `max_devices` sites have been measured.
    ///
    /// Each round appends exactly one [`MC_CHUNK`] of devices through
    /// [`Executor::par_mc_extend`], so round `r` of the campaign is
    /// bit-identical to items `r·MC_CHUNK..` of a fixed-size
    /// [`sample_population_with`] run with the same seed — at any
    /// thread count. The growth schedule depends only on the sampled
    /// outcomes (never on the schedule), so the final population is
    /// byte-identical across `CARBON_THREADS` settings and stops within
    /// one chunk of the smallest n meeting the target. A final partial
    /// chunk occurs only when `max_devices` is not chunk-aligned.
    ///
    /// # Panics
    ///
    /// Panics unless `target_ci` is positive and finite and
    /// `max_devices > 0`.
    pub fn sample_population_adaptive(
        &self,
        ex: &Executor,
        seed: u64,
        target_ci: f64,
        max_devices: usize,
    ) -> AdaptiveCampaign {
        assert!(
            target_ci > 0.0 && target_ci.is_finite(),
            "target_ci must be positive and finite, got {target_ci}"
        );
        assert!(max_devices > 0, "max_devices must be positive");
        let _span = carbon_trace::span!(
            "fab.adaptive_campaign",
            "seed" = seed,
            "max_devices" = max_devices as u64
        );
        let mut outcomes: Vec<DeviceOutcome> = Vec::new();
        let mut functional = 0usize;
        let mut rounds = 0usize;
        let mut half = f64::INFINITY;
        while outcomes.len() < max_devices {
            let start = outcomes.len();
            let end = (start + MC_CHUNK).min(max_devices);
            let chunk = ex.par_mc_extend(seed, start, end, |_, rng| self.sample_device(rng));
            functional += chunk
                .iter()
                .filter(|o| matches!(o, DeviceOutcome::Functional { .. }))
                .count();
            outcomes.extend(chunk);
            rounds += 1;
            half = yield_ci_half_width(functional, outcomes.len());
            carbon_trace::instant!(
                "fab.campaign.round",
                "round" = rounds as u64,
                "devices" = outcomes.len() as u64,
                "ci_half_width" = half
            );
            if half <= target_ci {
                break;
            }
        }
        let converged = half <= target_ci;
        AdaptiveCampaign {
            population: DevicePopulation { outcomes },
            rounds,
            ci_half_width: half,
            converged,
        }
    }
}

/// 95 % two-sided normal quantile used for the campaign yield CI.
pub const Z95: f64 = 1.959_963_984_540_054;

/// Normal-approximation half-width of the 95 % confidence interval on a
/// yield estimate of `functional` successes out of `n` devices.
/// Infinite for `n == 0`; zero when the observed yield is exactly 0 or
/// 1 (degenerate binomial — callers wanting protection against an
/// all-functional first chunk should set a larger `max_devices` floor).
pub fn yield_ci_half_width(functional: usize, n: usize) -> f64 {
    if n == 0 {
        return f64::INFINITY;
    }
    let p = functional as f64 / n as f64;
    Z95 * (p * (1.0 - p) / n as f64).sqrt()
}

/// Result of an adaptive yield campaign
/// ([`VariabilityModel::sample_population_adaptive`]).
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveCampaign {
    /// All devices measured, in campaign order.
    pub population: DevicePopulation,
    /// Number of [`MC_CHUNK`] rounds run.
    pub rounds: usize,
    /// Final 95 % CI half-width on the functional yield.
    pub ci_half_width: f64,
    /// `true` if the target was met before `max_devices`.
    pub converged: bool,
}

/// A measured array of devices with summary statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct DevicePopulation {
    outcomes: Vec<DeviceOutcome>,
}

impl DevicePopulation {
    /// All device outcomes.
    pub fn outcomes(&self) -> &[DeviceOutcome] {
        &self.outcomes
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// `true` if the population is empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Fraction of functional devices.
    pub fn functional_yield(&self) -> f64 {
        self.count_functional() as f64 / self.outcomes.len().max(1) as f64
    }

    /// Count of functional devices.
    pub fn count_functional(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, DeviceOutcome::Functional { .. }))
            .count()
    }

    /// Fraction of metallic shorts.
    pub fn short_fraction(&self) -> f64 {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, DeviceOutcome::MetallicShort))
            .count() as f64
            / self.outcomes.len().max(1) as f64
    }

    /// Fraction of empty sites.
    pub fn empty_fraction(&self) -> f64 {
        self.outcomes
            .iter()
            .filter(|o| matches!(o, DeviceOutcome::Empty))
            .count() as f64
            / self.outcomes.len().max(1) as f64
    }

    /// Threshold voltages of the functional devices.
    pub fn thresholds(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                DeviceOutcome::Functional { vt, .. } => Some(*vt),
                _ => None,
            })
            .collect()
    }

    /// On-currents of the functional devices, A.
    pub fn on_currents(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                DeviceOutcome::Functional { ion, .. } => Some(*ion),
                _ => None,
            })
            .collect()
    }

    /// log₁₀ of the on/off ratios of the functional devices.
    pub fn log_on_off(&self) -> Vec<f64> {
        self.outcomes
            .iter()
            .filter_map(|o| match o {
                DeviceOutcome::Functional { on_off, .. } => Some(on_off.log10()),
                _ => None,
            })
            .collect()
    }

    /// Mean and standard deviation of the threshold voltage, V.
    pub fn vt_statistics(&self) -> (f64, f64) {
        let v = self.thresholds();
        (stats::mean(&v), stats::std_dev(&v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_runtime::{Executor, Xoshiro256pp};

    fn population(n: usize, seed: u64) -> DevicePopulation {
        VariabilityModel::park_experiment()
            .sample_population(&mut Xoshiro256pp::seed_from_u64(seed), n)
    }

    #[test]
    fn ten_thousand_device_experiment() {
        // The §V headline: measure >10,000 devices and do statistics.
        let pop = population(10_000, 1);
        assert_eq!(pop.len(), 10_000);
        assert!(
            pop.functional_yield() > 0.5,
            "yield {}",
            pop.functional_yield()
        );
        let (vt_mean, vt_std) = pop.vt_statistics();
        assert!((vt_mean - 0.35).abs() < 0.01, "Vt mean {vt_mean}");
        assert!((vt_std - 0.07).abs() < 0.01, "Vt sigma {vt_std}");
    }

    #[test]
    fn outcome_fractions_sum_to_one() {
        let pop = population(5000, 2);
        let sum = pop.functional_yield() + pop.short_fraction() + pop.empty_fraction();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(
            (pop.empty_fraction() - 0.10).abs() < 0.02,
            "Poisson empties"
        );
    }

    #[test]
    fn purity_controls_shorts() {
        let mut rng = Xoshiro256pp::seed_from_u64(3);
        let dirty = VariabilityModel::new(
            SelfAssembly::park_high_density(),
            0.67,
            0.35,
            0.07,
            10e-6,
            0.4,
        )
        .unwrap()
        .sample_population(&mut rng, 5000);
        let clean = population(5000, 3);
        assert!(
            dirty.short_fraction() > 10.0 * clean.short_fraction(),
            "dirty {} vs clean {}",
            dirty.short_fraction(),
            clean.short_fraction()
        );
    }

    #[test]
    fn on_current_distribution_is_positive_and_skewed() {
        let pop = population(8000, 4);
        let ion = pop.on_currents();
        assert!(ion.iter().all(|&i| i > 0.0));
        let mean = stats::mean(&ion);
        let median = stats::percentile(&ion, 50.0);
        assert!(
            mean > median,
            "log-normal + multi-tube skew: {mean} vs {median}"
        );
    }

    #[test]
    fn on_off_histogram_spans_decades() {
        let pop = population(8000, 5);
        let loo = pop.log_on_off();
        let lo = stats::percentile(&loo, 5.0);
        let hi = stats::percentile(&loo, 95.0);
        assert!(hi - lo > 1.0, "spread {lo}..{hi}");
        assert!(hi <= 8.0 + 1e-12);
    }

    #[test]
    fn determinism_by_seed() {
        let a = population(100, 9);
        let b = population(100, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn parallel_population_is_thread_count_invariant() {
        let model = VariabilityModel::park_experiment();
        let reference = model.sample_population_with(&Executor::with_threads(1), 2014, 4000);
        for threads in [2, 4] {
            let pop = model.sample_population_with(&Executor::with_threads(threads), 2014, 4000);
            assert_eq!(pop, reference, "divergence at {threads} threads");
        }
        // And the public seeded entry point matches the same contract.
        assert_eq!(
            model.sample_population_par(2014, 4000).vt_statistics(),
            reference.vt_statistics()
        );
    }

    #[test]
    fn parallel_population_statistics_match_sequential() {
        // Different draw order than the sequential path, but the same
        // model: summary statistics must agree within Monte-Carlo noise.
        let par = VariabilityModel::park_experiment().sample_population_par(11, 10_000);
        let seq = population(10_000, 11);
        assert!((par.functional_yield() - seq.functional_yield()).abs() < 0.02);
        let (pm, ps) = par.vt_statistics();
        let (sm, ss) = seq.vt_statistics();
        assert!((pm - sm).abs() < 0.01, "means {pm} vs {sm}");
        assert!((ps - ss).abs() < 0.01, "sigmas {ps} vs {ss}");
    }

    #[test]
    fn adaptive_campaign_is_a_prefix_of_the_fixed_run() {
        let model = VariabilityModel::park_experiment();
        let ex = Executor::with_threads(2);
        let campaign = model.sample_population_adaptive(&ex, 2014, 0.02, 100_000);
        assert!(campaign.converged);
        assert!(campaign.ci_half_width <= 0.02);
        let n = campaign.population.len();
        assert_eq!(n, campaign.rounds * MC_CHUNK, "whole chunks only");
        // Every device matches the same-seed fixed-size run: growing
        // the campaign never perturbs earlier samples.
        let fixed = model.sample_population_with(&ex, 2014, n);
        assert_eq!(campaign.population, fixed);
    }

    #[test]
    fn adaptive_campaign_is_thread_count_invariant() {
        let model = VariabilityModel::park_experiment();
        let reference =
            model.sample_population_adaptive(&Executor::with_threads(1), 7, 0.02, 50_000);
        for threads in [2, 4, 8] {
            let campaign =
                model.sample_population_adaptive(&Executor::with_threads(threads), 7, 0.02, 50_000);
            assert_eq!(campaign, reference, "divergence at {threads} threads");
        }
    }

    #[test]
    fn adaptive_campaign_stops_within_one_chunk_of_the_target() {
        let model = VariabilityModel::park_experiment();
        let ex = Executor::with_threads(2);
        let campaign = model.sample_population_adaptive(&ex, 3, 0.015, 200_000);
        assert!(campaign.converged);
        let n = campaign.population.len();
        // One chunk fewer must NOT have met the target (minimality).
        if n > MC_CHUNK {
            let shorter = model.sample_population_with(&ex, 3, n - MC_CHUNK);
            assert!(
                yield_ci_half_width(shorter.count_functional(), shorter.len()) > 0.015,
                "stopped later than necessary"
            );
        }
    }

    #[test]
    fn adaptive_campaign_caps_at_max_devices() {
        let model = VariabilityModel::park_experiment();
        let ex = Executor::with_threads(2);
        // Unreachable target: must stop at the cap, including a final
        // partial chunk when the cap is not chunk-aligned.
        let cap = MC_CHUNK + MC_CHUNK / 2;
        let campaign = model.sample_population_adaptive(&ex, 5, 1e-9, cap);
        assert!(!campaign.converged);
        assert_eq!(campaign.population.len(), cap);
        assert_eq!(campaign.rounds, 2);
    }

    #[test]
    fn ci_half_width_shrinks_with_n() {
        assert_eq!(yield_ci_half_width(0, 0), f64::INFINITY);
        assert_eq!(yield_ci_half_width(100, 100), 0.0);
        let wide = yield_ci_half_width(870, 1000);
        let tight = yield_ci_half_width(8700, 10_000);
        assert!(wide > tight && tight > 0.0);
        // Hand check: z·sqrt(0.87·0.13/1000).
        assert!((wide - Z95 * (0.87 * 0.13 / 1000.0_f64).sqrt()).abs() < 1e-15);
    }

    #[test]
    fn validation() {
        let asm = SelfAssembly::park_high_density();
        assert!(VariabilityModel::new(asm.clone(), 1.5, 0.3, 0.05, 1e-6, 0.3).is_err());
        assert!(VariabilityModel::new(asm.clone(), 0.9, 0.3, -0.05, 1e-6, 0.3).is_err());
        assert!(VariabilityModel::new(asm, 0.9, 0.3, 0.05, 0.0, 0.3).is_err());
    }
}

//! Wafer-scale CNT integration statistics — the paper's Section V.
//!
//! "Without such a high yield wafer-scale integration, SWCNT circuits
//! will be an illusional dream." This crate makes that sentence
//! quantitative with stochastic process models for every step the paper
//! discusses:
//!
//! * [`synthesis`] — chirality ensembles a growth recipe produces
//!   (diameter distribution × the `(n − m) mod 3` lottery: ~1/3 of
//!   as-grown tubes are metallic shorts),
//! * [`sorting`] — solution-phase purification (gel chromatography,
//!   density-gradient, DNA) as iterated Bayesian enrichment with yield
//!   loss per pass,
//! * [`placement`] — aligned growth on quartz and Park-style
//!   self-assembly into predefined trenches (site occupancy statistics),
//! * [`variability`] — the >10,000-device Monte-Carlo in the spirit of
//!   Park et al. \[22\]: V_T and on-current dispersion, on/off histograms,
//!   device-outcome classification,
//! * [`vmr`] — electrical removal of metallic tubes (the Shulaker
//!   "imperfection-immune" step),
//! * [`chirality_sorting`] — single-chirality separation stages,
//! * [`yield_model`] — from device statistics to gate and circuit yield,
//!   including what it takes to build the §V one-bit computer.
//!
//! All sampling is deterministic given a seed (`carbon_runtime::Xoshiro256pp`), so
//! the experiment tables in `carbon-core` are reproducible.

#![deny(missing_docs)]

pub mod chirality_sorting;
pub mod placement;
pub mod sorting;
pub mod stats;
pub mod synthesis;
pub mod variability;
pub mod vmr;
pub mod wafer;
pub mod yield_model;

pub use chirality_sorting::ChiralitySeparation;
pub use placement::{AlignedGrowth, SelfAssembly};
pub use sorting::SortingProcess;
pub use synthesis::SynthesisRecipe;
pub use variability::{DeviceOutcome, DevicePopulation, VariabilityModel};
pub use vmr::{VmrOutcome, VmrProcess};
pub use wafer::{WaferModel, WaferSample};
pub use yield_model::CircuitYield;

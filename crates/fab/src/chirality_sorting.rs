//! Single-chirality separation.
//!
//! Beyond semiconducting/metallic sorting, §V mentions "large-scale
//! single-chirality separation of single-wall carbon nanotubes by gel
//! chromatography, density gradient or DNA methods". This module models
//! a chirality-selective pass: tubes are retained with a probability
//! that decays with their diameter distance from the target chirality
//! (the physical handle all three methods ultimately exploit), plus a
//! non-selective leakage floor.

use carbon_band::chirality::Chirality;
use carbon_runtime::Rng;

/// A single-chirality separation stage.
#[derive(Debug, Clone, PartialEq)]
pub struct ChiralitySeparation {
    target: Chirality,
    /// Diameter selectivity window (nm): retention halves roughly every
    /// window of diameter mismatch.
    window_nm: f64,
    /// Retention probability floor for arbitrarily wrong tubes.
    leakage: f64,
}

/// Error building a [`ChiralitySeparation`].
#[derive(Debug, Clone, PartialEq)]
pub struct BuildSeparationError(String);

impl std::fmt::Display for BuildSeparationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid chirality separation: {}", self.0)
    }
}

impl std::error::Error for BuildSeparationError {}

impl ChiralitySeparation {
    /// Creates a stage targeting one chirality.
    ///
    /// # Errors
    ///
    /// Returns [`BuildSeparationError`] unless `window_nm > 0` and
    /// `0 ≤ leakage < 1`.
    pub fn new(
        target: Chirality,
        window_nm: f64,
        leakage: f64,
    ) -> Result<Self, BuildSeparationError> {
        if !(window_nm.is_finite() && window_nm > 0.0) {
            return Err(BuildSeparationError(format!(
                "selectivity window must be positive, got {window_nm} nm"
            )));
        }
        if !(0.0..1.0).contains(&leakage) {
            return Err(BuildSeparationError(format!(
                "leakage must be in [0, 1), got {leakage}"
            )));
        }
        Ok(Self {
            target,
            window_nm,
            leakage,
        })
    }

    /// A DNA-wrapping-grade stage: tight 0.02 nm window, 0.5 % leakage.
    ///
    /// # Errors
    ///
    /// Propagates construction validation (never fails for the preset
    /// constants).
    pub fn dna_grade(target: Chirality) -> Result<Self, BuildSeparationError> {
        Self::new(target, 0.02, 0.005)
    }

    /// The targeted chirality.
    pub fn target(&self) -> Chirality {
        self.target
    }

    /// Retention probability of a tube of the given chirality.
    pub fn retention(&self, c: Chirality) -> f64 {
        if c == self.target {
            return 1.0;
        }
        let dd = (c.diameter().nanometers() - self.target.diameter().nanometers()).abs();
        let gauss = (-(dd / self.window_nm).powi(2)).exp();
        self.leakage + (1.0 - self.leakage) * gauss * 0.5
    }

    /// Applies one pass to a batch, returning the retained tubes.
    pub fn pass<R: Rng + ?Sized>(&self, rng: &mut R, batch: &[Chirality]) -> Vec<Chirality> {
        batch
            .iter()
            .copied()
            .filter(|&c| rng.next_f64() < self.retention(c))
            .collect()
    }

    /// Fraction of a batch that is the target chirality.
    pub fn purity(&self, batch: &[Chirality]) -> f64 {
        if batch.is_empty() {
            return 0.0;
        }
        batch.iter().filter(|&&c| c == self.target).count() as f64 / batch.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthesis::SynthesisRecipe;
    use carbon_runtime::Xoshiro256pp;

    fn target() -> Chirality {
        Chirality::new(13, 0).expect("valid index")
    }

    #[test]
    fn retention_is_peaked_at_target() {
        let sep = ChiralitySeparation::dna_grade(target()).unwrap();
        assert_eq!(sep.retention(target()), 1.0);
        let near = Chirality::new(12, 1).unwrap(); // very close diameter
        let far = Chirality::new(20, 5).unwrap();
        assert!(sep.retention(near) < 1.0);
        assert!(sep.retention(far) < sep.retention(near));
        assert!(sep.retention(far) >= 0.005, "leakage floor");
    }

    #[test]
    fn repeated_passes_enrich_toward_single_chirality() {
        let mut rng = Xoshiro256pp::seed_from_u64(17);
        // Narrow recipe centred on the target diameter.
        let recipe = SynthesisRecipe::new(
            target().diameter(),
            carbon_units::Length::from_nanometers(0.1),
        )
        .unwrap();
        let sep = ChiralitySeparation::dna_grade(target()).unwrap();
        let mut batch = recipe.sample_batch(&mut rng, 20_000);
        let mut purities = vec![sep.purity(&batch)];
        for _ in 0..4 {
            batch = sep.pass(&mut rng, &batch);
            purities.push(sep.purity(&batch));
        }
        assert!(
            purities.windows(2).all(|w| w[1] >= w[0] * 0.98),
            "monotone enrichment: {purities:?}"
        );
        assert!(
            purities.last().unwrap() > &(purities[0] * 3.0),
            "strong enrichment: {purities:?}"
        );
        assert!(!batch.is_empty(), "material survives");
    }

    #[test]
    fn yield_falls_as_purity_rises() {
        let mut rng = Xoshiro256pp::seed_from_u64(23);
        let recipe = SynthesisRecipe::arc_discharge();
        let sep = ChiralitySeparation::dna_grade(target()).unwrap();
        let batch = recipe.sample_batch(&mut rng, 10_000);
        let kept = sep.pass(&mut rng, &batch);
        assert!(kept.len() < batch.len() / 2, "selection discards material");
    }

    #[test]
    fn validation() {
        assert!(ChiralitySeparation::new(target(), 0.0, 0.01).is_err());
        assert!(ChiralitySeparation::new(target(), 0.02, 1.0).is_err());
        assert!(ChiralitySeparation::new(target(), 0.02, -0.1).is_err());
    }

    #[test]
    fn empty_batch_purity_is_zero() {
        let sep = ChiralitySeparation::dna_grade(target()).unwrap();
        assert_eq!(sep.purity(&[]), 0.0);
    }
}

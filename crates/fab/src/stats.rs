//! Small statistics helpers shared by the fabrication models.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n − 1 denominator); 0 for fewer than two
/// samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64).sqrt()
}

/// Sorts samples ascending, the precondition for
/// [`percentile_sorted`].
///
/// # Panics
///
/// Panics on NaN (non-totally-ordered) data.
pub fn sort_samples(xs: &mut [f64]) {
    xs.sort_by(|a, b| a.partial_cmp(b).expect("finite data"));
}

/// The `p`-th percentile (0..=100) by linear interpolation on data that
/// is already sorted ascending (see [`sort_samples`]). Sort once, then
/// read as many percentiles as needed without re-sorting.
///
/// # Panics
///
/// Panics if `sorted` is empty or `p` is outside `[0, 100]`.
pub fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty data");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let f = rank - lo as f64;
        sorted[lo] * (1.0 - f) + sorted[hi] * f
    }
}

/// The `p`-th percentile (0..=100) by linear interpolation on the sorted
/// data.
///
/// Clones and sorts on every call; when reading several percentiles of
/// the same data, use [`sort_samples`] + [`percentile_sorted`] instead.
///
/// # Panics
///
/// Panics if `xs` is empty or `p` is outside `[0, 100]`.
pub fn percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty data");
    let mut sorted = xs.to_vec();
    sort_samples(&mut sorted);
    percentile_sorted(&sorted, p)
}

/// Histogram with `bins` equal-width bins over `[lo, hi]`; returns bin
/// centres and counts. Out-of-range samples clamp to the edge bins.
///
/// # Panics
///
/// Panics if `bins == 0` or `hi <= lo`.
pub fn histogram(xs: &[f64], lo: f64, hi: f64, bins: usize) -> (Vec<f64>, Vec<usize>) {
    assert!(bins > 0, "need at least one bin");
    assert!(hi > lo, "histogram range must be non-empty");
    let width = (hi - lo) / bins as f64;
    let centres = (0..bins).map(|k| lo + (k as f64 + 0.5) * width).collect();
    let mut counts = vec![0usize; bins];
    for &x in xs {
        let k = (((x - lo) / width).floor() as i64).clamp(0, bins as i64 - 1) as usize;
        counts[k] += 1;
    }
    (centres, counts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((std_dev(&xs) - 2.138).abs() < 1e-3);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn percentiles() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 50.0), 3.0);
        assert_eq!(percentile(&xs, 100.0), 5.0);
        assert_eq!(percentile(&xs, 25.0), 2.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    fn percentile_sorted_matches_percentile() {
        let xs = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.0];
        let mut sorted = xs.to_vec();
        sort_samples(&mut sorted);
        for p in [0.0, 5.0, 25.0, 50.0, 77.7, 95.0, 100.0] {
            assert_eq!(percentile_sorted(&sorted, p), percentile(&xs, p));
        }
    }

    #[test]
    fn histogram_counts_and_clamps() {
        let xs = [0.1, 0.1, 0.5, 0.9, -3.0, 7.0];
        let (centres, counts) = histogram(&xs, 0.0, 1.0, 2);
        assert_eq!(centres, vec![0.25, 0.75]);
        // 0.5 lands exactly on the bin edge and goes to the upper bin.
        assert_eq!(counts, vec![3, 3]);
        assert_eq!(counts.iter().sum::<usize>(), xs.len());
    }
}

//! Getting tubes onto the wafer: aligned growth and self-assembly.
//!
//! §V describes the two routes this module models:
//!
//! * [`AlignedGrowth`] — CVD growth on ST-cut quartz, where atomic steps
//!   guide tubes into near-perfect alignment (the Shulaker computer's
//!   substrate): characterized by a linear tube density and an angular
//!   misalignment spread.
//! * [`SelfAssembly`] — Park et al.'s chemical self-assembly into
//!   predefined HfO₂ trenches: each site captures a Poisson-distributed
//!   number of tubes, giving the empty/single/multiple site statistics
//!   that set device yield before any electrical consideration.

use carbon_runtime::{Distribution, Normal, Poisson, Rng};

/// Aligned CVD growth on quartz.
#[derive(Debug, Clone, PartialEq)]
pub struct AlignedGrowth {
    /// Tubes per micron across the growth direction.
    density_per_um: f64,
    /// Standard deviation of the alignment angle, degrees.
    angle_sigma_deg: f64,
}

/// Error building a placement model from non-physical parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildPlacementError(String);

impl std::fmt::Display for BuildPlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid placement model: {}", self.0)
    }
}

impl std::error::Error for BuildPlacementError {}

impl AlignedGrowth {
    /// Creates a growth model.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPlacementError`] unless density and spread are
    /// positive and finite.
    pub fn new(density_per_um: f64, angle_sigma_deg: f64) -> Result<Self, BuildPlacementError> {
        if !(density_per_um.is_finite() && density_per_um > 0.0) {
            return Err(BuildPlacementError(format!(
                "density must be positive, got {density_per_um}/µm"
            )));
        }
        if !(angle_sigma_deg.is_finite() && angle_sigma_deg >= 0.0) {
            return Err(BuildPlacementError(format!(
                "angle spread must be ≥ 0, got {angle_sigma_deg}°"
            )));
        }
        Ok(Self {
            density_per_um,
            angle_sigma_deg,
        })
    }

    /// The quartz-substrate recipe behind the CNT computer: ~5 tubes/µm
    /// with sub-degree alignment.
    pub fn quartz_st_cut() -> Self {
        Self::new(5.0, 0.5).expect("preset is valid")
    }

    /// Expected number of tubes crossing a device of the given width
    /// (µm).
    pub fn expected_tubes(&self, width_um: f64) -> f64 {
        self.density_per_um * width_um
    }

    /// Samples the number of tubes crossing a device of width
    /// `width_um` (Poisson) and their alignment angles (normal,
    /// degrees).
    pub fn sample_device<R: Rng + ?Sized>(&self, rng: &mut R, width_um: f64) -> Vec<f64> {
        let lambda = self.expected_tubes(width_um).max(1e-12);
        let n = Poisson::new(lambda).expect("positive lambda").sample(rng) as usize;
        let normal = Normal::new(0.0, self.angle_sigma_deg.max(1e-9)).expect("valid sigma");
        (0..n).map(|_| normal.sample(rng)).collect()
    }

    /// Fraction of tubes whose misalignment exceeds `limit_deg`
    /// (two-sided), from the Gaussian model.
    pub fn misaligned_fraction(&self, limit_deg: f64) -> f64 {
        if self.angle_sigma_deg == 0.0 {
            return 0.0;
        }
        let z = limit_deg / self.angle_sigma_deg;
        erfc_half(z)
    }
}

/// Two-sided Gaussian tail probability `P(|X| > z·σ)` via
/// Abramowitz–Stegun 7.1.26.
fn erfc_half(z: f64) -> f64 {
    let t = 1.0 / (1.0 + 0.3275911 * z / std::f64::consts::SQRT_2);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    (poly * (-(z * z) / 2.0).exp()).clamp(0.0, 1.0)
}

/// Park-style chemical self-assembly into predefined trenches.
#[derive(Debug, Clone, PartialEq)]
pub struct SelfAssembly {
    /// Mean tubes captured per site (Poisson λ).
    lambda: f64,
}

/// Site-occupancy statistics of a self-assembly run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Occupancy {
    /// Fraction of empty sites.
    pub empty: f64,
    /// Fraction of sites with exactly one tube.
    pub single: f64,
    /// Fraction with more than one tube.
    pub multiple: f64,
}

impl SelfAssembly {
    /// Creates an assembly model with mean occupancy `lambda`.
    ///
    /// # Errors
    ///
    /// Returns [`BuildPlacementError`] unless `lambda > 0`.
    pub fn new(lambda: f64) -> Result<Self, BuildPlacementError> {
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(BuildPlacementError(format!(
                "mean site occupancy must be positive, got {lambda}"
            )));
        }
        Ok(Self { lambda })
    }

    /// The Park et al. recipe: ~90 % of sites occupied
    /// (`λ ≈ 2.3 → P(0) ≈ 10 %`).
    pub fn park_high_density() -> Self {
        Self::new(2.3).expect("preset is valid")
    }

    /// Analytic occupancy fractions from the Poisson model.
    pub fn occupancy(&self) -> Occupancy {
        let p0 = (-self.lambda).exp();
        let p1 = self.lambda * p0;
        Occupancy {
            empty: p0,
            single: p1,
            multiple: (1.0 - p0 - p1).max(0.0),
        }
    }

    /// Samples the tube count of one site.
    pub fn sample_site<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        Poisson::new(self.lambda)
            .expect("positive lambda")
            .sample(rng) as usize
    }

    /// Samples `n` sites and returns the empirical occupancy.
    pub fn sample_array<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Occupancy {
        let mut counts = [0usize; 3];
        for _ in 0..n {
            let k = self.sample_site(rng).min(2);
            counts[k] += 1;
        }
        Occupancy {
            empty: counts[0] as f64 / n as f64,
            single: counts[1] as f64 / n as f64,
            multiple: counts[2] as f64 / n as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_runtime::Xoshiro256pp;

    #[test]
    fn quartz_growth_is_well_aligned() {
        let g = AlignedGrowth::quartz_st_cut();
        assert!(g.misaligned_fraction(2.0) < 0.01, "sub-degree alignment");
        assert!((g.expected_tubes(2.0) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_tube_counts_follow_density() {
        let g = AlignedGrowth::quartz_st_cut();
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let total: usize = (0..2000)
            .map(|_| g.sample_device(&mut rng, 1.0).len())
            .sum();
        let mean = total as f64 / 2000.0;
        assert!((mean - 5.0).abs() < 0.3, "mean tubes {mean}");
    }

    #[test]
    fn wider_angle_spread_misaligns_more() {
        let tight = AlignedGrowth::new(5.0, 0.5).unwrap();
        let loose = AlignedGrowth::new(5.0, 5.0).unwrap();
        assert!(loose.misaligned_fraction(2.0) > 10.0 * tight.misaligned_fraction(2.0));
    }

    #[test]
    fn park_occupancy_matches_poisson() {
        let a = SelfAssembly::park_high_density();
        let occ = a.occupancy();
        assert!((occ.empty - 0.1).abs() < 0.02, "≈10 % empty: {}", occ.empty);
        assert!((occ.empty + occ.single + occ.multiple - 1.0).abs() < 1e-12);
        assert!(occ.multiple > occ.single * 0.5, "high λ → many doubles");
    }

    #[test]
    fn empirical_occupancy_converges_to_analytic() {
        let a = SelfAssembly::new(1.0).unwrap();
        let mut rng = Xoshiro256pp::seed_from_u64(5);
        let emp = a.sample_array(&mut rng, 20_000);
        let ana = a.occupancy();
        assert!((emp.empty - ana.empty).abs() < 0.02);
        assert!((emp.single - ana.single).abs() < 0.02);
        assert!((emp.multiple - ana.multiple).abs() < 0.02);
    }

    #[test]
    fn low_density_assembly_leaves_sites_empty() {
        let sparse = SelfAssembly::new(0.2).unwrap();
        assert!(sparse.occupancy().empty > 0.8);
    }

    #[test]
    fn validation() {
        assert!(AlignedGrowth::new(0.0, 1.0).is_err());
        assert!(AlignedGrowth::new(5.0, -1.0).is_err());
        assert!(SelfAssembly::new(0.0).is_err());
        assert!(SelfAssembly::new(f64::NAN).is_err());
    }

    #[test]
    fn gaussian_tail_sanity() {
        assert!((erfc_half(0.0) - 1.0).abs() < 1e-6);
        assert!((erfc_half(1.96) - 0.05).abs() < 0.005);
        assert!(erfc_half(5.0) < 1e-5);
    }
}

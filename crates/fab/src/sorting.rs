//! Solution-phase sorting of semiconducting tubes.
//!
//! §V: "the other approach refines the CNT usually with the help of
//! liquid suspension and tries to do large-scale single-chirality
//! separation of single-wall carbon nanotubes by gel chromatography,
//! density gradient or DNA methods."
//!
//! Each pass is modelled as Bayesian enrichment with a selectivity `s`
//! (probability a semiconducting tube is kept relative to a metallic
//! one) and a per-pass material yield:
//!
//! ```text
//! p' = s·p / (s·p + (1 − s)·(1 − p))
//! ```
//!
//! Iterating shows the §V tension quantitatively: purities beyond
//! "five nines" — what a VLSI-scale circuit needs — cost several passes
//! and exponential material loss.

/// A purification process characterized by per-pass selectivity and
/// material yield.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SortingProcess {
    name: &'static str,
    selectivity: f64,
    pass_yield: f64,
}

/// Error building a [`SortingProcess`] from non-physical parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildSortingError(String);

impl std::fmt::Display for BuildSortingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid sorting process: {}", self.0)
    }
}

impl std::error::Error for BuildSortingError {}

/// Result of a multi-pass purification run.
#[derive(Debug, Clone, PartialEq)]
pub struct PurificationRun {
    /// Semiconducting purity after each pass (index 0 = input purity).
    pub purity: Vec<f64>,
    /// Cumulative material yield after each pass (index 0 = 1.0).
    pub cumulative_yield: Vec<f64>,
}

impl SortingProcess {
    /// Creates a process.
    ///
    /// # Errors
    ///
    /// Returns [`BuildSortingError`] unless `0.5 < selectivity < 1` and
    /// `0 < pass_yield ≤ 1`.
    pub fn new(
        name: &'static str,
        selectivity: f64,
        pass_yield: f64,
    ) -> Result<Self, BuildSortingError> {
        if !(selectivity > 0.5 && selectivity < 1.0) {
            return Err(BuildSortingError(format!(
                "selectivity must be in (0.5, 1), got {selectivity}"
            )));
        }
        if !(pass_yield > 0.0 && pass_yield <= 1.0) {
            return Err(BuildSortingError(format!(
                "pass yield must be in (0, 1], got {pass_yield}"
            )));
        }
        Ok(Self {
            name,
            selectivity,
            pass_yield,
        })
    }

    /// Gel chromatography: high selectivity, decent yield.
    pub fn gel_chromatography() -> Self {
        Self::new("gel chromatography", 0.995, 0.70).expect("preset is valid")
    }

    /// Density-gradient ultracentrifugation.
    pub fn density_gradient() -> Self {
        Self::new("density gradient", 0.98, 0.50).expect("preset is valid")
    }

    /// DNA-wrapping separation: highest selectivity, lowest yield.
    pub fn dna_wrapping() -> Self {
        Self::new("DNA wrapping", 0.9995, 0.25).expect("preset is valid")
    }

    /// Process name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One enrichment pass on purity `p` (fraction semiconducting).
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn enrich(&self, p: f64) -> f64 {
        assert!(
            (0.0..=1.0).contains(&p),
            "purity must be a fraction, got {p}"
        );
        let s = self.selectivity;
        s * p / (s * p + (1.0 - s) * (1.0 - p))
    }

    /// Runs `passes` passes from `p0`, tracking purity and material
    /// yield.
    pub fn run(&self, p0: f64, passes: usize) -> PurificationRun {
        let mut purity = vec![p0];
        let mut cumulative_yield = vec![1.0];
        for _ in 0..passes {
            purity.push(self.enrich(*purity.last().expect("non-empty")));
            cumulative_yield.push(cumulative_yield.last().expect("non-empty") * self.pass_yield);
        }
        PurificationRun {
            purity,
            cumulative_yield,
        }
    }

    /// Number of passes needed to reach `target` purity from `p0`, with
    /// the cumulative yield paid for it. Returns `None` if 100 passes do
    /// not suffice.
    pub fn passes_to_reach(&self, p0: f64, target: f64) -> Option<(usize, f64)> {
        let mut p = p0;
        let mut y = 1.0;
        for k in 0..100 {
            if p >= target {
                return Some((k, y));
            }
            p = self.enrich(p);
            y *= self.pass_yield;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enrichment_is_monotone_and_bounded() {
        let g = SortingProcess::gel_chromatography();
        let p1 = g.enrich(0.67);
        assert!(p1 > 0.67 && p1 < 1.0);
        let p2 = g.enrich(p1);
        assert!(p2 > p1 && p2 < 1.0);
    }

    #[test]
    fn fixed_points_of_enrichment() {
        let g = SortingProcess::gel_chromatography();
        assert_eq!(g.enrich(0.0), 0.0, "no semiconducting tubes → none appear");
        assert_eq!(g.enrich(1.0), 1.0);
    }

    #[test]
    fn as_grown_to_five_nines() {
        // From the 2/3 as-grown fraction to 99.999 %.
        let g = SortingProcess::gel_chromatography();
        let (passes, y) = g.passes_to_reach(0.67, 0.99999).unwrap();
        assert!(
            (2..=5).contains(&passes),
            "gel chromatography: {passes} passes"
        );
        assert!(y < 0.6, "material cost is real: yield {y}");
        // DNA gets there faster but pays more material.
        let d = SortingProcess::dna_wrapping();
        let (p_dna, y_dna) = d.passes_to_reach(0.67, 0.99999).unwrap();
        assert!(p_dna <= passes);
        assert!(y_dna < y, "DNA yield {y_dna} < gel yield {y}");
    }

    #[test]
    fn weak_process_needs_more_passes() {
        let weak = SortingProcess::new("weak", 0.8, 0.9).unwrap();
        let strong = SortingProcess::gel_chromatography();
        let (pw, _) = weak.passes_to_reach(0.67, 0.9999).unwrap();
        let (ps, _) = strong.passes_to_reach(0.67, 0.9999).unwrap();
        assert!(pw > ps, "weak {pw} vs strong {ps}");
    }

    #[test]
    fn run_tracks_yield_exponentially() {
        let g = SortingProcess::density_gradient();
        let run = g.run(0.67, 4);
        assert_eq!(run.purity.len(), 5);
        assert_eq!(run.cumulative_yield.len(), 5);
        assert!((run.cumulative_yield[4] - 0.5f64.powi(4)).abs() < 1e-12);
        assert!(run.purity.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn unreachable_target_returns_none() {
        // Selectivity 0.6 stalls near its fixed point long before
        // 12 nines.
        let weak = SortingProcess::new("weak", 0.501, 0.99).unwrap();
        assert!(weak.passes_to_reach(0.01, 1.0 - 1e-12).is_none());
    }

    #[test]
    fn validation() {
        assert!(SortingProcess::new("x", 0.5, 0.9).is_err());
        assert!(SortingProcess::new("x", 1.0, 0.9).is_err());
        assert!(SortingProcess::new("x", 0.9, 0.0).is_err());
        assert!(SortingProcess::new("x", 0.9, 1.1).is_err());
    }

    #[test]
    #[should_panic(expected = "purity must be a fraction")]
    fn enrich_rejects_bad_purity() {
        let _ = SortingProcess::gel_chromatography().enrich(1.5);
    }
}

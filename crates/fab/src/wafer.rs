//! Wafer-scale yield maps.
//!
//! §V's bar for success is wafer-scale: Shulaker et al. "managed to
//! build several simple one-bit computers on one wafer with high
//! yield", and the paper closes with "without such a high yield
//! wafer-scale integration, SWCNT circuits will be an illusional
//! dream." This module turns the per-device statistics into a die map:
//! a circular wafer of dies, each holding one circuit of `N` devices,
//! with the ink purity degrading radially (edge effects are where real
//! wafer processes die first).

use carbon_runtime::Rng;

/// A wafer-level yield model.
#[derive(Debug, Clone, PartialEq)]
pub struct WaferModel {
    /// Wafer diameter in dies (odd numbers centre a die on the axis).
    dies_across: usize,
    /// Semiconducting ink purity at the wafer centre.
    centre_purity: f64,
    /// Purity at the wafer edge (`≤ centre_purity`).
    edge_purity: f64,
    /// Devices per die (one circuit per die).
    devices_per_die: u32,
    /// Mean tubes per device site (Poisson λ of the placement).
    lambda: f64,
}

/// Error building a [`WaferModel`].
#[derive(Debug, Clone, PartialEq)]
pub struct BuildWaferError(String);

impl std::fmt::Display for BuildWaferError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid wafer model: {}", self.0)
    }
}

impl std::error::Error for BuildWaferError {}

/// One sampled wafer: a die grid with pass/fail outcomes.
#[derive(Debug, Clone, PartialEq)]
pub struct WaferSample {
    dies_across: usize,
    /// `None` outside the circle; `Some(works)` for real dies.
    dies: Vec<Option<bool>>,
}

impl WaferModel {
    /// Creates a wafer model.
    ///
    /// # Errors
    ///
    /// Returns [`BuildWaferError`] for a grid smaller than 3 dies,
    /// purities outside `[0, 1]` or ordered the wrong way, zero devices,
    /// or non-positive λ.
    pub fn new(
        dies_across: usize,
        centre_purity: f64,
        edge_purity: f64,
        devices_per_die: u32,
        lambda: f64,
    ) -> Result<Self, BuildWaferError> {
        if dies_across < 3 {
            return Err(BuildWaferError(format!(
                "wafer needs at least 3 dies across, got {dies_across}"
            )));
        }
        for (name, p) in [
            ("centre purity", centre_purity),
            ("edge purity", edge_purity),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(BuildWaferError(format!(
                    "{name} must be in [0, 1], got {p}"
                )));
            }
        }
        if edge_purity > centre_purity {
            return Err(BuildWaferError(
                "edge purity cannot exceed centre purity".to_owned(),
            ));
        }
        if devices_per_die == 0 {
            return Err(BuildWaferError(
                "a die needs at least one device".to_owned(),
            ));
        }
        if !(lambda.is_finite() && lambda > 0.0) {
            return Err(BuildWaferError(format!("λ must be positive, got {lambda}")));
        }
        Ok(Self {
            dies_across,
            centre_purity,
            edge_purity,
            devices_per_die,
            lambda,
        })
    }

    /// A Shulaker-run wafer: 15 dies across, five-nines ink at the
    /// centre degrading to 99 % at the edge, 178 CNFETs per computer,
    /// Park-density placement.
    pub fn shulaker_run() -> Self {
        Self::new(15, 0.99999, 0.99, 178, 2.3).expect("preset is valid")
    }

    /// Local ink purity at normalized radius `r ∈ [0, 1]` (quadratic
    /// radial roll-off).
    pub fn purity_at(&self, r: f64) -> f64 {
        let r = r.clamp(0.0, 1.0);
        self.centre_purity - (self.centre_purity - self.edge_purity) * r * r
    }

    /// Probability an *occupied, screened* device site is functional at
    /// purity `p`: for Poisson-`λ` tube counts,
    /// `P(all tubes semiconducting | ≥1 tube)
    ///  = (e^(−λ(1−p)) − e^(−λ)) / (1 − e^(−λ))`.
    pub fn device_yield(&self, purity: f64) -> f64 {
        let l = self.lambda;
        ((-l * (1.0 - purity)).exp() - (-l).exp()) / (1.0 - (-l).exp())
    }

    /// Expected die yield at normalized radius `r`.
    pub fn die_yield_at(&self, r: f64) -> f64 {
        self.device_yield(self.purity_at(r))
            .powi(self.devices_per_die as i32)
    }

    /// Expected number of working dies on the wafer.
    pub fn expected_good_dies(&self) -> f64 {
        self.die_coords()
            .into_iter()
            .map(|(_, _, r)| self.die_yield_at(r))
            .sum()
    }

    /// Number of dies that fit the circular wafer.
    pub fn die_count(&self) -> usize {
        self.die_coords().len()
    }

    /// Samples one wafer.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> WaferSample {
        let n = self.dies_across;
        let mut dies = vec![None; n * n];
        for (ix, iy, r) in self.die_coords() {
            let works = rng.next_f64() < self.die_yield_at(r);
            dies[iy * n + ix] = Some(works);
        }
        WaferSample {
            dies_across: n,
            dies,
        }
    }

    /// Grid coordinates and normalized radius of every die inside the
    /// circle.
    fn die_coords(&self) -> Vec<(usize, usize, f64)> {
        let n = self.dies_across;
        let c = (n as f64 - 1.0) / 2.0;
        let mut out = Vec::new();
        for iy in 0..n {
            for ix in 0..n {
                let dx = ix as f64 - c;
                let dy = iy as f64 - c;
                let r = (dx * dx + dy * dy).sqrt() / (c + 0.5);
                if r <= 1.0 {
                    out.push((ix, iy, r));
                }
            }
        }
        out
    }
}

impl WaferSample {
    /// Number of working dies.
    pub fn good_dies(&self) -> usize {
        self.dies.iter().filter(|d| matches!(d, Some(true))).count()
    }

    /// Number of dies on the wafer.
    pub fn total_dies(&self) -> usize {
        self.dies.iter().filter(|d| d.is_some()).count()
    }

    /// Working-die fraction.
    pub fn yield_fraction(&self) -> f64 {
        self.good_dies() as f64 / self.total_dies().max(1) as f64
    }
}

impl std::fmt::Display for WaferSample {
    /// Renders the classic wafer map: `#` working die, `·` failed die,
    /// blank outside the wafer.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let n = self.dies_across;
        for iy in 0..n {
            for ix in 0..n {
                let c = match self.dies[iy * n + ix] {
                    Some(true) => '#',
                    Some(false) => '·',
                    None => ' ',
                };
                write!(f, "{c} ")?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_runtime::Xoshiro256pp;

    #[test]
    fn centre_outyields_edge() {
        let w = WaferModel::shulaker_run();
        assert!(w.die_yield_at(0.0) > w.die_yield_at(1.0));
        assert!(w.purity_at(0.0) > w.purity_at(1.0));
        assert!(w.die_yield_at(0.0) > 0.9, "five-nines centre works");
        assert!(w.die_yield_at(1.0) < 0.1, "99 % edge fails at 178 FETs");
    }

    #[test]
    fn several_computers_per_wafer() {
        // The §V claim, quantified.
        let w = WaferModel::shulaker_run();
        let expected = w.expected_good_dies();
        assert!(
            expected > 5.0,
            "several working computers expected: {expected:.1} of {}",
            w.die_count()
        );
        let sample = w.sample(&mut Xoshiro256pp::seed_from_u64(7));
        assert!(sample.good_dies() > 3, "sampled {}", sample.good_dies());
    }

    #[test]
    fn sample_tracks_expectation() {
        let w = WaferModel::shulaker_run();
        let mut total = 0usize;
        let mut rng = Xoshiro256pp::seed_from_u64(11);
        let runs = 200;
        for _ in 0..runs {
            total += w.sample(&mut rng).good_dies();
        }
        let mean = total as f64 / runs as f64;
        let expected = w.expected_good_dies();
        assert!(
            (mean - expected).abs() < 0.15 * expected,
            "MC {mean:.1} vs analytic {expected:.1}"
        );
    }

    #[test]
    fn device_yield_formula_limits() {
        let w = WaferModel::shulaker_run();
        assert!((w.device_yield(1.0) - 1.0).abs() < 1e-12);
        assert!(
            w.device_yield(0.0) < 0.12,
            "some single-tube survivors only"
        );
        assert!(w.device_yield(0.999) > w.device_yield(0.99));
    }

    #[test]
    fn map_renders_a_circle() {
        let w = WaferModel::shulaker_run();
        let s = w.sample(&mut Xoshiro256pp::seed_from_u64(3));
        let art = s.to_string();
        assert_eq!(art.lines().count(), 15);
        assert!(art.contains('#'));
        // Corners are outside the wafer.
        assert!(art.lines().next().expect("row").starts_with(' '));
        assert_eq!(s.total_dies(), w.die_count());
    }

    #[test]
    fn validation() {
        assert!(WaferModel::new(2, 0.999, 0.99, 10, 2.0).is_err());
        assert!(
            WaferModel::new(9, 0.9, 0.99, 10, 2.0).is_err(),
            "edge > centre"
        );
        assert!(WaferModel::new(9, 1.5, 0.9, 10, 2.0).is_err());
        assert!(WaferModel::new(9, 0.999, 0.99, 0, 2.0).is_err());
        assert!(WaferModel::new(9, 0.999, 0.99, 10, 0.0).is_err());
    }
}

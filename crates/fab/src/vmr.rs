//! VMR — electrical removal of metallic CNTs.
//!
//! The Shulaker computer (paper §V, \[20\]) was "imperfection-immune"
//! partly because metallic tubes were *burned off electrically*: with
//! all gates turned off, a high source-drain bias drives current only
//! through the metallic tubes, which self-heat and break down, while
//! semiconducting tubes (turned off) survive. This module models that
//! step as a per-tube stochastic process and quantifies how much device
//! yield it buys back from imperfect ink purity.

use carbon_runtime::Rng;

use crate::placement::SelfAssembly;

/// Parameters of a VMR (metallic-removal) step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmrProcess {
    /// Probability a metallic tube is destroyed by the breakdown pulse.
    removal_efficiency: f64,
    /// Probability a semiconducting tube is collaterally destroyed.
    collateral_damage: f64,
}

/// Error building a [`VmrProcess`] from invalid probabilities.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildVmrError(String);

impl std::fmt::Display for BuildVmrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid VMR process: {}", self.0)
    }
}

impl std::error::Error for BuildVmrError {}

/// Before/after statistics of a VMR run over an array of device sites.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VmrOutcome {
    /// Fraction of sites that were metallic-shorted before VMR.
    pub shorts_before: f64,
    /// Fraction still shorted after VMR.
    pub shorts_after: f64,
    /// Fraction of functional devices before VMR.
    pub functional_before: f64,
    /// Fraction functional after VMR (shorts recovered, minus
    /// collateral losses).
    pub functional_after: f64,
}

impl VmrProcess {
    /// Creates a process.
    ///
    /// # Errors
    ///
    /// Returns [`BuildVmrError`] unless both probabilities are in
    /// `[0, 1]`.
    pub fn new(removal_efficiency: f64, collateral_damage: f64) -> Result<Self, BuildVmrError> {
        for (name, p) in [
            ("removal efficiency", removal_efficiency),
            ("collateral damage", collateral_damage),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(BuildVmrError(format!(
                    "{name} must be a probability, got {p}"
                )));
            }
        }
        Ok(Self {
            removal_efficiency,
            collateral_damage,
        })
    }

    /// The Shulaker-class process: 99.99 % metallic removal with ~5 %
    /// collateral semiconductor loss.
    pub fn shulaker() -> Self {
        Self::new(0.9999, 0.05).expect("preset is valid")
    }

    /// Simulates an array of `n` sites: tubes are placed by `assembly`,
    /// each independently metallic with probability `1 − purity`; then
    /// the VMR pulse is applied to every shorted device.
    ///
    /// # Panics
    ///
    /// Panics if `purity` is outside `[0, 1]` or `n` is zero.
    pub fn simulate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        assembly: &SelfAssembly,
        purity: f64,
        n: usize,
    ) -> VmrOutcome {
        assert!((0.0..=1.0).contains(&purity), "purity must be a fraction");
        assert!(n > 0, "need at least one site");
        let mut shorts_before = 0usize;
        let mut shorts_after = 0usize;
        let mut functional_before = 0usize;
        let mut functional_after = 0usize;
        for _ in 0..n {
            let tubes = assembly.sample_site(rng);
            if tubes == 0 {
                continue;
            }
            let metallic: Vec<bool> = (0..tubes).map(|_| rng.next_f64() > purity).collect();
            let m_before = metallic.iter().filter(|&&m| m).count();
            let s_before = tubes - m_before;
            if m_before > 0 {
                // Only shorted devices receive the breakdown pulse.
                shorts_before += 1;
                let m_after = (0..m_before)
                    .filter(|_| rng.next_f64() > self.removal_efficiency)
                    .count();
                let s_after = (0..s_before)
                    .filter(|_| rng.next_f64() > self.collateral_damage)
                    .count();
                if m_after > 0 {
                    shorts_after += 1;
                } else if s_after > 0 {
                    functional_after += 1;
                }
            } else {
                functional_before += 1;
            }
        }
        // Un-pulsed functional devices stay functional.
        functional_after += functional_before;
        let n = n as f64;
        VmrOutcome {
            shorts_before: shorts_before as f64 / n,
            shorts_after: shorts_after as f64 / n,
            functional_before: functional_before as f64 / n,
            functional_after: functional_after as f64 / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_runtime::Xoshiro256pp;

    fn outcome(purity: f64, seed: u64) -> VmrOutcome {
        VmrProcess::shulaker().simulate(
            &mut Xoshiro256pp::seed_from_u64(seed),
            &SelfAssembly::park_high_density(),
            purity,
            20_000,
        )
    }

    #[test]
    fn vmr_recovers_yield_from_dirty_ink() {
        // 99 % ink: ~2.3 % of occupied sites shorted; VMR recovers most.
        let o = outcome(0.99, 1);
        assert!(o.shorts_before > 0.01, "shorts before {}", o.shorts_before);
        assert!(
            o.shorts_after < o.shorts_before / 50.0,
            "shorts after {}",
            o.shorts_after
        );
        assert!(o.functional_after > o.functional_before);
    }

    #[test]
    fn vmr_even_rescues_as_grown_material() {
        // The Shulaker point: with VMR, even 2/3-pure as-grown tubes can
        // build working (if slower) circuits.
        let o = outcome(0.67, 2);
        assert!(
            o.shorts_before > 0.4,
            "most sites shorted: {}",
            o.shorts_before
        );
        assert!(o.shorts_after < 0.01, "after VMR: {}", o.shorts_after);
        assert!(
            o.functional_after > 0.55,
            "functional after {}",
            o.functional_after
        );
    }

    #[test]
    fn collateral_damage_costs_devices() {
        let gentle = VmrProcess::new(0.9999, 0.0).unwrap();
        let harsh = VmrProcess::new(0.9999, 0.5).unwrap();
        let asm = SelfAssembly::park_high_density();
        let g = gentle.simulate(&mut Xoshiro256pp::seed_from_u64(3), &asm, 0.8, 20_000);
        let h = harsh.simulate(&mut Xoshiro256pp::seed_from_u64(3), &asm, 0.8, 20_000);
        assert!(g.functional_after > h.functional_after);
    }

    #[test]
    fn perfect_ink_is_untouched() {
        let o = outcome(1.0, 4);
        assert_eq!(o.shorts_before, 0.0);
        assert_eq!(o.shorts_after, 0.0);
        assert!((o.functional_after - o.functional_before).abs() < 1e-12);
    }

    #[test]
    fn zero_efficiency_changes_nothing_for_shorts() {
        let off = VmrProcess::new(0.0, 0.0).unwrap();
        let o = off.simulate(
            &mut Xoshiro256pp::seed_from_u64(5),
            &SelfAssembly::park_high_density(),
            0.9,
            20_000,
        );
        assert!((o.shorts_after - o.shorts_before).abs() < 1e-12);
    }

    #[test]
    fn validation() {
        assert!(VmrProcess::new(1.5, 0.0).is_err());
        assert!(VmrProcess::new(0.9, -0.1).is_err());
    }
}

//! From device statistics to circuit yield.
//!
//! The Shulaker CNT computer (§V, \[20\]) worked because its design was
//! *imperfection-immune*: metallic tubes were removed electrically and
//! the logic was arranged so that remaining defects could be tolerated.
//! This module provides the arithmetic that turns a per-device yield
//! into gate and circuit yields, with and without redundancy — the
//! numbers that decide whether "several simple one-bit computers on one
//! wafer with high yield" is possible.

/// Circuit-level yield calculator over a per-device functional
/// probability.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CircuitYield {
    device_yield: f64,
}

/// Error building a [`CircuitYield`] from an invalid probability.
#[derive(Debug, Clone, PartialEq)]
pub struct BuildYieldError(f64);

impl std::fmt::Display for BuildYieldError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "device yield must be a probability, got {}", self.0)
    }
}

impl std::error::Error for BuildYieldError {}

impl CircuitYield {
    /// Creates a calculator from a per-device functional probability.
    ///
    /// # Errors
    ///
    /// Returns [`BuildYieldError`] if `device_yield` is outside `[0, 1]`.
    pub fn new(device_yield: f64) -> Result<Self, BuildYieldError> {
        if !(0.0..=1.0).contains(&device_yield) {
            return Err(BuildYieldError(device_yield));
        }
        Ok(Self { device_yield })
    }

    /// Per-device yield.
    pub fn device_yield(&self) -> f64 {
        self.device_yield
    }

    /// Yield of a block requiring all `n` devices functional: `y^n`.
    pub fn all_of(&self, n: u32) -> f64 {
        self.device_yield.powi(n as i32)
    }

    /// Yield of a block with `m`-way redundancy: the block works if any
    /// of `m` identical copies works.
    pub fn redundant(&self, n_per_copy: u32, m: u32) -> f64 {
        let p_copy = self.all_of(n_per_copy);
        1.0 - (1.0 - p_copy).powi(m as i32)
    }

    /// Expected number of working circuits among `count` instances each
    /// needing `n` devices.
    pub fn expected_working(&self, n: u32, count: u32) -> f64 {
        self.all_of(n) * count as f64
    }

    /// The number of devices in the Shulaker one-bit CNT computer.
    pub const SHULAKER_COMPUTER_CNFETS: u32 = 178;

    /// Device yield required for a circuit of `n` devices to reach a
    /// target circuit yield: `y = Y^(1/n)`.
    ///
    /// # Panics
    ///
    /// Panics unless `target` is in `(0, 1]` and `n > 0`.
    pub fn required_device_yield(n: u32, target: f64) -> f64 {
        assert!(n > 0, "circuit must contain devices");
        assert!(target > 0.0 && target <= 1.0, "target must be in (0, 1]");
        target.powf(1.0 / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_of_composes_multiplicatively() {
        let y = CircuitYield::new(0.99).unwrap();
        assert!((y.all_of(2) - 0.9801).abs() < 1e-12);
        assert!((y.all_of(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn shulaker_computer_needs_serious_device_yield() {
        // 178 CNFETs at 99 % device yield → ~17 % circuit yield; at
        // 99.9 % → ~84 %. The paper's point: integration statistics make
        // or break the computer.
        let poor = CircuitYield::new(0.99).unwrap();
        let good = CircuitYield::new(0.999).unwrap();
        let n = CircuitYield::SHULAKER_COMPUTER_CNFETS;
        assert!((poor.all_of(n) - 0.167).abs() < 0.01, "{}", poor.all_of(n));
        assert!((good.all_of(n) - 0.837).abs() < 0.01, "{}", good.all_of(n));
    }

    #[test]
    fn required_yield_inverts_all_of() {
        let n = CircuitYield::SHULAKER_COMPUTER_CNFETS;
        let need = CircuitYield::required_device_yield(n, 0.5);
        let y = CircuitYield::new(need).unwrap();
        assert!((y.all_of(n) - 0.5).abs() < 1e-9);
        assert!(need > 0.996, "sub-half-percent device loss budget: {need}");
    }

    #[test]
    fn redundancy_recovers_yield() {
        let y = CircuitYield::new(0.98).unwrap();
        let single = y.all_of(50);
        let tmr = y.redundant(50, 3);
        assert!(tmr > single);
        // 0.98^50 ≈ 0.364 alone; three copies lift it to ≈ 0.74.
        assert!(tmr > 0.7, "3-way redundancy on a 50-device block: {tmr}");
    }

    #[test]
    fn wafer_scale_expectation() {
        // "Several simple one-bit computers on one wafer with high
        // yield": 1000 instances at 99.9 % device yield.
        let y = CircuitYield::new(0.999).unwrap();
        let working = y.expected_working(CircuitYield::SHULAKER_COMPUTER_CNFETS, 1000);
        assert!(working > 800.0, "expected working computers: {working}");
    }

    #[test]
    fn validation_and_edges() {
        assert!(CircuitYield::new(-0.1).is_err());
        assert!(CircuitYield::new(1.1).is_err());
        assert_eq!(CircuitYield::new(1.0).unwrap().all_of(1000), 1.0);
        assert_eq!(CircuitYield::new(0.0).unwrap().all_of(1), 0.0);
    }

    #[test]
    #[should_panic(expected = "target must be in")]
    fn required_yield_rejects_zero_target() {
        let _ = CircuitYield::required_device_yield(10, 0.0);
    }
}

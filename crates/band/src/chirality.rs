//! Single-walled carbon-nanotube chirality.
//!
//! A SWCNT is indexed by the chiral vector `(n, m)` on the graphene
//! lattice. Everything the paper cares about follows from it:
//!
//! * diameter `d = a·√(n² + nm + m²) / π`,
//! * metallicity: metallic iff `(n − m) mod 3 = 0` (the reason Section V
//!   needs sorting — roughly 1/3 of random chiralities short the FET),
//! * for semiconducting tubes the zone-folding bandgap
//!   `E_g = 2·a_cc·γ₀ / d ≈ 0.85 eV·nm / d`.

use carbon_units::consts::{A_CC, A_LATTICE, GAMMA_0, Q_E};
use carbon_units::{Energy, Length};

/// Electronic character of a nanotube chirality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Metallicity {
    /// `(n − m) mod 3 = 0`: no useful bandgap; a parasitic short in a FET.
    Metallic,
    /// Semiconducting with a diameter-dependent bandgap.
    Semiconducting,
}

/// A chiral index `(n, m)` with `n ≥ m ≥ 0`, `n > 0`.
///
/// # Examples
///
/// ```
/// use carbon_band::chirality::{Chirality, Metallicity};
///
/// let c = Chirality::new(13, 0).expect("valid index");
/// assert_eq!(c.metallicity(), Metallicity::Semiconducting);
/// assert!((c.diameter().nanometers() - 1.018).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Chirality {
    n: u32,
    m: u32,
}

/// Error returned by [`Chirality::new`] for indices outside the canonical
/// `n ≥ m ≥ 0`, `n > 0` wedge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidChiralityError {
    n: u32,
    m: u32,
}

impl std::fmt::Display for InvalidChiralityError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invalid chirality ({}, {}): requires n ≥ m ≥ 0 and n > 0",
            self.n, self.m
        )
    }
}

impl std::error::Error for InvalidChiralityError {}

impl Chirality {
    /// Creates a chirality index.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidChiralityError`] unless `n ≥ m` and `n > 0`
    /// (indices outside that wedge name the same physical tube and are
    /// rejected rather than silently canonicalized).
    pub fn new(n: u32, m: u32) -> Result<Self, InvalidChiralityError> {
        if n == 0 || m > n {
            Err(InvalidChiralityError { n, m })
        } else {
            Ok(Self { n, m })
        }
    }

    /// The `n` index.
    #[inline]
    pub fn n(self) -> u32 {
        self.n
    }

    /// The `m` index.
    #[inline]
    pub fn m(self) -> u32 {
        self.m
    }

    /// Tube diameter `d = a·√(n² + nm + m²)/π`.
    pub fn diameter(self) -> Length {
        let (n, m) = (self.n as f64, self.m as f64);
        Length::from_meters(A_LATTICE * (n * n + n * m + m * m).sqrt() / std::f64::consts::PI)
    }

    /// Chiral angle in degrees: 0° for zigzag `(n, 0)`, 30° for armchair
    /// `(n, n)`.
    pub fn chiral_angle_degrees(self) -> f64 {
        let (n, m) = (self.n as f64, self.m as f64);
        let theta = (3.0_f64.sqrt() * m / (2.0 * n + m)).atan();
        theta.to_degrees()
    }

    /// Electronic character from the zone-folding rule.
    pub fn metallicity(self) -> Metallicity {
        if (self.n as i64 - self.m as i64).rem_euclid(3) == 0 {
            Metallicity::Metallic
        } else {
            Metallicity::Semiconducting
        }
    }

    /// `true` for semiconducting chiralities.
    #[inline]
    pub fn is_semiconducting(self) -> bool {
        self.metallicity() == Metallicity::Semiconducting
    }

    /// Zone-folding bandgap.
    ///
    /// Semiconducting tubes: `E_g = 2·a_cc·γ₀ / d`. Metallic tubes return
    /// zero (curvature-induced mini-gaps of a few meV are ignored, as in
    /// the paper's treatment where metallic tubes are simply shorts).
    pub fn bandgap(self) -> Energy {
        match self.metallicity() {
            Metallicity::Metallic => Energy::ZERO,
            Metallicity::Semiconducting => {
                let d = self.diameter().meters();
                Energy::from_joules(2.0 * A_CC * GAMMA_0 / d)
            }
        }
    }

    /// Enumerates all chiralities with diameter in `[d_min, d_max]`
    /// (meters), the ensemble a synthesis recipe produces.
    pub fn in_diameter_range(d_min: Length, d_max: Length) -> Vec<Self> {
        let mut out = Vec::new();
        // n is bounded because d grows with n: d(n, 0) = a·n/π.
        let n_max = (d_max.meters() * std::f64::consts::PI / A_LATTICE).ceil() as u32 + 1;
        for n in 1..=n_max {
            for m in 0..=n {
                let c = Self { n, m };
                let d = c.diameter();
                if d >= d_min && d <= d_max {
                    out.push(c);
                }
            }
        }
        out
    }

    /// The semiconducting chirality whose bandgap is closest to
    /// `target_ev` (electron-volts), searching diameters 0.5–4 nm.
    ///
    /// Returns `None` only for targets far outside the physical range
    /// (below ~0.2 eV or above ~1.7 eV).
    pub fn with_bandgap_near(target_ev: f64) -> Option<Self> {
        let candidates =
            Self::in_diameter_range(Length::from_nanometers(0.5), Length::from_nanometers(4.0));
        candidates
            .into_iter()
            .filter(|c| c.is_semiconducting())
            .min_by(|a, b| {
                let da = (a.bandgap().electron_volts() - target_ev).abs();
                let db = (b.bandgap().electron_volts() - target_ev).abs();
                da.partial_cmp(&db).expect("bandgaps are finite")
            })
            .filter(|c| (c.bandgap().electron_volts() - target_ev).abs() < 0.15)
    }
}

impl std::fmt::Display for Chirality {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.n, self.m)
    }
}

/// The `E_g·d` product of the zone-folding model in eV·nm (≈ 0.85).
///
/// Exposed so calibration code and tests can reference the model constant
/// instead of re-deriving it.
pub fn bandgap_diameter_product_ev_nm() -> f64 {
    2.0 * A_CC * GAMMA_0 / Q_E * 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_invalid_wedge() {
        assert!(Chirality::new(0, 0).is_err());
        assert!(Chirality::new(5, 6).is_err());
        assert!(Chirality::new(6, 6).is_ok());
        let err = Chirality::new(2, 5).unwrap_err();
        assert!(err.to_string().contains("invalid chirality"));
    }

    #[test]
    fn armchair_is_always_metallic() {
        for n in 1..20 {
            let c = Chirality::new(n, n).unwrap();
            assert_eq!(c.metallicity(), Metallicity::Metallic, "({n},{n})");
        }
    }

    #[test]
    fn zigzag_metallicity_follows_mod3() {
        for n in 1..30 {
            let c = Chirality::new(n, 0).unwrap();
            let expect = if n % 3 == 0 {
                Metallicity::Metallic
            } else {
                Metallicity::Semiconducting
            };
            assert_eq!(c.metallicity(), expect, "({n},0)");
        }
    }

    #[test]
    fn known_diameters() {
        // (10,10) armchair: d ≈ 1.356 nm; (13,0): d ≈ 1.018 nm; (17,0): 1.33 nm.
        assert!((Chirality::new(10, 10).unwrap().diameter().nanometers() - 1.356).abs() < 0.01);
        assert!((Chirality::new(13, 0).unwrap().diameter().nanometers() - 1.018).abs() < 0.01);
        assert!((Chirality::new(17, 0).unwrap().diameter().nanometers() - 1.331).abs() < 0.01);
    }

    #[test]
    fn chiral_angle_limits() {
        assert!((Chirality::new(10, 0).unwrap().chiral_angle_degrees() - 0.0).abs() < 1e-12);
        assert!((Chirality::new(10, 10).unwrap().chiral_angle_degrees() - 30.0).abs() < 1e-9);
        let a = Chirality::new(10, 5).unwrap().chiral_angle_degrees();
        assert!(a > 0.0 && a < 30.0);
    }

    #[test]
    fn bandgap_diameter_product_is_about_085() {
        let p = bandgap_diameter_product_ev_nm();
        assert!((0.8..0.9).contains(&p), "Eg·d = {p} eV·nm");
        // A ~1 nm tube has Eg ≈ 0.84 eV, matching the paper's Franklin
        // device (~1 nm diameter channel).
        let c = Chirality::new(13, 0).unwrap();
        assert!((c.bandgap().electron_volts() - p / c.diameter().nanometers()).abs() < 1e-12);
    }

    #[test]
    fn metallic_bandgap_is_zero() {
        assert_eq!(Chirality::new(9, 0).unwrap().bandgap(), Energy::ZERO);
        assert_eq!(Chirality::new(10, 10).unwrap().bandgap(), Energy::ZERO);
    }

    #[test]
    fn fig1_bandgap_target_is_reachable() {
        // The paper's Fig. 1 compares devices with Eg = 0.56 eV, i.e. a
        // ~1.5 nm tube.
        let c = Chirality::with_bandgap_near(0.56).unwrap();
        assert!(c.is_semiconducting());
        assert!((c.bandgap().electron_volts() - 0.56).abs() < 0.06);
        assert!((c.diameter().nanometers() - 1.5).abs() < 0.25);
    }

    #[test]
    fn unphysical_bandgap_targets_return_none() {
        assert!(Chirality::with_bandgap_near(0.01).is_none());
        assert!(Chirality::with_bandgap_near(5.0).is_none());
    }

    #[test]
    fn diameter_range_enumeration_is_complete_and_bounded() {
        let lo = Length::from_nanometers(1.0);
        let hi = Length::from_nanometers(1.5);
        let set = Chirality::in_diameter_range(lo, hi);
        assert!(!set.is_empty());
        for c in &set {
            let d = c.diameter();
            assert!(d >= lo && d <= hi, "{c} d = {} nm", d.nanometers());
        }
        // Roughly one third of chiralities are metallic.
        let metallic = set.iter().filter(|c| !c.is_semiconducting()).count();
        let frac = metallic as f64 / set.len() as f64;
        assert!((0.2..0.45).contains(&frac), "metallic fraction {frac}");
    }

    #[test]
    fn display_format() {
        assert_eq!(Chirality::new(13, 6).unwrap().to_string(), "(13, 6)");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use carbon_runtime::prop::prelude::*;

    proptest! {
        #[test]
        fn bandgap_scales_inversely_with_diameter(n in 4u32..40, m in 0u32..40) {
            prop_assume!(m <= n);
            let c = Chirality::new(n, m).unwrap();
            if c.is_semiconducting() {
                let product =
                    c.bandgap().electron_volts() * c.diameter().nanometers();
                prop_assert!((product - bandgap_diameter_product_ev_nm()).abs() < 1e-9);
            }
        }

        #[test]
        fn metallicity_rule_is_mod3(n in 1u32..60, m in 0u32..60) {
            prop_assume!(m <= n);
            let c = Chirality::new(n, m).unwrap();
            let metallic = (n as i64 - m as i64) % 3 == 0;
            prop_assert_eq!(c.metallicity() == Metallicity::Metallic, metallic);
        }

        #[test]
        fn diameter_is_positive_and_monotone_in_n(n in 1u32..50) {
            let c1 = Chirality::new(n, 0).unwrap();
            let c2 = Chirality::new(n + 1, 0).unwrap();
            prop_assert!(c1.diameter().meters() > 0.0);
            prop_assert!(c2.diameter() > c1.diameter());
        }

        #[test]
        fn chiral_angle_within_wedge(n in 1u32..40, m in 0u32..40) {
            prop_assume!(m <= n);
            let a = Chirality::new(n, m).unwrap().chiral_angle_degrees();
            prop_assert!((0.0..=30.0 + 1e-9).contains(&a));
        }
    }
}

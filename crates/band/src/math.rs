//! Numerical kernel shared by the workspace: stable exponential helpers,
//! Fermi-Dirac functions, adaptive Simpson quadrature, and Brent's root
//! finder.
//!
//! The compact device models and the electrostatics closures all reduce to
//! one-dimensional integrals and one-dimensional root finding; this module
//! is the single implementation they share. No external linear-algebra or
//! special-function crates are used (see DESIGN.md §2).

/// Numerically stable `ln(1 + e^x)`.
///
/// For large positive `x` this is `x + e^(−x)`; for large negative `x` it
/// is `e^x`. The naive form overflows for `x ≳ 700`.
///
/// # Examples
///
/// ```
/// use carbon_band::math::log1pexp;
///
/// assert!((log1pexp(0.0) - std::f64::consts::LN_2).abs() < 1e-15);
/// assert_eq!(log1pexp(1000.0), 1000.0);
/// assert!(log1pexp(-1000.0) >= 0.0);
/// ```
#[inline]
pub fn log1pexp(x: f64) -> f64 {
    if x > 35.0 {
        // e^(−x) < 7e-16: below f64 resolution relative to x.
        x
    } else if x < -35.0 {
        x.exp()
    } else {
        x.exp().ln_1p()
    }
}

/// The Fermi-Dirac occupation `f(x) = 1 / (1 + e^x)` with
/// `x = (E − µ)/kT`, evaluated without overflow for any finite `x`.
///
/// # Examples
///
/// ```
/// use carbon_band::math::fermi;
///
/// assert_eq!(fermi(0.0), 0.5);
/// assert!(fermi(40.0) < 1e-17);
/// assert!(fermi(-40.0) >= 1.0 - 1e-16);
/// ```
#[inline]
pub fn fermi(x: f64) -> f64 {
    if x > 35.0 {
        (-x).exp()
    } else if x < -35.0 {
        1.0 - x.exp()
    } else {
        1.0 / (1.0 + x.exp())
    }
}

/// Derivative of the Fermi function, `df/dx = −f·(1−f)` (returned as the
/// positive quantity `f·(1−f)`, the thermal broadening kernel).
#[inline]
pub fn fermi_kernel(x: f64) -> f64 {
    let f = fermi(x);
    f * (1.0 - f)
}

/// Adaptive Simpson quadrature of `f` over `[a, b]`.
///
/// Recursion depth is capped at 18 (≤ 2¹⁸ panels) and the absolute
/// tolerance `tol` is distributed over subintervals with a floor at the
/// f64 roundoff level of the running estimate, which keeps the smooth
/// Fermi-broadened integrands in this workspace cheap while preventing
/// the exponential blow-up a sub-roundoff tolerance would otherwise
/// cause.
///
/// # Panics
///
/// Panics if `tol` is not positive or `a`/`b` are not finite.
pub fn integrate<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> f64 {
    assert!(tol > 0.0, "tolerance must be positive");
    assert!(
        a.is_finite() && b.is_finite(),
        "integration bounds must be finite"
    );
    if a == b {
        return 0.0;
    }
    let c = 0.5 * (a + b);
    let fa = f(a);
    let fb = f(b);
    let fc = f(c);
    let whole = simpson(a, b, fa, fc, fb);
    // Tolerances below the roundoff floor of the estimate are
    // unreachable; clamp so the recursion terminates.
    let floor = whole.abs() * 1e-14;
    adaptive(&f, a, b, fa, fb, fc, whole, tol.max(floor), 18)
}

#[inline]
fn simpson(a: f64, b: f64, fa: f64, fc: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fc + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fb: f64,
    fc: f64,
    whole: f64,
    tol: f64,
    depth: u32,
) -> f64 {
    let c = 0.5 * (a + b);
    let d = 0.5 * (a + c);
    let e = 0.5 * (c + b);
    let fd = f(d);
    let fe = f(e);
    let left = simpson(a, c, fa, fd, fc);
    let right = simpson(c, b, fc, fe, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        // Keep a roundoff floor on the per-half tolerance so deep
        // recursion cannot chase noise.
        let half_tol = (0.5 * tol).max((left.abs() + right.abs()) * 1e-15);
        adaptive(f, a, c, fa, fc, fd, left, half_tol, depth - 1)
            + adaptive(f, c, b, fc, fb, fe, right, half_tol, depth - 1)
    }
}

/// Error returned by [`brent`] when the bracket is invalid or the iteration
/// budget is exhausted.
#[derive(Debug, Clone, PartialEq)]
pub enum FindRootError {
    /// `f(a)` and `f(b)` have the same sign, so `[a, b]` brackets no root.
    NoBracket {
        /// Function value at the lower bound.
        fa: f64,
        /// Function value at the upper bound.
        fb: f64,
    },
    /// The iteration limit was reached before convergence.
    IterationLimit {
        /// Best estimate of the root at abort.
        best: f64,
    },
}

impl std::fmt::Display for FindRootError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NoBracket { fa, fb } => {
                write!(
                    f,
                    "interval does not bracket a root (f(a) = {fa:.3e}, f(b) = {fb:.3e})"
                )
            }
            Self::IterationLimit { best } => {
                write!(f, "root finder hit the iteration limit near {best:.6e}")
            }
        }
    }
}

impl std::error::Error for FindRootError {}

/// Brent's method: finds `x` in `[a, b]` with `f(x) = 0` to tolerance
/// `tol` (on `x`), given that `f(a)` and `f(b)` have opposite signs.
///
/// # Errors
///
/// Returns [`FindRootError::NoBracket`] if the interval does not bracket a
/// sign change and [`FindRootError::IterationLimit`] if 200 iterations do
/// not converge.
// The acceptance test below is the textbook Brent formulation; the
// "simplified" boolean clippy suggests loses the 1:1 correspondence with
// the published algorithm.
#[allow(clippy::nonminimal_bool)]
pub fn brent<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, tol: f64) -> Result<f64, FindRootError> {
    let (mut a, mut b) = (a, b);
    let mut fa = f(a);
    let mut fb = f(b);
    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa.signum() == fb.signum() {
        return Err(FindRootError::NoBracket { fa, fb });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }
    let mut c = a;
    let mut fc = fa;
    let mut mflag = true;
    let mut d = a;
    for _ in 0..200 {
        if fb.abs() < 1e-300 || (b - a).abs() < tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // Inverse quadratic interpolation.
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // Secant.
            b - fb * (b - a) / (fb - fa)
        };
        let lo = (3.0 * a + b) / 4.0;
        let cond = !((lo.min(b) < s && s < lo.max(b))
            && !(mflag && (s - b).abs() >= (b - c).abs() / 2.0)
            && !(!mflag && (s - b).abs() >= (c - d).abs() / 2.0)
            && !(mflag && (b - c).abs() < tol)
            && !(!mflag && (c - d).abs() < tol));
        if cond {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }
        let fs = f(s);
        d = c;
        c = b;
        fc = fb;
        if fa.signum() != fs.signum() {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Err(FindRootError::IterationLimit { best: b })
}

/// Linearly spaced grid of `n ≥ 2` points from `a` to `b` inclusive.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn linspace(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(n >= 2, "linspace needs at least two points");
    let step = (b - a) / (n - 1) as f64;
    (0..n).map(|i| a + step * i as f64).collect()
}

/// Logarithmically spaced grid of `n ≥ 2` points from `a` to `b` inclusive.
///
/// # Panics
///
/// Panics if `n < 2` or either bound is not strictly positive.
pub fn logspace(a: f64, b: f64, n: usize) -> Vec<f64> {
    assert!(a > 0.0 && b > 0.0, "logspace bounds must be positive");
    linspace(a.ln(), b.ln(), n)
        .into_iter()
        .map(f64::exp)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log1pexp_matches_naive_in_safe_range() {
        for x in [-30.0_f64, -1.0, 0.0, 1.0, 30.0] {
            let naive = (1.0_f64 + x.exp()).ln();
            assert!((log1pexp(x) - naive).abs() < 1e-12, "x = {x}");
        }
    }

    #[test]
    fn log1pexp_extremes_do_not_overflow() {
        assert_eq!(log1pexp(5000.0), 5000.0);
        assert_eq!(log1pexp(-5000.0), 0.0);
    }

    #[test]
    fn fermi_is_complementary() {
        for x in [-20.0, -3.0, 0.0, 0.7, 5.0, 20.0] {
            assert!((fermi(x) + fermi(-x) - 1.0).abs() < 1e-14, "x = {x}");
        }
    }

    #[test]
    fn fermi_kernel_peaks_at_zero() {
        assert!((fermi_kernel(0.0) - 0.25).abs() < 1e-15);
        assert!(fermi_kernel(1.0) < 0.25);
        assert!(fermi_kernel(-1.0) < 0.25);
    }

    #[test]
    fn integrates_polynomial_exactly() {
        // Simpson is exact for cubics.
        let v = integrate(|x| x * x * x - 2.0 * x + 1.0, -1.0, 3.0, 1e-12);
        let exact = |x: f64| x.powi(4) / 4.0 - x * x + x;
        assert!((v - (exact(3.0) - exact(-1.0))).abs() < 1e-9);
    }

    #[test]
    fn integrates_gaussian() {
        let v = integrate(|x| (-x * x).exp(), -6.0, 6.0, 1e-12);
        assert!((v - std::f64::consts::PI.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn integrates_fermi_tail_closed_form() {
        // ∫_0^∞ f((e-mu)/kT) de = kT·ln(1+exp(mu/kT)).
        let kt = 0.02585;
        let mu = 0.1;
        let v = integrate(|e| fermi((e - mu) / kt), 0.0, 2.0, 1e-12);
        assert!((v - kt * log1pexp(mu / kt)).abs() < 1e-8);
    }

    #[test]
    fn zero_width_interval_is_zero() {
        assert_eq!(integrate(|x| x.exp(), 1.5, 1.5, 1e-9), 0.0);
    }

    #[test]
    fn brent_finds_simple_roots() {
        let r = brent(|x| x * x - 2.0, 0.0, 2.0, 1e-12).unwrap();
        assert!((r - std::f64::consts::SQRT_2).abs() < 1e-10);
        let r = brent(|x| x.cos() - x, 0.0, 1.0, 1e-12).unwrap();
        assert!((r - 0.739_085_133_2).abs() < 1e-8);
    }

    #[test]
    fn brent_rejects_bad_bracket() {
        assert!(matches!(
            brent(|x| x * x + 1.0, -1.0, 1.0, 1e-9),
            Err(FindRootError::NoBracket { .. })
        ));
    }

    #[test]
    fn brent_accepts_root_at_endpoint() {
        assert_eq!(brent(|x| x, 0.0, 1.0, 1e-9).unwrap(), 0.0);
    }

    #[test]
    fn grids() {
        let g = linspace(0.0, 1.0, 5);
        assert_eq!(g, vec![0.0, 0.25, 0.5, 0.75, 1.0]);
        let l = logspace(1.0, 100.0, 3);
        assert!((l[1] - 10.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn linspace_rejects_single_point() {
        let _ = linspace(0.0, 1.0, 1);
    }
}

//! Carbon-nanotube subband ladder.
//!
//! Zone folding of graphene onto a semiconducting tube gives van Hove
//! subband edges at `Δ₁ : Δ₂ : Δ₃ ≈ 1 : 2 : 4` in units of the half-gap
//! `E_g/2`, each doubly valley-degenerate (×2 spin → degeneracy 4). The
//! hyperbolic longitudinal dispersion uses the graphene Fermi velocity.
//! This is exactly the band model behind the compact CNT-FET simulations
//! the paper's Fig. 1 reproduces (Ouyang et al. 2006).

use carbon_units::consts::FERMI_VELOCITY;
use carbon_units::Energy;

use crate::chirality::Chirality;
use crate::dos::{Band1d, Subband};

/// Zone-folding van Hove ladder of a semiconducting CNT, in units of the
/// first edge: `Δ_p/Δ₁` for the first three semiconducting subbands.
const SUBBAND_RATIOS: [f64; 3] = [1.0, 2.0, 4.0];

/// Spin × valley degeneracy of each CNT subband.
const CNT_DEGENERACY: f64 = 4.0;

/// Band structure of a semiconducting single-walled carbon nanotube.
///
/// # Examples
///
/// ```
/// use carbon_band::{Band1d, CntBand};
/// use carbon_units::Energy;
///
/// let band = CntBand::from_bandgap(Energy::from_electron_volts(0.56))?;
/// assert_eq!(band.subbands().len(), 3);
/// assert!((band.bandgap().electron_volts() - 0.56).abs() < 1e-12);
/// # Ok::<(), carbon_band::cnt::MetallicTubeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CntBand {
    subbands: Vec<Subband>,
    chirality: Option<Chirality>,
}

/// Error returned when constructing a [`CntBand`] from a metallic tube or
/// a non-positive bandgap: a gapless tube has no FET band structure.
#[derive(Debug, Clone, PartialEq)]
pub struct MetallicTubeError {
    gap_ev: f64,
}

impl std::fmt::Display for MetallicTubeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot build a semiconducting band structure from a gapless tube (E_g = {} eV)",
            self.gap_ev
        )
    }
}

impl std::error::Error for MetallicTubeError {}

impl CntBand {
    /// Builds the subband ladder for a given transport bandgap.
    ///
    /// # Errors
    ///
    /// Returns [`MetallicTubeError`] if the gap is not positive.
    pub fn from_bandgap(gap: Energy) -> Result<Self, MetallicTubeError> {
        let gap_ev = gap.electron_volts();
        if gap_ev <= 0.0 || !gap_ev.is_finite() {
            return Err(MetallicTubeError { gap_ev });
        }
        let half = gap * 0.5;
        let subbands = SUBBAND_RATIOS
            .iter()
            .map(|&r| Subband::new(half * r, CNT_DEGENERACY))
            .collect();
        Ok(Self {
            subbands,
            chirality: None,
        })
    }

    /// Builds the ladder from a chirality index.
    ///
    /// # Errors
    ///
    /// Returns [`MetallicTubeError`] for metallic chiralities
    /// (`(n − m) mod 3 = 0`).
    pub fn from_chirality(c: Chirality) -> Result<Self, MetallicTubeError> {
        let mut band = Self::from_bandgap(c.bandgap())?;
        band.chirality = Some(c);
        Ok(band)
    }

    /// The chirality this band was built from, if any.
    pub fn chirality(&self) -> Option<Chirality> {
        self.chirality
    }
}

impl Band1d for CntBand {
    fn subbands(&self) -> &[Subband] {
        &self.subbands
    }

    fn velocity(&self) -> f64 {
        FERMI_VELOCITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_units::Temperature;

    #[test]
    fn ladder_has_zone_folding_ratios() {
        let b = CntBand::from_bandgap(Energy::from_electron_volts(0.56)).unwrap();
        let edges: Vec<f64> = b
            .subbands()
            .iter()
            .map(|s| s.edge.electron_volts())
            .collect();
        assert!((edges[0] - 0.28).abs() < 1e-12);
        assert!((edges[1] / edges[0] - 2.0).abs() < 1e-12);
        assert!((edges[2] / edges[0] - 4.0).abs() < 1e-12);
        assert!(b.subbands().iter().all(|s| s.degeneracy == 4.0));
    }

    #[test]
    fn rejects_gapless() {
        assert!(CntBand::from_bandgap(Energy::ZERO).is_err());
        assert!(CntBand::from_bandgap(Energy::from_electron_volts(-0.1)).is_err());
        let m = Chirality::new(9, 0).unwrap();
        let err = CntBand::from_chirality(m).unwrap_err();
        assert!(err.to_string().contains("gapless"));
    }

    #[test]
    fn from_chirality_keeps_index() {
        let c = Chirality::new(13, 0).unwrap();
        let b = CntBand::from_chirality(c).unwrap();
        assert_eq!(b.chirality(), Some(c));
        assert!((b.bandgap().electron_volts() - c.bandgap().electron_volts()).abs() < 1e-12);
    }

    #[test]
    fn second_subband_contributes_at_high_energy() {
        let b = CntBand::from_bandgap(Energy::from_electron_volts(0.56)).unwrap();
        let t = Temperature::room();
        // Current below the 2nd edge vs just above it grows faster than
        // the single-band closed form would predict.
        let mu_lo = Energy::from_electron_volts(0.3);
        let mu_hi = Energy::from_electron_volts(0.9);
        let i_lo = b.directed_current(mu_lo, t);
        let i_hi = b.directed_current(mu_hi, t);
        // Single-band estimate for mu_hi:
        let single = CntBand {
            subbands: vec![Subband::new(Energy::from_electron_volts(0.28), 4.0)],
            chirality: None,
        };
        let i_hi_single = single.directed_current(mu_hi, t);
        assert!(i_hi > i_hi_single, "second subband adds current");
        assert!(i_hi > i_lo);
    }

    #[test]
    fn velocity_is_graphene_fermi_velocity() {
        let b = CntBand::from_bandgap(Energy::from_electron_volts(0.8)).unwrap();
        assert!((b.velocity() - FERMI_VELOCITY).abs() < 1.0);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use carbon_runtime::prop::prelude::*;

    proptest! {
        #[test]
        fn ladder_is_sorted_and_positive(gap_mev in 100.0_f64..1500.0) {
            let b = CntBand::from_bandgap(Energy::from_electron_volts(gap_mev / 1e3)).unwrap();
            let edges: Vec<f64> =
                b.subbands().iter().map(|s| s.edge.joules()).collect();
            prop_assert!(edges.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(edges[0] > 0.0);
        }

        #[test]
        fn directed_current_monotone_in_mu(
            gap_mev in 200.0_f64..1200.0,
            mu1 in -0.5_f64..1.0,
            dmu in 0.001_f64..0.5,
        ) {
            let b = CntBand::from_bandgap(Energy::from_electron_volts(gap_mev / 1e3)).unwrap();
            let t = carbon_units::Temperature::room();
            let i1 = b.directed_current(Energy::from_electron_volts(mu1), t);
            let i2 = b.directed_current(Energy::from_electron_volts(mu1 + dmu), t);
            prop_assert!(i2 >= i1);
            prop_assert!(i1 >= 0.0);
        }
    }
}

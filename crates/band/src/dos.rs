//! One-dimensional subband ladders, density of states, carrier
//! statistics, and quantum capacitance.
//!
//! Both CNTs and GNRs are quasi-1-D conductors whose low-energy physics is
//! a set of hyperbolic subbands
//!
//! ```text
//! E_i(k) = ±√(Δ_i² + (ħ·v_F·k)²)
//! ```
//!
//! measured from the intrinsic (mid-gap) level, where `Δ_i` is the i-th
//! subband half-gap. The [`Band1d`] trait captures exactly that structure;
//! [`CntBand`](crate::CntBand) and [`GnrBand`](crate::GnrBand) implement
//! it, and the ballistic transport model in `carbon-devices` is written
//! against the trait so the paper's Fig. 1 "same band-gap, same model, CNT
//! vs GNR" comparison is a one-line swap.

use carbon_units::consts::{HBAR, PLANCK_H, Q_E};
use carbon_units::{Energy, Temperature};

use crate::math::{fermi, fermi_kernel, integrate, log1pexp};

/// One hyperbolic subband: conduction-band minimum `Δ` above mid-gap and
/// its total degeneracy (spin included).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Subband {
    /// Conduction-band edge measured from mid-gap (the subband half-gap).
    pub edge: Energy,
    /// Total degeneracy of the subband, spin included (4 for the first
    /// CNT subbands — spin × K/K′ valley; 2 for armchair GNR subbands).
    pub degeneracy: f64,
}

impl Subband {
    /// Creates a subband.
    ///
    /// # Panics
    ///
    /// Panics if the edge is negative or the degeneracy is not positive.
    pub fn new(edge: Energy, degeneracy: f64) -> Self {
        assert!(
            edge.joules() >= 0.0,
            "subband edge must be ≥ 0 (measured from mid-gap)"
        );
        assert!(degeneracy > 0.0, "degeneracy must be positive");
        Self { edge, degeneracy }
    }
}

/// A particle-hole-symmetric quasi-1-D band structure described by a
/// ladder of hyperbolic subbands sharing one band-edge velocity.
///
/// The default methods supply everything the compact models need: density
/// of states, line carrier densities, quantum capacitance, and the
/// closed-form directed thermal current of a 1-D mode.
pub trait Band1d {
    /// The subband ladder, sorted by ascending edge energy.
    fn subbands(&self) -> &[Subband];

    /// Asymptotic band velocity `v_F` of the hyperbolic dispersion, m/s.
    fn velocity(&self) -> f64;

    /// The transport bandgap `E_g = 2·Δ₁`.
    fn bandgap(&self) -> Energy {
        self.subbands()
            .first()
            .map(|s| s.edge * 2.0)
            .unwrap_or(Energy::ZERO)
    }

    /// Density of states per unit length at energy `e` above mid-gap,
    /// 1/(J·m). Zero inside the gap; the van Hove singularity at each edge
    /// is integrable.
    fn dos(&self, e: Energy) -> f64 {
        let e = e.joules().abs();
        let v = self.velocity();
        self.subbands()
            .iter()
            .filter(|s| e > s.edge.joules())
            .map(|s| {
                let d = s.edge.joules();
                s.degeneracy * e / (std::f64::consts::PI * HBAR * v * (e * e - d * d).sqrt())
            })
            .sum()
    }

    /// Electron line density (1/m) for Fermi level `mu` above mid-gap at
    /// temperature `t`.
    fn electron_density(&self, mu: Energy, t: Temperature) -> f64 {
        let kt = t.thermal_energy().joules();
        let mu = mu.joules();
        let v = self.velocity();
        self.subbands()
            .iter()
            .map(|s| {
                let d = s.edge.joules();
                // Substitute E = Δ·cosh(u) to remove the van Hove
                // singularity: D(E)dE = g/(πħv)·Δ·cosh(u) du.
                let pref = s.degeneracy / (std::f64::consts::PI * HBAR * v);
                // Integrate far enough that the Fermi tail is gone.
                let e_max = (mu.max(d) + 40.0 * kt).max(d * 1.5);
                let u_max = ((e_max / d.max(1e-30))
                    + ((e_max / d.max(1e-30)).powi(2) - 1.0).max(0.0).sqrt())
                .ln();
                if d <= 0.0 {
                    // Gapless subband: DOS is constant g/(πħv).
                    return pref * kt * log1pexp(mu / kt);
                }
                integrate(
                    |u| {
                        let e = d * u.cosh();
                        d * u.cosh() * fermi((e - mu) / kt)
                    },
                    0.0,
                    u_max.max(1e-6),
                    1e-9 * d.max(kt),
                ) * pref
            })
            .sum()
    }

    /// Hole line density (1/m); by particle-hole symmetry
    /// `p(µ) = n(−µ)`.
    fn hole_density(&self, mu: Energy, t: Temperature) -> f64 {
        self.electron_density(-mu, t)
    }

    /// Quantum capacitance per unit length, F/m:
    /// `C_q = q²·∂(n − p)/∂µ`, evaluated by integrating the thermal
    /// broadening kernel against the DOS (electrons and holes).
    fn quantum_capacitance(&self, mu: Energy, t: Temperature) -> f64 {
        let kt = t.thermal_energy().joules();
        let mu_j = mu.joules();
        let v = self.velocity();
        let per_carrier = |sign: f64| -> f64 {
            self.subbands()
                .iter()
                .map(|s| {
                    let d = s.edge.joules();
                    let pref = s.degeneracy / (std::f64::consts::PI * HBAR * v);
                    let m = sign * mu_j;
                    if d <= 0.0 {
                        return pref * fermi(-m / kt);
                    }
                    let e_max = (m.max(d) + 40.0 * kt).max(d * 1.5);
                    let r = e_max / d;
                    let u_max = (r + (r * r - 1.0).max(0.0).sqrt()).ln().max(1e-6);
                    integrate(
                        |u| d * u.cosh() * fermi_kernel((d * u.cosh() - m) / kt) / kt,
                        0.0,
                        u_max,
                        1e-9 * d.max(kt) / kt,
                    ) * pref
                })
                .sum()
        };
        Q_E * Q_E * (per_carrier(1.0) + per_carrier(-1.0))
    }

    /// Directed thermal current of the +k movers, in amperes, for a
    /// contact Fermi level `mu` above mid-gap:
    ///
    /// ```text
    /// I⁺ = Σ_i g_i·(q/h)·∫_{Δ_i}^∞ f(E; µ) dE
    ///    = Σ_i g_i·(q·kT/h)·ln(1 + exp((µ − Δ_i)/kT))
    /// ```
    ///
    /// In one dimension the velocity and DOS factors cancel, so this is a
    /// closed form independent of the dispersion details — the property
    /// that makes the top-of-barrier ballistic model tractable.
    fn directed_current(&self, mu: Energy, t: Temperature) -> f64 {
        let kt = t.thermal_energy().joules();
        let mu = mu.joules();
        self.subbands()
            .iter()
            .map(|s| s.degeneracy * (Q_E * kt / PLANCK_H) * log1pexp((mu - s.edge.joules()) / kt))
            .sum()
    }

    /// Directed electron line density of the +k movers, 1/m (half the
    /// total density of a symmetric reservoir).
    fn directed_density(&self, mu: Energy, t: Temperature) -> f64 {
        0.5 * self.electron_density(mu, t)
    }

    /// Average injection velocity of the +k movers, m/s:
    /// `v_inj = I⁺ / (q · n⁺)`.
    ///
    /// This is the §I quantity that replaces mobility in short-channel
    /// devices ("injection velocity of the charge carrier in the source
    /// region is more important"). For a gapless 1-D band it approaches
    /// the band velocity; for a gapped band it is thermally limited in
    /// the non-degenerate regime and rises toward the band velocity
    /// under degenerate bias.
    fn injection_velocity(&self, mu: Energy, t: Temperature) -> f64 {
        let n_plus = self.directed_density(mu, t);
        if n_plus <= 0.0 {
            return 0.0;
        }
        self.directed_current(mu, t) / (carbon_units::consts::Q_E * n_plus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_units::consts::{FERMI_VELOCITY, K_B};

    /// A single-subband test band with CNT-like parameters.
    struct TestBand {
        subbands: Vec<Subband>,
    }

    impl Band1d for TestBand {
        fn subbands(&self) -> &[Subband] {
            &self.subbands
        }
        fn velocity(&self) -> f64 {
            FERMI_VELOCITY
        }
    }

    fn one_band(gap_ev: f64) -> TestBand {
        TestBand {
            subbands: vec![Subband::new(Energy::from_electron_volts(gap_ev / 2.0), 4.0)],
        }
    }

    #[test]
    fn dos_is_zero_in_gap_and_diverges_at_edge() {
        let b = one_band(0.56);
        assert_eq!(b.dos(Energy::from_electron_volts(0.1)), 0.0);
        assert_eq!(b.dos(Energy::ZERO), 0.0);
        let just_above = b.dos(Energy::from_electron_volts(0.2801));
        let far_above = b.dos(Energy::from_electron_volts(0.56));
        assert!(just_above > far_above, "van Hove peak at the edge");
        assert!(far_above > 0.0);
    }

    #[test]
    fn dos_symmetric_in_energy_sign() {
        let b = one_band(0.56);
        let e = Energy::from_electron_volts(0.4);
        assert_eq!(b.dos(e), b.dos(-e));
    }

    #[test]
    fn bandgap_reported_from_first_subband() {
        let b = one_band(0.56);
        assert!((b.bandgap().electron_volts() - 0.56).abs() < 1e-12);
    }

    #[test]
    fn electron_density_increases_with_fermi_level() {
        let b = one_band(0.56);
        let t = Temperature::room();
        let n0 = b.electron_density(Energy::ZERO, t);
        let n1 = b.electron_density(Energy::from_electron_volts(0.2), t);
        let n2 = b.electron_density(Energy::from_electron_volts(0.4), t);
        assert!(n0 < n1 && n1 < n2);
        assert!(n0 > 0.0, "thermal tail population is nonzero");
    }

    #[test]
    fn hole_density_mirrors_electron_density() {
        let b = one_band(0.56);
        let t = Temperature::room();
        let mu = Energy::from_electron_volts(0.13);
        assert!((b.hole_density(mu, t) - b.electron_density(-mu, t)).abs() < 1e-6);
    }

    #[test]
    fn degenerate_density_matches_zero_temperature_count() {
        // At µ well above the edge and low T, n ≈ ∫ D dE which for the
        // hyperbolic band gives (g/πħv)·√(µ² − Δ²).
        let b = one_band(0.4);
        let t = Temperature::from_kelvin(10.0);
        let mu = Energy::from_electron_volts(0.5);
        let n = b.electron_density(mu, t);
        let d = 0.2 * carbon_units::consts::Q_E;
        let m = 0.5 * carbon_units::consts::Q_E;
        let exact = 4.0 / (std::f64::consts::PI * HBAR * FERMI_VELOCITY) * (m * m - d * d).sqrt();
        assert!(
            (n - exact).abs() / exact < 1e-3,
            "n = {n:.4e}, exact = {exact:.4e}"
        );
    }

    #[test]
    fn directed_current_closed_form_limits() {
        let b = one_band(0.56);
        let t = Temperature::room();
        // Deep subthreshold: I⁺ ∝ exp((µ − Δ)/kT).
        let i1 = b.directed_current(Energy::from_electron_volts(-0.1), t);
        let i2 = b.directed_current(Energy::from_electron_volts(-0.1 + 0.0595), t);
        // One thermal decade per 59.5 meV.
        assert!((i2 / i1 - 10.0).abs() < 0.5, "ratio {}", i2 / i1);
        // Degenerate limit: I⁺ ≈ g·(q/h)·(µ − Δ).
        let mu = Energy::from_electron_volts(1.0);
        let i = b.directed_current(mu, t);
        let lin = 4.0 * Q_E / PLANCK_H * (1.0 - 0.28) * Q_E;
        assert!((i - lin).abs() / lin < 0.01);
    }

    #[test]
    fn quantum_capacitance_peaks_near_band_edge() {
        let b = one_band(0.56);
        let t = Temperature::room();
        let cq_gap = b.quantum_capacitance(Energy::ZERO, t);
        let cq_edge = b.quantum_capacitance(Energy::from_electron_volts(0.28), t);
        assert!(cq_edge > cq_gap * 10.0);
        // Magnitude sanity: CNT Cq near the edge is of order 1e-10 F/m
        // (a few pF/cm).
        assert!(cq_edge > 1e-11 && cq_edge < 1e-8, "Cq = {cq_edge:.3e}");
    }

    #[test]
    fn quantum_capacitance_symmetric() {
        let b = one_band(0.56);
        let t = Temperature::room();
        let mu = Energy::from_electron_volts(0.17);
        let a = b.quantum_capacitance(mu, t);
        let bb = b.quantum_capacitance(-mu, t);
        assert!((a - bb).abs() / a < 1e-6);
    }

    #[test]
    fn gapless_band_density_is_finite() {
        let b = TestBand {
            subbands: vec![Subband::new(Energy::ZERO, 4.0)],
        };
        let t = Temperature::room();
        let n = b.electron_density(Energy::from_electron_volts(0.1), t);
        // Metallic 1-D: n = (g/πħv)·kT·ln(1+e^{µ/kT}) ≈ g·µ/(πħv) for µ≫kT.
        let exact = 4.0 * 0.1 * Q_E / (std::f64::consts::PI * HBAR * FERMI_VELOCITY);
        assert!(
            (n - exact).abs() / exact < 0.05,
            "n = {n:.3e} vs {exact:.3e}"
        );
        let _ = K_B; // silence unused import in some cfgs
    }

    #[test]
    fn injection_velocity_rises_toward_band_velocity() {
        let b = one_band(0.56);
        let t = Temperature::room();
        let v_sub = b.injection_velocity(Energy::from_electron_volts(0.1), t);
        let v_on = b.injection_velocity(Energy::from_electron_volts(0.5), t);
        let v_deg = b.injection_velocity(Energy::from_electron_volts(1.5), t);
        assert!(v_sub > 0.0);
        assert!(v_on > v_sub, "degenerate bias speeds injection");
        assert!(v_deg > v_on);
        assert!(
            v_deg < FERMI_VELOCITY * 1.01,
            "bounded by the band velocity: {v_deg:.3e} vs {FERMI_VELOCITY:.3e}"
        );
        // CNT injection velocities are a few 10⁷ cm/s = a few 10⁵ m/s:
        // well above silicon's ~1.3·10⁵ m/s thermal velocity.
        assert!(v_on > 2e5, "v_inj = {v_on:.3e} m/s");
    }

    #[test]
    fn injection_velocity_zero_without_carriers() {
        let b = one_band(0.56);
        // Absurdly deep subthreshold at low temperature: zero density.
        let v = b.injection_velocity(
            Energy::from_electron_volts(-3.0),
            Temperature::from_kelvin(20.0),
        );
        assert_eq!(v, 0.0);
    }

    #[test]
    #[should_panic(expected = "degeneracy")]
    fn subband_rejects_nonpositive_degeneracy() {
        let _ = Subband::new(Energy::from_electron_volts(0.1), 0.0);
    }

    #[test]
    #[should_panic(expected = "edge")]
    fn subband_rejects_negative_edge() {
        let _ = Subband::new(Energy::from_electron_volts(-0.1), 2.0);
    }
}

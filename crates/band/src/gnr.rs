//! Armchair graphene-nanoribbon (AGNR) band structure from
//! nearest-neighbour tight binding.
//!
//! Cutting graphene into an armchair ribbon of `N` dimer lines quantizes
//! the transverse wavevector to `θ_j = j·π/(N+1)`. At the zone centre the
//! subband edges are
//!
//! ```text
//! E_j = γ₀·|1 + 2·cos θ_j|,   j = 1..N
//! ```
//!
//! which reproduces the three width families the paper discusses: ribbons
//! with `N mod 3 = 2` are (nearest-neighbour) metallic, the other two
//! families open a gap that scales as `1/width`. The paper's reference
//! case — a 2.1 nm ribbon with `E_g = 0.56 eV` (Ouyang et al.) — is the
//! `N = 18` ribbon of this model.
//!
//! Subbands carry spin degeneracy 2 only: unlike the CNT there is no
//! valley degeneracy, which is the main band-structure difference between
//! the two Fig. 1 devices.

use carbon_units::consts::{A_LATTICE, FERMI_VELOCITY, GAMMA_0};
use carbon_units::{Energy, Length};

use crate::dos::{Band1d, Subband};

/// Spin degeneracy of an AGNR subband.
const GNR_DEGENERACY: f64 = 2.0;

/// How many subbands to keep in the ladder (the transport window of the
/// paper's simulations never reaches past the first few).
const MAX_SUBBANDS: usize = 6;

/// Band structure of an armchair graphene nanoribbon.
///
/// # Examples
///
/// ```
/// use carbon_band::{Band1d, GnrBand};
///
/// // The paper's 2.1 nm / 0.56 eV reference ribbon.
/// let gnr = GnrBand::armchair(18)?;
/// assert!((gnr.width().nanometers() - 2.09).abs() < 0.02);
/// assert!((gnr.bandgap().electron_volts() - 0.55).abs() < 0.02);
/// # Ok::<(), carbon_band::gnr::BuildGnrError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GnrBand {
    n_dimer: u32,
    subbands: Vec<Subband>,
}

/// Error building a [`GnrBand`]: the ribbon is too narrow or belongs to
/// the (nearest-neighbour) metallic `N mod 3 = 2` family.
#[derive(Debug, Clone, PartialEq)]
pub enum BuildGnrError {
    /// `N < 3`: not a ribbon.
    TooNarrow {
        /// The offending dimer count.
        n_dimer: u32,
    },
    /// `N mod 3 = 2`: gapless in nearest-neighbour tight binding, so there
    /// is no semiconducting band structure to build.
    MetallicFamily {
        /// The offending dimer count.
        n_dimer: u32,
    },
}

impl std::fmt::Display for BuildGnrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::TooNarrow { n_dimer } => {
                write!(f, "armchair ribbon needs at least 3 dimer lines, got {n_dimer}")
            }
            Self::MetallicFamily { n_dimer } => write!(
                f,
                "N = {n_dimer} belongs to the metallic 3p+2 family (no bandgap in nearest-neighbour tight binding)"
            ),
        }
    }
}

impl std::error::Error for BuildGnrError {}

impl GnrBand {
    /// Builds the tight-binding band ladder of an `N`-dimer armchair
    /// ribbon.
    ///
    /// # Errors
    ///
    /// Returns [`BuildGnrError::TooNarrow`] for `N < 3` and
    /// [`BuildGnrError::MetallicFamily`] for the gapless `N mod 3 = 2`
    /// family.
    pub fn armchair(n_dimer: u32) -> Result<Self, BuildGnrError> {
        if n_dimer < 3 {
            return Err(BuildGnrError::TooNarrow { n_dimer });
        }
        if n_dimer % 3 == 2 {
            return Err(BuildGnrError::MetallicFamily { n_dimer });
        }
        let mut edges: Vec<f64> = (1..=n_dimer)
            .map(|j| {
                let theta = j as f64 * std::f64::consts::PI / (n_dimer as f64 + 1.0);
                GAMMA_0 * (1.0 + 2.0 * theta.cos()).abs()
            })
            .collect();
        edges.sort_by(|a, b| a.partial_cmp(b).expect("finite edges"));
        edges.truncate(MAX_SUBBANDS);
        let subbands = edges
            .into_iter()
            .map(|e| Subband::new(Energy::from_joules(e), GNR_DEGENERACY))
            .collect();
        Ok(Self { n_dimer, subbands })
    }

    /// Picks the semiconducting armchair ribbon whose bandgap is closest
    /// to `target_ev` electron-volts, searching `N = 3..=150`
    /// (widths up to ~18 nm). Returns `None` if nothing lands within
    /// 0.15 eV.
    pub fn with_bandgap_near(target_ev: f64) -> Option<Self> {
        (3..=150)
            .filter_map(|n| Self::armchair(n).ok())
            .min_by(|a, b| {
                let da = (a.bandgap().electron_volts() - target_ev).abs();
                let db = (b.bandgap().electron_volts() - target_ev).abs();
                da.partial_cmp(&db).expect("finite gaps")
            })
            .filter(|g| (g.bandgap().electron_volts() - target_ev).abs() < 0.15)
    }

    /// Number of dimer lines `N`.
    pub fn n_dimer(&self) -> u32 {
        self.n_dimer
    }

    /// Geometric ribbon width `w = (N − 1)·a/2`.
    pub fn width(&self) -> Length {
        Length::from_meters((self.n_dimer as f64 - 1.0) * A_LATTICE / 2.0)
    }
}

impl Band1d for GnrBand {
    fn subbands(&self) -> &[Subband] {
        &self.subbands
    }

    fn velocity(&self) -> f64 {
        FERMI_VELOCITY
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_ribbon_n18() {
        // 2.1 nm wide, Eg = 0.56 eV in the paper (Ouyang et al. device).
        let g = GnrBand::armchair(18).unwrap();
        assert!(
            (g.width().nanometers() - 2.09).abs() < 0.02,
            "w = {}",
            g.width().nanometers()
        );
        let eg = g.bandgap().electron_volts();
        assert!((eg - 0.555).abs() < 0.02, "Eg = {eg}");
    }

    #[test]
    fn family_classification() {
        // 3p and 3p+1 are semiconducting; 3p+2 metallic.
        assert!(GnrBand::armchair(9).is_ok());
        assert!(GnrBand::armchair(10).is_ok());
        assert!(matches!(
            GnrBand::armchair(11),
            Err(BuildGnrError::MetallicFamily { n_dimer: 11 })
        ));
        assert!(matches!(
            GnrBand::armchair(2),
            Err(BuildGnrError::TooNarrow { .. })
        ));
    }

    #[test]
    fn gap_shrinks_with_width_within_family() {
        let gaps: Vec<f64> = [9u32, 12, 15, 18, 21, 24]
            .iter()
            .map(|&n| GnrBand::armchair(n).unwrap().bandgap().electron_volts())
            .collect();
        assert!(gaps.windows(2).all(|w| w[1] < w[0]), "gaps: {gaps:?}");
    }

    #[test]
    fn sub_10nm_ribbons_have_large_gaps() {
        // The paper: "Sub-10 nm width GNR show Ion/Ioff ratio of 10^6" —
        // which requires Eg well above kT. Check ~5 nm ribbon.
        let g = GnrBand::with_bandgap_near(0.25).unwrap();
        assert!(g.width().nanometers() < 10.0);
        assert!(g.bandgap().electron_volts() > 0.15);
    }

    #[test]
    fn degeneracy_is_spin_only() {
        let g = GnrBand::armchair(18).unwrap();
        assert!(g.subbands().iter().all(|s| s.degeneracy == 2.0));
    }

    #[test]
    fn subband_count_truncated() {
        let g = GnrBand::armchair(99).unwrap();
        assert!(g.subbands().len() <= MAX_SUBBANDS);
    }

    #[test]
    fn with_bandgap_near_finds_fig1_twin() {
        let g = GnrBand::with_bandgap_near(0.56).unwrap();
        assert_eq!(g.n_dimer(), 18);
    }

    #[test]
    fn with_bandgap_near_rejects_unphysical() {
        assert!(GnrBand::with_bandgap_near(8.0).is_none());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use carbon_runtime::prop::prelude::*;

    proptest! {
        #[test]
        fn semiconducting_families_have_positive_sorted_gaps(p in 1u32..40) {
            for n in [3 * p, 3 * p + 1] {
                let g = GnrBand::armchair(n).unwrap();
                let edges: Vec<f64> =
                    g.subbands().iter().map(|s| s.edge.joules()).collect();
                prop_assert!(edges[0] > 0.0);
                prop_assert!(edges.windows(2).all(|w| w[0] <= w[1]));
            }
        }

        #[test]
        fn metallic_family_always_rejected(p in 1u32..40) {
            prop_assert!(GnrBand::armchair(3 * p + 2).is_err());
        }

        #[test]
        fn gap_width_product_bounded(p in 3u32..40) {
            // Eg·w stays in a physical envelope (~0.6–1.1 eV·nm for the
            // 3p family, up to ~1.4 for 3p+1) — the "≈ 1 eV·nm" rule of
            // thumb cited for GNRs.
            for n in [3 * p, 3 * p + 1] {
                let g = GnrBand::armchair(n).unwrap();
                let prod = g.bandgap().electron_volts() * g.width().nanometers();
                prop_assert!((0.3..2.0).contains(&prod), "N = {}, Eg·w = {prod}", n);
            }
        }
    }
}

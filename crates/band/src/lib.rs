//! Band structure and carrier statistics for carbon nanomaterials.
//!
//! This crate implements the electronic-structure substrate the paper's
//! device simulations stand on:
//!
//! * [`chirality`] — single-walled carbon-nanotube chirality `(n, m)`:
//!   diameter, chiral angle, the metallicity rule `(n − m) mod 3`, and the
//!   zone-folding bandgap `E_g ≈ 2·a_cc·γ₀ / d`,
//! * [`cnt`] — CNT subband ladder and hyperbolic 1-D dispersion,
//! * [`gnr`] — armchair graphene-nanoribbon bands from nearest-neighbour
//!   tight binding (the three `N mod 3` families),
//! * [`dos`] — 1-D density of states, line carrier density, and quantum
//!   capacitance for any [`Band1d`],
//! * [`math`] — the numerical kernel shared by the workspace: stable
//!   Fermi functions, adaptive Simpson integration, Brent root finding.
//!
//! # Examples
//!
//! Find a chirality with the paper's Fig. 1 bandgap of 0.56 eV:
//!
//! ```
//! use carbon_band::chirality::Chirality;
//!
//! let c = Chirality::with_bandgap_near(0.56).expect("semiconducting tube exists");
//! assert!(c.is_semiconducting());
//! assert!((c.bandgap().electron_volts() - 0.56).abs() < 0.06);
//! ```

#![deny(missing_docs)]

pub mod chirality;
pub mod cnt;
pub mod dos;
pub mod gnr;
pub mod math;

pub use chirality::Chirality;
pub use cnt::CntBand;
pub use dos::{Band1d, Subband};
pub use gnr::GnrBand;

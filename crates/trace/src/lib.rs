//! Zero-dependency instrumentation for the carbon-electronics stack:
//! structured spans, counters, and a pluggable [`Subscriber`] with a
//! JSONL exporter.
//!
//! The simulation stack got fast by being adaptive — replay
//! refactorization with a staleness fallback, warm-started sweeps with
//! step-halving continuation, chunked parallel campaigns — and adaptive
//! code is opaque: the *decisions* (how many Newton iterations, replay
//! or full factorization, how many halvings) are invisible in the final
//! numbers. This crate makes those decisions first-class, machine
//! readable telemetry while preserving the workspace's two contracts:
//!
//! * **Hermetic** — no registry dependencies, `std` only.
//! * **Free when off** — every probe starts with [`enabled`], a
//!   thread-local flag read plus one relaxed atomic load. No allocation,
//!   no clock read, no formatting happens unless a subscriber is
//!   installed.
//!
//! # Model
//!
//! Three event kinds ([`Event`]):
//!
//! * **Spans** — named, timed regions with key/value fields, nested via
//!   a thread-local stack ([`span!`] returns an RAII guard; the
//!   completed span is dispatched on drop).
//! * **Instants** — point events with fields (e.g. one continuation
//!   step-halving).
//! * **Counters** — named monotonic deltas (e.g. one replay
//!   refactorization).
//!
//! Events go to a [`Subscriber`]: either the process-global one —
//! installed explicitly with [`install_global`] or implicitly from the
//! `CARBON_TRACE=path.jsonl` environment variable, which opens a
//! [`jsonl::JsonlWriter`] — or a thread-local one scoped by
//! [`with_subscriber`], which tests use to capture events without
//! cross-test interference.
//!
//! # Determinism
//!
//! Tracing observes; it never participates. No simulation value ever
//! depends on a trace query, so results stay bit-identical with tracing
//! on or off, at any `CARBON_THREADS`. Trace *files* are diagnostics,
//! not artifacts: timings and event interleavings differ run to run.

#![deny(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::cast_precision_loss,
    clippy::cast_possible_truncation,
    clippy::cast_sign_loss,
    clippy::must_use_candidate,
    clippy::return_self_not_must_use,
    clippy::missing_panics_doc
)]

pub mod collect;
pub mod jsonl;

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Once, OnceLock, RwLock};
use std::time::Instant;

/// Environment variable that activates the global JSONL exporter: set
/// `CARBON_TRACE=path.jsonl` and the first probe in the process opens
/// the file and streams every event to it.
pub const ENV_VAR: &str = "CARBON_TRACE";

/// A field value attached to a span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, indices).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (residuals, voltages).
    F64(f64),
    /// Boolean (decisions).
    Bool(bool),
    /// String (names chosen at runtime).
    Str(String),
}

impl Value {
    /// The value as `f64` if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::U64(v) => Some(*v as f64),
            Self::I64(v) => Some(*v as f64),
            Self::F64(v) => Some(*v),
            Self::Bool(_) | Self::Str(_) => None,
        }
    }

    /// The value as `u64` if it is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::U64(v) => Some(*v),
            _ => None,
        }
    }
}

macro_rules! value_from {
    ($($ty:ty => $variant:ident as $conv:ty),* $(,)?) => {$(
        impl From<$ty> for Value {
            fn from(v: $ty) -> Self {
                Self::$variant(v as $conv)
            }
        }
    )*};
}
value_from!(u64 => U64 as u64, u32 => U64 as u64, usize => U64 as u64,
            i64 => I64 as i64, i32 => I64 as i64,
            f64 => F64 as f64, f32 => F64 as f64);

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Self::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

/// One key/value field on a span or instant event.
#[derive(Debug, Clone, PartialEq)]
pub struct Field {
    /// Field name (static so the disabled path never allocates keys).
    pub key: &'static str,
    /// Field value.
    pub value: Value,
}

impl Field {
    /// Builds a field from anything convertible to [`Value`].
    pub fn new(key: &'static str, value: impl Into<Value>) -> Self {
        Self {
            key,
            value: value.into(),
        }
    }
}

/// One telemetry event delivered to a [`Subscriber`].
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A completed span (dispatched when its guard drops).
    Span {
        /// Span name.
        name: &'static str,
        /// Process-unique span id.
        id: u64,
        /// Id of the enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Reporting thread (small sequential id, not the OS tid).
        thread: u64,
        /// Start offset from the trace epoch, ns.
        start_ns: u64,
        /// Span duration, ns.
        dur_ns: u64,
        /// Fields recorded while the span was open.
        fields: Vec<Field>,
    },
    /// A point event.
    Instant {
        /// Event name.
        name: &'static str,
        /// Id of the enclosing span on the same thread, if any.
        parent: Option<u64>,
        /// Reporting thread.
        thread: u64,
        /// Offset from the trace epoch, ns.
        at_ns: u64,
        /// Event fields.
        fields: Vec<Field>,
    },
    /// A counter increment.
    Counter {
        /// Counter name.
        name: &'static str,
        /// Amount added.
        delta: u64,
        /// Reporting thread.
        thread: u64,
    },
    /// A set-valued observation (queue depth, in-flight work). Unlike
    /// a counter's delta, the value *replaces* the previous reading;
    /// aggregators report last/min/max rather than a sum.
    Gauge {
        /// Gauge name.
        name: &'static str,
        /// The observed value.
        value: u64,
        /// Reporting thread.
        thread: u64,
    },
}

impl Event {
    /// The event's name, whatever its kind.
    pub fn name(&self) -> &'static str {
        match self {
            Self::Span { name, .. }
            | Self::Instant { name, .. }
            | Self::Counter { name, .. }
            | Self::Gauge { name, .. } => name,
        }
    }
}

/// Sink for telemetry events. Implementations must be cheap enough to
/// call from solver inner loops *when tracing is on* and must tolerate
/// concurrent calls from executor worker threads.
pub trait Subscriber: Send + Sync {
    /// Receives one event.
    fn event(&self, event: &Event);
}

static GLOBAL: RwLock<Option<Arc<dyn Subscriber>>> = RwLock::new(None);
static GLOBAL_ENABLED: AtomicBool = AtomicBool::new(false);
static ENV_INIT: Once = Once::new();
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

thread_local! {
    static LOCAL: RefCell<Option<Arc<dyn Subscriber>>> = const { RefCell::new(None) };
    static LOCAL_ENABLED: Cell<bool> = const { Cell::new(false) };
    static STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    static THREAD_ID: Cell<u64> = const { Cell::new(0) };
}

/// Nanoseconds since the process's trace epoch (first probe).
fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Small sequential id of the calling thread (assigned on first use).
fn thread_id() -> u64 {
    THREAD_ID.with(|t| {
        let id = t.get();
        if id != 0 {
            return id;
        }
        let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        t.set(id);
        id
    })
}

/// Whether any subscriber is installed — the guard every probe starts
/// with. When this returns `false` the probe does nothing further: no
/// clock read, no allocation, no field conversion.
#[inline]
pub fn enabled() -> bool {
    LOCAL_ENABLED.with(Cell::get) || global_enabled()
}

#[inline]
fn global_enabled() -> bool {
    ENV_INIT.call_once(init_global_from_env);
    GLOBAL_ENABLED.load(Ordering::Acquire)
}

fn init_global_from_env() {
    let Ok(path) = std::env::var(ENV_VAR) else {
        return;
    };
    if path.is_empty() {
        return;
    }
    match jsonl::JsonlWriter::create(&path) {
        Ok(writer) => {
            *GLOBAL
                .write()
                .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(Arc::new(writer));
            GLOBAL_ENABLED.store(true, Ordering::Release);
        }
        Err(e) => eprintln!("carbon-trace: cannot open {ENV_VAR}={path}: {e}"),
    }
}

/// Installs `subscriber` as the process-global sink, replacing any
/// previous one (including an env-installed JSONL writer). Prefer
/// [`with_subscriber`] in tests — the global sink sees events from
/// *every* thread of the process.
pub fn install_global(subscriber: Arc<dyn Subscriber>) {
    // Burn the env initializer first so a later lazy init cannot clobber
    // an explicit install.
    ENV_INIT.call_once(|| {});
    *GLOBAL
        .write()
        .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(subscriber);
    GLOBAL_ENABLED.store(true, Ordering::Release);
}

/// Runs `f` with `subscriber` installed as this thread's sink. Events
/// from the calling thread go to `subscriber` (shadowing the global
/// sink); events from other threads — executor workers included — are
/// *not* captured, so pair this with a single-threaded executor when a
/// test needs worker events.
pub fn with_subscriber<R>(subscriber: Arc<dyn Subscriber>, f: impl FnOnce() -> R) -> R {
    struct Restore {
        prev: Option<Arc<dyn Subscriber>>,
        prev_enabled: bool,
    }
    impl Drop for Restore {
        fn drop(&mut self) {
            LOCAL.with(|l| *l.borrow_mut() = self.prev.take());
            LOCAL_ENABLED.with(|e| e.set(self.prev_enabled));
        }
    }
    let _restore = Restore {
        prev: LOCAL.with(|l| l.borrow_mut().replace(subscriber)),
        prev_enabled: LOCAL_ENABLED.with(|e| e.replace(true)),
    };
    f()
}

/// Delivers `event` to the active subscriber: the thread-local one if
/// set, otherwise the global one.
pub fn dispatch(event: &Event) {
    let handled = LOCAL.with(|l| {
        if let Some(sub) = l.borrow().as_ref() {
            sub.event(event);
            true
        } else {
            false
        }
    });
    if handled {
        return;
    }
    if let Some(sub) = GLOBAL
        .read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .as_ref()
    {
        sub.event(event);
    }
}

/// RAII guard for a named, timed region. Create with [`Span::enter`] or
/// the [`span!`] macro; the completed span (duration plus any recorded
/// fields) is dispatched when the guard drops. A guard created while
/// tracing is disabled is inert and costs nothing.
#[must_use = "a span measures the region until the guard drops"]
pub struct Span(Option<ActiveSpan>);

struct ActiveSpan {
    name: &'static str,
    id: u64,
    parent: Option<u64>,
    start: Instant,
    start_ns: u64,
    fields: Vec<Field>,
}

impl Span {
    /// Opens a span (if tracing is enabled) and pushes it on the calling
    /// thread's span stack, making it the parent of nested probes.
    pub fn enter(name: &'static str) -> Self {
        if !enabled() {
            return Self(None);
        }
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let parent = stack.last().copied();
            stack.push(id);
            parent
        });
        let start_ns = now_ns();
        Self(Some(ActiveSpan {
            name,
            id,
            parent,
            start: Instant::now(),
            start_ns,
            fields: Vec::new(),
        }))
    }

    /// Attaches a field to the span. A no-op on inert guards.
    pub fn record(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(active) = &mut self.0 {
            active.fields.push(Field::new(key, value.into()));
        }
    }

    /// Whether this guard is live (tracing was enabled at creation) —
    /// lets callers skip expensive field computation.
    pub fn is_live(&self) -> bool {
        self.0.is_some()
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else {
            return;
        };
        STACK.with(|s| {
            let mut stack = s.borrow_mut();
            // Guards normally drop in LIFO order, but be robust to a
            // span held across an early return past its children.
            if let Some(pos) = stack.iter().rposition(|&id| id == active.id) {
                stack.remove(pos);
            }
        });
        dispatch(&Event::Span {
            name: active.name,
            id: active.id,
            parent: active.parent,
            thread: thread_id(),
            start_ns: active.start_ns,
            dur_ns: active.start.elapsed().as_nanos() as u64,
            fields: active.fields,
        });
    }
}

/// Emits a point event with fields (skipped when tracing is disabled —
/// prefer the [`instant!`] macro, which also skips field conversion).
pub fn instant(name: &'static str, fields: Vec<Field>) {
    if !enabled() {
        return;
    }
    let parent = STACK.with(|s| s.borrow().last().copied());
    dispatch(&Event::Instant {
        name,
        parent,
        thread: thread_id(),
        at_ns: now_ns(),
        fields,
    });
}

/// Adds `delta` to the named counter (skipped when tracing is disabled).
pub fn counter_add(name: &'static str, delta: u64) {
    if !enabled() {
        return;
    }
    dispatch(&Event::Counter {
        name,
        delta,
        thread: thread_id(),
    });
}

/// Records a set-valued observation on the named gauge (skipped when
/// tracing is disabled).
pub fn gauge_set(name: &'static str, value: u64) {
    if !enabled() {
        return;
    }
    dispatch(&Event::Gauge {
        name,
        value,
        thread: thread_id(),
    });
}

/// Opens a [`Span`] guard: `span!("spice.newton_solve")`, optionally
/// with initial fields: `span!("runtime.chunk", "chunk" = c, "items" = n)`.
///
/// Field expressions are only evaluated when tracing is enabled.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::Span::enter($name)
    };
    ($name:expr, $($key:literal = $val:expr),+ $(,)?) => {{
        let mut span = $crate::Span::enter($name);
        if span.is_live() {
            $(span.record($key, $val);)+
        }
        span
    }};
}

/// Increments a named counter: `counter!("spice.sparse.replay")` adds 1,
/// `counter!("name", n)` adds `n`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {
        $crate::counter_add($name, 1)
    };
    ($name:expr, $delta:expr) => {
        $crate::counter_add($name, $delta)
    };
}

/// Records a set-valued gauge observation:
/// `gauge!("serve.queue_depth", depth)`. The value expression is only
/// evaluated when tracing is enabled.
#[macro_export]
macro_rules! gauge {
    ($name:expr, $value:expr) => {
        if $crate::enabled() {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            $crate::gauge_set($name, ($value) as u64);
        }
    };
}

/// Emits a point event with fields:
/// `instant!("spice.continuation_halve", "v_from" = a, "v_to" = b)`.
///
/// Field expressions are only evaluated when tracing is enabled.
#[macro_export]
macro_rules! instant {
    ($name:expr) => {
        $crate::instant($name, ::std::vec::Vec::new())
    };
    ($name:expr, $($key:literal = $val:expr),+ $(,)?) => {
        if $crate::enabled() {
            $crate::instant($name, ::std::vec![
                $($crate::Field::new($key, $val),)+
            ]);
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collect::Collector;

    #[test]
    fn disabled_probes_are_inert() {
        // No subscriber on this thread (and none installed globally by
        // this test): guards are inert and record() is a no-op.
        assert!(!LOCAL_ENABLED.with(Cell::get));
        let mut s = span!("unit.off");
        assert!(!s.is_live());
        s.record("k", 1u64);
        drop(s);
        counter!("unit.off.counter");
        instant!("unit.off.instant", "v" = 1.0);
        gauge!("unit.off.gauge", 3usize);
    }

    #[test]
    fn gauges_record_set_values() {
        let collector = Collector::new();
        with_subscriber(collector.clone(), || {
            gauge!("unit.depth", 5usize);
            gauge!("unit.depth", 2u64);
            gauge!("unit.depth", 9u32);
        });
        assert_eq!(collector.gauge_values("unit.depth"), vec![5, 2, 9]);
        assert_eq!(collector.gauge_last("unit.depth"), Some(9));
        assert_eq!(collector.gauge_minmax("unit.depth"), Some((2, 9)));
        assert_eq!(collector.gauge_last("unit.absent"), None);
    }

    #[test]
    fn spans_nest_and_record_fields() {
        let collector = Collector::new();
        with_subscriber(collector.clone(), || {
            let mut outer = span!("unit.outer");
            outer.record("points", 3usize);
            {
                let _inner = span!("unit.inner", "k" = 7u64);
                instant!("unit.tick", "v" = 2.5);
            }
        });
        let events = collector.events();
        assert_eq!(events.len(), 3, "{events:?}");
        // Inner span completes first.
        let Event::Span {
            name: inner_name,
            parent: inner_parent,
            fields: inner_fields,
            ..
        } = &events[1]
        else {
            panic!("expected inner span, got {:?}", events[1]);
        };
        assert_eq!(*inner_name, "unit.inner");
        assert_eq!(inner_fields, &[Field::new("k", 7u64)]);
        let Event::Span {
            name: outer_name,
            id: outer_id,
            parent: outer_parent,
            ..
        } = &events[2]
        else {
            panic!("expected outer span, got {:?}", events[2]);
        };
        assert_eq!(*outer_name, "unit.outer");
        assert_eq!(*outer_parent, None);
        assert_eq!(*inner_parent, Some(*outer_id));
        // The instant nests under the inner span.
        let Event::Instant { parent, .. } = &events[0] else {
            panic!("expected instant, got {:?}", events[0]);
        };
        assert!(parent.is_some());
    }

    #[test]
    fn counters_accumulate_in_collector() {
        let collector = Collector::new();
        with_subscriber(collector.clone(), || {
            counter!("unit.hits");
            counter!("unit.hits", 4);
            counter!("unit.other");
        });
        assert_eq!(collector.counter_total("unit.hits"), 5);
        assert_eq!(collector.counter_total("unit.other"), 1);
        assert_eq!(collector.counter_total("unit.absent"), 0);
    }

    #[test]
    fn with_subscriber_restores_previous_state() {
        let a = Collector::new();
        let b = Collector::new();
        with_subscriber(a.clone(), || {
            with_subscriber(b.clone(), || counter!("unit.inner.only"));
            counter!("unit.outer.only");
        });
        assert_eq!(b.counter_total("unit.inner.only"), 1);
        assert_eq!(b.counter_total("unit.outer.only"), 0);
        assert_eq!(a.counter_total("unit.outer.only"), 1);
        assert_eq!(a.counter_total("unit.inner.only"), 0);
        assert!(!LOCAL_ENABLED.with(Cell::get));
    }

    #[test]
    fn value_conversions_and_views() {
        assert_eq!(Value::from(3usize).as_u64(), Some(3));
        assert_eq!(Value::from(-2i32), Value::I64(-2));
        assert_eq!(Value::from(1.5f64).as_f64(), Some(1.5));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::Str("x".into()));
        assert_eq!(Value::Bool(false).as_f64(), None);
        assert_eq!(Value::F64(1.0).as_u64(), None);
    }

    #[test]
    fn span_durations_are_monotonic() {
        let collector = Collector::new();
        with_subscriber(collector.clone(), || {
            let _s = span!("unit.timed");
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
        let spans = collector.spans("unit.timed");
        assert_eq!(spans.len(), 1);
        let Event::Span { dur_ns, .. } = &spans[0] else {
            unreachable!()
        };
        assert!(*dur_ns >= 1_000_000, "dur {dur_ns} ns");
    }

    #[test]
    fn out_of_order_drop_keeps_stack_consistent() {
        let collector = Collector::new();
        with_subscriber(collector.clone(), || {
            let outer = span!("unit.a");
            let inner = span!("unit.b");
            drop(outer); // misuse: parent dropped first
            let sibling = span!("unit.c");
            drop(sibling);
            drop(inner);
        });
        let events = collector.events();
        assert_eq!(events.len(), 3);
        // The stack self-heals: c's parent is b (still open), not a.
        let id_of = |name: &str| {
            collector.spans(name).first().map(|e| match e {
                Event::Span { id, .. } => *id,
                _ => unreachable!(),
            })
        };
        let Event::Span { parent, .. } = collector.spans("unit.c")[0].clone() else {
            unreachable!()
        };
        assert_eq!(parent, id_of("unit.b"));
    }
}

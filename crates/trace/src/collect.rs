//! An in-memory [`Subscriber`] that records every event — the test
//! harness's window into the instrumentation layer.

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex, PoisonError};

use crate::{Event, Subscriber, Value};

/// Collects events into a vector behind a mutex. Cheap to share
/// (`Arc`), queryable while collection continues.
#[derive(Debug, Default)]
pub struct Collector {
    events: Mutex<Vec<Event>>,
}

impl Collector {
    /// Creates a shareable collector.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Snapshot of every event received so far, in arrival order.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// Every span event with the given name.
    pub fn spans(&self, name: &str) -> Vec<Event> {
        self.events()
            .into_iter()
            .filter(|e| matches!(e, Event::Span { .. }) && e.name() == name)
            .collect()
    }

    /// Sum of all deltas recorded for the named counter.
    pub fn counter_total(&self, name: &str) -> u64 {
        self.events()
            .iter()
            .filter_map(|e| match e {
                Event::Counter { name: n, delta, .. } if *n == name => Some(*delta),
                _ => None,
            })
            .sum()
    }

    /// Totals of every counter seen, by name.
    pub fn counter_totals(&self) -> BTreeMap<&'static str, u64> {
        let mut totals = BTreeMap::new();
        for e in self.events() {
            if let Event::Counter { name, delta, .. } = e {
                *totals.entry(name).or_insert(0) += delta;
            }
        }
        totals
    }

    /// Every value observed on the named gauge, in arrival order.
    pub fn gauge_values(&self, name: &str) -> Vec<u64> {
        self.events()
            .iter()
            .filter_map(|e| match e {
                Event::Gauge { name: n, value, .. } if *n == name => Some(*value),
                _ => None,
            })
            .collect()
    }

    /// The last value observed on the named gauge, if any.
    pub fn gauge_last(&self, name: &str) -> Option<u64> {
        self.gauge_values(name).last().copied()
    }

    /// The (min, max) of every value observed on the named gauge.
    pub fn gauge_minmax(&self, name: &str) -> Option<(u64, u64)> {
        let values = self.gauge_values(name);
        Some((*values.iter().min()?, *values.iter().max()?))
    }

    /// The values of field `key` across every span named `name`, in
    /// arrival order (spans without the field are skipped).
    pub fn span_field(&self, name: &str, key: &str) -> Vec<Value> {
        self.events()
            .iter()
            .filter_map(|e| match e {
                Event::Span {
                    name: n, fields, ..
                } if *n == name => fields
                    .iter()
                    .find(|f| f.key == key)
                    .map(|f| f.value.clone()),
                _ => None,
            })
            .collect()
    }
}

impl Subscriber for Collector {
    fn event(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{with_subscriber, Field};

    #[test]
    fn span_field_extraction() {
        let c = Collector::new();
        with_subscriber(c.clone(), || {
            let mut s = crate::span!("t.solve");
            s.record("iters", 7u64);
            drop(s);
            let mut s = crate::span!("t.solve");
            s.record("iters", 9u64);
            s.record("residual", 1e-10);
            drop(s);
        });
        assert_eq!(
            c.span_field("t.solve", "iters"),
            vec![Value::U64(7), Value::U64(9)]
        );
        assert_eq!(c.span_field("t.solve", "residual"), vec![Value::F64(1e-10)]);
        assert!(c.span_field("t.absent", "iters").is_empty());
    }

    #[test]
    fn counter_totals_by_name() {
        let c = Collector::new();
        c.event(&Event::Counter {
            name: "a",
            delta: 2,
            thread: 1,
        });
        c.event(&Event::Counter {
            name: "b",
            delta: 3,
            thread: 1,
        });
        c.event(&Event::Counter {
            name: "a",
            delta: 1,
            thread: 2,
        });
        let totals = c.counter_totals();
        assert_eq!(totals.get("a"), Some(&3));
        assert_eq!(totals.get("b"), Some(&3));
    }

    #[test]
    fn collector_is_shareable_across_threads() {
        let c = Collector::new();
        std::thread::scope(|s| {
            for t in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    c.event(&Event::Instant {
                        name: "t.parallel",
                        parent: None,
                        thread: t,
                        at_ns: 0,
                        fields: vec![Field::new("t", t)],
                    });
                });
            }
        });
        assert_eq!(c.events().len(), 4);
    }
}

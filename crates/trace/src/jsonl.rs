//! Line-delimited JSON trace exporter — the subscriber behind
//! `CARBON_TRACE=path.jsonl`.
//!
//! One JSON object per event, flushed per line so a crash (or the
//! process exiting without dropping the global subscriber, which lives
//! in a `static`) loses at most the event being written:
//!
//! ```text
//! {"ev":"span","name":"spice.newton_solve","id":7,"parent":3,"thread":1,"start_ns":120,"dur_ns":8100,"fields":{"iters":4,"converged":true}}
//! {"ev":"instant","name":"spice.continuation_halve","parent":9,"thread":2,"at_ns":9000,"fields":{"v_from":0.5,"v_to":0.75}}
//! {"ev":"counter","name":"spice.sparse.replay","delta":1,"thread":1}
//! ```
//!
//! The schema is flat and hand-parseable (see `carbon-bench`'s
//! `trace-summary`, which aggregates these files without a JSON
//! dependency). Non-finite floats serialize as `null` to keep every
//! line valid JSON. Escaping and float rendering come from the shared
//! `carbon-json` module, so the exporter, the bench tooling, and the
//! `carbon-serve` protocol all speak one dialect.

use std::fmt::Write as _;
use std::fs::File;
use std::io::Write as _;
use std::path::Path;
use std::sync::{Mutex, PoisonError};

use carbon_json::{escape, write_f64};

use crate::{Event, Field, Subscriber, Value};

/// Writes each event as one JSON line to a file.
#[derive(Debug)]
pub struct JsonlWriter {
    out: Mutex<File>,
}

impl JsonlWriter {
    /// Creates (truncating) the trace file.
    ///
    /// # Errors
    ///
    /// Propagates the underlying I/O error.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<Self> {
        Ok(Self {
            out: Mutex::new(File::create(path)?),
        })
    }

    /// Renders one event as its JSON line (no trailing newline).
    pub fn render(event: &Event) -> String {
        let mut s = String::with_capacity(128);
        match event {
            Event::Span {
                name,
                id,
                parent,
                thread,
                start_ns,
                dur_ns,
                fields,
            } => {
                let _ = write!(s, "{{\"ev\":\"span\",\"name\":\"{}\"", escape(name));
                let _ = write!(s, ",\"id\":{id}");
                if let Some(p) = parent {
                    let _ = write!(s, ",\"parent\":{p}");
                }
                let _ = write!(
                    s,
                    ",\"thread\":{thread},\"start_ns\":{start_ns},\"dur_ns\":{dur_ns}"
                );
                render_fields(&mut s, fields);
                s.push('}');
            }
            Event::Instant {
                name,
                parent,
                thread,
                at_ns,
                fields,
            } => {
                let _ = write!(s, "{{\"ev\":\"instant\",\"name\":\"{}\"", escape(name));
                if let Some(p) = parent {
                    let _ = write!(s, ",\"parent\":{p}");
                }
                let _ = write!(s, ",\"thread\":{thread},\"at_ns\":{at_ns}");
                render_fields(&mut s, fields);
                s.push('}');
            }
            Event::Counter {
                name,
                delta,
                thread,
            } => {
                let _ = write!(
                    s,
                    "{{\"ev\":\"counter\",\"name\":\"{}\",\"delta\":{delta},\"thread\":{thread}}}",
                    escape(name)
                );
            }
            Event::Gauge {
                name,
                value,
                thread,
            } => {
                let _ = write!(
                    s,
                    "{{\"ev\":\"gauge\",\"name\":\"{}\",\"value\":{value},\"thread\":{thread}}}",
                    escape(name)
                );
            }
        }
        s
    }
}

fn render_fields(s: &mut String, fields: &[Field]) {
    if fields.is_empty() {
        return;
    }
    s.push_str(",\"fields\":{");
    for (k, f) in fields.iter().enumerate() {
        if k > 0 {
            s.push(',');
        }
        let _ = write!(s, "\"{}\":", escape(f.key));
        render_value(s, &f.value);
    }
    s.push('}');
}

fn render_value(s: &mut String, v: &Value) {
    match v {
        Value::U64(v) => {
            let _ = write!(s, "{v}");
        }
        Value::I64(v) => {
            let _ = write!(s, "{v}");
        }
        Value::F64(v) => write_f64(s, *v),
        Value::Bool(v) => {
            let _ = write!(s, "{v}");
        }
        Value::Str(v) => {
            let _ = write!(s, "\"{}\"", escape(v));
        }
    }
}

impl Subscriber for JsonlWriter {
    fn event(&self, event: &Event) {
        let line = Self::render(event);
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        // A failed write (disk full, closed fd) silently drops the
        // event: telemetry must never take the simulation down.
        let _ = writeln!(out, "{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_span_with_fields() {
        let line = JsonlWriter::render(&Event::Span {
            name: "spice.newton_solve",
            id: 7,
            parent: Some(3),
            thread: 1,
            start_ns: 120,
            dur_ns: 8100,
            fields: vec![
                Field::new("iters", 4u64),
                Field::new("converged", true),
                Field::new("residual", 2.5e-10),
            ],
        });
        assert_eq!(
            line,
            "{\"ev\":\"span\",\"name\":\"spice.newton_solve\",\"id\":7,\"parent\":3,\
             \"thread\":1,\"start_ns\":120,\"dur_ns\":8100,\
             \"fields\":{\"iters\":4,\"converged\":true,\"residual\":2.5e-10}}"
        );
    }

    #[test]
    fn renders_rootless_span_without_parent_key() {
        let line = JsonlWriter::render(&Event::Span {
            name: "root",
            id: 1,
            parent: None,
            thread: 1,
            start_ns: 0,
            dur_ns: 5,
            fields: vec![],
        });
        assert!(!line.contains("parent"), "{line}");
        assert!(!line.contains("fields"), "{line}");
    }

    #[test]
    fn renders_counter_and_instant() {
        let c = JsonlWriter::render(&Event::Counter {
            name: "spice.sparse.replay",
            delta: 2,
            thread: 3,
        });
        assert_eq!(
            c,
            "{\"ev\":\"counter\",\"name\":\"spice.sparse.replay\",\"delta\":2,\"thread\":3}"
        );
        let g = JsonlWriter::render(&Event::Gauge {
            name: "serve.queue_depth",
            value: 7,
            thread: 2,
        });
        assert_eq!(
            g,
            "{\"ev\":\"gauge\",\"name\":\"serve.queue_depth\",\"value\":7,\"thread\":2}"
        );
        let i = JsonlWriter::render(&Event::Instant {
            name: "x",
            parent: None,
            thread: 1,
            at_ns: 9,
            fields: vec![Field::new("v", Value::Str("a\"b".into()))],
        });
        assert!(i.contains("\"v\":\"a\\\"b\""), "{i}");
    }

    #[test]
    fn non_finite_floats_stay_valid_json() {
        let line = JsonlWriter::render(&Event::Instant {
            name: "x",
            parent: None,
            thread: 1,
            at_ns: 0,
            fields: vec![
                Field::new("nan", f64::NAN),
                Field::new("inf", f64::INFINITY),
            ],
        });
        assert!(line.contains("\"nan\":null"), "{line}");
        assert!(line.contains("\"inf\":null"), "{line}");
    }

    #[test]
    fn writes_lines_to_file() {
        let dir = std::env::temp_dir().join("carbon-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("unit-{}.jsonl", std::process::id()));
        let writer = JsonlWriter::create(&path).unwrap();
        writer.event(&Event::Counter {
            name: "unit.count",
            delta: 1,
            thread: 1,
        });
        writer.event(&Event::Counter {
            name: "unit.count",
            delta: 2,
            thread: 1,
        });
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn escape_handles_control_characters() {
        assert_eq!(escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
        assert_eq!(escape("\u{01}"), "\\u0001");
    }
}

//! Minimal hand-rolled JSON, shared across the workspace instead of a
//! registry dependency.
//!
//! Three layers, each grown from a previously duplicated hand-rolled
//! implementation:
//!
//! * **Escaping and value rendering** ([`escape`], [`write_f64`]) — the
//!   exact behaviour of the `carbon-trace` JSONL exporter (non-finite
//!   floats serialize as `null` so every emitted line stays valid
//!   JSON).
//! * **Flat field extraction** ([`string_field`], [`u64_field`],
//!   [`find_string_end`]) — the scanners `carbon-bench` uses to read
//!   harness snapshots and trace lines without materializing a tree.
//! * **A full value tree** ([`Json`] with [`Json::parse`] and
//!   [`Json::render`]) — what the `carbon-serve` protocol uses for job
//!   requests and responses. Object fields keep insertion order, so a
//!   rendered response is deterministic byte for byte.
//!
//! The parser is a strict recursive-descent reader of RFC 8259 JSON:
//! `NaN`/`Infinity` literals, trailing garbage, unterminated strings,
//! and pathological nesting (depth > 96) are all rejected with the
//! byte offset of the offence.

#![deny(missing_docs)]
#![warn(clippy::pedantic)]
#![allow(
    clippy::must_use_candidate,
    clippy::return_self_not_must_use,
    clippy::missing_panics_doc,
    clippy::cast_precision_loss
)]

use std::fmt::Write as _;

/// Maximum nesting depth [`Json::parse`] accepts.
const MAX_DEPTH: usize = 96;

/// Escapes a string for inclusion in a JSON literal (without the
/// surrounding quotes). Matches the trace exporter's historical output
/// byte for byte: `"`, `\`, newline and tab get two-character escapes,
/// other control characters become `\u00xx`.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    push_escaped(&mut out, s);
    out
}

/// Appends the escaped form of `s` (no quotes) to `out`.
pub fn push_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Appends `v` as a JSON number, or `null` when it is not finite —
/// NaN and infinities have no JSON representation, and an invalid
/// literal would poison the whole line. Finite values use Rust's
/// shortest round-trip formatting, so `parse(render(v)) == v`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v:?}");
    } else {
        out.push_str("null");
    }
}

/// Extracts a JSON string field (`"key":"..."`) from a flat object
/// line, un-escaping the sequences the workspace writers produce.
pub fn string_field(line: &str, key: &str) -> Option<String> {
    let tag = format!("\"{key}\":\"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                't' => out.push('\t'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(code)?);
                }
                esc => out.push(esc),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extracts a JSON unsigned-integer field (`"key":123`) from a flat
/// object line.
pub fn u64_field(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\":");
    let start = line.find(&tag)? + tag.len();
    let digits: String = line[start..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Index of the closing quote of a JSON string whose opening quote has
/// already been consumed, honoring backslash escapes.
pub fn find_string_end(s: &str) -> Option<usize> {
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        match c {
            _ if escaped => escaped = false,
            '\\' => escaped = true,
            '"' => return Some(i),
            _ => {}
        }
    }
    None
}

/// FNV-1a 64-bit hash — the workspace's standard content digest.
///
/// Grown out of `carbon-bench`, where it fingerprints deterministic
/// smoke-target output; shared here so `carbon-serve` can derive
/// content-addressed cache keys from canonical JSON renderings without
/// a dependency cycle (bench depends on serve). `carbon_bench::Fnv`
/// re-exports this type, so every digest in the workspace is the same
/// algorithm with the same reference vectors.
#[derive(Debug, Clone)]
pub struct Fnv(u64);

impl Default for Fnv {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv {
    /// Starts a hash at the FNV-1a offset basis.
    pub fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    /// Absorbs bytes.
    pub fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    /// Absorbs an `f64`'s exact bit pattern (big-endian), so two
    /// digests match iff every float matches bitwise.
    pub fn write_f64(&mut self, v: f64) {
        self.write(&v.to_bits().to_be_bytes());
    }

    /// The hash value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// A parsed or constructed JSON value. Object fields keep insertion
/// order — rendering is deterministic and round-trips through
/// [`Json::parse`].
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number written without fraction or exponent, within `i64`.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Error from [`Json::parse`]: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the offence in the input.
    pub offset: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for ParseError {}

impl Json {
    /// Builds an empty object (append fields with [`Json::push`]).
    pub fn obj() -> Self {
        Self::Obj(Vec::new())
    }

    /// Appends a field to an object and returns `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not an object.
    pub fn push(mut self, key: &str, value: impl Into<Json>) -> Self {
        match &mut self {
            Self::Obj(fields) => fields.push((key.to_owned(), value.into())),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Looks up an object field by key (first occurrence).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Self::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Self::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as `f64`, if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Self::Int(v) => Some(*v as f64),
            Self::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Self::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as `bool`, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Self::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a slice, if it is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Self::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders the value as compact JSON (no whitespace). Non-finite
    /// floats render as `null`; object field order is preserved.
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(64);
        self.render_into(&mut out);
        out
    }

    /// Appends the compact rendering of the value to `out`.
    pub fn render_into(&self, out: &mut String) {
        match self {
            Self::Null => out.push_str("null"),
            Self::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Self::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Self::Num(v) => write_f64(out, *v),
            Self::Str(s) => {
                out.push('"');
                push_escaped(out, s);
                out.push('"');
            }
            Self::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Self::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    push_escaped(out, k);
                    out.push_str("\":");
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }

    /// Renders the value in *canonical* form: compact like
    /// [`Json::render`], but with object keys in sorted (byte-wise)
    /// order at every nesting level. Two trees that differ only in
    /// object field order render identically, so the canonical form is
    /// the right input for content addressing. Duplicate keys keep
    /// their relative order (a stable sort), matching [`Json::get`]'s
    /// first-occurrence semantics.
    pub fn canonical_render(&self) -> String {
        let mut out = String::with_capacity(64);
        self.canonical_render_into(&mut out);
        out
    }

    /// Appends the canonical rendering of the value to `out`.
    pub fn canonical_render_into(&self, out: &mut String) {
        match self {
            Self::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.canonical_render_into(out);
                }
                out.push(']');
            }
            Self::Obj(fields) => {
                let mut order: Vec<usize> = (0..fields.len()).collect();
                order.sort_by(|&a, &b| fields[a].0.cmp(&fields[b].0));
                out.push('{');
                for (i, &idx) in order.iter().enumerate() {
                    let (k, v) = &fields[idx];
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('"');
                    push_escaped(out, k);
                    out.push_str("\":");
                    v.canonical_render_into(out);
                }
                out.push('}');
            }
            scalar => scalar.render_into(out),
        }
    }

    /// FNV-1a 64 over the canonical rendering — the content-addressed
    /// identity of the value. Field order cannot move the key; numeric
    /// *representation* can (`1` and `1.0` are distinct trees), which
    /// is the conservative direction for a cache: equal keys imply
    /// equal values, never the reverse.
    pub fn canonical_key(&self) -> u64 {
        let mut h = Fnv::new();
        h.write(self.canonical_render().as_bytes());
        h.finish()
    }

    /// Parses one JSON document, rejecting trailing garbage.
    ///
    /// # Errors
    ///
    /// Returns [`ParseError`] with the byte offset for malformed input.
    pub fn parse(text: &str) -> Result<Self, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

macro_rules! json_from {
    ($($ty:ty => |$v:ident| $expr:expr),* $(,)?) => {$(
        impl From<$ty> for Json {
            fn from($v: $ty) -> Self { $expr }
        }
    )*};
}
json_from!(
    bool => |v| Json::Bool(v),
    i64 => |v| Json::Int(v),
    i32 => |v| Json::Int(v.into()),
    u32 => |v| Json::Int(v.into()),
    f64 => |v| Json::Num(v),
    &str => |v| Json::Str(v.to_owned()),
    String => |v| Json::Str(v),
    Vec<Json> => |v| Json::Arr(v),
);

impl From<usize> for Json {
    fn from(v: usize) -> Self {
        i64::try_from(v).map_or(Self::Num(v as f64), Self::Int)
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Self {
        i64::try_from(v).map_or(Self::Num(v as f64), Self::Int)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, reason: impl Into<String>) -> ParseError {
        ParseError {
            offset: self.pos,
            reason: reason.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        if self.bytes[self.pos..].starts_with(token.as_bytes()) {
            self.pos += token.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 96 levels"));
        }
        match self.bytes.get(self.pos) {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') if self.eat("null") => Ok(Json::Null),
            Some(b't') if self.eat("true") => Ok(Json::Bool(true)),
            Some(b'f') if self.eat("false") => Ok(Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(&b) => Err(self.err(format!("unexpected byte '{}'", b.escape_ascii()))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.pos += 1; // consume '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, ParseError> {
        self.pos += 1; // consume '{'
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b'"') {
                return Err(self.err("expected a string key"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.bytes.get(self.pos) != Some(&b':') {
                return Err(self.err("expected ':' after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.pos += 1; // consume opening quote
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast-forward over the plain run.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .expect("input is &str, runs stay on char boundaries"),
            );
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let code = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&code) {
                                // High surrogate: require a paired \uXXXX.
                                if !self.eat("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let low = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(c)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(code)
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        other => {
                            return Err(
                                self.err(format!("invalid escape '\\{}'", other.escape_ascii()))
                            )
                        }
                    }
                }
                Some(_) => return Err(self.err("raw control character in string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let hex = std::str::from_utf8(hex).map_err(|_| self.err("non-ASCII \\u escape"))?;
        let code = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let literal =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number literals are ASCII");
        if !is_float {
            if let Ok(v) = literal.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        }
        match literal.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Json::Num(v)),
            Ok(_) => Err(ParseError {
                offset: start,
                reason: format!("number '{literal}' overflows to non-finite"),
            }),
            Err(_) => Err(ParseError {
                offset: start,
                reason: format!("malformed number '{literal}'"),
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_matches_trace_exporter_behaviour() {
        assert_eq!(escape("a\"b\\c\nd\te"), "a\\\"b\\\\c\\nd\\te");
        assert_eq!(escape("\u{01}"), "\\u0001");
        assert_eq!(escape("plain µ text"), "plain µ text");
    }

    #[test]
    fn write_f64_round_trips_and_nulls_non_finite() {
        let mut s = String::new();
        write_f64(&mut s, 2.5e-10);
        assert_eq!(s, "2.5e-10");
        assert_eq!(s.parse::<f64>().unwrap().to_bits(), 2.5e-10_f64.to_bits());
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut s = String::new();
            write_f64(&mut s, bad);
            assert_eq!(s, "null");
        }
    }

    #[test]
    fn flat_field_extractors() {
        let line = "{\"id\":\"solver/op/8\",\"median_ns\":2763,\"note\":\"a\\\"b\"}";
        assert_eq!(string_field(line, "id").unwrap(), "solver/op/8");
        assert_eq!(string_field(line, "note").unwrap(), "a\"b");
        assert_eq!(u64_field(line, "median_ns"), Some(2763));
        assert_eq!(u64_field(line, "absent"), None);
        assert_eq!(find_string_end("ab\\\"c\"rest"), Some(5));
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("2.5e3").unwrap(), Json::Num(2500.0));
        assert_eq!(Json::parse("\"hi\"").unwrap(), Json::Str("hi".into()));
    }

    #[test]
    fn round_trips_nested_objects_byte_for_byte() {
        let doc = Json::obj()
            .push("id", "job-1")
            .push("kind", "dc_sweep")
            .push("params", Json::obj().push("from", 0.0).push("to", 1.5))
            .push("freqs", Json::Arr(vec![Json::Num(1e3), Json::Int(7)]))
            .push("note", "line1\nline2\t\"quoted\"");
        let rendered = doc.render();
        let reparsed = Json::parse(&rendered).expect("own output parses");
        assert_eq!(reparsed, doc);
        assert_eq!(reparsed.render(), rendered, "stable under re-render");
    }

    #[test]
    fn escape_sequences_round_trip() {
        let parsed = Json::parse("\"a\\u0041\\n\\t\\\\\\\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(parsed, Json::Str("aA\n\t\\\"é😀".into()));
        // And back through the writer (escapes re-render in canonical form).
        let rendered = parsed.render();
        assert_eq!(Json::parse(&rendered).unwrap(), parsed);
    }

    #[test]
    fn rejects_non_finite_numbers() {
        // Not JSON at all: the tokens fail to parse...
        assert!(Json::parse("NaN").is_err());
        assert!(Json::parse("Infinity").is_err());
        assert!(Json::parse("-Infinity").is_err());
        // ...and literals that overflow f64 are rejected, not folded to inf.
        assert!(Json::parse("1e999").is_err());
        // The writer never emits them either.
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "{a:1}",
            "\"unterminated",
            "\"bad \\q escape\"",
            "1 2",
            "tru",
            "\"\\ud800 lone\"",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad:?}");
        }
        let deep = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        assert!(Json::parse(&deep).is_err(), "depth limit");
    }

    #[test]
    fn accessors_and_conversions() {
        let doc = Json::parse("{\"n\":3,\"x\":1.5,\"s\":\"v\",\"b\":false,\"a\":[1],\"z\":null}")
            .unwrap();
        assert_eq!(doc.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("n").and_then(Json::as_f64), Some(3.0));
        assert_eq!(doc.get("x").and_then(Json::as_f64), Some(1.5));
        assert_eq!(doc.get("s").and_then(Json::as_str), Some("v"));
        assert_eq!(doc.get("b").and_then(Json::as_bool), Some(false));
        assert_eq!(
            doc.get("a").and_then(Json::as_array).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(doc.get("z"), Some(&Json::Null));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(Json::from(3usize), Json::Int(3));
        assert_eq!(Json::from(u64::MAX), Json::Num(u64::MAX as f64));
    }

    #[test]
    fn large_integers_keep_integer_rendering() {
        let v = Json::parse("9007199254740993").unwrap();
        assert_eq!(v, Json::Int(9_007_199_254_740_993));
        assert_eq!(v.render(), "9007199254740993");
    }

    #[test]
    fn fnv_reference_vectors() {
        let digest = |bytes: &[u8]| {
            let mut h = Fnv::new();
            h.write(bytes);
            h.finish()
        };
        assert_eq!(digest(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(digest(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(digest(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn canonical_render_sorts_keys_recursively() {
        let a = Json::parse("{\"b\":{\"y\":2,\"x\":1},\"a\":[{\"q\":0,\"p\":9}]}").unwrap();
        assert_eq!(
            a.canonical_render(),
            "{\"a\":[{\"p\":9,\"q\":0}],\"b\":{\"x\":1,\"y\":2}}"
        );
        // Scalars and arrays are untouched by canonicalisation.
        let arr = Json::parse("[3,1,2]").unwrap();
        assert_eq!(arr.canonical_render(), arr.render());
    }

    #[test]
    fn canonical_key_ignores_field_order_but_not_values() {
        let first = Json::parse("{\"kind\":\"op\",\"deck\":{\"r\":1.5,\"v\":2.0}}").unwrap();
        let reordered = Json::parse("{\"deck\":{\"v\":2.0,\"r\":1.5},\"kind\":\"op\"}").unwrap();
        assert_eq!(first.canonical_key(), reordered.canonical_key());
        let changed = Json::parse("{\"deck\":{\"v\":2.0,\"r\":1.25},\"kind\":\"op\"}").unwrap();
        assert_ne!(first.canonical_key(), changed.canonical_key());
        // Integer vs float representation is key-distinct by design.
        let as_int = Json::parse("{\"v\":1}").unwrap();
        let as_float = Json::parse("{\"v\":1.0}").unwrap();
        assert_ne!(as_int.canonical_key(), as_float.canonical_key());
    }
}

//! Ring oscillators: the standard vehicle for extracting a technology's
//! stage delay (and the circuit Schall et al. used to benchmark graphene
//! inverters, paper ref. \[4\]).

use std::sync::Arc;

use carbon_devices::Fet;
use carbon_spice::Circuit;
use carbon_units::{Capacitance, Time, Voltage};

use crate::error::LogicError;

/// An odd-stage complementary ring oscillator.
pub struct RingOscillator {
    nfet: Arc<dyn Fet>,
    pfet: Arc<dyn Fet>,
    stages: usize,
    vdd: f64,
    stage_load: f64,
}

impl std::fmt::Debug for RingOscillator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingOscillator")
            .field("stages", &self.stages)
            .field("vdd", &self.vdd)
            .field("stage_load", &self.stage_load)
            .finish()
    }
}

/// Measured oscillation of a ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Oscillation {
    /// Oscillation period, s.
    pub period: Time,
    /// Per-stage propagation delay `T/(2·N)`, s.
    pub stage_delay: Time,
    /// Peak-to-peak output swing, V.
    pub swing: f64,
}

impl RingOscillator {
    /// Builds an `stages`-stage ring (must be odd and ≥ 3) with a given
    /// extra load per stage.
    ///
    /// # Errors
    ///
    /// Returns [`LogicError::InvalidParameter`] for even or too-small
    /// stage counts, non-positive supply, or negative load.
    pub fn new(
        nfet: Arc<dyn Fet>,
        pfet: Arc<dyn Fet>,
        stages: usize,
        vdd: Voltage,
        stage_load: Capacitance,
    ) -> Result<Self, LogicError> {
        if stages < 3 || stages.is_multiple_of(2) {
            return Err(LogicError::InvalidParameter {
                reason: format!("ring needs an odd stage count ≥ 3, got {stages}"),
            });
        }
        if vdd.volts() <= 0.0 {
            return Err(LogicError::InvalidParameter {
                reason: "vdd must be positive".into(),
            });
        }
        if stage_load.farads() < 0.0 {
            return Err(LogicError::InvalidParameter {
                reason: "stage load must be non-negative".into(),
            });
        }
        Ok(Self {
            nfet,
            pfet,
            stages,
            vdd: vdd.volts(),
            stage_load: stage_load.farads(),
        })
    }

    /// Simulates the ring and extracts period, stage delay, and swing.
    ///
    /// A small current pulse on the first node kicks the ring out of its
    /// metastable DC point; the period is measured from the last rising
    /// mid-rail crossings of the first node.
    ///
    /// # Errors
    ///
    /// Propagates simulation failures; [`LogicError::MissingFeature`] if
    /// no oscillation is detected within the horizon (as happens with
    /// sub-unity-gain stages — the non-saturating devices of Fig. 2
    /// cannot ring).
    pub fn oscillation(&self, horizon: Time) -> Result<Oscillation, LogicError> {
        let mut ckt = Circuit::new();
        ckt.voltage_source("vdd", "vdd", "0", self.vdd);
        for s in 0..self.stages {
            let input = format!("n{s}");
            let output = format!("n{}", (s + 1) % self.stages);
            ckt.fet(
                &format!("mp{s}"),
                &output,
                &input,
                "vdd",
                Arc::new(FetRef(self.pfet.clone())),
            )?;
            ckt.fet(
                &format!("mn{s}"),
                &output,
                &input,
                "0",
                Arc::new(FetRef(self.nfet.clone())),
            )?;
            if self.stage_load > 0.0 {
                ckt.capacitor(&format!("cl{s}"), &output, "0", self.stage_load)?;
            }
        }
        // Kick: brief current pulse into node n0, sized to a fraction of
        // the device drive so weak technologies are not blown past their
        // model range.
        let drive = self.nfet.ids(self.vdd, self.vdd).abs().max(1e-9);
        ckt.current_source_wave(
            "ikick",
            "n0",
            "0",
            carbon_spice::Waveform::Pulse {
                low: 0.0,
                high: 0.25 * drive,
                delay: 0.0,
                rise: 0.0,
                fall: 0.0,
                width: horizon.seconds() / 50.0,
                period: 0.0,
            },
        )?;
        let h = horizon.seconds() / 4000.0;
        let tran = ckt.transient(h, horizon.seconds())?;
        let t = tran.times();
        let v = tran.voltages("n0")?;
        let mid = self.vdd / 2.0;
        // Rising mid-rail crossings after the kick has decayed.
        let settle = horizon.seconds() * 0.25;
        let mut crossings = Vec::new();
        for k in 1..v.len() {
            if t[k] > settle && v[k - 1] < mid && v[k] >= mid {
                let f = (mid - v[k - 1]) / (v[k] - v[k - 1]);
                crossings.push(t[k - 1] + f * (t[k] - t[k - 1]));
            }
        }
        if crossings.len() < 3 {
            return Err(LogicError::MissingFeature {
                feature: "oscillation",
                reason: format!(
                    "only {} rising crossings within the horizon",
                    crossings.len()
                ),
            });
        }
        let periods: Vec<f64> = crossings.windows(2).map(|w| w[1] - w[0]).collect();
        let period = periods.iter().sum::<f64>() / periods.len() as f64;
        let tail_start = t.len() / 2;
        let (lo, hi) = v[tail_start..]
            .iter()
            .fold((f64::MAX, f64::MIN), |(lo, hi), &x| (lo.min(x), hi.max(x)));
        Ok(Oscillation {
            period: Time::from_seconds(period),
            stage_delay: Time::from_seconds(period / (2.0 * self.stages as f64)),
            swing: hi - lo,
        })
    }
}

struct FetRef(Arc<dyn Fet>);

impl carbon_spice::FetCurve for FetRef {
    fn ids(&self, vgs: f64, vds: f64) -> f64 {
        self.0.ids(vgs, vds)
    }
    fn gm_gds(&self, vgs: f64, vds: f64) -> (f64, f64) {
        self.0.gm_gds(vgs, vds)
    }
    // Forward the batched entry points too, so a table model's shared
    // clamp/index fast path survives the trait-object indirection.
    fn ids_batch(&self, bias: &[(f64, f64)], out: &mut [f64]) {
        self.0.ids_batch(bias, out);
    }
    fn eval(&self, vgs: f64, vds: f64) -> (f64, f64, f64) {
        self.0.eval(vgs, vds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use carbon_devices::AlphaPowerFet;

    fn ring(stages: usize) -> RingOscillator {
        RingOscillator::new(
            Arc::new(AlphaPowerFet::fig2_nfet()),
            Arc::new(AlphaPowerFet::fig2_pfet()),
            stages,
            Voltage::from_volts(1.0),
            Capacitance::from_femtofarads(10.0),
        )
        .unwrap()
    }

    #[test]
    fn three_stage_ring_oscillates() {
        let osc = ring(3).oscillation(Time::from_nanoseconds(2.0)).unwrap();
        assert!(osc.period.picoseconds() > 10.0);
        assert!(osc.swing > 0.6, "swing {} V", osc.swing);
        let sd = osc.stage_delay.picoseconds();
        assert!((2.0..200.0).contains(&sd), "stage delay {sd} ps");
    }

    #[test]
    fn five_stage_ring_is_slower() {
        let o3 = ring(3).oscillation(Time::from_nanoseconds(2.0)).unwrap();
        let o5 = ring(5).oscillation(Time::from_nanoseconds(2.0)).unwrap();
        assert!(o5.period > o3.period);
        // Stage delay is roughly technology-constant.
        let r = o5.stage_delay.picoseconds() / o3.stage_delay.picoseconds();
        assert!((0.6..1.6).contains(&r), "stage-delay ratio {r}");
    }

    #[test]
    fn non_saturating_devices_cannot_ring() {
        let r = RingOscillator::new(
            Arc::new(carbon_devices::LinearGnrFet::fig2_nfet()),
            Arc::new(carbon_devices::LinearGnrFet::fig2_pfet()),
            3,
            Voltage::from_volts(1.0),
            Capacitance::from_femtofarads(10.0),
        )
        .unwrap();
        assert!(matches!(
            r.oscillation(Time::from_nanoseconds(2.0)),
            Err(LogicError::MissingFeature { .. })
        ));
    }

    #[test]
    fn construction_validation() {
        let n = Arc::new(AlphaPowerFet::fig2_nfet());
        let p = Arc::new(AlphaPowerFet::fig2_pfet());
        assert!(RingOscillator::new(
            n.clone(),
            p.clone(),
            4,
            Voltage::from_volts(1.0),
            Capacitance::ZERO
        )
        .is_err());
        assert!(RingOscillator::new(
            n.clone(),
            p.clone(),
            1,
            Voltage::from_volts(1.0),
            Capacitance::ZERO
        )
        .is_err());
        assert!(RingOscillator::new(n, p, 3, Voltage::from_volts(0.0), Capacitance::ZERO).is_err());
    }
}
